package crumbcruncher_test

import (
	"context"
	"strings"
	"testing"

	"crumbcruncher"
)

// TestLazyWorldMetricsIdentical pins the lazy-world acceptance bar: a
// crawl of a lazily materialised world must produce byte-identical
// metrics to the eager world, at every parallelism level.
func TestLazyWorldMetricsIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := crumbcruncher.SmallConfig()
		cfg.World.Seed = seed
		cfg.Walks = 40
		cfg.Parallelism = 1

		run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var eager strings.Builder
		if err := crumbcruncher.WriteMetricsJSON(&eager, run); err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{1, 4, 16} {
			lcfg := cfg
			lcfg.World.Lazy = true
			lcfg.Parallelism = par
			lrun, err := crumbcruncher.NewRunner(lcfg).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var lazy strings.Builder
			if err := crumbcruncher.WriteMetricsJSON(&lazy, lrun); err != nil {
				t.Fatal(err)
			}
			if lazy.String() != eager.String() {
				t.Fatalf("seed %d par %d: lazy metrics differ from eager", seed, par)
			}
		}
	}
}
