// Package linttest runs crumblint analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixture
// source itself — the same golden-comment contract as x/tools'
// analysistest, rebuilt on the standard library.
//
// Fixtures live under testdata/src/<importpath>/. A line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	// want `regexp` [`regexp` ...]
//
// with one regexp per expected diagnostic on that line. Diagnostics are
// filtered through //crumb:allow directives exactly like the real
// driver, so fixtures can (and do) assert that the escape hatch works.
//
// Fixture imports resolve first against testdata/src (letting fixtures
// supply fake stand-ins for crumbcruncher packages), then against the
// standard library via the build cache's export data.
package linttest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"crumbcruncher/internal/lint/analysis"
	"crumbcruncher/internal/lint/directive"
)

// Run analyzes each fixture package named by an import path under
// testdata/src and reports any mismatch between the analyzer's
// diagnostics and the fixtures' want comments as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(testdata, "src"))
	for _, p := range paths {
		l.check(a, p)
	}
}

// loader type-checks fixture packages, resolving fixture-local imports
// from source and everything else from gc export data.
type loader struct {
	t      *testing.T
	srcDir string
	fset   *token.FileSet
	pkgs   map[string]*fixturePkg
	std    types.Importer

	// facts memoizes per analyzer+package the fact set a fact-using
	// analyzer exported for a fixture package, after a serialization
	// round trip (Encode/DecodeFactSet) so fixtures also prove the facts
	// survive the wire format the real drivers use.
	facts map[string]*analysis.FactSet
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(t *testing.T, srcDir string) *loader {
	t.Helper()
	l := &loader{
		t:      t,
		srcDir: srcDir,
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*fixturePkg),
		facts:  make(map[string]*analysis.FactSet),
	}
	exports := stdExports(t, srcDir)
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not a fixture dir, not listed by go list)", path)
		}
		return os.Open(file)
	})
	return l
}

// stdExports maps every non-fixture import reachable from the fixture
// tree to its export-data file, via one `go list -export -deps` call.
func stdExports(t *testing.T, srcDir string) map[string]string {
	t.Helper()
	external := map[string]bool{}
	err := filepath.Walk(srcDir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fi, err := os.Stat(filepath.Join(srcDir, filepath.FromSlash(p))); err == nil && fi.IsDir() {
				continue // fixture-provided package
			}
			external[p] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	out := map[string]string{}
	if len(external) == 0 {
		return out
	}
	args := []string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}
	for p := range external {
		args = append(args, p)
	}
	sort.Strings(args[5:])
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go list -export: %v\n%s", err, stderr.String())
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		name, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			out[name] = file
		}
	}
	return out
}

// Import implements types.Importer: fixture directories take precedence
// over the real build, so fakes can shadow crumbcruncher packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, nil
	}
	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package.
func (l *loader) load(path string) (*fixturePkg, error) {
	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	p := &fixturePkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// check runs the analyzer over one fixture package and compares its
// directive-filtered diagnostics with the want comments.
func (l *loader) check(a *analysis.Analyzer, path string) {
	l.t.Helper()
	p, err := l.load(path)
	if err != nil {
		l.t.Fatal(err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		Facts:     analysis.NewFactSet(),
	}
	if a.UsesFacts {
		pass.DepFacts = func(dep string) *analysis.FactSet { return l.depFacts(a, dep) }
	}
	if _, err := a.Run(pass); err != nil {
		l.t.Fatalf("%s on %s: %v", a.Name, path, err)
	}
	allows := directive.Collect(l.fset, p.files)

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		if allows.Allowed(a.Name, d.Pos) {
			continue
		}
		pos := l.fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants, ok := parseWants(l.t, l.fset, c)
				if !ok {
					continue
				}
				pos := l.fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, rx := range wants {
					if !consume(got, k, rx) {
						l.t.Errorf("%s:%d: no diagnostic matching %q (have %v)",
							pos.Filename, pos.Line, rx.String(), got[k])
					}
				}
			}
		}
	}
	for k, msgs := range got {
		for _, m := range msgs {
			l.t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// depFacts returns the facts analyzer a exports for the fixture
// package at dep, running a over it (and, recursively, its fixture
// dependencies) on first use. Non-fixture packages have no facts —
// exactly like the real drivers, which keep facts inside the module.
func (l *loader) depFacts(a *analysis.Analyzer, dep string) *analysis.FactSet {
	l.t.Helper()
	if fi, err := os.Stat(filepath.Join(l.srcDir, filepath.FromSlash(dep))); err != nil || !fi.IsDir() {
		return nil
	}
	key := a.Name + "\x00" + dep
	if fs, ok := l.facts[key]; ok {
		return fs
	}
	l.facts[key] = nil // cycle guard; valid Go imports cannot recurse
	p, err := l.load(dep)
	if err != nil {
		l.t.Fatalf("loading fact dependency %s: %v", dep, err)
	}
	facts := analysis.NewFactSet()
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Report:    func(analysis.Diagnostic) {}, // diagnostics checked only for named packages
		Facts:     facts,
		DepFacts:  func(d string) *analysis.FactSet { return l.depFacts(a, d) },
	}
	if _, err := a.Run(pass); err != nil {
		l.t.Fatalf("%s on fact dependency %s: %v", a.Name, dep, err)
	}
	// Round-trip through the wire format so a fact that would not
	// survive the vetx/cache encoding fails loudly here.
	enc, err := facts.Encode()
	if err != nil {
		l.t.Fatalf("encoding facts of %s: %v", dep, err)
	}
	decoded, err := analysis.DecodeFactSet(enc)
	if err != nil {
		l.t.Fatalf("decoding facts of %s: %v", dep, err)
	}
	l.facts[key] = decoded
	return decoded
}

// consume removes the first diagnostic at k matching rx.
func consume[K comparable](got map[K][]string, k K, rx *regexp.Regexp) bool {
	for i, m := range got[k] {
		if rx.MatchString(m) {
			got[k] = append(got[k][:i], got[k][i+1:]...)
			if len(got[k]) == 0 {
				delete(got, k)
			}
			return true
		}
	}
	return false
}

// parseWants extracts the expectation regexps of a `// want ...`
// comment, each written as a Go string literal.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) ([]*regexp.Regexp, bool) {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q", fset.Position(c.Pos()), rest)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: malformed want string %q", fset.Position(c.Pos()), lit)
		}
		rx, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", fset.Position(c.Pos()), err)
		}
		out = append(out, rx)
		rest = strings.TrimSpace(rest[len(lit):])
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}
