package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"crumbcruncher/internal/lint/analysis"
)

// This file is the reusable core behind the resource-discipline
// analyzers (spanend, mustclose, poolreset): a table-driven
// acquire/release dataflow engine. A resourceClass describes one kind
// of resource — how it is acquired, which calls release it, what the
// diagnostics should say — and the engine supplies the shared
// machinery: a conservative branch-merging walk over each function
// body (no full CFG), escape analysis that transfers ownership out of
// the function, deferred-release handling, error-path pruning for the
// `v, err := Acquire(); if err != nil { return }` idiom, and — the
// interprocedural part — per-function *disposition facts* exported
// across package boundaries, so a caller-side pass knows that a callee
// closes (or retains) the resource it is handed.
//
// The walk is deliberately the same shape as PR 5's spanend walker,
// which this engine generalizes: states merge at branch joins
// pessimistically (any falling path that still holds a live resource
// keeps the obligation alive), loops merge entry with body-exit, and
// break/continue/goto give up on the path conservatively.

// effect says what passing a tracked value to a call does to the
// caller's obligation.
type effect int

const (
	// effTransfer: ownership moves somewhere this engine cannot see
	// (unknown callee, field store, return). Tracking stops, silently.
	effTransfer effect = iota
	// effRelease: the call releases the value; the obligation is met.
	effRelease
	// effKeep: the callee borrows the value (a fact proves it neither
	// releases nor retains it). The caller's obligation stands.
	effKeep
)

// resourceClass describes one acquire/release discipline.
type resourceClass struct {
	// noun names the resource in prose ("span", "run-store cursor").
	noun string

	// sourceResults reports which result indices of call produce a
	// freshly acquired resource of this class (nil: call is no source).
	sourceResults func(pass *analysis.Pass, call *ast.CallExpr) []int

	// releaseMethods are method names on the tracked value that release
	// it ("Close", "End", "EndErr", "Release").
	releaseMethods map[string]bool

	// chainMethods return their receiver (telemetry's Attr), so both
	// sources and releases see through them.
	chainMethods map[string]bool

	// borrow: method calls and field reads on the tracked value that
	// are not releases leave it tracked. false reproduces spanend's
	// strict legacy rule: any non-release use transfers ownership.
	borrow bool

	// releaseArg reports an intrinsic argument-position release — e.g.
	// sync.Pool.Put(v) releases v — independent of facts.
	releaseArg func(pass *analysis.Pass, call *ast.CallExpr, argIdx int) bool

	// factParam reports whether a parameter of type t may carry a
	// disposition fact for this class (nil: the class exports no
	// facts). Only meaningful when the analyzer sets UsesFacts.
	factParam func(t types.Type) bool

	// Diagnostics. msgDiscard is reported when a source call's result
	// is dropped (`_ =` or bare expression statement); the rest follow
	// spanend's vocabulary.
	msgDiscard    string
	msgLeakReturn func(name string, acq token.Position) string
	msgLeakEnd    func(name string) string
	msgReassign   func(name string, acq token.Position) string
	msgOverwrite  func(name string, acq token.Position) string
}

// dispFact is the disposition summary the engine exports per function:
// which resource-bearing parameters the function releases on every
// path out of it, and which it retains (stores, returns, or hands to
// something unknown — either way the caller's obligation is gone).
// A parameter in neither list was analyzed and proved to do neither,
// so the caller keeps its obligation — the fact that makes the
// cross-package leak reports sound rather than guesses.
type dispFact struct {
	ReleasesRecv bool  `json:"releases_recv,omitempty"`
	RetainsRecv  bool  `json:"retains_recv,omitempty"`
	Releases     []int `json:"releases,omitempty"`
	Retains      []int `json:"retains,omitempty"`
}

func (*dispFact) AFact() {}

func (d *dispFact) releasesParam(i int) bool { return containsInt(d.Releases, i) }
func (d *dispFact) retainsParam(i int) bool  { return containsInt(d.Retains, i) }

func (d *dispFact) empty() bool {
	return !d.ReleasesRecv && !d.RetainsRecv && len(d.Releases) == 0 && len(d.Retains) == 0
}

func (d *dispFact) equal(o *dispFact) bool {
	return d.ReleasesRecv == o.ReleasesRecv && d.RetainsRecv == o.RetainsRecv &&
		equalInts(d.Releases, o.Releases) && equalInts(d.Retains, o.Retains)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// engineConfig configures one analyzer's run over the engine.
type engineConfig struct {
	classes   []*resourceClass
	useFacts  bool
	skipTests bool
}

// engine is the per-pass state.
type engine struct {
	pass *analysis.Pass
	cfg  engineConfig
}

// runAcqRel is the Run body shared by the engine-backed analyzers.
func runAcqRel(pass *analysis.Pass, cfg engineConfig) (interface{}, error) {
	e := &engine{pass: pass, cfg: cfg}
	if cfg.useFacts && pass.Facts != nil {
		e.computeFacts()
	}
	for _, f := range pass.Files {
		if cfg.skipTests && isTestFile(pass, f) {
			continue
		}
		for _, body := range functionBodies(f) {
			e.checkBody(body)
		}
	}
	return nil, nil
}

// --- fact computation -------------------------------------------------------

// computeFacts derives a disposition fact for every function in the
// package whose receiver or parameters are fact-worthy for some class,
// iterating to a fixpoint so that releasing-by-delegation (f closes its
// argument by passing it to g, which closes it) is credited across any
// call depth within the package. Cross-package delegation resolves
// through imported facts, which are stable inputs to the fixpoint.
func (e *engine) computeFacts() {
	type fnDecl struct {
		decl *ast.FuncDecl
		fn   *types.Func
	}
	var fns []fnDecl
	for _, f := range e.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := e.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnDecl{fd, fn})
		}
	}
	// The fixpoint converges because call-effect information only ever
	// strengthens (transfer -> keep/release) as facts accumulate; the
	// round cap is a safety net, not a tuning knob.
	for round := 0; round < 16; round++ {
		changed := false
		for _, fd := range fns {
			d := e.disposition(fd.decl, fd.fn)
			if d == nil {
				continue
			}
			prev := &dispFact{}
			had := e.pass.ImportObjectFact(fd.fn, prev)
			if !had || !d.equal(prev) {
				e.pass.ExportObjectFact(fd.fn, d)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// disposition computes one function's dispFact, or nil when no
// receiver/parameter is fact-worthy for any class.
func (e *engine) disposition(fd *ast.FuncDecl, fn *types.Func) *dispFact {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	d := &dispFact{}
	any := false

	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if class := e.classForParam(sig.Recv().Type()); class != nil {
			any = true
			obj := e.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			switch e.paramOutcome(fd.Body, obj, class) {
			case outRelease:
				d.ReleasesRecv = true
			case outRetain:
				d.RetainsRecv = true
			}
		}
	}

	// Walk the declared parameter fields in order to pair AST names
	// with signature indices.
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1 // unnamed parameter occupies one slot
			}
			for k := 0; k < n; k++ {
				if idx >= sig.Params().Len() {
					break
				}
				pv := sig.Params().At(idx)
				class := e.classForParam(pv.Type())
				if class != nil {
					any = true
					if k < len(field.Names) {
						obj := e.pass.TypesInfo.Defs[field.Names[k]]
						switch e.paramOutcome(fd.Body, obj, class) {
						case outRelease:
							d.Releases = append(d.Releases, idx)
						case outRetain:
							d.Retains = append(d.Retains, idx)
						}
					}
					// An unnamed fact-worthy parameter is ignored by
					// the body: neither released nor retained.
				}
				idx++
			}
		}
	}
	if !any {
		return nil
	}
	sort.Ints(d.Releases)
	sort.Ints(d.Retains)
	return d
}

// classForParam returns the first class that claims t as fact-worthy.
func (e *engine) classForParam(t types.Type) *resourceClass {
	for _, c := range e.cfg.classes {
		if c.factParam != nil && c.factParam(t) {
			return c
		}
	}
	return nil
}

type outcome int

const (
	outNone outcome = iota
	outRelease
	outRetain
)

// paramOutcome classifies what a function body does with one incoming
// resource-bearing object (parameter or receiver).
func (e *engine) paramOutcome(body *ast.BlockStmt, obj types.Object, class *resourceClass) outcome {
	if obj == nil {
		return outNone
	}
	parents := parentMap(body)
	if e.escapes(body, obj, class, parents) {
		return outRetain
	}
	w := &acqWalker{eng: e, class: class, obj: obj, silent: true}
	st, terminated := w.walk(body.List, acqState{active: true, acqPos: obj.Pos()})
	fellActive := !terminated && st.active && !st.closureDef
	if w.leaked || fellActive {
		if w.released {
			// Released on some paths, leaked on others: the caller can
			// neither trust a release nor keep its obligation (a second
			// close could double-release). Treat as a transfer.
			return outRetain
		}
		return outNone
	}
	if w.released {
		return outRelease
	}
	return outNone
}

// --- diagnostics ------------------------------------------------------------

// checkBody analyzes one function body: finds resource acquisitions
// directly inside it (nested function literals are their own scopes)
// and verifies each named handle is released on all paths.
func (e *engine) checkBody(body *ast.BlockStmt) {
	type trackedVar struct {
		obj   types.Object
		class *resourceClass
	}
	var vars []trackedVar
	seen := map[types.Object]bool{}
	note := func(id *ast.Ident, class *resourceClass) {
		obj := e.pass.TypesInfo.ObjectOf(id)
		if obj != nil && !seen[obj] {
			seen[obj] = true
			vars = append(vars, trackedVar{obj, class})
		}
	}
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			e.eachAcquire(n.Lhs, n.Rhs, func(lhs ast.Expr, class *resourceClass, src ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					return // field/index targets: ownership escapes
				}
				if id.Name == "_" {
					e.pass.Reportf(src.Pos(), "%s", class.msgDiscard)
					return
				}
				note(id, class)
			})
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				e.eachAcquire(lhs, vs.Values, func(l ast.Expr, class *resourceClass, src ast.Expr) {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						note(id, class)
					}
				})
			}
		case *ast.ExprStmt:
			if class := e.sourceClass(n.X); class != nil {
				e.pass.Reportf(n.X.Pos(), "%s", class.msgDiscard)
			}
		}
	})

	if len(vars) == 0 {
		return
	}
	parents := parentMap(body)
	for _, tv := range vars {
		if e.escapes(body, tv.obj, tv.class, parents) {
			continue
		}
		w := &acqWalker{eng: e, class: tv.class, obj: tv.obj}
		st, terminated := w.walk(body.List, acqState{})
		if !terminated && st.active && !st.closureDef {
			e.pass.Reportf(st.acqPos, "%s", tv.class.msgLeakEnd(tv.obj.Name()))
		}
	}
}

// eachAcquire matches resource acquisitions in an assignment shape,
// including the two-valued `v, err := Acquire()` form, and invokes fn
// with the receiving expression, the class, and the source expression.
func (e *engine) eachAcquire(lhs, rhs []ast.Expr, fn func(l ast.Expr, class *resourceClass, src ast.Expr)) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple assignment from a multi-result call.
		call, ok := unwrapExpr(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, c := range e.cfg.classes {
			if c.sourceResults == nil {
				continue
			}
			for _, k := range c.sourceResults(e.pass, call) {
				if k < len(lhs) {
					fn(lhs[k], c, rhs[0])
				}
			}
		}
		return
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		if class := e.sourceClass(r); class != nil {
			fn(lhs[i], class, r)
		}
	}
}

// sourceClass reports the class for which expression r (unwrapped of
// parens and type assertions) is a single-value resource source.
func (e *engine) sourceClass(r ast.Expr) *resourceClass {
	call, ok := unwrapExpr(r).(*ast.CallExpr)
	if !ok {
		return nil
	}
	for _, c := range e.cfg.classes {
		if c.sourceResults == nil {
			continue
		}
		if ks := c.sourceResults(e.pass, call); len(ks) == 1 && ks[0] == 0 {
			return c
		}
	}
	return nil
}

// unwrapExpr strips parens and type assertions: `pool.Get().(T)` is
// still the Get call for source matching.
func unwrapExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			if x.Type == nil {
				return e // x.(type) in a type switch
			}
			e = x.X
		default:
			return e
		}
	}
}

// --- escape analysis --------------------------------------------------------

// escapes reports whether the handle's ownership leaves the function
// through a use the walker cannot model: aliasing, address-taking,
// capture by a non-deferred closure, a return, or a call that (per
// facts) retains it or that the engine knows nothing about.
func (e *engine) escapes(body *ast.BlockStmt, obj types.Object, class *resourceClass, parents map[ast.Node]ast.Node) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if e.pass.TypesInfo.Uses[id] != obj && e.pass.TypesInfo.Defs[id] != obj {
			return true
		}
		// Crossing into a function literal is fine only for the
		// canonical deferred-cleanup closure.
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			fl, ok := p.(*ast.FuncLit)
			if !ok {
				continue
			}
			call, ok := parents[fl].(*ast.CallExpr)
			if !ok || call.Fun != ast.Expr(fl) {
				escapes = true
				return false
			}
			if _, ok := parents[ast.Node(call)].(*ast.DeferStmt); !ok {
				escapes = true
				return false
			}
		}
		switch p := parents[ast.Node(id)].(type) {
		case *ast.SelectorExpr:
			if p.X != ast.Expr(id) {
				escapes = true
				return false
			}
			if class.releaseMethods[p.Sel.Name] || class.chainMethods[p.Sel.Name] {
				if call, ok := parents[ast.Node(p)].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
					return true
				}
			}
			if class.borrow {
				// Field reads and arbitrary method calls borrow the
				// value; a method that (per fact) retains its receiver
				// transfers ownership instead.
				if call, ok := parents[ast.Node(p)].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
					if d, fok := e.methodFact(p); fok && d.RetainsRecv {
						escapes = true
						return false
					}
				}
				return true
			}
			escapes = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == ast.Expr(id) {
					return true
				}
			}
			escapes = true
		case *ast.ValueSpec:
			for _, name := range p.Names {
				if name == id {
					return true
				}
			}
			escapes = true
		case *ast.CallExpr:
			// The handle is an argument. Facts (and intrinsic releases
			// like Pool.Put) decide whether the callee releases it,
			// borrows it, or takes it away.
			if p.Fun == ast.Expr(id) {
				escapes = true // calling the handle itself
				return false
			}
			if e.argEffect(class, p, argIndex(p, id)) == effTransfer {
				escapes = true
			}
		case *ast.IndexExpr:
			// Element reads/writes (m[k], s[i]) and using the handle as
			// a key do not move ownership of the handle itself.
		case *ast.RangeStmt:
			// Iterating the handle's elements borrows it.
		case *ast.BinaryExpr:
			// Comparisons (v == nil) do not move ownership.
		default:
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// argIndex returns id's argument position in call, or -1.
func argIndex(call *ast.CallExpr, id *ast.Ident) int {
	for i, a := range call.Args {
		if a == ast.Expr(id) {
			return i
		}
	}
	return -1
}

// methodFact resolves the disposition fact of the method named by sel,
// when sel is a method call selector on the tracked value.
func (e *engine) methodFact(sel *ast.SelectorExpr) (*dispFact, bool) {
	fn, ok := e.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	d := &dispFact{}
	if e.pass.ImportObjectFact(fn, d) {
		return d, true
	}
	return nil, false
}

// argEffect decides what passing the tracked value at argIdx of call
// does to the obligation.
func (e *engine) argEffect(class *resourceClass, call *ast.CallExpr, argIdx int) effect {
	if argIdx < 0 {
		return effTransfer
	}
	if class.releaseArg != nil && class.releaseArg(e.pass, call, argIdx) {
		return effRelease
	}
	// Builtins (clear, delete, copy, append, len, print...) never take
	// ownership.
	if id, ok := unwrapExpr(call.Fun).(*ast.Ident); ok {
		if _, ok := e.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return effKeep
		}
	}
	// Conversions are not calls.
	if tv, ok := e.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return effKeep
	}
	fn := staticCallee(e.pass.TypesInfo, call)
	if fn != nil && engineBorrowFuncs[fn.FullName()] {
		return effKeep
	}
	if !e.cfg.useFacts || fn == nil {
		return effTransfer
	}
	// Map the argument position onto the callee's parameters. A
	// resource passed through a variadic tail is handed to unknown
	// machinery: transfer.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || (sig.Variadic() && argIdx >= sig.Params().Len()-1) {
		return effTransfer
	}
	d := &dispFact{}
	if e.pass.ImportObjectFact(fn, d) {
		switch {
		case d.releasesParam(argIdx):
			return effRelease
		case d.retainsParam(argIdx):
			return effTransfer
		default:
			return effKeep
		}
	}
	// No fact. If the callee's package was analyzed, the parameter was
	// simply not fact-worthy (an untracked type): be conservative and
	// transfer. Same for unanalyzed packages (stdlib, other modules).
	return effTransfer
}

// engineBorrowFuncs are callees outside the fact domain (the standard
// library carries no facts) that by contract borrow their resource
// arguments: they neither close nor retain them. Without this table
// every `io.ReadAll(gz)` would conservatively end tracking and hide the
// missing gz.Close() downstream.
var engineBorrowFuncs = map[string]bool{
	"io.ReadAll":  true,
	"io.Copy":     true,
	"io.CopyN":    true,
	"io.ReadFull": true,
}

// staticCallee resolves call to a statically-known function or method
// object, or nil (func values, interface-typed variables holding
// closures, builtins).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unwrapExpr(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// --- the branch-merging walker ---------------------------------------------

// acqState is the walker's per-path state for one handle variable.
type acqState struct {
	active     bool         // variable holds a resource that still needs release
	closureDef bool         // a deferred closure releases the variable's final value
	acqPos     token.Pos    // most recent acquisition, for reporting
	errObj     types.Object // error paired with the acquisition, for err-guard pruning
}

// acqWalker performs the branch-merging statement walk for one handle.
type acqWalker struct {
	eng   *engine
	class *resourceClass
	obj   types.Object

	silent   bool // fact mode: record outcomes, report nothing
	released bool // a release event occurred somewhere
	leaked   bool // a report would have fired (fact mode)
}

func (w *acqWalker) report(pos token.Pos, msg string) {
	w.leaked = true
	if !w.silent {
		w.eng.pass.Reportf(pos, "%s", msg)
	}
}

// walk executes stmts from state st. terminated means control cannot
// fall past the list.
func (w *acqWalker) walk(stmts []ast.Stmt, st acqState) (acqState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

// scanRelease looks for a release of the tracked value anywhere in the
// expression (skipping nested function literals) and updates st.
func (w *acqWalker) scanRelease(e ast.Expr, st acqState) acqState {
	if e == nil {
		return st
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && w.isReleaseCall(call) {
			found = true
		}
		return !found
	})
	if found {
		w.released = true
		st.active = false
	}
	return st
}

// stmt executes one statement.
func (w *acqWalker) stmt(s ast.Stmt, st acqState) (acqState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.assign(s, st), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				st = w.assignShape(lhs, vs.Values, token.DEFINE, st)
			}
		}
		return st, false

	case *ast.ExprStmt:
		st = w.scanRelease(s.X, st)
		if isTerminalCall(w.eng.pass.TypesInfo, s.X) {
			return st, true
		}
		return st, false

	case *ast.SendStmt:
		st = w.scanRelease(s.Chan, st)
		return w.scanRelease(s.Value, st), false

	case *ast.IncDecStmt:
		return w.scanRelease(s.X, st), false

	case *ast.DeferStmt:
		if w.isReleaseCall(s.Call) {
			// defer v.Close() / defer pool.Put(v): releases the value
			// the variable holds right now.
			w.released = true
			st.active = false
			return st, false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && w.closureReleases(fl) {
			w.released = true
			st.active = false
			st.closureDef = true
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.scanRelease(r, st)
		}
		if st.active && !st.closureDef {
			w.report(s.Pos(), w.class.msgLeakReturn(w.obj.Name(), w.eng.pass.Fset.Position(st.acqPos)))
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto: give up on this path conservatively.
		return st, true

	case *ast.BlockStmt:
		return w.walk(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.scanRelease(s.Cond, st)
		thenEntry, elseEntry := st, st
		if st.active && st.errObj != nil {
			// `v, err := Acquire(); if err != nil { ... }`: on the
			// branch where err is non-nil the acquisition failed, so
			// there is nothing to release there.
			switch errCond(w.eng.pass.TypesInfo, s.Cond, st.errObj) {
			case condErrNonNil:
				thenEntry.active = false
			case condErrNil:
				elseEntry.active = false
			}
		}
		thenSt, thenTerm := w.walk(s.Body.List, thenEntry)
		elseSt, elseTerm := elseEntry, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, elseEntry)
		}
		return mergeAcqPaths([]acqPath{{thenSt, thenTerm}, {elseSt, elseTerm}})

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.scanRelease(s.Cond, st)
		bodySt, _ := w.walk(s.Body.List, st)
		// The body may run zero times; merge entry and body-exit.
		return mergeAcqPaths([]acqPath{{st, false}, {bodySt, false}})

	case *ast.RangeStmt:
		st = w.scanRelease(s.X, st)
		bodySt, _ := w.walk(s.Body.List, st)
		return mergeAcqPaths([]acqPath{{st, false}, {bodySt, false}})

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchLike(s, st)

	case *ast.GoStmt:
		return st, false

	default:
		return st, false
	}
}

// assign processes acquisitions and overwrites of the handle.
func (w *acqWalker) assign(s *ast.AssignStmt, st acqState) acqState {
	for _, r := range s.Rhs {
		st = w.scanRelease(r, st)
	}
	return w.assignShape(s.Lhs, s.Rhs, s.Tok, st)
}

// assignShape handles both AssignStmt and ValueSpec forms.
func (w *acqWalker) assignShape(lhs, rhs []ast.Expr, _ token.Token, st acqState) acqState {
	// Tuple acquisition: v, err := Acquire().
	if len(rhs) == 1 && len(lhs) > 1 && w.class.sourceResults != nil {
		if call, ok := unwrapExpr(rhs[0]).(*ast.CallExpr); ok {
			if ks := w.class.sourceResults(w.eng.pass, call); len(ks) > 0 {
				for _, k := range ks {
					if k >= len(lhs) {
						continue
					}
					id, ok := lhs[k].(*ast.Ident)
					if !ok || !w.isObj(id) {
						continue
					}
					st = w.acquire(st, rhs[0].Pos())
					st.errObj = pairedError(w.eng.pass.TypesInfo, lhs, k)
				}
				// The paired error variable was just (re)assigned by
				// the acquiring call itself; fall through to the
				// invalidation scan is not wanted here.
				return st
			}
		}
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if w.isObj(id) {
			if i < len(rhs) && len(lhs) == len(rhs) && w.isSourceExpr(rhs[i]) {
				st = w.acquire(st, rhs[i].Pos())
				st.errObj = nil
			} else if st.active && !st.closureDef {
				w.report(l.Pos(), w.class.msgOverwrite(w.obj.Name(), w.eng.pass.Fset.Position(st.acqPos)))
				st.active = false
			}
			continue
		}
		// Reassigning the paired error variable unpairs it: its value
		// no longer says anything about whether the resource exists.
		if st.errObj != nil && w.eng.pass.TypesInfo.ObjectOf(id) == st.errObj {
			st.errObj = nil
		}
	}
	return st
}

// isSourceExpr reports whether r acquires a resource of the walker's
// class as a single value.
func (w *acqWalker) isSourceExpr(r ast.Expr) bool {
	call, ok := unwrapExpr(r).(*ast.CallExpr)
	if !ok || w.class.sourceResults == nil {
		return false
	}
	ks := w.class.sourceResults(w.eng.pass, call)
	return len(ks) == 1 && ks[0] == 0
}

// acquire transitions the variable to holding a fresh resource.
func (w *acqWalker) acquire(st acqState, pos token.Pos) acqState {
	if st.closureDef {
		// The deferred closure releases whatever the variable holds
		// last.
		return st
	}
	if st.active {
		w.report(pos, w.class.msgReassign(w.obj.Name(), w.eng.pass.Fset.Position(st.acqPos)))
	}
	st.active = true
	st.acqPos = pos
	st.errObj = nil
	return st
}

// switchLike merges all clause bodies of a switch/type-switch/select.
func (w *acqWalker) switchLike(s ast.Stmt, st acqState) (acqState, bool) {
	var init ast.Stmt
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body = s.Init, s.Body
		if s.Tag != nil {
			st = w.scanRelease(s.Tag, st)
		}
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	var paths []acqPath
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		cs, ct := w.walk(stmts, st)
		paths = append(paths, acqPath{cs, ct})
	}
	if !hasDefault || len(paths) == 0 {
		// Control may skip every clause (or block forever; be lenient).
		paths = append(paths, acqPath{st, false})
	}
	return mergeAcqPaths(paths)
}

// isObj reports whether the identifier denotes the tracked variable.
func (w *acqWalker) isObj(id *ast.Ident) bool {
	return w.eng.pass.TypesInfo.Uses[id] == w.obj || w.eng.pass.TypesInfo.Defs[id] == w.obj
}

// isReleaseCall matches any call that releases the tracked variable's
// current value: a release method on it (through chain methods), an
// intrinsic or fact-proven releasing argument position, or a method
// whose fact says it releases its receiver.
func (w *acqWalker) isReleaseCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && call.Fun == ast.Expr(sel) {
		if w.class.releaseMethods[sel.Sel.Name] && w.rootIsObj(sel.X) {
			return true
		}
		if w.class.borrow && w.rootIsObj(sel.X) {
			if d, ok := w.eng.methodFact(sel); ok && d.ReleasesRecv {
				return true
			}
		}
	}
	for i, a := range call.Args {
		id, ok := unwrapExpr(a).(*ast.Ident)
		if !ok || !w.isObj(id) {
			continue
		}
		if w.eng.argEffect(w.class, call, i) == effRelease {
			return true
		}
	}
	return false
}

// rootIsObj unwraps chain-method calls to the receiver variable.
func (w *acqWalker) rootIsObj(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return w.isObj(x)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && w.class.chainMethods[sel.Sel.Name] {
			return w.rootIsObj(sel.X)
		}
	}
	return false
}

// closureReleases reports whether the deferred literal releases the
// variable.
func (w *acqWalker) closureReleases(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if e, ok := n.(*ast.CallExpr); ok && w.isReleaseCall(e) {
			found = true
		}
		return !found
	})
	return found
}

// acqPath is one branch outcome during merging.
type acqPath struct {
	state      acqState
	terminated bool
}

// mergeAcqPaths combines branch outcomes: the merged fall-through state
// is pessimistic about liveness (any falling path with an active
// resource keeps it active) and about deferred-closure coverage (all
// falling paths must have it).
func mergeAcqPaths(paths []acqPath) (acqState, bool) {
	var falling []acqState
	for _, p := range paths {
		if !p.terminated {
			falling = append(falling, p.state)
		}
	}
	if len(falling) == 0 {
		return acqState{}, true
	}
	out := acqState{closureDef: true}
	for _, s := range falling {
		if s.active && !out.active {
			out.active = true
			out.acqPos = s.acqPos
			out.errObj = s.errObj
		}
		if !s.closureDef {
			out.closureDef = false
		}
	}
	return out, false
}

// --- error-guard pruning ----------------------------------------------------

type condKind int

const (
	condUnknown condKind = iota
	condErrNonNil
	condErrNil
)

// errCond classifies an if-condition against the paired error object:
// `err != nil` means the acquisition failed on the true branch,
// `err == nil` that it failed on the false branch.
func errCond(info *types.Info, cond ast.Expr, errObj types.Object) condKind {
	be, ok := unwrapExpr(cond).(*ast.BinaryExpr)
	if !ok {
		return condUnknown
	}
	var idSide ast.Expr
	if isNilIdent(info, be.Y) {
		idSide = be.X
	} else if isNilIdent(info, be.X) {
		idSide = be.Y
	} else {
		return condUnknown
	}
	id, ok := unwrapExpr(idSide).(*ast.Ident)
	if !ok || info.ObjectOf(id) != errObj {
		return condUnknown
	}
	switch be.Op {
	case token.NEQ:
		return condErrNonNil
	case token.EQL:
		return condErrNil
	}
	return condUnknown
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := unwrapExpr(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// pairedError finds the error-typed sibling of the resource slot in a
// tuple assignment, returning its object (nil when there is none).
func pairedError(info *types.Info, lhs []ast.Expr, resourceIdx int) types.Object {
	for i, l := range lhs {
		if i == resourceIdx {
			continue
		}
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok && named.Obj() != nil &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return obj
		}
	}
	return nil
}
