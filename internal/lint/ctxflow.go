package lint

import (
	"go/ast"
	"go/types"

	"crumbcruncher/internal/lint/analysis"
)

// CtxFlow guards cancellation propagation between the layers. The
// codebase's convention is a context-aware core (`FooCtx`/`FooContext`)
// with thin `context.Background()` wrappers for entry points that have
// no context. Dropping cancellation happens when code that *does* have
// a context forgets it: it calls a context-accepting callee with a
// fresh `context.Background()`/`context.TODO()`, or calls the
// convenience wrapper instead of the context-aware variant. The first
// case is visible locally; the second needs a cross-package fact — the
// wrapper's own package exports "this function discards the caller's
// context (it delegates with context.Background())", and ctxflow flags
// calls to it from any context-aware function anywhere in the module.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "report dropped cancellation: context-aware functions that call " +
		"context-accepting callees with context.Background()/TODO() or call " +
		"Background-wrapper convenience entry points instead of the " +
		"context-aware variant",
	Version:   "v1",
	UsesFacts: true,
	Run:       runCtxFlow,
}

// ctxWrapFact marks a function without a context parameter that
// delegates to a context-accepting callee with context.Background() or
// context.TODO(): the convenience-wrapper shape. Callee names what it
// wraps, for the diagnostic.
type ctxWrapFact struct {
	Callee string `json:"callee"`
}

func (*ctxWrapFact) AFact() {}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: export wrapper facts for this package.
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || ctxParamIndex(fn) >= 0 {
				continue // context-aware functions are not wrappers
			}
			if callee := backgroundDelegate(pass, fd.Body); callee != "" {
				pass.ExportObjectFact(fn, &ctxWrapFact{Callee: callee})
			}
		}
	}

	// Phase 2: report drops inside context-aware functions.
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ctxIdx := ctxParamIndex(fn)
			if ctxIdx < 0 {
				continue
			}
			ctxName := paramName(fd, ctxIdx)
			checkCtxAwareBody(pass, fd.Body, ctxName)
		}
	}
	return nil, nil
}

// checkCtxAwareBody walks a context-aware function's body (including
// nested literals, which see the context lexically) and reports drops.
func checkCtxAwareBody(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		// Rule 1: context.Background()/TODO() handed to a callee that
		// accepts a context, while our own context sits unused.
		for i, arg := range call.Args {
			if !isBackgroundCall(pass, arg) {
				continue
			}
			if sigParamIsContext(fn, i) && !isContextConstructor(fn) {
				pass.Reportf(arg.Pos(),
					"context.Background() passed to %s inside a context-aware function; "+
						"propagate %s instead", fn.Name(), ctxName)
			}
		}
		// Rule 2 (fact-driven): calling a Background-wrapper entry
		// point drops cancellation one level down.
		if ctxParamIndex(fn) < 0 {
			wrap := &ctxWrapFact{}
			if pass.ImportObjectFact(fn, wrap) {
				pass.Reportf(call.Pos(),
					"%s drops %s: it delegates to %s with context.Background(); "+
						"call the context-aware variant directly", fn.Name(), ctxName, wrap.Callee)
			}
		}
		return true
	})
}

// backgroundDelegate reports the name of a context-accepting callee
// this body invokes with context.Background()/TODO() at the context
// position, or "" when the body is not a wrapper. Wrappers that do real
// work besides delegating still qualify: any Background handoff in a
// function that could not have propagated a context marks it.
func backgroundDelegate(pass *analysis.Pass, body *ast.BlockStmt) string {
	callee := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if callee != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || isContextConstructor(fn) {
			return true
		}
		for i, arg := range call.Args {
			if isBackgroundCall(pass, arg) && sigParamIsContext(fn, i) {
				callee = fn.Name()
				return false
			}
		}
		return true
	})
	return callee
}

// isBackgroundCall matches context.Background() and context.TODO().
func isBackgroundCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := unwrapExpr(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := staticCallee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// isContextConstructor matches the context package's own derivation
// functions (WithCancel, WithTimeout...): building a fresh context from
// Background inside a context-aware function is occasionally deliberate
// (detached lifetimes), and rule 1 would otherwise make the idiom
// unspeakable. The report then lands on whatever the derived context is
// passed to, if that too ignores the caller's context.
func isContextConstructor(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// ctxParamIndex returns the index of fn's context.Context parameter, or
// -1.
func ctxParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// sigParamIsContext reports whether fn's i-th parameter (variadic-
// aware) is a context.Context.
func sigParamIsContext(fn *types.Func, i int) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		i = sig.Params().Len() - 1
	}
	if i < 0 || i >= sig.Params().Len() {
		return false
	}
	t := sig.Params().At(i).Type()
	if sig.Variadic() && i == sig.Params().Len()-1 {
		if sl, ok := t.(*types.Slice); ok {
			t = sl.Elem()
		}
	}
	return isContextType(t)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// paramName returns the declared name of the idx-th parameter ("ctx"
// in practice), or a placeholder for unnamed parameters.
func paramName(fd *ast.FuncDecl, idx int) string {
	i := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			if i == idx {
				if k < len(field.Names) {
					return field.Names[k].Name
				}
				return "the context parameter"
			}
			i++
		}
	}
	return "the context parameter"
}
