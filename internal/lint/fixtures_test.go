package lint_test

import (
	"testing"

	"crumbcruncher/internal/lint"
	"crumbcruncher/internal/lint/linttest"
)

// Each analyzer has a golden fixture package under testdata/src with
// positive hits, idiomatic negatives, and //crumb:allow directive
// handling asserted line by line.

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata", lint.Wallclock, "wallclock")
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.SeededRand, "seededrand", "seededrand/internal/stats")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "maporder")
}

func TestSpanEnd(t *testing.T) {
	linttest.Run(t, "testdata", lint.SpanEnd, "spanend")
}

func TestNoEntry(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoEntry, "noentry", "crumbcruncher")
}

func TestFsyncpolicy(t *testing.T) {
	linttest.Run(t, "testdata", lint.Fsyncpolicy, "fsyncpolicy", "fsyncpolicy/internal/runio")
}

// The interprocedural analyzers list their fact-exporting dependency
// packages too, asserting those stay diagnostic-free while their facts
// drive the cross-package cases in the main fixture.

func TestMustClose(t *testing.T) {
	linttest.Run(t, "testdata", lint.MustClose, "mustclose", "mustclose/internal/runstore")
}

func TestPoolReset(t *testing.T) {
	linttest.Run(t, "testdata", lint.PoolReset, "poolreset", "poolreset/internal/stats")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow, "ctxflow", "ctxflow/internal/core")
}

func TestSharedWrite(t *testing.T) {
	linttest.Run(t, "testdata", lint.SharedWrite,
		"sharedwrite", "sharedwrite/internal/parallel",
		"sharedwrite/internal/agg", "sharedwrite/internal/intern")
}
