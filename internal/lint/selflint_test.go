package lint_test

import (
	"bytes"
	"testing"

	"crumbcruncher/internal/lint"
	"crumbcruncher/internal/lint/driver"
)

// TestSelfLint runs every analyzer over the whole repository, tests
// included. The tree must stay clean: a violation fails here before it
// ever reaches CI's vet-tool run.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	var buf bytes.Buffer
	n, err := driver.RunStandalone(&buf, []string{"crumbcruncher/..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("crumblint found %d findings in the repository:\n%s", n, buf.String())
	}
}
