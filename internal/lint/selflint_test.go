package lint_test

import (
	"bytes"
	"io"
	"os"
	"testing"

	"crumbcruncher/internal/lint"
	"crumbcruncher/internal/lint/driver"
)

// TestSelfLint runs every analyzer over the whole repository, tests
// included. The tree must stay clean: a violation fails here before it
// ever reaches CI's vet-tool run.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	var buf bytes.Buffer
	n, err := driver.RunStandalone(&buf, []string{"crumbcruncher/..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("crumblint found %d findings in the repository:\n%s", n, buf.String())
	}
}

// BenchmarkSelfLint measures a full-repository lint, cold (empty result
// cache: every analyzer runs on every unit) versus warm (populated
// cache: zero analyzers run). CI runs it with -benchtime 1x so both
// wall times land in the log next to the lint job.
func BenchmarkSelfLint(b *testing.B) {
	selfLint := func(b *testing.B, cacheDir string) *driver.Result {
		b.Helper()
		res, err := driver.Run(io.Discard, driver.Options{
			Patterns:     []string{"crumbcruncher/..."},
			IncludeTests: true,
			Analyzers:    lint.All(),
			CacheDir:     cacheDir,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "lintcache")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res := selfLint(b, dir)
			b.StopTimer()
			if res.UnitsCached != 0 {
				b.Fatalf("cold run hit the cache: %d/%d units", res.UnitsCached, res.UnitsTotal)
			}
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})

	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		selfLint(b, dir) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := selfLint(b, dir)
			if res.AnalyzersRun != 0 {
				b.Fatalf("warm run re-ran %d analyzers", res.AnalyzersRun)
			}
		}
	})
}
