package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crumbcruncher/internal/lint/analysis"
)

// SpanEnd checks that a telemetry span obtained in a function is ended
// on every path out of it — by a defer, or by End/EndErr calls covering
// all returns. A span that is never ended silently never reaches the
// tracer ring: the walk it described vanishes from exported traces and
// crumbtrace's layer accounting drifts from the counters.
//
// The analysis is a conservative branch-merging walk (no full CFG):
//
//   - `defer sp.End()` / `defer sp.EndErr(err)` ends the value sp holds
//     at defer time; a deferred closure that ends sp covers whatever sp
//     holds at function exit;
//   - reassigning sp while the previous span is un-ended is reported;
//   - a handle whose call result is discarded is reported;
//   - passing the handle to another function, storing it in a field, or
//     capturing it in a non-deferred closure transfers ownership and
//     ends the analysis for that variable (no report).
//
// Paths that exit via panic, os.Exit or t.Fatal are not required to end
// spans.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require telemetry spans to be ended on all paths (defer or all-return coverage)\n\n" +
		"Un-ended spans never reach the tracer ring, so traces silently lose\n" +
		"the work they were supposed to account for.",
	Run: runSpanEnd,
}

func runSpanEnd(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			checkSpanBody(pass, body)
		}
	}
	return nil, nil
}

// functionBodies lists every function body in the file: declarations
// and literals, each analyzed as its own scope.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// isSpanSource reports whether e evaluates to a freshly started span:
// a StartSpan call, possibly extended by chained Attr calls.
func isSpanSource(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "StartSpan":
		return fromTelemetry(receiverNamed(info, sel.X))
	case "Attr":
		return isSpanSource(info, sel.X)
	}
	return false
}

// checkSpanBody analyzes one function body: finds span acquisitions
// directly inside it (nested function literals are their own scopes)
// and verifies each named handle is ended on all paths.
func checkSpanBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var spanVars []types.Object
	seen := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isSpanSource(pass.TypesInfo, rhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index targets: ownership escapes
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "span handle discarded; End will never run and the span never reaches the tracer")
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj != nil && !seen[obj] {
					seen[obj] = true
					spanVars = append(spanVars, obj)
				}
			}
		case *ast.ExprStmt:
			if isSpanSource(pass.TypesInfo, n.X) {
				pass.Reportf(n.X.Pos(), "span handle discarded; End will never run and the span never reaches the tracer")
			}
		}
	})

	if len(spanVars) == 0 {
		return
	}
	parents := parentMap(body)
	for _, obj := range spanVars {
		if spanEscapes(pass, body, obj, parents) {
			continue
		}
		w := &spanWalker{pass: pass, obj: obj}
		st, terminated := w.walk(body.List, spanState{})
		if !terminated && st.active && !st.closureDef {
			pass.Reportf(st.acqPos, "span %s is not ended before the function returns; add defer %s.End() or end it on every path",
				obj.Name(), obj.Name())
		}
	}
}

// inspectShallow walks the body without descending into nested function
// literals.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// parentMap records each node's parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// spanEscapes reports whether the handle's ownership leaves the
// function: any use that is not an End/EndErr/Attr method call, a
// reassignment, or a deferred-closure capture.
func spanEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, parents map[ast.Node]ast.Node) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[id] != obj && pass.TypesInfo.Defs[id] != obj {
			return true
		}
		// Crossing into a function literal is fine only for the
		// canonical deferred-cleanup closure.
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			fl, ok := p.(*ast.FuncLit)
			if !ok {
				continue
			}
			call, ok := parents[fl].(*ast.CallExpr)
			if !ok || call.Fun != ast.Expr(fl) {
				escapes = true
				return false
			}
			if _, ok := parents[ast.Node(call)].(*ast.DeferStmt); !ok {
				escapes = true
				return false
			}
		}
		switch p := parents[ast.Node(id)].(type) {
		case *ast.SelectorExpr:
			if p.X == ast.Expr(id) && (p.Sel.Name == "End" || p.Sel.Name == "EndErr" || p.Sel.Name == "Attr") {
				if call, ok := parents[ast.Node(p)].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
					return true
				}
			}
			escapes = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == ast.Expr(id) {
					return true
				}
			}
			escapes = true
		case *ast.ValueSpec:
			for _, name := range p.Names {
				if name == id {
					return true
				}
			}
			escapes = true
		default:
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// spanState is the walker's per-path state for one handle variable.
type spanState struct {
	active     bool      // variable holds a span that still needs End
	closureDef bool      // a deferred closure ends the variable's final value
	acqPos     token.Pos // most recent acquisition, for reporting
}

// spanWalker performs the branch-merging statement walk.
type spanWalker struct {
	pass *analysis.Pass
	obj  types.Object
}

// walk executes stmts from state st, reporting un-ended returns.
// terminated means control cannot fall past the list.
func (w *spanWalker) walk(stmts []ast.Stmt, st spanState) (spanState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

// stmt executes one statement.
func (w *spanWalker) stmt(s ast.Stmt, st spanState) (spanState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.assign(s, st), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) && isSpanSource(w.pass.TypesInfo, v) && w.isObj(vs.Names[i]) {
						st = w.acquire(st, v.Pos())
					}
				}
			}
		}
		return st, false

	case *ast.ExprStmt:
		if w.isEndCall(s.X) {
			st.active = false
		}
		if isTerminalCall(w.pass.TypesInfo, s.X) {
			return st, true
		}
		return st, false

	case *ast.DeferStmt:
		if w.isEndCall(s.Call) {
			// defer sp.End(): ends the value sp holds right now.
			st.active = false
			return st, false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && w.closureEnds(fl) {
			st.active = false
			st.closureDef = true
		}
		return st, false

	case *ast.ReturnStmt:
		if st.active && !st.closureDef {
			w.pass.Reportf(s.Pos(), "span %s started at %s is not ended on this return path",
				w.obj.Name(), w.pass.Fset.Position(st.acqPos))
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto: give up on this path conservatively.
		return st, true

	case *ast.BlockStmt:
		return w.walk(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt, thenTerm := w.walk(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		return mergePaths([]pathResult{{thenSt, thenTerm}, {elseSt, elseTerm}})

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		bodySt, _ := w.walk(s.Body.List, st)
		// The body may run zero times; merge entry and body-exit.
		return mergePaths([]pathResult{{st, false}, {bodySt, false}})

	case *ast.RangeStmt:
		bodySt, _ := w.walk(s.Body.List, st)
		return mergePaths([]pathResult{{st, false}, {bodySt, false}})

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchLike(s, st)

	case *ast.GoStmt:
		return st, false

	default:
		return st, false
	}
}

// assign processes acquisitions and overwrites of the handle.
func (w *spanWalker) assign(s *ast.AssignStmt, st spanState) spanState {
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || !w.isObj(id) {
			continue
		}
		if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) && isSpanSource(w.pass.TypesInfo, s.Rhs[i]) {
			st = w.acquire(st, s.Rhs[i].Pos())
		} else if st.active && !st.closureDef {
			w.pass.Reportf(lhs.Pos(), "span %s overwritten before End/EndErr; the span started at %s is lost",
				w.obj.Name(), w.pass.Fset.Position(st.acqPos))
			st.active = false
		}
	}
	return st
}

// acquire transitions the variable to holding a fresh span.
func (w *spanWalker) acquire(st spanState, pos token.Pos) spanState {
	if st.closureDef {
		// The deferred closure ends whatever the variable holds last.
		return st
	}
	if st.active {
		w.pass.Reportf(pos, "span %s reassigned before End/EndErr; the span started at %s is lost",
			w.obj.Name(), w.pass.Fset.Position(st.acqPos))
	}
	st.active = true
	st.acqPos = pos
	return st
}

// switchLike merges all clause bodies of a switch/type-switch/select.
func (w *spanWalker) switchLike(s ast.Stmt, st spanState) (spanState, bool) {
	var init ast.Stmt
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body = s.Init, s.Body
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	var paths []pathResult
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		cs, ct := w.walk(stmts, st)
		paths = append(paths, pathResult{cs, ct})
	}
	if !hasDefault || len(paths) == 0 {
		// Control may skip every clause (or block forever; be lenient).
		paths = append(paths, pathResult{st, false})
	}
	return mergePaths(paths)
}

// isObj reports whether the identifier denotes the tracked variable.
func (w *spanWalker) isObj(id *ast.Ident) bool {
	return w.pass.TypesInfo.Uses[id] == w.obj || w.pass.TypesInfo.Defs[id] == w.obj
}

// isEndCall matches sp.End(...) / sp.EndErr(...) on the tracked
// variable, including through a chain of Attr calls
// (sp.Attr(...).EndErr(err) ends sp: Attr returns its receiver).
func (w *spanWalker) isEndCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndErr") {
		return false
	}
	return w.rootIsObj(sel.X)
}

// rootIsObj unwraps Attr chains to the receiver variable.
func (w *spanWalker) rootIsObj(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return w.isObj(x)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Attr" {
			return w.rootIsObj(sel.X)
		}
	}
	return false
}

// closureEnds reports whether the deferred literal ends the variable.
func (w *spanWalker) closureEnds(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if e, ok := n.(*ast.CallExpr); ok && w.isEndCall(e) {
			found = true
		}
		return !found
	})
	return found
}

// pathResult is one branch outcome during merging.
type pathResult struct {
	state      spanState
	terminated bool
}

// mergePaths combines branch outcomes: the merged fall-through state is
// pessimistic about liveness (any falling path with an active span
// keeps it active) and about deferred-closure coverage (all falling
// paths must have it).
func mergePaths(paths []pathResult) (spanState, bool) {
	var falling []spanState
	for _, p := range paths {
		if !p.terminated {
			falling = append(falling, p.state)
		}
	}
	if len(falling) == 0 {
		return spanState{}, true
	}
	out := spanState{closureDef: true}
	for _, s := range falling {
		if s.active && !out.active {
			out.active = true
			out.acqPos = s.acqPos
		}
		if !s.closureDef {
			out.closureDef = false
		}
	}
	return out, false
}

// isTerminalCall matches calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit and testing's Fatal/Fatalf/Skip (via any
// receiver, conservatively by name).
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
		return false
	}
	if path, name, ok := pkgFunc(info, call.Fun); ok {
		switch {
		case path == "os" && name == "Exit":
			return true
		case path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
			return true
		case path == "runtime" && name == "Goexit":
			return true
		}
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
