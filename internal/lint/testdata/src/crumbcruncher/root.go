// Package crumbcruncher is a fake of the real root package: the same
// entry-point names, no behaviour. The noentry fixtures import it so
// the analyzer sees objects defined in package path "crumbcruncher".
package crumbcruncher

import "context"

type Config struct{}

type Run struct{}

type Runner struct{ cfg Config }

func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

func (r *Runner) Run(ctx context.Context) (*Run, error) { return &Run{}, nil }

func (r *Runner) Reanalyze(ctx context.Context, run *Run) (*Run, error) { return run, nil }

// Deprecated wrappers, mirroring the real package.

func Execute(cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(context.Background())
}

func ExecuteContext(ctx context.Context, cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(ctx)
}

func Reanalyze(cfg Config, run *Run) (*Run, error) {
	return NewRunner(cfg).Reanalyze(context.Background(), run)
}

func ReanalyzeContext(ctx context.Context, cfg Config, run *Run) (*Run, error) {
	return NewRunner(cfg).Reanalyze(ctx, run)
}

// RunStore storage API, mirroring the real package's replacements.

type RunStore struct{}

func SaveRunStore(path string, r *Run) error { return nil }

func OpenRunStore(path string) (*RunStore, error) { return &RunStore{}, nil }

// Deprecated single-document wrappers, mirroring the real package.

func SaveRun(path string, r *Run) error { return SaveRunStore(path, r) }

func LoadRun(path string) (*Run, error) { return &Run{}, nil }

func EncodeRun(w interface{ Write([]byte) (int, error) }, r *Run) error { return nil }

func DecodeRun(rd interface{ Read([]byte) (int, error) }) (*Run, error) { return &Run{}, nil }
