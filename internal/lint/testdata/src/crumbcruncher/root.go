// Package crumbcruncher is a fake of the real root package: the same
// entry-point names, no behaviour. The noentry fixtures import it so
// the analyzer sees objects defined in package path "crumbcruncher".
package crumbcruncher

import "context"

type Config struct{}

type Run struct{}

type Runner struct{ cfg Config }

func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

func (r *Runner) Run(ctx context.Context) (*Run, error) { return &Run{}, nil }

func (r *Runner) Reanalyze(ctx context.Context, run *Run) (*Run, error) { return run, nil }

// Deprecated wrappers, mirroring the real package.

func Execute(cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(context.Background())
}

func ExecuteContext(ctx context.Context, cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(ctx)
}

func Reanalyze(cfg Config, run *Run) (*Run, error) {
	return NewRunner(cfg).Reanalyze(context.Background(), run)
}

func ReanalyzeContext(ctx context.Context, cfg Config, run *Run) (*Run, error) {
	return NewRunner(cfg).Reanalyze(ctx, run)
}
