// Package telemetry is a minimal stand-in for the real telemetry API:
// just enough surface for the lint fixtures to type-check. The
// analyzers match it by import path suffix, exactly as they match the
// real package.
package telemetry

type Telemetry struct{}

func (t *Telemetry) StartSpan(layer, name string) *Active { return &Active{} }
func (t *Telemetry) Registry() *Registry                  { return &Registry{} }
func (t *Telemetry) Tracer() *Tracer                      { return &Tracer{} }

type Active struct{}

func (a *Active) Attr(key, value string) *Active { return a }
func (a *Active) End()                           {}
func (a *Active) EndErr(err error)               {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

type Counter struct{}

func (c *Counter) Add(d int64) {}
func (c *Counter) Inc()        {}

type Gauge struct{}

func (g *Gauge) Set(v int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v int64) {}

type Span struct{}

type Tracer struct{}

func (t *Tracer) Record(s Span) {}
