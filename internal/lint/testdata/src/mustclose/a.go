// Fixture for the mustclose analyzer: straight-line, branch, defer and
// cross-package (fact-driven) cases over stores, cursors and gzip
// readers.
package mustclose

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"

	"mustclose/internal/runstore"
)

var errEmpty = errors.New("empty")

// Straight-line: acquired, never closed, falls off the end.
func leakEnd(dir string) {
	st, err := runstore.Open(dir) // want `run store st is not closed before the function returns`
	if err != nil {
		return
	}
	_ = st.Len()
}

// Branch: closed on the happy path, leaked on an early return.
func leakBranch(dir string, bail bool) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	if bail {
		return nil // want `run store st acquired at .* is not closed on this return path`
	}
	return st.Close()
}

// Defer is the canonical fix.
func deferOK(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	return use(st)
}

// use borrows the store (empty disposition fact, same package).
func use(st *runstore.Store) error {
	_ = st.Len()
	return nil
}

// Discarding the handle means Close can never run.
func discard(dir string) {
	runstore.Open(dir) // want `run store discarded; Close will never run and the run store leaks`
}

// Reacquiring before Close loses the first handle.
func reassign(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	st, err = runstore.Open(dir) // want `run store st reassigned before Close; the run store acquired at .* is lost`
	if err != nil {
		return err
	}
	return st.Close()
}

// Cross-package, fact-driven: Drain's fact says it closes the cursor,
// so handing it over discharges the obligation.
func crossDrain(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	cur := st.Iter()
	_, derr := runstore.Drain(cur)
	return derr
}

// Cross-package: Keep's fact says it retains the cursor — ownership
// transferred, nothing to report here.
func crossKeep(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	cur := st.Iter()
	runstore.Keep(cur)
	return nil
}

// Cross-package: Count's fact proves it only borrows the cursor, so the
// leak is still ours — the case a factless analysis goes silent on.
func crossBorrowLeak(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	cur := st.Iter()
	if runstore.Count(cur) == 0 {
		return errEmpty // want `cursor cur acquired at .* is not closed on this return path`
	}
	return nil // want `cursor cur acquired at .* is not closed on this return path`
}

// Same shape, closed properly.
func crossBorrowOK(dir string) error {
	st, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	cur := st.Iter()
	defer cur.Close()
	if runstore.Count(cur) == 0 {
		return errEmpty
	}
	return nil
}

// gzip readers leak on error paths too; io.ReadAll is a known borrow.
func gzLeak(raw []byte) ([]byte, error) {
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(gz)
	if err != nil {
		return nil, err // want `gzip reader gz acquired at .* is not closed on this return path`
	}
	return data, nil // want `gzip reader gz acquired at .* is not closed on this return path`
}

func gzOK(raw []byte) ([]byte, error) {
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	return io.ReadAll(gz)
}

// The directive is the sanctioned escape hatch.
func allowLeak(dir string) {
	st, err := runstore.Open(dir) //crumb:allow mustclose fixture: leak intentionally waived
	if err != nil {
		return
	}
	_ = st.Len()
}
