// Package runstore is a fixture stand-in for the real run store. Its
// helpers exist to exercise the disposition facts mustclose exports:
// Drain releases the cursor it is handed, Keep retains it, Count only
// borrows it.
package runstore

// Store is a fixture run store handle.
type Store struct{ open bool }

// Open opens a fixture store.
func Open(dir string) (*Store, error) {
	_ = dir
	return &Store{open: true}, nil
}

// Close releases the store.
func (s *Store) Close() error {
	s.open = false
	return nil
}

// Len borrows the store.
func (s *Store) Len() int { return 0 }

// Cursor iterates a fixture store.
type Cursor struct{ n int }

// Iter acquires a cursor (a method source, like the real Store.Iter).
func (s *Store) Iter() *Cursor { return &Cursor{n: 3} }

// Next borrows the cursor.
func (c *Cursor) Next() bool {
	c.n--
	return c.n > 0
}

// Close releases the cursor.
func (c *Cursor) Close() error { return nil }

// Drain consumes and closes the cursor: callers hand off ownership and
// must not close it again. Exports Releases=[0].
func Drain(c *Cursor) (int, error) {
	defer c.Close()
	n := 0
	for c.Next() {
		n++
	}
	return n, nil
}

var kept *Cursor

// Keep parks the cursor for later use: ownership transfers to the
// package. Exports Retains=[0].
func Keep(c *Cursor) { kept = c }

// Count borrows the cursor: the caller keeps its Close obligation.
// Exports an empty disposition (proven borrow).
func Count(c *Cursor) int {
	n := 0
	for c.Next() {
		n++
	}
	return n
}
