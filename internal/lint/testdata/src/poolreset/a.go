// Fixture for the poolreset analyzer: Get/Put pairing on all paths,
// reset hygiene (cleared maps, nilled fields), and fact-driven release
// through cross-package helpers.
package poolreset

import (
	"sync"

	"poolreset/internal/stats"
)

type buffer struct{ data []byte }

var bufPool = sync.Pool{New: func() any { return new(buffer) }}

// Straight-line: taken from the pool, never returned.
func straightLeak() {
	b := bufPool.Get().(*buffer) // want `pooled value b is never returned to the pool`
	b.data = b.data[:0]
}

func straightOK() {
	b := bufPool.Get().(*buffer)
	b.data = b.data[:0]
	bufPool.Put(b)
}

// Branch: one early return skips the Put.
func branchLeak(n int) {
	b := bufPool.Get().(*buffer)
	if n > 0 {
		return // want `pooled value b from the Get at .* is not returned to the pool on this return path`
	}
	bufPool.Put(b)
}

// The deferred-closure Put covers every path.
func deferOK() {
	b := bufPool.Get().(*buffer)
	defer func() { bufPool.Put(b) }()
	b.data = append(b.data, 0)
}

var mapPool = sync.Pool{New: func() any { return map[string]int{} }}

// A map must be cleared before it goes back, or stale entries survive
// into the next Get.
func mapNoClear(k string) {
	m := mapPool.Get().(map[string]int)
	m[k]++
	mapPool.Put(m) // want `pooled map returned to the pool without clear`
}

func mapClearOK(k string) {
	m := mapPool.Get().(map[string]int)
	m[k]++
	clear(m)
	mapPool.Put(m)
}

// A range-delete loop counts as clearing too.
func mapRangeClearOK(k string) {
	m := mapPool.Get().(map[string]int)
	m[k]++
	for key := range m {
		delete(m, key)
	}
	mapPool.Put(m)
}

type holder struct{ buf *buffer }

// A pooled value parked in a field must be nilled after Put, or the
// released value stays reachable.
func fieldPutNoNil(h *holder) {
	bufPool.Put(h.buf) // want `pooled field h.buf is not set to nil after Put`
}

func fieldPutOK(h *holder) {
	bufPool.Put(h.buf)
	h.buf = nil
}

// Cross-package: AcquireRNG is a pool-backed acquire helper; without a
// Release the value never returns.
func rngLeak(seed uint64) {
	r := stats.AcquireRNG(seed) // want `pooled value r is never returned to the pool`
	_ = r.Next()
}

// Release on every path via defer.
func rngReleaseOK(seed uint64) uint64 {
	r := stats.AcquireRNG(seed)
	defer r.Release()
	return r.Next()
}

// Cross-package, fact-driven: Recycle's fact says it releases its
// argument, so handing the RNG over discharges the obligation.
func rngRecycleOK(seed uint64) uint64 {
	r := stats.AcquireRNG(seed)
	n := r.Next()
	stats.Recycle(r)
	return n
}
