// Package stats is a fixture stand-in for the pooled-RNG helpers:
// AcquireRNG hands out pooled values, Release returns them, Recycle
// releases on the caller's behalf (exporting Releases=[0]).
package stats

import "sync"

var rngPool = sync.Pool{New: func() any { return new(RNG) }}

// RNG is a pooled deterministic generator.
type RNG struct{ seed uint64 }

// AcquireRNG takes an RNG from the pool.
func AcquireRNG(seed uint64) *RNG {
	r := rngPool.Get().(*RNG)
	r.seed = seed
	return r
}

// Release returns the RNG to its pool. Exports ReleasesRecv.
func (r *RNG) Release() { rngPool.Put(r) }

// Next borrows the RNG.
func (r *RNG) Next() uint64 {
	r.seed = r.seed*6364136223846793005 + 1442695040888963407
	return r.seed
}

// Recycle releases the RNG on behalf of the caller.
func Recycle(r *RNG) { r.Release() }
