package maporder

import (
	"fmt"
	"sort"
	"strings"

	"crumbcruncher/internal/telemetry"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over a map`
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted after the loop: the canonical idiom
	}
	sort.Strings(keys)
	return keys
}

func perIterationSlice(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...) // per-iteration slice: order never observed
		total += len(acc)
	}
	return total
}

func keyedTarget(m map[string]int, out map[string][]int) {
	for k, v := range m {
		out[k] = append(out[k], v) // keyed writes commute; no finding
	}
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over a map`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over a map`
	}
	return b.String()
}

func innerBuilder(m map[string]int) int {
	n := 0
	for k := range m {
		var b strings.Builder
		b.WriteString(k) // builder lives inside the iteration; no finding
		n += b.Len()
	}
	return n
}

func badGauge(tel *telemetry.Telemetry, m map[string]int64) {
	g := tel.Registry().Gauge("depth")
	for _, v := range m {
		g.Set(v) // want `Gauge\.Set inside range over a map is order-sensitive telemetry`
	}
}

func commutativeTelemetry(tel *telemetry.Telemetry, m map[string]int64) {
	c := tel.Registry().Counter("total")
	h := tel.Registry().Histogram("sizes")
	for _, v := range m {
		c.Add(v)     // commutative: final count is order-independent
		h.Observe(v) // commutative: histogram buckets are order-independent
	}
}

func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //crumb:allow maporder fixture: consumer treats keys as a set
	}
	return keys
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // ranging a slice is deterministic; no finding
	}
	return out
}
