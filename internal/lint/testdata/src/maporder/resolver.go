package maporder

// Resolver-style fixtures: a lazy world derives sites on first visit
// and keeps them in a cache map keyed by domain. Anything that walks
// that cache to produce output must iterate sorted keys, or the
// resolver's visit order leaks into reports and saved runs.

import (
	"encoding/json"
	"io"
	"sort"
)

type site struct {
	Domain string
	Hosts  []string
}

type resolverCache struct {
	sites map[string]*site
}

func (c *resolverCache) badHostList() []string {
	var hosts []string
	for _, s := range c.sites {
		hosts = append(hosts, s.Hosts...) // want `append to hosts inside range over a map`
	}
	return hosts
}

func (c *resolverCache) sortedHostList() []string {
	var hosts []string
	for _, s := range c.sites {
		hosts = append(hosts, s.Hosts...) // sorted below: deterministic
	}
	sort.Strings(hosts)
	return hosts
}

func (c *resolverCache) sortedDomainsFirst() []string {
	domains := make([]string, 0, len(c.sites))
	for d := range c.sites {
		domains = append(domains, d) // sorted below: the canonical idiom
	}
	sort.Strings(domains)
	var hosts []string
	for _, d := range domains {
		hosts = append(hosts, c.sites[d].Hosts...) // slice range: deterministic
	}
	return hosts
}

func (c *resolverCache) badDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range c.sites {
		if err := enc.Encode(s); err != nil { // want `Encode inside range over a map`
			return err
		}
	}
	return nil
}

// Keyed aggregation commutes: deriving a per-domain index from the
// cache needs no sort, matching the generator's collectorsByDest build.
func (c *resolverCache) hostIndex() map[string][]string {
	idx := make(map[string][]string)
	for d, s := range c.sites {
		idx[d] = append(idx[d], s.Hosts...)
	}
	return idx
}
