package spanend

import (
	"errors"
	"os"

	"crumbcruncher/internal/telemetry"
)

func work() {}

func okDefer(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "ok")
	defer sp.End()
	work()
}

func okAllPaths(tel *telemetry.Telemetry, b bool) {
	sp := tel.StartSpan("layer", "paths")
	if b {
		sp.EndErr(errors.New("branch"))
		return
	}
	sp.End()
}

func okChained(tel *telemetry.Telemetry, err error) {
	sp := tel.StartSpan("layer", "chain").Attr("k", "v")
	if err != nil {
		sp.Attr("fault", "x").EndErr(err)
		return
	}
	sp.Attr("status", "200").End()
}

func okDeferredClosure(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "closure")
	defer func() { sp.EndErr(nil) }()
	// The deferred closure ends whatever sp holds last, so swapping the
	// handle mid-function is covered.
	sp = tel.StartSpan("layer", "closure2")
	work()
}

func okTerminalPath(tel *telemetry.Telemetry, err error) {
	sp := tel.StartSpan("layer", "fatal")
	if err != nil {
		os.Exit(1) // paths that never return need not end the span
	}
	sp.End()
}

func okOwnershipTransfer(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "handoff")
	stash(sp) // passing the handle on transfers the End obligation
}

func stash(sp *telemetry.Active) { sp.End() }

func leakFallOff(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "leak") // want `span sp is not ended before the function returns`
	sp.Attr("k", "v")
}

func leakBranch(tel *telemetry.Telemetry, b bool) {
	sp := tel.StartSpan("layer", "branch")
	if b {
		sp.End()
		return
	}
	return // want `span sp started at .* is not ended on this return path`
}

func discarded(tel *telemetry.Telemetry) {
	tel.StartSpan("layer", "drop")      // want `span handle discarded`
	_ = tel.StartSpan("layer", "drop2") // want `span handle discarded`
}

func reassigned(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "first")
	sp = tel.StartSpan("layer", "second") // want `span sp reassigned before End/EndErr`
	sp.End()
}

func allowedLeak(tel *telemetry.Telemetry) {
	sp := tel.StartSpan("layer", "waived") //crumb:allow spanend fixture: span intentionally kept open
	sp.Attr("k", "v")
}
