// Fixture for the sharedwrite analyzer: slot stores are the sanctioned
// merge discipline; every other write to captured state inside a
// parallel body is a race that breaks deterministic merging.
package sharedwrite

import (
	"sharedwrite/internal/agg"
	"sharedwrite/internal/intern"
	"sharedwrite/internal/parallel"
)

// Slot stores indexed by the body's index parameter are sanctioned.
func slotOK(items []string) []int {
	out := make([]int, len(items))
	parallel.ForEach(len(items), func(i int) {
		out[i] = len(items[i])
	})
	return out
}

// A captured scalar accumulator races and merges in scheduler order.
func scalarRace(items []string) int {
	total := 0
	parallel.ForEach(len(items), func(i int) {
		total += len(items[i]) // want `write to captured total inside a parallel body`
	})
	return total
}

// A captured map races.
func mapRace(items []string) map[string]int {
	seen := map[string]int{}
	parallel.ForEach(len(items), func(i int) {
		seen[items[i]]++ // want `write to captured seen inside a parallel body`
	})
	return seen
}

// Slice writes that do not go through the body's own index are shared
// writes, not slot stores.
func fixedSlotRace(items []string) []int {
	out := make([]int, 1)
	parallel.ForEach(len(items), func(i int) {
		out[0] += len(items[i]) // want `write to captured out inside a parallel body`
	})
	return out
}

// Cross-package, fact-driven: Add's fact says it mutates its receiver,
// so the helper call is a shared mutation even though the write is in
// another package.
func helperRace(items []string) int {
	var c agg.Counter
	parallel.ForEach(len(items), func(i int) {
		c.Add(len(items[i])) // want `Add mutates captured c inside a parallel body`
	})
	return c.Total()
}

// The interner is concurrency-safe by design: sanctioned.
func internOK(items []string) []string {
	tab := intern.New()
	out := make([]string, len(items))
	parallel.ForEach(len(items), func(i int) {
		out[i] = tab.Intern(items[i])
	})
	return out
}

// Locals declared inside the body are not captured state.
func localOK(items []string) []int {
	out := make([]int, len(items))
	parallel.ForEach(len(items), func(i int) {
		n := 0
		for range items[i] {
			n++
		}
		out[i] = n
	})
	return out
}
