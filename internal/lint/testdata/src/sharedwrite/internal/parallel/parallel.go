// Package parallel is a fixture stand-in for the fan-out package; the
// analyzer keys on the package suffix, not the implementation.
package parallel

// ForEach runs body for every index in [0, n). The real implementation
// fans out across workers; the fixture runs serially.
func ForEach(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}
