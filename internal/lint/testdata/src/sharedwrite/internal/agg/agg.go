// Package agg is a fixture aggregate whose mutating method exports a
// sharedMutFact — the cross-package half of the sharedwrite analysis.
package agg

// Counter accumulates values. It is NOT concurrency-safe.
type Counter struct{ n int }

// Add mutates the receiver. Exports MutatesRecv.
func (c *Counter) Add(x int) { c.n += x }

// Total borrows the receiver.
func (c *Counter) Total() int { return c.n }
