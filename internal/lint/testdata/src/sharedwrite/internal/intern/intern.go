// Package intern is a fixture stand-in for the sharded interner: its
// mutations are concurrency-safe and deterministic by design, so the
// sharedwrite analyzer sanctions them by package identity.
package intern

// Table interns strings (fixture: no real sharding or locking needed).
type Table struct{ m map[string]string }

// New builds an empty table.
func New() *Table { return &Table{m: map[string]string{}} }

// Intern returns the canonical copy of s, mutating the table.
func (t *Table) Intern(s string) string {
	if v, ok := t.m[s]; ok {
		return v
	}
	t.m[s] = s
	return s
}
