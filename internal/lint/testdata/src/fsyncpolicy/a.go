package fsyncpolicy

import "os"

func bad(f *os.File) error {
	if err := f.Sync(); err != nil { // want `os\.File\.Sync outside internal/runio`
		return err
	}
	return os.Rename("a.tmp", "a") // want `os\.Rename outside internal/runio`
}

type wrapper struct{ f *os.File }

func badThroughField(w wrapper) error {
	return w.f.Sync() // want `os\.File\.Sync outside internal/runio`
}

// Sync on a non-os type stays legal: the rule keys on the receiver's
// identity, not the method name.
type flusher struct{}

func (flusher) Sync() error { return nil }

func pure(fl flusher, f *os.File) {
	_ = fl.Sync()
	_, _ = f.Stat()      // other *os.File methods stay legal
	_ = os.Remove("tmp") // and so do other os functions
}

func allowedTrailing(f *os.File) error {
	return f.Sync() //crumb:allow fsyncpolicy fixture: trailing directive exempts this line
}

//crumb:allow fsyncpolicy fixture: function-scoped waiver
func allowedByDoc() error {
	return os.Rename("b.tmp", "b")
}

func wrongDirectiveName(f *os.File) error {
	//crumb:allow wallclock a directive for another analyzer does not cover fsyncpolicy
	return f.Sync() // want `os\.File\.Sync outside internal/runio`
}
