// Package runio stands in for the real durability layer: the one
// package where raw Sync and Rename are the implementation, not a
// bypass.
package runio

import "os"

func Implementation(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename("x.tmp", "x")
}
