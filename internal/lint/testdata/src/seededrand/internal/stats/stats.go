// Package stats stands in for the sanctioned RNG wrapper: any package
// path ending in /internal/stats may use math/rand freely.
package stats

import "math/rand"

func Roll(r *rand.Rand) int { return r.Intn(6) }

func Fresh(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
