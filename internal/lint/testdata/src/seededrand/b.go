package seededrand

// A blank import has no qualified uses to flag, so the analyzer reports
// the import itself.

import _ "math/rand" // want `import of math/rand outside internal/stats`
