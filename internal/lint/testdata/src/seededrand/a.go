package seededrand

import "math/rand"

func bad() int {
	return rand.Intn(10) // want `rand\.Intn draws from math/rand`
}

func badNew() int {
	r := rand.New(rand.NewSource(1)) // want `rand\.New draws from math/rand` `rand\.NewSource draws from math/rand`
	return r.Intn(4)
}

// Even a bare type reference is flagged: handing *rand.Rand values
// around outside internal/stats bypasses the seed lineage just as much
// as drawing from one.
func typeRef(r *rand.Rand) int { // want `rand\.Rand draws from math/rand`
	return r.Int()
}

func allowed() int {
	return rand.Intn(3) //crumb:allow seededrand fixture: directive exempts this draw
}
