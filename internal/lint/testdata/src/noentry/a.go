package noentry

import (
	"context"

	"crumbcruncher"
)

func bad(cfg crumbcruncher.Config) {
	_, _ = crumbcruncher.Execute(cfg)                              // want `Execute is a deprecated entry point`
	_, _ = crumbcruncher.ExecuteContext(context.Background(), cfg) // want `ExecuteContext is a deprecated entry point`
}

func badReanalyze(cfg crumbcruncher.Config, run *crumbcruncher.Run) {
	_, _ = crumbcruncher.Reanalyze(cfg, run) // want `Reanalyze is a deprecated entry point`
}

func good(cfg crumbcruncher.Config, run *crumbcruncher.Run) {
	r := crumbcruncher.NewRunner(cfg)
	_, _ = r.Run(context.Background())
	_, _ = r.Reanalyze(context.Background(), run) // the Runner method shares the name; fine
	_, _ = crumbcruncher.ReanalyzeContext(context.Background(), cfg, run)
}

func badStorage(run *crumbcruncher.Run) {
	_ = crumbcruncher.SaveRun("crawl.json", run)       // want `SaveRun is a deprecated entry point`
	_, _ = crumbcruncher.LoadRun("crawl.json")         // want `LoadRun is a deprecated entry point`
	_ = crumbcruncher.EncodeRun(nil, run)              // want `EncodeRun is a deprecated entry point`
	_, _ = crumbcruncher.DecodeRun(nil)                // want `DecodeRun is a deprecated entry point`
}

func goodStorage(run *crumbcruncher.Run) {
	_ = crumbcruncher.SaveRunStore("crawl.crumbs", run)
	_, _ = crumbcruncher.OpenRunStore("crawl.crumbs")
}

func waived(cfg crumbcruncher.Config, run *crumbcruncher.Run) {
	_, _ = crumbcruncher.Execute(cfg)            //crumb:allow noentry fixture: deprecation coverage
	_ = crumbcruncher.SaveRun("crawl.json", run) //crumb:allow noentry fixture: deprecation coverage
}
