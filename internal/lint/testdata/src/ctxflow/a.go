// Fixture for the ctxflow analyzer: dropped cancellation via a fresh
// context.Background() (rule 1) and via a Background-wrapper callee
// whose fact crosses the package boundary (rule 2).
package ctxflow

import (
	"context"

	"ctxflow/internal/core"
)

// Rule 1: a fresh Background inside a context-aware function drops the
// caller's cancellation locally.
func lookupFresh(ctx context.Context, q string) (string, error) {
	return core.ResolveCtx(context.Background(), q) // want `passed to ResolveCtx inside a context-aware function; propagate ctx instead`
}

// Rule 2, fact-driven: the wrapper delegates with Background one level
// down, invisible without core's exported fact.
func lookupWrapper(ctx context.Context, q string) (string, error) {
	return core.Resolve(q) // want `Resolve drops ctx: it delegates to ResolveCtx`
}

// Propagating the context is the fix.
func lookupOK(ctx context.Context, q string) (string, error) {
	return core.ResolveCtx(ctx, q)
}

// Deriving a detached context through the context package itself is
// deliberate (detached lifetimes) and stays sanctioned.
func lookupDetached(ctx context.Context, q string) (string, error) {
	dctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return core.ResolveCtx(dctx, q)
}

// A context-free entry point may use the wrapper: that is what it is
// for.
func entry(q string) (string, error) {
	return core.Resolve(q)
}
