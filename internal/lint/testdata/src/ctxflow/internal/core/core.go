// Package core is a fixture stand-in for the context-aware core: a
// FooCtx entry point plus the Background-wrapper convenience form,
// whose ctxWrapFact ctxflow exports and consumes across packages.
package core

import "context"

// ResolveCtx is the context-aware core entry point.
func ResolveCtx(ctx context.Context, q string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return q, nil
}

// Resolve is the convenience wrapper for context-free callers. Exports
// a ctxWrapFact naming ResolveCtx.
func Resolve(q string) (string, error) {
	return ResolveCtx(context.Background(), q)
}
