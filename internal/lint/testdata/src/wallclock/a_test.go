package wallclock

import "time"

// Test files measure real time by design; the analyzer skips them, so
// none of these lines want a diagnostic.

func testOnlyHelper() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
