package wallclock

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badFriends(t0 time.Time) {
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(t0)               // want `time\.Since reads the wall clock`
	_ = time.Until(t0)               // want `time\.Until reads the wall clock`
	tk := time.NewTicker(time.Hour)  // want `time\.NewTicker reads the wall clock`
	tm := time.NewTimer(time.Hour)   // want `time\.NewTimer reads the wall clock`
	<-time.After(time.Hour)          // want `time\.After reads the wall clock`
	time.AfterFunc(time.Hour, bad2)  // want `time\.AfterFunc reads the wall clock`
	tk.Stop()
	tm.Stop()
}

func bad2() {}

func pure() {
	// Pure time construction and arithmetic stay legal.
	d := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	u := time.Unix(0, 0)
	_ = d.Sub(u)
	_ = 3 * time.Second
}

func allowedTrailing() time.Time {
	return time.Now() //crumb:allow wallclock fixture: trailing directive exempts this line
}

func allowedStandalone() time.Time {
	//crumb:allow wallclock fixture: standalone directive exempts the next line
	return time.Now()
}

// allowedByDoc has the directive in its doc comment, exempting the
// whole body.
//
//crumb:allow wallclock fixture: function-scoped waiver
func allowedByDoc() (time.Time, time.Time) {
	a := time.Now()
	b := time.Now()
	return a, b
}

func wrongDirectiveName() time.Time {
	//crumb:allow seededrand a directive for another analyzer does not cover wallclock
	return time.Now() // want `time\.Now reads the wall clock`
}
