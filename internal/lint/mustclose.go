package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// MustClose reports resource handles that are acquired but not closed
// on every path out of the acquiring function: runstore Stores and
// Cursors, runio line files, and gzip segment readers. It is built on
// the acquire/release engine (acqrel.go) and is interprocedural: when a
// handle is passed to another function, a disposition fact exported by
// that function's package decides whether the callee closed it,
// retained it, or merely borrowed it — so a leak hidden behind a helper
// call in another package is still caught, and a helper that does close
// its argument does not produce a false positive at the call site.
var MustClose = &analysis.Analyzer{
	Name: "mustclose",
	Doc: "report run-store handles, cursors, line files and gzip readers " +
		"that are not closed on every path, including error paths",
	Version:   "v1",
	UsesFacts: true,
	Run: func(pass *analysis.Pass) (interface{}, error) {
		return runAcqRel(pass, engineConfig{
			classes:   mustCloseClasses,
			useFacts:  true,
			skipTests: true,
		})
	},
}

// mustCloseClasses are the resource kinds mustclose enforces. Each is a
// closable: released by a Close() call, borrowed by arbitrary method
// calls and field reads.
var mustCloseClasses = buildMustCloseClasses()

func buildMustCloseClasses() []*resourceClass {
	store := closableClass("run store", false, func(t types.Type) bool {
		return namedFrom(t, "runstore", "Store")
	})
	// Cursors are produced by methods (st.Iter()), so method calls are
	// sources too.
	cursor := closableClass("cursor", true, func(t types.Type) bool {
		return namedFrom(t, "runstore", "Cursor")
	})
	lineFile := closableClass("line file", false, func(t types.Type) bool {
		return namedFrom(t, "runio", "LineFile")
	})
	gz := closableClass("gzip reader", false, func(t types.Type) bool {
		return namedFrom(t, "compress/gzip", "Reader")
	})
	// Helpers typed against the io interfaces still earn dispositions
	// ("does this helper close the reader I hand it?"), but a call
	// returning a bare io.Reader is not an acquisition.
	gz.factParam = func(t types.Type) bool {
		return namedFrom(t, "compress/gzip", "Reader") || readerInterface(t)
	}
	return []*resourceClass{store, cursor, lineFile, gz}
}

// closableClass builds a Close-released resource class. methodSources
// additionally accepts method calls (accessor-free APIs like Iter) as
// acquisitions; otherwise only package-level constructor calls count,
// so borrowed handles returned by accessors are not misread as fresh.
func closableClass(noun string, methodSources bool, match func(types.Type) bool) *resourceClass {
	return &resourceClass{
		noun: noun,
		sourceResults: func(pass *analysis.Pass, call *ast.CallExpr) []int {
			if !methodSources && !isPkgLevelCall(pass, call) {
				return nil
			}
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return nil // conversion, not an acquisition
			}
			return typeResults(pass, call, match)
		},
		releaseMethods: map[string]bool{"Close": true},
		borrow:         true,
		factParam:      match,
		msgDiscard: fmt.Sprintf("%s discarded; Close will never run and the %s leaks",
			noun, noun),
		msgLeakReturn: func(name string, acq token.Position) string {
			return fmt.Sprintf("%s %s acquired at %s is not closed on this return path",
				noun, name, acq)
		},
		msgLeakEnd: func(name string) string {
			return fmt.Sprintf("%s %s is not closed before the function returns; "+
				"add defer %s.Close() or close it on every path", noun, name, name)
		},
		msgReassign: func(name string, acq token.Position) string {
			return fmt.Sprintf("%s %s reassigned before Close; the %s acquired at %s is lost",
				noun, name, noun, acq)
		},
		msgOverwrite: func(name string, acq token.Position) string {
			return fmt.Sprintf("%s %s overwritten before Close; the %s acquired at %s is lost",
				noun, name, noun, acq)
		},
	}
}

// readerInterface matches the io reader/closer interfaces, so the gzip
// class can export dispositions for helpers that take their reader as
// io.Reader ("does this helper close what I hand it?").
func readerInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "io" {
		return false
	}
	switch obj.Name() {
	case "Reader", "ReadCloser", "Closer":
		return true
	}
	return false
}

// namedFrom reports whether t is (a pointer to) the named type
// pkgSuffix.name, where pkgSuffix matches the import path exactly or as
// a trailing "/pkgSuffix" segment — the same convention telemetryPkg
// uses, so fixture packages under testdata ("mustclose/internal/
// runstore") resolve like the real tree.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return pkgSuffixIs(obj.Pkg().Path(), pkgSuffix)
}

// pkgSuffixIs reports whether path is suffix or ends in "/suffix".
func pkgSuffixIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// typeResults reports the result indices of call whose static type
// matches match (tuple-aware: `st, err := Open(p)` yields [0]).
func typeResults(pass *analysis.Pass, call *ast.CallExpr, match func(types.Type) bool) []int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		var ks []int
		for i := 0; i < tup.Len(); i++ {
			if match(tup.At(i).Type()) {
				ks = append(ks, i)
			}
		}
		return ks
	}
	if match(tv.Type) {
		return []int{0}
	}
	return nil
}

// isPkgLevelCall reports whether call invokes a package-level function
// (same-package `open(...)` or imported `runstore.Open(...)`), as
// opposed to a method on a value — the shape constructors take.
func isPkgLevelCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := unwrapExpr(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		if !ok {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() == nil
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				return true
			}
		}
	}
	return false
}
