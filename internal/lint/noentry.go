package lint

import (
	"go/ast"
	"go/types"

	"crumbcruncher/internal/lint/analysis"
)

// NoEntry forbids the deprecated package entry points outside their own
// definitions and deprecation tests. It replaces the grep-based
// scripts/check_deprecated.sh with a type-aware check: a renamed import
// or wrapper can't hide a call, and shadowing identifiers can't produce
// false positives.
var NoEntry = &analysis.Analyzer{
	Name: "noentry",
	Doc: "forbid deprecated entry points (Execute, ExecuteContext, Reanalyze,\n" +
		"SaveRun, LoadRun, EncodeRun, DecodeRun)\n\n" +
		"Everything in the repository must use the Runner API and the RunStore\n" +
		"storage API; the wrappers stay only for downstream compatibility and\n" +
		"their own deprecation tests.",
	Run: runNoEntry,
}

// rootPkgPath is the defining package of the deprecated entry points.
const rootPkgPath = "crumbcruncher"

// deprecatedEntry maps a deprecated root-package function to the
// replacement named in the diagnostic.
var deprecatedEntry = map[string]string{
	"Execute":        "NewRunner(cfg).Run(ctx)",
	"ExecuteContext": "NewRunner(cfg).Run(ctx)",
	"Reanalyze":      "NewRunner(cfg).Reanalyze(ctx, run) or ReanalyzeContext(ctx, cfg, run)",
	"SaveRun":        "SaveRunStore(path, run)",
	"LoadRun":        "OpenRunStore(path) + AnalyzeStore(ctx, st), or LoadRunStore(path)",
	"EncodeRun":      "SaveRunStore(path, run)",
	"DecodeRun":      "OpenRunStore(path) + AnalyzeStore(ctx, st)",
}

func runNoEntry(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == rootPkgPath {
		// The wrappers' own definitions (and the package's in-package
		// tests) may reference each other freely.
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != rootPkgPath {
			return true
		}
		// Only the package-level wrappers are deprecated; methods that
		// share a name (Runner.Reanalyze is the replacement) are fine.
		if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		replacement, deprecated := deprecatedEntry[obj.Name()]
		if !deprecated {
			return true
		}
		pass.Report(analysis.Diagnostic{
			Pos: sel.Pos(),
			End: sel.End(),
			Message: obj.Name() + " is a deprecated entry point; use crumbcruncher." + replacement +
				" (deprecation tests may waive this with //crumb:allow noentry)",
		})
		return true
	})
	return nil, nil
}
