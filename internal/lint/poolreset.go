package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"crumbcruncher/internal/lint/analysis"
)

// PoolReset enforces the pooled-object discipline PR 6 introduced on
// the hot paths: every sync.Pool Get must reach a matching Put on all
// paths (directly, via a deferred closure, via a Release method, or —
// interprocedurally — via a callee whose disposition fact proves it
// returns the value to its pool), and values must go back clean: maps
// are cleared before Put, and pooled values parked in fields are nilled
// after Put so the pool's copy is not still reachable.
var PoolReset = &analysis.Analyzer{
	Name: "poolreset",
	Doc: "report sync.Pool values that are not returned to their pool on " +
		"every path, maps returned without clear, and pooled fields not " +
		"nilled after Put",
	Version:   "v1",
	UsesFacts: true,
	Run:       runPoolReset,
}

func runPoolReset(pass *analysis.Pass) (interface{}, error) {
	if _, err := runAcqRel(pass, engineConfig{
		classes:   []*resourceClass{poolClass},
		useFacts:  true,
		skipTests: true,
	}); err != nil {
		return nil, err
	}
	checkPoolHygiene(pass)
	return nil, nil
}

// poolClass models pooled values generically: acquired from any
// sync.Pool's Get (or an Acquire-style helper returning a type with a
// Release method), released by Put on any sync.Pool or by Release.
var poolClass = &resourceClass{
	noun: "pooled value",
	sourceResults: func(pass *analysis.Pass, call *ast.CallExpr) []int {
		if isPoolMethodCall(pass, call, "Get") {
			return []int{0}
		}
		// Acquire helpers: package-level calls returning a releasable.
		if isPkgLevelCall(pass, call) {
			return typeResults(pass, call, hasReleaseMethod)
		}
		return nil
	},
	releaseMethods: map[string]bool{"Release": true},
	borrow:         true,
	releaseArg: func(pass *analysis.Pass, call *ast.CallExpr, argIdx int) bool {
		return argIdx == 0 && isPoolMethodCall(pass, call, "Put")
	},
	// Any pointer-to-named or map parameter may carry a disposition:
	// the pool element types are application-defined, so the net is
	// wide and empty dispositions are simply not exported.
	factParam: func(t types.Type) bool {
		switch u := t.(type) {
		case *types.Pointer:
			_, ok := u.Elem().(*types.Named)
			return ok
		case *types.Map:
			return true
		}
		return false
	},
	msgDiscard: "pooled value discarded; it will never return to its pool",
	msgLeakReturn: func(name string, acq token.Position) string {
		return fmt.Sprintf("pooled value %s from the Get at %s is not returned "+
			"to the pool on this return path", name, acq)
	},
	msgLeakEnd: func(name string) string {
		return fmt.Sprintf("pooled value %s is never returned to the pool; "+
			"add a deferred Put or a Release call on every path", name)
	},
	msgReassign: func(name string, acq token.Position) string {
		return fmt.Sprintf("pooled value %s reassigned before Put; the value "+
			"from the Get at %s never returns to the pool", name, acq)
	},
	msgOverwrite: func(name string, acq token.Position) string {
		return fmt.Sprintf("pooled value %s overwritten before Put; the value "+
			"from the Get at %s never returns to the pool", name, acq)
	},
}

// isPoolMethodCall matches `p.Get()` / `p.Put(x)` where p is a
// sync.Pool (or *sync.Pool).
func isPoolMethodCall(pass *analysis.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// hasReleaseMethod reports whether t (or *t) has a Release method —
// the shape of pool-backed acquire helpers like stats.AcquireRNG.
func hasReleaseMethod(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), "Release")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0
}

// checkPoolHygiene enforces the reset contracts around each Put call:
//
//   - a map handed to Put must have been cleared (clear(m) or a
//     range-delete loop) earlier in the same function, or stale entries
//     survive into the next Get;
//   - a pooled value read out of a field and handed to Put must have
//     the field nilled afterwards, or the released value is still
//     reachable and a later use races with the pool's next owner.
func checkPoolHygiene(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, body := range functionBodies(file) {
			checkPutSites(pass, body)
		}
	}
}

func checkPutSites(pass *analysis.Pass, body *ast.BlockStmt) {
	// Gather, in source order: clear events per object, nil-assignment
	// positions per field selector text, and Put sites.
	type putSite struct {
		call *ast.CallExpr
		arg  ast.Expr
	}
	var puts []putSite
	cleared := map[types.Object][]token.Pos{}
	nilled := map[string][]token.Pos{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unwrapExpr(n.Fun).(*ast.Ident); ok && id.Name == "clear" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					if obj := rootObject(pass, n.Args[0]); obj != nil {
						cleared[obj] = append(cleared[obj], n.Pos())
					}
				}
			}
			if isPoolMethodCall(pass, n, "Put") && len(n.Args) == 1 {
				puts = append(puts, putSite{n, n.Args[0]})
			}
		case *ast.RangeStmt:
			// `for k := range m { delete(m, k) }` clears m too.
			if obj := rootObject(pass, n.X); obj != nil && rangeDeletes(pass, n, obj) {
				cleared[obj] = append(cleared[obj], n.Pos())
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if id, ok := unwrapExpr(n.Rhs[i]).(*ast.Ident); ok && id.Name == "nil" {
					nilled[selectorText(sel)] = append(nilled[selectorText(sel)], n.Pos())
				}
			}
		}
		return true
	})

	for _, p := range puts {
		arg := unwrapExpr(p.arg)
		if tv, ok := pass.TypesInfo.Types[arg]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				obj := rootObject(pass, arg)
				ok := false
				for _, cp := range cleared[obj] {
					if cp < p.call.Pos() {
						ok = true
					}
				}
				if !ok {
					pass.Reportf(p.call.Pos(),
						"pooled map returned to the pool without clear; stale entries "+
							"survive into the next Get")
				}
				continue
			}
		}
		if sel, ok := arg.(*ast.SelectorExpr); ok {
			key := selectorText(sel)
			ok := false
			for _, np := range nilled[key] {
				if np > p.call.Pos() {
					ok = true
				}
			}
			if !ok {
				pass.Reportf(p.call.Pos(),
					"pooled field %s is not set to nil after Put; the released value "+
						"is still reachable and a later use races with the pool's next owner",
					selectorText(sel))
			}
		}
	}
}

// rootObject resolves an expression to the object of its root
// identifier (m, x.f -> x, s[i] -> s), or nil.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := unwrapExpr(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rangeDeletes reports whether the range body deletes every visited key
// from obj's map.
func rangeDeletes(pass *analysis.Pass, rng *ast.RangeStmt, obj types.Object) bool {
	for _, s := range rng.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			continue
		}
		id, ok := unwrapExpr(call.Fun).(*ast.Ident)
		if !ok || id.Name != "delete" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if rootObject(pass, call.Args[0]) == obj {
			return true
		}
	}
	return false
}

// selectorText renders x.f (and deeper chains) as a comparison key.
func selectorText(sel *ast.SelectorExpr) string {
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name + "." + sel.Sel.Name
	case *ast.SelectorExpr:
		return selectorText(x) + "." + sel.Sel.Name
	default:
		return "?." + sel.Sel.Name
	}
}
