// Package lint holds crumblint's analyzers: machine-checked versions of
// the invariants crumbcruncher's determinism guarantee rests on. Each
// analyzer documents one rule; DESIGN.md §9 records the rationale and
// the incident history behind them.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// All returns every crumblint analyzer, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Wallclock,
		SeededRand,
		MapOrder,
		SpanEnd,
		NoEntry,
		Fsyncpolicy,
		MustClose,
		PoolReset,
		CtxFlow,
		SharedWrite,
	}
}

// pkgFunc resolves an expression of the form pkg.Name where pkg is an
// imported package identifier, returning the imported package path and
// selected name; ok is false for any other shape (method calls, locals,
// qualified types through vars, ...).
func pkgFunc(info *types.Info, e ast.Expr) (path, name string, ok bool) {
	sel, okSel := e.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isTestFile reports whether the file's name marks it as a test file,
// which several analyzers treat as outside the determinism envelope.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// telemetryPkg reports whether path is the repository's telemetry
// package. Matching by suffix keeps the analyzers testable from fixture
// trees that reproduce the package under a different module prefix.
func telemetryPkg(path string) bool {
	return path == "crumbcruncher/internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

// receiverNamed returns the named type of an expression's type with
// pointers unwrapped, or nil.
func receiverNamed(info *types.Info, e ast.Expr) *types.Named {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// fromTelemetry reports whether the named type is declared in the
// telemetry package.
func fromTelemetry(n *types.Named) bool {
	return n != nil && n.Obj() != nil && n.Obj().Pkg() != nil && telemetryPkg(n.Obj().Pkg().Path())
}
