package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crumbcruncher/internal/lint/analysis"
)

// MapOrder flags ranging over a map while producing order-sensitive
// output: appending to an outer slice that is never sorted afterwards,
// writing to an outer builder/buffer/encoder, printing, or emitting
// order-sensitive telemetry (spans, gauge sets). Map iteration order is
// deliberately randomized by the runtime, so each of these makes JSON,
// reports or metrics differ run to run — the canonical source of
// nondeterministic output in this codebase.
//
// The deterministic idiom is untouched: collecting keys into a slice
// and sorting it before use is recognized (a sort/slices call on the
// collected slice after the loop suppresses the append finding), and
// commutative telemetry (counter adds, histogram observes) stays legal
// because its final state is order-independent.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive output produced while ranging over a map\n\n" +
		"Collect keys, sort, then iterate; map order is randomized and leaks\n" +
		"straight into JSON, reports and traces.",
	Run: runMapOrder,
}

// mapWriteMethods are methods that accumulate output in call order.
var mapWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// mapPrintFuncs are fmt emitters that publish in call order.
var mapPrintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// telemetryOrdered are telemetry methods whose effect depends on call
// order: spans land in the tracer ring in sequence, and a gauge keeps
// its last write. Counter.Add/Inc and Histogram.Observe are commutative
// and therefore fine inside a map range.
var telemetryOrdered = map[string]bool{
	"StartSpan": true, "End": true, "EndErr": true,
	"Record": true, "Set": true,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if r, ok := n.(*ast.RangeStmt); ok && isMapRange(pass.TypesInfo, r) {
				checkMapRange(pass, r, enclosingBody(f, r))
			}
			return true
		})
	}
	return nil, nil
}

// enclosingBody returns the body of the innermost function containing
// the node, or nil for file scope (impossible for statements).
func enclosingBody(f *ast.File, target ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= target.Pos() && target.End() <= body.End() {
			if best == nil || body.Pos() >= best.Pos() {
				best = body // innermost containing function wins
			}
		}
		return true
	})
	return best
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange reports order-sensitive effects inside the body of a
// range-over-map statement.
func checkMapRange(pass *analysis.Pass, r *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, r, funcBody, n)
		case *ast.CallExpr:
			checkMapRangeCall(pass, r, n)
		}
		return true
	})
}

// checkMapRangeAppend flags `outer = append(outer, ...)` in the body
// unless the collected slice is sorted after the loop (the collect-keys
// idiom).
func checkMapRangeAppend(pass *analysis.Pass, r *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue // keyed targets (m[k] = append(...)) are order-free
		}
		obj := pass.TypesInfo.ObjectOf(target)
		if obj == nil || insideRange(r, obj.Pos()) {
			continue // per-iteration slice: order never observed
		}
		if funcBody != nil && sortedAfter(pass.TypesInfo, funcBody, r.End(), obj) {
			continue // collect-then-sort idiom
		}
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			End: call.End(),
			Message: "append to " + target.Name + " inside range over a map records map-iteration order; " +
				"sort " + target.Name + " after the loop, or iterate sorted keys",
		})
	}
}

// checkMapRangeCall flags emission calls whose effect depends on the
// iteration order.
func checkMapRangeCall(pass *analysis.Pass, r *ast.RangeStmt, call *ast.CallExpr) {
	if path, name, ok := pkgFunc(pass.TypesInfo, call.Fun); ok {
		if path == "fmt" && mapPrintFuncs[name] {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				End:     call.End(),
				Message: "fmt." + name + " inside range over a map emits output in map-iteration order; iterate sorted keys",
			})
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := receiverNamed(pass.TypesInfo, sel.X)
	if fromTelemetry(recv) && telemetryOrdered[sel.Sel.Name] {
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			End: call.End(),
			Message: recv.Obj().Name() + "." + sel.Sel.Name + " inside range over a map is order-sensitive telemetry " +
				"(span sequence / last write); iterate sorted keys",
		})
		return
	}
	if !mapWriteMethods[sel.Sel.Name] {
		return
	}
	// Writes into a receiver that outlives the loop accumulate in map
	// order; a builder declared inside the body is a per-iteration temp.
	if root, ok := rootIdent(sel.X); ok {
		if obj := pass.TypesInfo.ObjectOf(root); obj != nil && insideRange(r, obj.Pos()) {
			return
		}
	}
	pass.Report(analysis.Diagnostic{
		Pos: call.Pos(),
		End: call.End(),
		Message: sel.Sel.Name + " inside range over a map writes in map-iteration order; " +
			"iterate sorted keys or buffer per key and join deterministically",
	})
}

// insideRange reports whether pos falls within the range statement.
func insideRange(r *ast.RangeStmt, pos token.Pos) bool {
	return pos >= r.Pos() && pos < r.End()
}

// isBuiltinAppend reports whether the call is to the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a sort/slices call mentioning obj appears
// after pos in the function body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		path, _, ok := pkgFunc(info, call.Fun)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors/indexes/parens to the leftmost
// identifier: b.buf[i] -> b.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
