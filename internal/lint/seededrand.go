package lint

import (
	"go/ast"
	"strconv"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// SeededRand forbids math/rand outside internal/stats. All randomness
// must descend from stats.RNG's seed lineage (DeriveSeed / Splitter),
// which is what makes a run a pure function of its seed: the global
// math/rand source is process-wide mutable state, and even a locally
// constructed rand.New hides its seed from the provenance record.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand outside internal/stats; use stats.RNG lineage\n\n" +
		"Global rand functions and raw rand.New sources bypass the seed\n" +
		"derivation tree that makes runs reproducible.",
	Run: runSeededRand,
}

// randPackages are the import paths the rule covers. Both rand
// generations are forbidden: v2 has no global Seed but its global
// functions are still process-seeded.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// statsPkg reports whether path is the sanctioned wrapper package.
func statsPkg(path string) bool {
	return path == "crumbcruncher/internal/stats" || strings.HasSuffix(path, "/internal/stats")
}

func runSeededRand(pass *analysis.Pass) (interface{}, error) {
	if statsPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		reported := false
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.TypesInfo, sel)
			if !ok || !randPackages[path] {
				return true
			}
			reported = true
			pass.Report(analysis.Diagnostic{
				Pos: sel.Pos(),
				End: sel.End(),
				Message: "rand." + name + " draws from " + path + ", outside the seeded stats.RNG lineage; " +
					"derive randomness from stats.NewRNG/Splitter so runs stay a pure function of the seed",
			})
			return true
		})
		if reported {
			continue
		}
		// No qualified uses but the package is imported anyway (dot or
		// blank import): flag the import itself.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPackages[path] {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos:     imp.Pos(),
				End:     imp.End(),
				Message: "import of " + path + " outside internal/stats; use the seeded stats.RNG lineage instead",
			})
		}
	}
	return nil, nil
}
