package lint

import (
	"go/ast"

	"crumbcruncher/internal/lint/analysis"
)

// Wallclock forbids reading the wall clock in pipeline code. Every
// schedule-dependent quantity the pipeline computes must come from the
// virtual clock or a seeded RNG; this is the analyzer that would have
// caught PR 4's `ts=` bug, where web.benignQuery read the live shared
// virtual clock from a worker goroutine and made metrics depend on the
// parallel schedule.
//
// Exemptions: *_test.go files (tests and benchmarks measure real time
// by design), and sites annotated //crumb:allow wallclock — the
// telemetry stopwatch, shard timing, and CLI progress reporting are the
// intended members of that explicit allowlist.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, Sleep, timers) outside annotated sites\n\n" +
		"Run results must be a pure function of the seed; real time may only be\n" +
		"observed at sites visibly annotated with //crumb:allow wallclock.",
	Run: runWallclock,
}

// wallclockForbidden lists the time package's wall-clock entry points.
// time.Date, time.Parse, time.Unix and friends are pure and stay legal.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallclock(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.TypesInfo, sel)
			if !ok || path != "time" || !wallclockForbidden[name] {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: sel.Pos(),
				End: sel.End(),
				Message: "time." + name + " reads the wall clock, making results depend on the host and schedule; " +
					"use the virtual clock or a seeded RNG, or annotate a legitimately-wall site with //crumb:allow wallclock",
			})
			return true
		})
	}
	return nil, nil
}
