package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"crumbcruncher/internal/lint/analysis"
)

// SharedWrite is the determinism guard for the parallel stages: inside
// a parallel.ForEach* body every iteration runs concurrently, so the
// only sanctioned way to produce output is the merge discipline PR 1
// established — each iteration fills its own pre-sized slot
// (`out[i] = ...`, indexed by the body's index parameter) and a
// deterministic index-ordered reduce runs afterwards. Any other write
// to captured state (scalars, maps, fields, non-slot slice elements)
// races, and worse, merges in scheduler order: the byte-identical-
// output guarantee dies silently. The analyzer is interprocedural: a
// helper that mutates its arguments is summarized by a fact, so
// `agg.add(x)` inside a body is caught even when add lives in another
// package — while known concurrency-safe sinks (the sharded interner,
// telemetry's locked registries, sync/atomic) stay sanctioned.
var SharedWrite = &analysis.Analyzer{
	Name: "sharedwrite",
	Doc: "report writes to captured shared state inside parallel.ForEach* " +
		"bodies that bypass the slot-per-index merge discipline",
	Version:   "v1",
	UsesFacts: true,
	Run:       runSharedWrite,
}

// sharedMutFact summarizes which of a function's pointer-like inputs
// (receiver, pointer/map/slice parameters) its body writes through,
// directly or transitively.
type sharedMutFact struct {
	MutatesRecv bool  `json:"mutates_recv,omitempty"`
	Mutates     []int `json:"mutates,omitempty"`
}

func (*sharedMutFact) AFact() {}

func (f *sharedMutFact) mutatesParam(i int) bool { return containsInt(f.Mutates, i) }
func (f *sharedMutFact) empty() bool             { return !f.MutatesRecv && len(f.Mutates) == 0 }

// sharedSafePkgs are packages whose types are concurrency-safe by
// design (internal locking, atomic operations) and deterministic to
// mutate from parallel bodies: mutating them is the sanctioned idiom,
// not a race.
var sharedSafePkgs = []string{"intern", "telemetry", "sync", "sync/atomic"}

func isSharedSafeType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	for _, s := range sharedSafePkgs {
		if pkgSuffixIs(named.Obj().Pkg().Path(), s) {
			return true
		}
	}
	return false
}

func runSharedWrite(pass *analysis.Pass) (interface{}, error) {
	computeMutFacts(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isParallelForEach(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkParallelBody(pass, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// --- fact computation -------------------------------------------------------

// computeMutFacts exports sharedMutFact for every function that writes
// through its receiver or a pointer-like parameter, iterating to a
// fixpoint so indirection through same-package helpers is credited.
func computeMutFacts(pass *analysis.Pass) {
	if pass.Facts == nil {
		return
	}
	type fnDecl struct {
		decl *ast.FuncDecl
		fn   *types.Func
	}
	var fns []fnDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{fd, fn})
			}
		}
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, fd := range fns {
			f := mutSummary(pass, fd.decl, fd.fn)
			if f == nil || f.empty() {
				continue
			}
			prev := &sharedMutFact{}
			had := pass.ImportObjectFact(fd.fn, prev)
			if !had || prev.MutatesRecv != f.MutatesRecv || !equalInts(prev.Mutates, f.Mutates) {
				pass.ExportObjectFact(fd.fn, f)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// mutSummary computes one function's mutation summary.
func mutSummary(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func) *sharedMutFact {
	// Collect the mutable inputs: object -> (-1 for receiver, else
	// parameter index).
	inputs := map[types.Object]int{}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil && isMutableKind(obj.Type()) {
			inputs[obj] = -1
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for k := 0; k < n; k++ {
				if k < len(field.Names) {
					if obj := pass.TypesInfo.Defs[field.Names[k]]; obj != nil && isMutableKind(obj.Type()) {
						inputs[obj] = idx
					}
				}
				idx++
			}
		}
	}
	if len(inputs) == 0 {
		return nil
	}
	out := &sharedMutFact{}
	record := func(obj types.Object) {
		i, ok := inputs[obj]
		if !ok {
			return
		}
		if i < 0 {
			out.MutatesRecv = true
		} else if !containsInt(out.Mutates, i) {
			out.Mutates = append(out.Mutates, i)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		scanMutations(pass, n, false, func(obj types.Object, _ ast.Node) {
			record(obj)
		})
		return true
	})
	sort.Ints(out.Mutates)
	return out
}

// isMutableKind reports whether writes through a value of type t are
// visible to the caller (pointer, map, slice).
func isMutableKind(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// scanMutations invokes report for every object that node n writes
// through: assignment/inc-dec targets rooted at the object, clear/
// delete builtins, and calls whose callee's fact mutates the
// corresponding input. bareWrites controls whether assigning the bare
// variable itself counts: for fact computation it does not (rebinding a
// parameter name is invisible to the caller), but inside a parallel
// body a closure assigns *through* the captured variable, so `total +=
// x` is exactly the shared write the analyzer exists to catch.
func scanMutations(pass *analysis.Pass, n ast.Node, bareWrites bool, report func(obj types.Object, site ast.Node)) {
	rooted := func(e ast.Expr) types.Object {
		if _, bare := unwrapExpr(e).(*ast.Ident); bare && !bareWrites {
			return nil // rebinding the name, not writing through it
		}
		return rootObject(pass, e)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if obj := rooted(l); obj != nil {
				report(obj, n)
			}
		}
	case *ast.IncDecStmt:
		if obj := rooted(n.X); obj != nil {
			report(obj, n)
		}
	case *ast.CallExpr:
		if id, ok := unwrapExpr(n.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if (id.Name == "clear" || id.Name == "delete") && len(n.Args) > 0 {
					if obj := rootObject(pass, n.Args[0]); obj != nil {
						report(obj, n)
					}
				}
				return
			}
		}
		fn := staticCallee(pass.TypesInfo, n)
		if fn == nil {
			return
		}
		fact := &sharedMutFact{}
		if !pass.ImportObjectFact(fn, fact) {
			return
		}
		if fact.MutatesRecv {
			if sel, ok := unwrapExpr(n.Fun).(*ast.SelectorExpr); ok {
				if obj := rootObject(pass, sel.X); obj != nil {
					report(obj, n)
				}
			}
		}
		for i, a := range n.Args {
			if fact.mutatesParam(i) {
				if obj := rootObject(pass, a); obj != nil {
					report(obj, n)
				}
			}
		}
	}
}

// --- parallel-body checking -------------------------------------------------

// isParallelForEach matches calls to the parallel package's fan-out
// functions (ForEach, ForEachCtx, ForEachTimed, ForEachTimedCtx, and
// whatever siblings grow later — any parallel.* function taking a body
// literal counts).
func isParallelForEach(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return pkgSuffixIs(fn.Pkg().Path(), "parallel")
}

// checkParallelBody verifies one fan-out body literal.
func checkParallelBody(pass *analysis.Pass, lit *ast.FuncLit) {
	indexParam := litIndexParam(pass, lit)

	capturedBy := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	// A write target is sanctioned when it is a slot store: an element
	// of a captured slice/array indexed exactly by the body's index
	// parameter (possibly through further sub-structure, like
	// parts[ci].field or out[i][k]).
	sanctionedSlot := func(e ast.Expr) bool {
		for {
			switch x := unwrapExpr(e).(type) {
			case *ast.IndexExpr:
				if id, ok := unwrapExpr(x.Index).(*ast.Ident); ok &&
					indexParam != nil && pass.TypesInfo.ObjectOf(id) == indexParam {
					if tv, ok := pass.TypesInfo.Types[x.X]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Slice, *types.Array, *types.Pointer:
							return true
						}
					}
				}
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return false
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		scanMutations(pass, n, true, func(obj types.Object, site ast.Node) {
			if !capturedBy(obj) {
				return
			}
			if isSharedSafeType(obj.Type()) {
				return
			}
			switch s := site.(type) {
			case *ast.AssignStmt:
				for _, l := range s.Lhs {
					if rootObject(pass, l) == obj && !sanctionedSlot(l) {
						pass.Reportf(l.Pos(),
							"write to captured %s inside a parallel body is not a "+
								"slot store indexed by the body's index parameter; "+
								"shared writes race and break deterministic merging", obj.Name())
					}
				}
			case *ast.IncDecStmt:
				if !sanctionedSlot(s.X) {
					pass.Reportf(s.Pos(),
						"write to captured %s inside a parallel body is not a "+
							"slot store indexed by the body's index parameter; "+
							"shared writes race and break deterministic merging", obj.Name())
				}
			case *ast.CallExpr:
				name := "a callee"
				if fn := staticCallee(pass.TypesInfo, s); fn != nil {
					name = fn.Name()
				} else if id, ok := unwrapExpr(s.Fun).(*ast.Ident); ok {
					name = id.Name
				}
				pass.Reportf(s.Pos(),
					"%s mutates captured %s inside a parallel body; shared "+
						"mutation races and breaks deterministic merging", name, obj.Name())
			}
		})
		return true
	})
}

// litIndexParam returns the object of the body literal's int index
// parameter (the `i` of func(i int)), or nil.
func litIndexParam(pass *analysis.Pass, lit *ast.FuncLit) types.Object {
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Int {
				return obj
			}
		}
	}
	return nil
}
