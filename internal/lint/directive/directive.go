// Package directive parses the //crumb:allow escape hatch that exempts
// a specific source location from a crumblint analyzer.
//
// Syntax, anywhere a comment may appear:
//
//	//crumb:allow <name>[,<name>...] [— free-form justification]
//
// Scope rules, chosen so every exemption stays visible in a diff:
//
//   - a trailing directive exempts the line it shares with code;
//   - a directive on a line of its own exempts the next line;
//   - a directive in a function's doc comment exempts the whole
//     function body.
//
// There is no file- or package-level form on purpose: a blanket waiver
// would defeat the point of machine-checking the invariants.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the directive marker. Like all Go directives it must start
// the comment with no space after "//".
const prefix = "//crumb:allow"

// Allows records every directive of a set of files, queryable by
// analyzer name and position.
type Allows struct {
	fset *token.FileSet
	// lines maps file -> line -> analyzer names allowed on that line.
	lines map[string]map[int]map[string]bool
	// spans lists position ranges (function bodies) with allowed names.
	spans []span
}

type span struct {
	pos, end token.Pos
	names    map[string]bool
}

// Collect scans the files' comments and function doc comments for
// directives.
func Collect(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{fset: fset, lines: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				// The directive covers its own line and, when it stands
				// alone, the line below it — the two places a reader
				// expects a suppression to sit.
				a.allowLine(pos.Filename, pos.Line, names)
				a.allowLine(pos.Filename, pos.Line+1, names)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			names := map[string]bool{}
			for _, c := range fd.Doc.List {
				if ns, ok := parse(c.Text); ok {
					for n := range ns {
						names[n] = true
					}
				}
			}
			if len(names) > 0 {
				a.spans = append(a.spans, span{pos: fd.Pos(), end: fd.End(), names: names})
			}
		}
	}
	return a
}

func (a *Allows) allowLine(file string, line int, names map[string]bool) {
	byLine := a.lines[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		a.lines[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = make(map[string]bool)
		byLine[line] = set
	}
	for n := range names {
		set[n] = true
	}
}

// Allowed reports whether analyzer name is exempted at pos.
func (a *Allows) Allowed(name string, pos token.Pos) bool {
	if a == nil || !pos.IsValid() {
		return false
	}
	p := a.fset.Position(pos)
	if byLine := a.lines[p.Filename]; byLine != nil && byLine[p.Line][name] {
		return true
	}
	for _, s := range a.spans {
		if s.names[name] && pos >= s.pos && pos < s.end {
			return true
		}
	}
	return false
}

// parse extracts the analyzer names of a directive comment, or ok=false
// when the comment is not one.
func parse(text string) (map[string]bool, bool) {
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //crumb:allowance
	}
	// Names are the first whitespace-delimited field; anything after is
	// justification prose.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	names := make(map[string]bool)
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names[n] = true
		}
	}
	return names, len(names) > 0
}
