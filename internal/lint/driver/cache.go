package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"crumbcruncher/internal/lint/analysis"
	"crumbcruncher/internal/runio"
)

// cacheSalt versions the cache entry format itself; bump it when the
// entry shape or keying scheme changes.
const cacheSalt = "crumblint-cache-v1"

// lintCache is the driver's content-hash result cache (bin/.lintcache).
// An entry is keyed by everything that can change a unit's diagnostics:
// the analyzer set (names and versions), the toolchain, the unit's
// source bytes, and the fact sets of its module dependencies. Keying
// dependencies by their *fact hash* rather than their source hash means
// editing a dependency invalidates dependents only when its exported
// facts actually change — a comment-only edit re-lints one package, not
// the tree above it.
type lintCache struct {
	dir        string
	configHash string // salt + toolchain + analyzer names/versions
}

// cacheEntry is the on-disk value: the unit's findings plus its
// exported facts (dependents need the facts even on a hit).
type cacheEntry struct {
	Findings []cachedFinding `json:"findings"`
	Facts    json.RawMessage `json:"facts"`
}

// cachedFinding is finding with serializable positions.
type cachedFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	EndFile  string `json:"end_file,omitempty"`
	EndLine  int    `json:"end_line,omitempty"`
	EndCol   int    `json:"end_column,omitempty"`
	Message  string `json:"message"`
}

// openCache prepares a cache rooted at dir for the given analyzer set.
func openCache(dir string, analyzers []*analysis.Analyzer) (*lintCache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("crumblint: cache dir: %w", err)
	}
	h := sha256.New()
	fmt.Fprintln(h, cacheSalt)
	fmt.Fprintln(h, runtime.Version())
	names := make([]string, 0, len(analyzers))
	byName := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		v := a.Version
		if v == "" {
			v = "v0"
		}
		names = append(names, a.Name)
		byName[a.Name] = v
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s@%s\n", n, byName[n])
	}
	return &lintCache{
		dir:        dir,
		configHash: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// key computes the cache key for a unit, hashing source bytes and the
// dependency fact sets obtained through factsFor (which the scheduler
// guarantees are complete by the time the unit runs).
func (c *lintCache) key(u unit, factsFor func(string) *analysis.FactSet) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, c.configHash)
	fmt.Fprintln(h, u.id)
	fmt.Fprintln(h, u.goVersion, u.compiler)
	for _, name := range u.goFiles {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %x\n", name, sum)
	}
	for _, d := range u.deps {
		var factHash [32]byte
		if fs := factsFor(d); fs != nil {
			enc, err := fs.Encode()
			if err != nil {
				return "", err
			}
			factHash = sha256.Sum256(enc)
		}
		fmt.Fprintf(h, "dep %s %x\n", d, factHash)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// lookup returns the unit's cache key and, on a hit, its decoded
// findings and facts. A corrupt or unreadable entry is a miss.
func (c *lintCache) lookup(u unit, factsFor func(string) *analysis.FactSet) (key string, hit bool, fs []finding, facts *analysis.FactSet) {
	key, err := c.key(u, factsFor)
	if err != nil {
		return "", false, nil, nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return key, false, nil, nil
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return key, false, nil, nil
	}
	facts, err = analysis.DecodeFactSet(e.Facts)
	if err != nil {
		return key, false, nil, nil
	}
	for _, cf := range e.Findings {
		f := finding{analyzer: cf.Analyzer, message: cf.Message}
		f.pos.Filename, f.pos.Line, f.pos.Column = cf.File, cf.Line, cf.Column
		f.end.Filename, f.end.Line, f.end.Column = cf.EndFile, cf.EndLine, cf.EndCol
		fs = append(fs, f)
	}
	return key, true, fs, facts
}

// store writes a unit's results under key. Failures are deliberately
// swallowed: a broken cache must never break the lint.
func (c *lintCache) store(key string, fs []finding, facts *analysis.FactSet) {
	enc, err := facts.Encode()
	if err != nil {
		return
	}
	e := cacheEntry{Facts: enc}
	for _, f := range fs {
		e.Findings = append(e.Findings, cachedFinding{
			Analyzer: f.analyzer,
			File:     f.pos.Filename, Line: f.pos.Line, Column: f.pos.Column,
			EndFile: f.end.Filename, EndLine: f.end.Line, EndCol: f.end.Column,
			Message: f.message,
		})
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return
	}
	// Atomic publish; concurrent writers race benignly.
	_ = runio.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

func (c *lintCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}
