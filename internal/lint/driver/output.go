package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// Finding is the exported, serializable form of one diagnostic, as
// emitted by -json and -sarif and recorded in baseline files. File is
// relative to the working directory when possible, so baselines and
// SARIF artifacts travel between checkouts.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	EndLine  int    `json:"end_line,omitempty"`
	EndCol   int    `json:"end_column,omitempty"`
	Message  string `json:"message"`
}

// exportFindings converts internal findings, relativizing paths.
func exportFindings(fs []finding) []Finding {
	cwd, _ := os.Getwd()
	rel := func(p string) string {
		if cwd == "" || p == "" {
			return p
		}
		if r, err := filepath.Rel(cwd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return p
	}
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		e := Finding{
			Analyzer: f.analyzer,
			File:     rel(f.pos.Filename),
			Line:     f.pos.Line,
			Column:   f.pos.Column,
			Message:  f.message,
		}
		if f.end.Line > 0 {
			e.EndLine, e.EndCol = f.end.Line, f.end.Column
		}
		out = append(out, e)
	}
	return out
}

// printFindings writes findings in the canonical file:line:col form the
// acceptance tests (and editors) expect.
func printFindings(w io.Writer, fs []Finding) {
	for _, f := range fs {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
	}
}

// writeJSON emits the findings as a JSON array (stable field order,
// trailing newline) for tooling.
func writeJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if fs == nil {
		fs = []Finding{}
	}
	return enc.Encode(fs)
}

// --- SARIF ------------------------------------------------------------------

// writeSARIF emits a minimal SARIF 2.1.0 log: one run, one rule per
// analyzer, one result per finding. This is the subset GitHub code
// scanning and most SARIF viewers consume.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, fs []Finding) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID   string `json:"id"`
		Name string `json:"name"`
		Help sarifMessage `json:"shortDescription"`
	}
	type sarifArtifact struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
		EndLine     int `json:"endLine,omitempty"`
		EndColumn   int `json:"endColumn,omitempty"`
	}
	type sarifPhysical struct {
		ArtifactLocation sarifArtifact `json:"artifactLocation"`
		Region           sarifRegion   `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysical `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	var rules []sarifRule
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, Name: a.Name, Help: sarifMessage{Text: doc}})
	}
	results := []sarifResult{}
	for _, f := range fs {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region: sarifRegion{
						StartLine:   f.Line,
						StartColumn: f.Column,
						EndLine:     f.EndLine,
						EndColumn:   f.EndCol,
					},
				},
			}},
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "crumblint", InformationURI: "https://example.invalid/crumblint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// --- baseline ---------------------------------------------------------------

// baselineEntry identifies a known finding. Line numbers are
// deliberately absent: a baseline survives unrelated edits above the
// finding, and dies with the finding itself (message + file + analyzer
// is the identity).
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// baseline is a checked-in inventory of pre-existing findings that must
// not fail CI while still failing it for anything new.
type baseline struct {
	entries map[baselineEntry]int // entry -> allowed count
}

func baselineKey(f Finding) baselineEntry {
	return baselineEntry{Analyzer: f.Analyzer, File: filepath.ToSlash(f.File), Message: f.Message}
}

// loadBaseline reads a baseline file; a missing file is an empty
// baseline, so bootstrapping needs no special case.
func loadBaseline(path string) (*baseline, error) {
	b := &baseline{entries: map[baselineEntry]int{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, e := range entries {
		e.File = filepath.ToSlash(e.File)
		b.entries[e]++
	}
	return b, nil
}

// filter splits findings into new (returned) and baselined (counted).
// Counts match multiset-style: two identical baselined findings need
// two baseline entries.
func (b *baseline) filter(fs []Finding) ([]Finding, int) {
	remaining := make(map[baselineEntry]int, len(b.entries))
	for k, v := range b.entries {
		remaining[k] = v
	}
	var out []Finding
	suppressed := 0
	for _, f := range fs {
		k := baselineKey(f)
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		out = append(out, f)
	}
	return out, suppressed
}

// writeBaseline records the given findings as the new baseline.
func writeBaseline(path string, fs []Finding) error {
	entries := make([]baselineEntry, 0, len(fs))
	for _, f := range fs {
		entries = append(entries, baselineKey(f))
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
