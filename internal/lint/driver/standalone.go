package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"crumbcruncher/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	ForTest    string
	Deps       []string
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// baseImportPath strips a test-variant suffix:
// "p [p.test]" -> "p".
func baseImportPath(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i]
	}
	return id
}

// loadPackages shells out to `go list -export -deps -json` (plus -test
// when includeTests is set) and returns the analysis units among the
// listed patterns, with import resolution backed by the export data the
// build cache produced.
func loadPackages(patterns []string, includeTests bool) ([]unit, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,DepOnly,ForTest,Deps,ImportMap,Module,Error"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}

	byID := make(map[string]*listPackage)
	var order []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		cp := p
		byID[cp.ImportPath] = &cp
		order = append(order, &cp)
	}

	// A package with in-package test files appears twice: as itself and
	// as "p [p.test]" whose GoFiles additionally include the test files.
	// Analyze the variant and skip the plain entry so shared files are
	// checked exactly once.
	hasVariant := make(map[string]bool)
	for _, p := range order {
		if p.ForTest != "" && baseImportPath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}

	// The analyzed set, keyed by canonical import path — dependency
	// edges and fact lookups are both expressed against it.
	analyzed := make(map[string]bool)
	for _, p := range order {
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") || len(p.GoFiles) == 0 {
			continue
		}
		if hasVariant[p.ImportPath] && p.ForTest == "" {
			continue
		}
		analyzed[baseImportPath(p.ImportPath)] = true
	}

	var units []unit
	for _, p := range order {
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if hasVariant[p.ImportPath] && p.ForTest == "" {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// cgo units cannot be type-checked without the generated
			// sources; the repository has none, but fail loudly rather
			// than silently skipping if one ever appears.
			return nil, fmt.Errorf("%s: cgo packages are not supported by crumblint's standalone mode; use go vet -vettool", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		self := baseImportPath(p.ImportPath)
		var deps []string
		seenDep := map[string]bool{}
		for _, d := range p.Deps {
			d = baseImportPath(d)
			if d != self && analyzed[d] && !seenDep[d] {
				seenDep[d] = true
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		importMap := p.ImportMap
		units = append(units, unit{
			importPath: self,
			id:         p.ImportPath,
			goFiles:    files,
			goVersion:  goVersion,
			compiler:   "gc",
			deps:       deps,
			resolve: func(path string) (string, error) {
				if mapped, ok := importMap[path]; ok {
					path = mapped
				}
				dep := byID[path]
				if dep == nil || dep.Export == "" {
					return "", fmt.Errorf("no export data for %q", path)
				}
				return dep.Export, nil
			},
		})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].id < units[j].id })
	return units, nil
}

// Options configures a standalone run.
type Options struct {
	Patterns     []string
	IncludeTests bool
	Analyzers    []*analysis.Analyzer

	// CacheDir enables content-hash result caching when non-empty
	// (bin/.lintcache in the Makefile). A cached unit re-runs zero
	// analyzers.
	CacheDir string

	// Format selects the output written to w by Run: "plain" (default),
	// "json" or "sarif".
	Format string

	// BaselinePath, when non-empty, names a JSON baseline file; known
	// findings are suppressed from output and from the returned
	// Findings slice.
	BaselinePath string

	// WriteBaselinePath, when non-empty, records the run's findings as
	// the new baseline instead of reporting them.
	WriteBaselinePath string

	// Parallel caps concurrent units; 0 means GOMAXPROCS.
	Parallel int
}

// Result reports what a standalone run did — the counters exist so
// tests can assert cache behavior ("warm cache re-runs zero
// analyzers") rather than trusting it.
type Result struct {
	Findings     []Finding // after baseline filtering, deterministic order
	Suppressed   int       // findings matched by the baseline
	UnitsTotal   int
	UnitsCached  int
	AnalyzersRun int // analyzer executions (UnitsTotal-UnitsCached per-unit sets)
}

// Run loads, schedules and analyzes the packages matched by
// opts.Patterns, writes findings to w in opts.Format, and returns the
// run's Result. Units run in parallel in dependency order (a unit
// starts only after the units it imports have finished, so their facts
// are available), with per-unit result caching when CacheDir is set.
func Run(w io.Writer, opts Options) (*Result, error) {
	if err := analysis.Validate(opts.Analyzers); err != nil {
		return nil, err
	}
	units, err := loadPackages(opts.Patterns, opts.IncludeTests)
	if err != nil {
		return nil, err
	}

	var cache *lintCache
	if opts.CacheDir != "" {
		cache, err = openCache(opts.CacheDir, opts.Analyzers)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{UnitsTotal: len(units)}

	// Dependency-ordered parallel execution: repeatedly run every unit
	// whose module deps are done, as one parallel wave. The wave shape
	// keeps completion deterministic without a work-stealing scheduler;
	// package DAGs are shallow enough that waves saturate the pool.
	type unitResult struct {
		findings []finding
		facts    *analysis.FactSet
		cached   bool
		err      error
	}
	done := make(map[string]*unitResult, len(units))
	factsFor := func(path string) *analysis.FactSet {
		if r, ok := done[path]; ok && r != nil {
			return r.facts
		}
		return nil
	}

	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	pending := make([]unit, len(units))
	copy(pending, units)
	for len(pending) > 0 {
		var wave []unit
		var next []unit
		for _, u := range pending {
			ready := true
			for _, d := range u.deps {
				if _, ok := done[d]; !ok {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, u)
			} else {
				next = append(next, u)
			}
		}
		if len(wave) == 0 {
			// A dependency cycle through the unit set cannot happen in
			// valid Go; guard against it anyway.
			return nil, fmt.Errorf("crumblint: dependency deadlock among %d units", len(next))
		}

		results := make([]*unitResult, len(wave))
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				u := wave[i]
				r := &unitResult{}
				var key string
				if cache != nil {
					var hit bool
					key, hit, r.findings, r.facts = cache.lookup(u, factsFor)
					if hit {
						r.cached = true
						results[i] = r
						return
					}
				}
				u.depFacts = factsFor
				fset := token.NewFileSet()
				r.findings, r.facts, r.err = checkUnit(fset, u, opts.Analyzers)
				if r.err == nil && cache != nil && key != "" {
					cache.store(key, r.findings, r.facts)
				}
				results[i] = r
			}(i)
		}
		wg.Wait()

		for i, u := range wave {
			r := results[i]
			if r.err != nil {
				return nil, fmt.Errorf("%s: %w", u.id, r.err)
			}
			done[u.importPath] = r
			if r.cached {
				res.UnitsCached++
			} else {
				res.AnalyzersRun += len(opts.Analyzers)
			}
		}
		pending = next
	}

	// Deterministic output order: unit id order, findings pre-sorted.
	var all []finding
	for _, u := range units {
		all = append(all, done[u.importPath].findings...)
	}
	findings := exportFindings(all)

	if opts.WriteBaselinePath != "" {
		if err := writeBaseline(opts.WriteBaselinePath, findings); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %d baseline entries to %s\n", len(findings), opts.WriteBaselinePath)
		return res, nil
	}

	if opts.BaselinePath != "" {
		base, err := loadBaseline(opts.BaselinePath)
		if err != nil {
			return nil, err
		}
		findings, res.Suppressed = base.filter(findings)
	}
	res.Findings = findings

	switch opts.Format {
	case "", "plain":
		printFindings(w, findings)
	case "json":
		if err := writeJSON(w, findings); err != nil {
			return nil, err
		}
	case "sarif":
		if err := writeSARIF(w, opts.Analyzers, findings); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown output format %q (want plain, json or sarif)", opts.Format)
	}
	return res, nil
}

// RunStandalone analyzes the packages matched by patterns and writes
// findings to w in the plain format. It returns the number of findings;
// a non-nil error means the analysis itself could not run (load or
// type-check failure). It is the compatibility wrapper over Run that
// the self-lint test and older callers use — no cache, no baseline.
func RunStandalone(w io.Writer, patterns []string, includeTests bool, analyzers []*analysis.Analyzer) (int, error) {
	res, err := Run(w, Options{
		Patterns:     patterns,
		IncludeTests: includeTests,
		Analyzers:    analyzers,
	})
	if err != nil {
		return 0, err
	}
	return len(res.Findings), nil
}

// runStandaloneMain is Run with command-line semantics.
func runStandaloneMain(w io.Writer, opts Options) {
	res, err := Run(w, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
		os.Exit(2)
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
