package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// baseImportPath strips a test-variant suffix:
// "p [p.test]" -> "p".
func baseImportPath(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i]
	}
	return id
}

// loadPackages shells out to `go list -export -deps -json` (plus -test
// when includeTests is set) and returns the analysis units among the
// listed patterns, with import resolution backed by the export data the
// build cache produced.
func loadPackages(patterns []string, includeTests bool) ([]unit, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,DepOnly,ForTest,ImportMap,Module,Error"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}

	byID := make(map[string]*listPackage)
	var order []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		cp := p
		byID[cp.ImportPath] = &cp
		order = append(order, &cp)
	}

	// A package with in-package test files appears twice: as itself and
	// as "p [p.test]" whose GoFiles additionally include the test files.
	// Analyze the variant and skip the plain entry so shared files are
	// checked exactly once.
	hasVariant := make(map[string]bool)
	for _, p := range order {
		if p.ForTest != "" && baseImportPath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}

	var units []unit
	for _, p := range order {
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if hasVariant[p.ImportPath] && p.ForTest == "" {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// cgo units cannot be type-checked without the generated
			// sources; the repository has none, but fail loudly rather
			// than silently skipping if one ever appears.
			return nil, fmt.Errorf("%s: cgo packages are not supported by crumblint's standalone mode; use go vet -vettool", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		importMap := p.ImportMap
		units = append(units, unit{
			importPath: baseImportPath(p.ImportPath),
			id:         p.ImportPath,
			goFiles:    files,
			goVersion:  goVersion,
			compiler:   "gc",
			resolve: func(path string) (string, error) {
				if mapped, ok := importMap[path]; ok {
					path = mapped
				}
				dep := byID[path]
				if dep == nil || dep.Export == "" {
					return "", fmt.Errorf("no export data for %q", path)
				}
				return dep.Export, nil
			},
		})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].id < units[j].id })
	return units, nil
}

// RunStandalone analyzes the packages matched by patterns and writes
// findings to w. It returns the number of findings; a non-nil error
// means the analysis itself could not run (load or type-check failure).
func RunStandalone(w io.Writer, patterns []string, includeTests bool, analyzers []*analysis.Analyzer) (int, error) {
	units, err := loadPackages(patterns, includeTests)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	total := 0
	for _, u := range units {
		findings, err := checkUnit(fset, u, analyzers)
		if err != nil {
			return total, fmt.Errorf("%s: %w", u.id, err)
		}
		printPlain(w, findings)
		total += len(findings)
	}
	return total, nil
}

// runStandaloneMain is RunStandalone with command-line semantics.
func runStandaloneMain(patterns []string, includeTests bool, analyzers []*analysis.Analyzer) {
	n, err := RunStandalone(os.Stderr, patterns, includeTests, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
