package driver

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// Main is the entry point shared by cmd/crumblint: it dispatches
// between the build-tool handshakes (-V=full, -flags), unitchecker mode
// (a single *.cfg argument from `go vet -vettool`), and standalone mode
// (package patterns resolved through `go list`).
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix(progname() + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	versionFlag := flag.String("V", "", "print version and exit (-V=full is the go command's handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
	testsFlag := flag.Bool("tests", true, "standalone mode: also analyze test files")
	jsonFlag := flag.Bool("json", false, "standalone mode: emit findings as a JSON array")
	sarifFlag := flag.Bool("sarif", false, "standalone mode: emit findings as SARIF 2.1.0")
	baselineFlag := flag.String("baseline", "", "standalone mode: suppress findings listed in this baseline file")
	writeBaselineFlag := flag.String("write-baseline", "", "standalone mode: write current findings to this baseline file and exit 0")
	cacheFlag := flag.String("cache", "", "standalone mode: directory for the content-hash result cache (e.g. bin/.lintcache)")
	parallelFlag := flag.Int("parallel", 0, "standalone mode: max concurrent units (0 = GOMAXPROCS)")
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		usage := a.Doc
		if i := strings.IndexByte(usage, '\n'); i >= 0 {
			usage = usage[:i]
		}
		selected[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+usage)
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s machine-checks crumbcruncher's determinism, clock and telemetry invariants.

Usage:
	%[1]s [-NAME...] package...	# standalone, e.g. %[1]s ./...
	go vet -vettool=$(which %[1]s) ./...	# as a vet tool (covers test files)

Analyzers (all run by default; -NAME selects a subset):
`, progname())
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "	%-12s %s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags(analyzers)
		return
	}

	// Explicitly enabled analyzers narrow the run to just those; with no
	// selection flags every analyzer runs (vet semantics).
	var enabled []*analysis.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			enabled = append(enabled, a)
		}
	}
	if len(enabled) == 0 {
		enabled = analyzers
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], enabled)
		return
	}
	if len(args) == 0 {
		flag.Usage()
	}
	format := "plain"
	if *jsonFlag {
		format = "json"
	}
	if *sarifFlag {
		format = "sarif"
	}
	runStandaloneMain(os.Stdout, Options{
		Patterns:          args,
		IncludeTests:      *testsFlag,
		Analyzers:         enabled,
		CacheDir:          *cacheFlag,
		Format:            format,
		BaselinePath:      *baselineFlag,
		WriteBaselinePath: *writeBaselineFlag,
		Parallel:          *parallelFlag,
	})
}
