// Package driver runs crumblint analyzers over type-checked packages.
// It speaks two protocols with nothing beyond the standard library:
//
//   - standalone: load packages named by `./...`-style patterns through
//     `go list -export`, type-check them against the build cache's
//     export data, and analyze every unit (including test files);
//
//   - unitchecker: the `go vet -vettool` contract — answer -V=full and
//     -flags for the build tool, then analyze the single compilation
//     unit described by a JSON .cfg file vet hands us.
//
// Both paths funnel into checkUnit, so a diagnostic means the same
// thing no matter how the tool was invoked.
package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"crumbcruncher/internal/lint/analysis"
	"crumbcruncher/internal/lint/directive"
)

// unit is one compilation unit ready to analyze: parsed inputs plus an
// importer for everything it references.
type unit struct {
	importPath string // canonical path, test-variant suffix stripped
	id         string // display identity (may carry " [pkg.test]")
	goFiles    []string
	goVersion  string // e.g. "go1.22"; empty means the toolchain default
	compiler   string // "gc" unless the build tool says otherwise
	deps       []string // module-internal dependency import paths (standalone)

	// resolve maps a source-level import path to the export-data file
	// of the package it denotes in this unit's build.
	resolve func(path string) (string, error)

	// depFacts returns the fact set a dependency package exported, or
	// nil when none is available. Facts only flow inside the module
	// (the fact domain): both drivers gate on the import path's first
	// segment so standalone and vet-tool mode see the same facts and
	// agree on diagnostics.
	depFacts func(path string) *analysis.FactSet
}

// sameFactDomain reports whether two import paths share a first
// segment — the module boundary within which facts travel.
func sameFactDomain(a, b string) bool {
	cut := func(s string) string {
		if i := strings.IndexByte(s, '/'); i >= 0 {
			return s[:i]
		}
		return s
	}
	return cut(a) == cut(b)
}

// finding pairs a diagnostic with the analyzer that produced it.
type finding struct {
	analyzer string
	pos      token.Position
	end      token.Position
	message  string
}

// checkUnit parses, type-checks and analyzes one unit, returning
// directive-filtered findings sorted by position plus the facts the
// analyzers exported about the unit's own package. A parse or type
// error is returned as-is (callers decide whether that is fatal: vet's
// SucceedOnTypecheckFailure tolerates it, standalone mode does not).
func checkUnit(fset *token.FileSet, u unit, analyzers []*analysis.Analyzer) ([]finding, *analysis.FactSet, error) {
	var files []*ast.File
	for _, name := range u.goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compiler := u.compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, err := u.resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: u.goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(u.importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	// One fact set per unit: facts are namespaced by analyzer name, so
	// every analyzer's exports land in the same encodable set.
	facts := analysis.NewFactSet()
	depFacts := func(path string) *analysis.FactSet {
		if u.depFacts == nil || !sameFactDomain(path, u.importPath) {
			return nil
		}
		return u.depFacts(path)
	}

	allows := directive.Collect(fset, files)
	var out []finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Facts:     facts,
		}
		if a.UsesFacts {
			pass.DepFacts = depFacts
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.id, err)
		}
		for _, d := range diags {
			if allows.Allowed(a.Name, d.Pos) {
				continue
			}
			f := finding{analyzer: a.Name, pos: fset.Position(d.Pos), message: d.Message}
			if d.End.IsValid() {
				f.end = fset.Position(d.End)
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	return out, facts, nil
}

// printPlain writes findings in the canonical file:line:col form the
// acceptance tests (and editors) expect.
func printPlain(w io.Writer, fs []finding) {
	for _, f := range fs {
		fmt.Fprintf(w, "%s: %s [%s]\n", f.pos, f.message, f.analyzer)
	}
}
