package driver

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"crumbcruncher/internal/lint"
	"crumbcruncher/internal/lint/analysis"
)

// testModule writes a small two-package module exercising the
// fact-driven mustclose cases: the dep package exports dispositions
// (Drain releases, Count borrows) and the root package leaks a cursor
// that only the borrow fact makes visible.
const testModGomod = "module cachemod\n\ngo 1.22\n"

const testModDep = `package runstore

type Store struct{ open bool }

func Open(dir string) (*Store, error) {
	_ = dir
	return &Store{open: true}, nil
}

func (s *Store) Close() error { s.open = false; return nil }

type Cursor struct{ n int }

func (s *Store) Iter() *Cursor { return &Cursor{n: 3} }

func (c *Cursor) Next() bool { c.n--; return c.n > 0 }

func (c *Cursor) Close() error { return nil }

// Count borrows the cursor: the caller keeps its Close obligation.
func Count(c *Cursor) int {
	n := 0
	for c.Next() {
		n++
	}
	return n
}
`

const testModMain = `package main

import "cachemod/internal/runstore"

func main() {
	st, err := runstore.Open("x")
	if err != nil {
		return
	}
	defer st.Close()
	cur := st.Iter()
	_ = runstore.Count(cur)
}
`

func writeTestModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", testModGomod)
	write("internal/runstore/runstore.go", testModDep)
	write("main.go", testModMain)
	return dir
}

// runIn runs Run over the module at dir with the given options filled
// in (Patterns defaults to ./...).
func runIn(t *testing.T, dir string, opts Options) *Result {
	t.Helper()
	t.Chdir(dir)
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if len(opts.Analyzers) == 0 {
		opts.Analyzers = []*analysis.Analyzer{lint.MustClose}
	}
	var buf bytes.Buffer
	res, err := Run(&buf, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func findingStrings(res *Result) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, filepath.ToSlash(f.File)+": "+f.Message+" ["+f.Analyzer+"]")
	}
	return out
}

// TestFactDrivenFinding is the cross-package baseline for everything
// below: the leak in main.go is only visible because runstore.Count's
// borrow fact crosses the package boundary.
func TestFactDrivenFinding(t *testing.T) {
	dir := writeTestModule(t)
	res := runIn(t, dir, Options{})
	if len(res.Findings) != 1 {
		t.Fatalf("want exactly the fact-driven cursor leak, got %v", findingStrings(res))
	}
	f := res.Findings[0]
	if f.Analyzer != "mustclose" || !strings.Contains(f.Message, "cursor cur") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

func TestCacheHitOnUnchangedPackages(t *testing.T) {
	dir := writeTestModule(t)
	cache := filepath.Join(dir, "lintcache")

	cold := runIn(t, dir, Options{CacheDir: cache})
	if cold.UnitsCached != 0 {
		t.Fatalf("cold run: UnitsCached = %d, want 0", cold.UnitsCached)
	}
	if cold.AnalyzersRun != cold.UnitsTotal {
		t.Fatalf("cold run: AnalyzersRun = %d, want %d", cold.AnalyzersRun, cold.UnitsTotal)
	}

	warm := runIn(t, dir, Options{CacheDir: cache})
	if warm.UnitsCached != warm.UnitsTotal {
		t.Fatalf("warm run: UnitsCached = %d, want %d (all)", warm.UnitsCached, warm.UnitsTotal)
	}
	if warm.AnalyzersRun != 0 {
		t.Fatalf("warm run re-ran %d analyzers, want 0", warm.AnalyzersRun)
	}
	if got, want := findingStrings(warm), findingStrings(cold); !equalStrings(got, want) {
		t.Fatalf("cached findings diverge:\ncold: %v\nwarm: %v", want, got)
	}
}

func TestCacheInvalidationOnSourceEdit(t *testing.T) {
	dir := writeTestModule(t)
	cache := filepath.Join(dir, "lintcache")
	runIn(t, dir, Options{CacheDir: cache})

	// Fix the leak; only the edited unit re-runs.
	fixed := strings.Replace(testModMain, "cur := st.Iter()", "cur := st.Iter()\n\tdefer cur.Close()", 1)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(fixed), 0o666); err != nil {
		t.Fatal(err)
	}
	res := runIn(t, dir, Options{CacheDir: cache})
	if res.AnalyzersRun != 1 {
		t.Fatalf("after editing main.go: AnalyzersRun = %d, want 1 (dep stays cached)", res.AnalyzersRun)
	}
	if res.UnitsCached != res.UnitsTotal-1 {
		t.Fatalf("after editing main.go: UnitsCached = %d, want %d", res.UnitsCached, res.UnitsTotal-1)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("leak fixed but still reported: %v", findingStrings(res))
	}
}

func TestCacheInvalidationOnDependencyFactChange(t *testing.T) {
	dir := writeTestModule(t)
	cache := filepath.Join(dir, "lintcache")
	runIn(t, dir, Options{CacheDir: cache})

	// A comment-only dep edit changes the dep's source hash but not its
	// facts: the dep re-runs, the dependent stays cached.
	depFile := filepath.Join(dir, "internal", "runstore", "runstore.go")
	if err := os.WriteFile(depFile, []byte(testModDep+"\n// trailing comment\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	res := runIn(t, dir, Options{CacheDir: cache})
	if res.AnalyzersRun != 1 {
		t.Fatalf("comment-only dep edit: AnalyzersRun = %d, want 1 (dependent keyed on fact hash, not source)", res.AnalyzersRun)
	}

	// Making Count close the cursor changes the exported disposition, so
	// the dependent's fact-hash key misses too — and its finding dies.
	changed := strings.Replace(testModDep,
		"func Count(c *Cursor) int {",
		"func Count(c *Cursor) int {\n\tdefer c.Close()", 1)
	if err := os.WriteFile(depFile, []byte(changed), 0o666); err != nil {
		t.Fatal(err)
	}
	res = runIn(t, dir, Options{CacheDir: cache})
	if res.UnitsCached != 0 {
		t.Fatalf("fact change: UnitsCached = %d, want 0 (dependent invalidated)", res.UnitsCached)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("Count now closes the cursor, but the stale finding survived: %v", findingStrings(res))
	}
}

func TestCacheInvalidationOnAnalyzerVersionBump(t *testing.T) {
	dir := writeTestModule(t)
	cache := filepath.Join(dir, "lintcache")
	runIn(t, dir, Options{CacheDir: cache})

	bumped := *lint.MustClose
	bumped.Version = "v1-test-bump"
	res := runIn(t, dir, Options{CacheDir: cache, Analyzers: []*analysis.Analyzer{&bumped}})
	if res.UnitsCached != 0 {
		t.Fatalf("version bump: UnitsCached = %d, want 0", res.UnitsCached)
	}
}

func TestBaselineSuppression(t *testing.T) {
	dir := writeTestModule(t)
	baseline := filepath.Join(dir, "baseline.json")

	res := runIn(t, dir, Options{WriteBaselinePath: baseline})
	if len(res.Findings) != 0 {
		t.Fatalf("write-baseline mode still reported findings: %v", findingStrings(res))
	}

	res = runIn(t, dir, Options{BaselinePath: baseline})
	if len(res.Findings) != 0 || res.Suppressed != 1 {
		t.Fatalf("baselined run: findings=%v suppressed=%d, want none/1", findingStrings(res), res.Suppressed)
	}

	// A new finding in a baselined tree still fails.
	extra := testModMain + "\nfunc leak2() {\n\tst, _ := runstore.Open(\"y\")\n\t_ = st.Len()\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(extra), 0o666); err != nil {
		t.Fatal(err)
	}
	// st.Len does not exist in the test dep; add it.
	dep := strings.Replace(testModDep, "func (s *Store) Close() error { s.open = false; return nil }",
		"func (s *Store) Close() error { s.open = false; return nil }\n\nfunc (s *Store) Len() int { return 0 }", 1)
	if err := os.WriteFile(filepath.Join(dir, "internal", "runstore", "runstore.go"), []byte(dep), 0o666); err != nil {
		t.Fatal(err)
	}
	res = runIn(t, dir, Options{BaselinePath: baseline})
	if len(res.Findings) != 1 || res.Suppressed != 1 {
		t.Fatalf("new finding should surface past the baseline: findings=%v suppressed=%d",
			findingStrings(res), res.Suppressed)
	}
}

func TestJSONAndSARIFOutput(t *testing.T) {
	dir := writeTestModule(t)
	t.Chdir(dir)

	var buf bytes.Buffer
	if _, err := Run(&buf, Options{Patterns: []string{"./..."}, Analyzers: []*analysis.Analyzer{lint.MustClose}, Format: "json"}); err != nil {
		t.Fatal(err)
	}
	var arr []Finding
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, buf.String())
	}
	if len(arr) != 1 || arr[0].Analyzer != "mustclose" {
		t.Fatalf("unexpected JSON findings: %+v", arr)
	}

	buf.Reset()
	if _, err := Run(&buf, Options{Patterns: []string{"./..."}, Analyzers: []*analysis.Analyzer{lint.MustClose}, Format: "sarif"}); err != nil {
		t.Fatal(err)
	}
	var sarif struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &sarif); err != nil {
		t.Fatalf("-sarif output does not parse: %v\n%s", err, buf.String())
	}
	if sarif.Version != "2.1.0" || len(sarif.Runs) != 1 || sarif.Runs[0].Tool.Driver.Name != "crumblint" {
		t.Fatalf("malformed SARIF envelope: %s", buf.String())
	}
	if len(sarif.Runs[0].Results) != 1 || sarif.Runs[0].Results[0].RuleID != "mustclose" {
		t.Fatalf("unexpected SARIF results: %s", buf.String())
	}
}

// TestUnitcheckerFactRoundTrip drives the vet .cfg protocol directly:
// analyze the dep unit (writing its vetx facts file), then analyze the
// root unit with PackageVetx pointing at it, and assert the fact-driven
// finding appears — and disappears when the facts are withheld.
func TestUnitcheckerFactRoundTrip(t *testing.T) {
	dir := writeTestModule(t)
	t.Chdir(dir)

	// Export data for type-checking both units comes from go list.
	type listEntry struct {
		ImportPath string
		Export     string
		Dir        string
		GoFiles    []string
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export,Dir,GoFiles", "./...")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile := map[string]string{}
	units := map[string]listEntry{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Export != "" {
			packageFile[e.ImportPath] = e.Export
		}
		units[e.ImportPath] = e
	}

	writeCfg := func(importPath, vetxOut string, packageVetx map[string]string) string {
		e := units[importPath]
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		cfg := vetConfig{
			ID:          importPath,
			Compiler:    "gc",
			ImportPath:  importPath,
			GoFiles:     files,
			ImportMap:   map[string]string{},
			PackageFile: packageFile,
			PackageVetx: packageVetx,
			VetxOutput:  vetxOut,
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, strings.ReplaceAll(importPath, "/", "_")+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	analyzers := []*analysis.Analyzer{lint.MustClose}
	depVetx := filepath.Join(dir, "dep.vetx")
	depCfg := writeCfg("cachemod/internal/runstore", depVetx, nil)
	if _, findings, err := execUnitchecker(depCfg, analyzers); err != nil {
		t.Fatalf("unitchecker on dep: %v", err)
	} else if len(findings) != 0 {
		t.Fatalf("dep should be clean, got %v", findings)
	}
	raw, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatalf("dep vetx not written: %v", err)
	}
	fs, err := analysis.DecodeFactSet(raw)
	if err != nil {
		t.Fatalf("dep vetx does not decode: %v", err)
	}
	if fs.Len() == 0 {
		t.Fatal("dep vetx carries no facts; expected mustclose dispositions for Count/Drain")
	}

	mainVetx := filepath.Join(dir, "main.vetx")
	mainCfg := writeCfg("cachemod", mainVetx, map[string]string{
		"cachemod/internal/runstore": depVetx,
	})
	_, withFacts, err := execUnitchecker(mainCfg, analyzers)
	if err != nil {
		t.Fatalf("unitchecker on main: %v", err)
	}
	if len(withFacts) != 1 || !strings.Contains(withFacts[0].message, "cursor cur") {
		t.Fatalf("with facts: want the cursor leak, got %v", withFacts)
	}

	// Withholding the facts makes the engine conservative: the call to
	// Count transfers ownership and the leak goes silent.
	noFactsCfg := writeCfg("cachemod", filepath.Join(dir, "nofacts.vetx"), nil)
	_, without, err := execUnitchecker(noFactsCfg, analyzers)
	if err != nil {
		t.Fatalf("unitchecker without facts: %v", err)
	}
	if len(without) != 0 {
		t.Fatalf("without facts the leak should be invisible, got %v", without)
	}
}

// TestStandaloneAgreesWithVet builds the real crumblint binary and runs
// it both ways over the test module, asserting the same diagnostics.
func TestStandaloneAgreesWithVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/crumblint and shells out to go vet")
	}
	dir := writeTestModule(t)

	tool := filepath.Join(t.TempDir(), "crumblint")
	build := exec.Command("go", "build", "-o", tool, "crumbcruncher/cmd/crumblint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building crumblint: %v\n%s", err, out)
	}

	t.Chdir(dir)
	res := runIn(t, dir, Options{})

	vet := exec.Command("go", "vet", "-vettool="+tool, "-mustclose", "./...")
	vetOut, _ := vet.CombinedOutput() // exits 1 with findings; output is what matters
	for _, f := range res.Findings {
		if !strings.Contains(string(vetOut), f.Message) {
			t.Errorf("standalone finding missing from go vet output:\n  %s\nvet output:\n%s", f.Message, vetOut)
		}
	}
	// And nothing extra: vet should report exactly as many mustclose
	// diagnostics as standalone found.
	if got, want := strings.Count(string(vetOut), "[mustclose]"), len(res.Findings); got != want {
		t.Errorf("go vet reported %d mustclose findings, standalone %d\nvet output:\n%s", got, want, vetOut)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
