package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// vetConfig mirrors the JSON document `go vet` writes for each
// compilation unit (cmd/go/internal/work's vetConfig). Field names are
// the wire format; unknown fields are ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string // dep import path -> fact file
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single unit described by cfgFile and
// exits with vet's expected status: 0 clean, 1 findings, fatal on
// driver errors. go vet caches results keyed on our -V=full output, so
// the tool must also write the facts file it promised.
func runUnitchecker(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, findings, err := execUnitchecker(cfgFile, analyzers)
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			// The compiler will report the parse/type error itself;
			// vet should stay quiet.
			writeVetx(cfg, analysis.NewFactSet())
			os.Exit(0)
		}
		log.Fatal(err)
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	printPlain(os.Stderr, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// execUnitchecker is runUnitchecker without the process semantics, so
// the .cfg protocol (including fact round-trips through vetx files) is
// testable in-process. On success the unit's facts have been written to
// cfg.VetxOutput.
func execUnitchecker(cfgFile string, analyzers []*analysis.Analyzer) (*vetConfig, []finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		// The go command disallows packages with no Go files; the only
		// exception, unsafe, is never vetted.
		return cfg, nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// Dependency facts come from the vetx files earlier vet runs wrote.
	// Decoded sets are memoized per dependency; a missing or unreadable
	// file means "no facts", which analyzers treat conservatively.
	factCache := map[string]*analysis.FactSet{}
	depFacts := func(path string) *analysis.FactSet {
		if fs, ok := factCache[path]; ok {
			return fs
		}
		var fs *analysis.FactSet
		if file, ok := cfg.PackageVetx[path]; ok {
			if raw, err := os.ReadFile(file); err == nil {
				if decoded, err := analysis.DecodeFactSet(raw); err == nil {
					fs = decoded
				}
			}
		}
		factCache[path] = fs
		return fs
	}

	u := unit{
		importPath: baseImportPath(cfg.ImportPath),
		id:         cfg.ID,
		goFiles:    cfg.GoFiles,
		goVersion:  cfg.GoVersion,
		compiler:   cfg.Compiler,
		depFacts:   depFacts,
		resolve: func(path string) (string, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return "", fmt.Errorf("no package file for %q", path)
			}
			return file, nil
		},
	}

	fset := token.NewFileSet()
	findings, facts, err := checkUnit(fset, u, analyzers)
	if err != nil {
		return cfg, nil, err
	}
	writeVetx(cfg, facts)
	return cfg, findings, nil
}

// writeVetx records the unit's fact file so the build tool can cache
// the vet result and hand the facts to dependent units.
func writeVetx(cfg *vetConfig, facts *analysis.FactSet) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := facts.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

// printVersion answers `crumblint -V=full`, the handshake the go
// command uses to fingerprint a vet tool for its build cache. The line
// must read "<name> version <non-devel token>"; embedding a digest of
// the executable makes rebuilt tools invalidate stale cached results.
func printVersion() {
	version := "v1"
	if self, err := os.Executable(); err == nil {
		if f, err := os.Open(self); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				version = fmt.Sprintf("v1-%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version %s\n", progname(), version)
}

// jsonFlag is one entry of the -flags handshake: the flags `go vet`
// will accept on behalf of the tool.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// printFlags answers `crumblint -flags` with the JSON description of
// the analyzer-selection flags.
func printFlags(analyzers []*analysis.Analyzer) {
	var flags []jsonFlag
	for _, a := range analyzers {
		usage := a.Doc
		if i := strings.IndexByte(usage, '\n'); i >= 0 {
			usage = usage[:i]
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: usage})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func progname() string { return filepath.Base(os.Args[0]) }
