package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// A Fact is a typed, serializable statement an analyzer proves about a
// package-level object (a function, method or variable) while analyzing
// the package that declares it, for consumption when analyzing the
// packages that import it. It is the cross-package channel that turns
// crumblint's intra-procedural walkers into interprocedural analyses: a
// caller-side pass can ask "does this callee close its argument?"
// without seeing the callee's body, because the callee's package
// exported the answer as a fact.
//
// Facts must be JSON-serializable (they travel alongside export data —
// in the driver's result cache in standalone mode, in *.vetx files in
// `go vet -vettool` mode) and must be pure functions of the declaring
// package's source: the driver keys its cache on the serialized fact
// set, so nondeterministic facts would defeat caching and, worse,
// flip diagnostics between runs.
type Fact interface {
	// AFact is a marker method; it has no behavior. Implementing it
	// states the type is intended to cross the package boundary.
	AFact()
}

// factName returns the stable wire name of a fact type.
func factName(f Fact) string {
	t := fmt.Sprintf("%T", f)
	// Strip the package qualifier and any pointer marker: the analyzer
	// name already namespaces the fact, and "lint.closeFact" vs
	// "*lint.closeFact" must not bifurcate the wire format.
	t = strings.TrimPrefix(t, "*")
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		t = t[i+1:]
	}
	return t
}

// ObjectPath names a package-level object (or a method of a package-
// level named type) relative to its package: "Func" for functions and
// variables, "Type.Method" for methods (pointer receivers unwrapped).
// The empty string means the object has no stable cross-package name
// (locals, anonymous functions) and cannot carry facts.
func ObjectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				// Interface-embedded or weird receivers carry no facts.
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "" // local object
	}
	return obj.Name()
}

// A FactSet holds the facts of one package, keyed by analyzer, object
// path and fact type. Values live as raw JSON so a set can be moved
// between processes (vetx files, the driver cache) without knowing the
// concrete fact types, and decoded lazily on import.
type FactSet struct {
	// facts maps "analyzer\x00objpath\x00factname" -> serialized fact.
	facts map[string]json.RawMessage
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[string]json.RawMessage)}
}

func factKey(analyzer, objPath, name string) string {
	return analyzer + "\x00" + objPath + "\x00" + name
}

// export records fact f about objPath on behalf of analyzer.
func (s *FactSet) export(analyzer, objPath string, f Fact) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("analysis: marshal fact %s for %s: %w", factName(f), objPath, err)
	}
	s.facts[factKey(analyzer, objPath, factName(f))] = data
	return nil
}

// lookup decodes the fact stored for (analyzer, objPath, type of f)
// into f, reporting whether one existed.
func (s *FactSet) lookup(analyzer, objPath string, f Fact) bool {
	if s == nil || objPath == "" {
		return false
	}
	raw, ok := s.facts[factKey(analyzer, objPath, factName(f))]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, f) == nil
}

// Len returns the number of facts in the set.
func (s *FactSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.facts)
}

// wireFacts is the on-disk shape: a sorted map keyed by the printable
// form "analyzer/objpath/factname". encoding/json writes map keys in
// sorted order, so Encode is deterministic for a given fact set — the
// property the driver's cache keying relies on.
type wireFacts map[string]json.RawMessage

// wireKey converts the internal NUL-separated key to the on-disk form.
func wireKey(k string) string { return strings.ReplaceAll(k, "\x00", "/") }

// Encode serializes the set. The encoding is deterministic: equal sets
// produce equal bytes.
func (s *FactSet) Encode() ([]byte, error) {
	w := make(wireFacts, len(s.facts))
	for k, v := range s.facts {
		w[wireKey(k)] = v
	}
	return json.Marshal(w)
}

// DecodeFactSet reads a set produced by Encode. Empty input (including
// the zero-byte files pre-fact vetx writers produced) decodes to an
// empty set.
func DecodeFactSet(data []byte) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	var w wireFacts
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("analysis: decode fact set: %w", err)
	}
	for k, v := range w {
		parts := strings.SplitN(k, "/", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("analysis: malformed fact key %q", k)
		}
		s.facts[factKey(parts[0], parts[1], parts[2])] = v
	}
	return s, nil
}

// Keys lists the set's printable keys in sorted order (for tests and
// debugging output).
func (s *FactSet) Keys() []string {
	out := make([]string, 0, len(s.facts))
	for k := range s.facts {
		out = append(out, wireKey(k))
	}
	sort.Strings(out)
	return out
}
