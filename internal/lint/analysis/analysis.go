// Package analysis is a dependency-free re-implementation of the core
// of golang.org/x/tools/go/analysis: the Analyzer/Pass/Diagnostic
// contract that crumblint's checkers are written against.
//
// The repository deliberately has no module dependencies (the whole
// pipeline is standard library only), so rather than importing x/tools
// this package defines the same shapes from scratch. Checkers written
// against it look exactly like upstream analyzers — a Name, a Doc
// string, and a Run function over a type-checked Pass — and the drivers
// in internal/lint/driver speak both the standalone (go list) and the
// `go vet -vettool` unitchecker protocols around them.
//
// Only the subset crumblint needs is implemented: no Facts, no
// Requires-DAG, no suggested fixes. Diagnostics are position-accurate
// (token.Pos into the Pass's FileSet).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags
	// and //crumb:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by a blank line and further paragraphs.
	Doc string

	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked compilation unit to an Analyzer's
// Run function, and collects what it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver fills this in.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a diagnostic over the node's source extent.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of an analyzer, anchored at a position of
// the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: end of the offending extent
	Message string
}

// Validate checks that the analyzers are well formed (named, runnable,
// no duplicate names); drivers call it once at startup.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" {
			return fmt.Errorf("analyzer with empty name (doc: %.40q)", a.Doc)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node. If fn returns false the node's children are skipped.
// It is the moral equivalent of the upstream inspect.Analyzer pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
