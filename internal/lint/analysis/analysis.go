// Package analysis is a dependency-free re-implementation of the core
// of golang.org/x/tools/go/analysis: the Analyzer/Pass/Diagnostic
// contract that crumblint's checkers are written against.
//
// The repository deliberately has no module dependencies (the whole
// pipeline is standard library only), so rather than importing x/tools
// this package defines the same shapes from scratch. Checkers written
// against it look exactly like upstream analyzers — a Name, a Doc
// string, and a Run function over a type-checked Pass — and the drivers
// in internal/lint/driver speak both the standalone (go list) and the
// `go vet -vettool` unitchecker protocols around them.
//
// Only the subset crumblint needs is implemented: no Requires-DAG, no
// suggested fixes. Diagnostics are position-accurate (token.Pos into
// the Pass's FileSet). Object facts (facts.go) are supported: an
// analyzer can export serializable statements about its package's
// exported objects and import the statements dependency packages
// exported, which is what makes the resource-discipline analyzers
// interprocedural.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags
	// and //crumb:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by a blank line and further paragraphs.
	Doc string

	// Version participates in the driver's cache key: bumping it
	// invalidates every cached result and fact the analyzer has
	// produced. Bump it whenever the analyzer's diagnostics or fact
	// semantics change. Empty means "v0".
	Version string

	// UsesFacts declares that Run exports and/or imports object facts.
	// The driver only plumbs dependency fact sets (and hashes them into
	// cache keys) for analyzers that ask.
	UsesFacts bool

	// Run applies the analyzer to a single type-checked package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked compilation unit to an Analyzer's
// Run function, and collects what it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver fills this in.
	Report func(Diagnostic)

	// Facts collects the facts this pass proves about its own package's
	// objects. The driver fills it in (nil disables fact export).
	Facts *FactSet

	// DepFacts returns the fact set of an imported package, or nil when
	// the driver has none for that path — because the package is
	// outside the fact domain (another module, the standard library) or
	// was never analyzed. A non-nil but empty set means "analyzed,
	// proved nothing", which is semantically different: the analyzer
	// may then assume the absence of a fact is a negative answer.
	DepFacts func(path string) *FactSet
}

// ExportObjectFact records fact f about obj, which must be declared at
// package level in the pass's own package. Objects without a stable
// cross-package name (locals, anonymous functions) are ignored.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	path := ObjectPath(obj)
	if path == "" {
		return
	}
	// Marshal errors mean a non-serializable fact type: a programming
	// error in the analyzer, surfaced loudly.
	if err := p.Facts.export(p.Analyzer.Name, path, f); err != nil {
		panic(err)
	}
}

// ImportObjectFact decodes into f the fact of f's type that this
// analyzer exported about obj — from the current pass for same-package
// objects, from the driver-provided dependency sets otherwise. It
// reports whether a fact was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := ObjectPath(obj)
	if path == "" {
		return false
	}
	if obj.Pkg() == p.Pkg {
		return p.Facts.lookup(p.Analyzer.Name, path, f)
	}
	if p.DepFacts == nil {
		return false
	}
	return p.DepFacts(obj.Pkg().Path()).lookup(p.Analyzer.Name, path, f)
}

// PkgHasFacts reports whether facts exist for pkg: the pass's own
// package, or a dependency the driver analyzed. When true, the absence
// of a fact about one of pkg's objects is evidence (the analyzer looked
// and proved nothing), so callers may be less conservative.
func (p *Pass) PkgHasFacts(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg == p.Pkg {
		return p.Facts != nil
	}
	return p.DepFacts != nil && p.DepFacts(pkg.Path()) != nil
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a diagnostic over the node's source extent.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of an analyzer, anchored at a position of
// the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: end of the offending extent
	Message string
}

// Validate checks that the analyzers are well formed (named, runnable,
// no duplicate names); drivers call it once at startup.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" {
			return fmt.Errorf("analyzer with empty name (doc: %.40q)", a.Doc)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node. If fn returns false the node's children are skipped.
// It is the moral equivalent of the upstream inspect.Analyzer pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
