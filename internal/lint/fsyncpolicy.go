package lint

import (
	"go/ast"
	"strings"

	"crumbcruncher/internal/lint/analysis"
)

// Fsyncpolicy forbids raw durability primitives — (*os.File).Sync and
// os.Rename — outside internal/runio. PR 8 routed all crash safety
// through the framed layer: fsync cadence is a policy decision
// (runio.SyncPolicy), atomic replacement is runio.WriteFileAtomic, and
// a bare Sync or Rename elsewhere reopens exactly the torn-write and
// half-rename windows the frame format exists to close.
var Fsyncpolicy = &analysis.Analyzer{
	Name: "fsyncpolicy",
	Doc: "forbid os.File.Sync / os.Rename outside internal/runio\n\n" +
		"Durability goes through the framed runio layer: SyncPolicy for fsync\n" +
		"cadence, WriteFileAtomic for atomic replacement. Raw primitives\n" +
		"bypass frame checksums, sync accounting and quarantine handling.",
	Run: runFsyncpolicy,
}

// runioPkg reports whether path is the sanctioned durability layer.
func runioPkg(path string) bool {
	return path == "crumbcruncher/internal/runio" || strings.HasSuffix(path, "/internal/runio")
}

func runFsyncpolicy(pass *analysis.Pass) (interface{}, error) {
	if runioPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Package-level: os.Rename.
			if path, name, ok := pkgFunc(pass.TypesInfo, sel); ok && path == "os" && name == "Rename" {
				pass.Report(analysis.Diagnostic{
					Pos: sel.Pos(),
					End: sel.End(),
					Message: "os.Rename outside internal/runio: atomic replacement must go through " +
						"runio.WriteFileAtomic (or runio.ReplaceLineFile) so a crash never exposes a half-written artifact",
				})
				return true
			}
			// Method: (*os.File).Sync.
			if sel.Sel.Name == "Sync" {
				if named := receiverNamed(pass.TypesInfo, sel.X); named != nil &&
					named.Obj() != nil && named.Obj().Name() == "File" &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" {
					pass.Report(analysis.Diagnostic{
						Pos: sel.Pos(),
						End: sel.End(),
						Message: "os.File.Sync outside internal/runio: fsync cadence is a runio.SyncPolicy decision; " +
							"write through runio.LineFile or runio.WriteFileAtomic so sync failures are tracked and surfaced",
					})
				}
			}
			return true
		})
	}
	return nil, nil
}
