package countermeasures

import (
	"net/url"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/dom"
)

// BreakageClass is the outcome of reloading a page with its UID parameter
// stripped (the paper's §6 experiment over ten login pages: seven showed
// no change, one a minor visual shift, two significant breakage).
type BreakageClass string

// The observed breakage classes.
const (
	// BreakNone: the page is unchanged.
	BreakNone BreakageClass = "no change"
	// BreakMinor: a minor visual change (the paper saw a <body> shifted
	// down by 20 pixels).
	BreakMinor BreakageClass = "minor visual change"
	// BreakMissingField: a form field lost its autofilled value.
	BreakMissingField BreakageClass = "missing autofill"
	// BreakRedirect: the user lands somewhere else entirely (the paper
	// saw a homepage instead of the requested subpage).
	BreakRedirect BreakageClass = "redirected elsewhere"
	// BreakError: the stripped navigation failed outright.
	BreakError BreakageClass = "navigation error"
)

// BreakageResult is the evaluation of one page.
type BreakageResult struct {
	URL      string
	Stripped string
	Class    BreakageClass
}

// EvaluateBreakage loads pageURL with its parameters intact, then again
// with remove-matching parameters stripped, and classifies the
// difference. The two loads use the same browser profile, as in the
// paper's manual procedure ("we manually removed the query parameter...,
// reloaded the page, and evaluated whether the page changed or broke").
func EvaluateBreakage(b *browser.Browser, pageURL string, remove func(name, value string) bool) BreakageResult {
	stripped := StripParams(pageURL, remove)
	res := BreakageResult{URL: pageURL, Stripped: stripped}
	if stripped == pageURL {
		res.Class = BreakNone
		return res
	}
	withTok, err1 := b.Navigate(pageURL, "")
	without, err2 := b.Navigate(stripped, "")
	if err1 != nil || err2 != nil {
		res.Class = BreakError
		return res
	}
	res.Class = classifyDiff(withTok, without)
	return res
}

// classifyDiff compares the two loaded pages.
func classifyDiff(with, without *browser.Page) BreakageClass {
	// Landing somewhere else (path change) is the severest breakage.
	if !samePage(with.URL, without.URL) {
		return BreakRedirect
	}
	// Form fields that lost their values.
	if missingInputValue(with.Doc, without.Doc) {
		return BreakMissingField
	}
	// Layout shift: an element present in both renders at a different
	// vertical position (the paper's body-moved-20px case).
	if layoutShifted(with.Doc, without.Doc) {
		return BreakMinor
	}
	return BreakNone
}

func samePage(a, b *url.URL) bool {
	return a.Hostname() == b.Hostname() && a.Path == b.Path
}

// missingInputValue reports whether an input that had a value with the
// token lost it without.
func missingInputValue(with, without *dom.Node) bool {
	values := map[string]string{}
	for _, in := range with.ElementsByTag("input") {
		if v, ok := in.Attr("value"); ok && v != "" {
			values[in.AttrOr("name", in.XPath())] = v
		}
	}
	if len(values) == 0 {
		return false
	}
	for _, in := range without.ElementsByTag("input") {
		delete(values, in.AttrOr("name", in.XPath()))
	}
	return len(values) > 0
}

// layoutShifted reports whether any element present in both documents (by
// x-path and tag) moved vertically.
func layoutShifted(with, without *dom.Node) bool {
	boxes := map[string]int{}
	with.FindAll(func(e *dom.Node) bool {
		boxes[e.Tag+e.XPath()] = e.Box.Y
		return false
	})
	shifted := false
	without.FindAll(func(e *dom.Node) bool {
		if y, ok := boxes[e.Tag+e.XPath()]; ok && y != e.Box.Y {
			shifted = true
		}
		return false
	})
	return shifted
}

// BreakageSummary tallies classes over a sample of pages.
type BreakageSummary struct {
	Results []BreakageResult
	Counts  map[BreakageClass]int
}

// EvaluateBreakageSample runs the experiment over a set of page URLs,
// each with a fresh browser from newBrowser.
func EvaluateBreakageSample(newBrowser func() *browser.Browser, pageURLs []string, remove func(name, value string) bool) BreakageSummary {
	out := BreakageSummary{Counts: map[BreakageClass]int{}}
	for _, u := range pageURLs {
		r := EvaluateBreakage(newBrowser(), u, remove)
		out.Results = append(out.Results, r)
		out.Counts[r.Class]++
	}
	return out
}
