// Package countermeasures implements the defences against UID smuggling
// the paper surveys (§7) and the breakage experiment it runs against its
// own proposed mitigation (§6):
//
//   - Debouncing (Brave): when a navigation target encodes its real
//     destination in a query parameter, navigate straight there and skip
//     the redirector.
//   - Query stripping: remove known or suspected UID parameters from
//     navigation URLs (the paper's proposed mitigation), plus the §6
//     experiment measuring how login pages break when their token is
//     stripped.
//   - An ITP-style heuristic classifier (Safari): label a host a tracker
//     when it only ever auto-redirects, and propagate guilt through
//     shared navigation paths.
//   - Blocklist purge (Firefox): clear the storage of listed tracker
//     domains unless the user visited them as a first party.
package countermeasures

import (
	"net/url"
	"regexp"
	"sort"
	"strings"

	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/tokens"
)

// --- Debouncing (Brave, §7.1) ----------------------------------------------

// Debouncer rewrites redirector navigations to their true destinations.
type Debouncer struct {
	// BounceHosts are known smuggler hosts (crowd-sourced list); empty
	// means rely purely on destination detection.
	BounceHosts map[string]bool
	// StripParams are query parameter names stripped from the recovered
	// destination (Brave's debounce.json parameter rules).
	StripParams map[string]bool
}

// NewDebouncer builds a Debouncer from host and parameter lists.
func NewDebouncer(bounceHosts, stripParams []string) *Debouncer {
	d := &Debouncer{BounceHosts: map[string]bool{}, StripParams: map[string]bool{}}
	for _, h := range bounceHosts {
		d.BounceHosts[strings.ToLower(h)] = true
	}
	for _, p := range stripParams {
		d.StripParams[p] = true
	}
	return d
}

// Result describes a debounce decision.
type Result struct {
	// Debounced reports whether the navigation was rewritten.
	Debounced bool
	// URL is the navigation target to use.
	URL string
	// Interstitial reports that the target is a known smuggler whose
	// destination could not be extracted: the browser should warn
	// (Brave's "unlinkable bouncing" interstitial).
	Interstitial bool
}

// Debounce inspects a navigation URL. If any query parameter holds a full
// URL with a different registered domain, the navigation is rewritten to
// it (recursively, for chained redirectors), with the parameter blocklist
// applied to the recovered destination.
func (d *Debouncer) Debounce(raw string) Result {
	cur := raw
	debounced := false
	for depth := 0; depth < 8; depth++ {
		u, err := url.Parse(cur)
		if err != nil {
			break
		}
		dest := extractDestination(u)
		if dest == "" {
			break
		}
		cur = dest
		debounced = true
	}
	if !debounced {
		u, err := url.Parse(cur)
		if err == nil && d.BounceHosts[strings.ToLower(u.Hostname())] {
			return Result{Debounced: false, URL: raw, Interstitial: true}
		}
		return Result{Debounced: false, URL: raw}
	}
	return Result{Debounced: true, URL: d.stripKnownParams(cur)}
}

// extractDestination finds a query parameter holding an absolute URL on a
// different registered domain.
func extractDestination(u *url.URL) string {
	keys := make([]string, 0)
	q := u.Query()
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range q[k] {
			cand, err := url.Parse(v)
			if err != nil || (cand.Scheme != "http" && cand.Scheme != "https") || cand.Host == "" {
				continue
			}
			if !publicsuffix.SameSite(u.Hostname(), cand.Hostname()) {
				return v
			}
		}
	}
	return ""
}

// stripKnownParams removes blocklisted parameters from a URL.
func (d *Debouncer) stripKnownParams(raw string) string {
	if len(d.StripParams) == 0 {
		return raw
	}
	return StripParams(raw, func(name, _ string) bool { return d.StripParams[name] })
}

// --- Query stripping (§7.2) --------------------------------------------------

// StripParams removes every query parameter for which remove returns
// true, preserving the rest (sorted for determinism). It returns the
// original string for unparsable URLs.
func StripParams(raw string, remove func(name, value string) bool) string {
	u, err := url.Parse(raw)
	if err != nil {
		return raw
	}
	q := u.Query()
	changed := false
	for name, vs := range q {
		keep := vs[:0]
		for _, v := range vs {
			if remove(name, v) {
				changed = true
			} else {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			delete(q, name)
		} else {
			q[name] = keep
		}
	}
	if !changed {
		return raw
	}
	u.RawQuery = encodeStable(q)
	return u.String()
}

func encodeStable(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		for _, v := range q[k] {
			if b.Len() > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}

var opaqueTokenRe = regexp.MustCompile(`^[0-9a-fA-F]{16,}$|^[0-9A-Za-z_-]{20,}$`)

// LooksLikeUIDValue is the shape heuristic for suspected UID values: long
// opaque tokens that survive the pipeline's programmatic filters.
func LooksLikeUIDValue(v string) bool {
	if len(v) < 8 {
		return false
	}
	if tokens.ProgrammaticFilter(v) != tokens.KeepToken {
		return false
	}
	if tokens.ManualReview(v) {
		return false
	}
	return opaqueTokenRe.MatchString(v)
}

// StripSuspectedUIDs removes parameters whose names are on the known UID
// list or whose values look like UIDs.
func StripSuspectedUIDs(raw string, knownParams map[string]bool) string {
	return StripParams(raw, func(name, value string) bool {
		return knownParams[name] || LooksLikeUIDValue(value)
	})
}

// --- ITP-style classification (Safari, §7.1) ----------------------------------

// ITPClassifier labels hosts as navigational trackers with Safari's
// heuristics: a host that automatically redirects navigations without
// user interaction is a tracker candidate, and any host appearing in a
// navigation path alongside a known tracker is classified too.
type ITPClassifier struct {
	redirects map[string]int // host → times observed auto-redirecting
	terminal  map[string]int // host → times observed as a final page
	inPathOf  map[string]map[string]bool
}

// NewITPClassifier returns an empty classifier.
func NewITPClassifier() *ITPClassifier {
	return &ITPClassifier{
		redirects: map[string]int{},
		terminal:  map[string]int{},
		inPathOf:  map[string]map[string]bool{},
	}
}

// ObservePath feeds one navigation path (originator, redirectors,
// destination).
func (c *ITPClassifier) ObservePath(p *tokens.Path) {
	c.terminal[p.Originator().Host]++
	c.terminal[p.Destination().Host]++
	var hosts []string
	for _, n := range p.Nodes {
		hosts = append(hosts, n.Host)
	}
	for _, r := range p.Redirectors() {
		c.redirects[r.Host]++
		for _, h := range hosts {
			if h == r.Host {
				continue
			}
			if c.inPathOf[r.Host] == nil {
				c.inPathOf[r.Host] = map[string]bool{}
			}
			c.inPathOf[r.Host][h] = true
		}
	}
}

// Classified returns the hosts labelled as navigational trackers: hosts
// that redirect but are (almost) never a user-facing page, plus one round
// of guilt-by-association over shared paths.
func (c *ITPClassifier) Classified() []string {
	out := map[string]bool{}
	for h, n := range c.redirects {
		if n > 0 && c.terminal[h] == 0 {
			out[h] = true
		}
	}
	// Guilt by association: redirectors sharing a path with a classified
	// tracker are classified too (Safari's "participates in a navigation
	// path that contains another known UID smuggler").
	for h := range c.redirects {
		if out[h] {
			continue
		}
		for other := range c.inPathOf[h] {
			if out[other] {
				out[h] = true
				break
			}
		}
	}
	hosts := make([]string, 0, len(out))
	for h := range out {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// --- Blocklist purge (Firefox, §7.1) -------------------------------------------

// PurgeListed clears the storage of every listed domain the user has not
// recently visited as a first party — Firefox's 24-hour Disconnect-list
// purge. It returns the purged domains.
func PurgeListed(store *storage.Store, listed []string, visitedFirstParty func(domain string) bool) []string {
	var purged []string
	for _, d := range listed {
		if visitedFirstParty != nil && visitedFirstParty(d) {
			continue
		}
		store.ClearDomain(d)
		purged = append(purged, d)
	}
	sort.Strings(purged)
	return purged
}
