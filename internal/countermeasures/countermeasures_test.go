package countermeasures

import (
	"fmt"
	"net/url"
	"strings"
	"testing"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/web"
)

func TestDebounceExtractsDestination(t *testing.T) {
	d := NewDebouncer(nil, nil)
	raw := "http://smuggler.net/c?d=" + url.QueryEscape("http://shop.com/land") + "&zclid=deadbeef01"
	res := d.Debounce(raw)
	if !res.Debounced {
		t.Fatal("should debounce")
	}
	if res.URL != "http://shop.com/land" {
		t.Fatalf("url = %q", res.URL)
	}
}

func TestDebounceChained(t *testing.T) {
	inner := "http://final.com/?x=1"
	mid := "http://hop2.net/c?d=" + url.QueryEscape(inner)
	outer := "http://hop1.net/c?d=" + url.QueryEscape(mid)
	res := NewDebouncer(nil, nil).Debounce(outer)
	if !res.Debounced || !strings.HasPrefix(res.URL, "http://final.com/") {
		t.Fatalf("res = %+v", res)
	}
}

func TestDebounceStripsBlocklistedParams(t *testing.T) {
	d := NewDebouncer(nil, []string{"zclid"})
	raw := "http://smuggler.net/c?d=" + url.QueryEscape("http://shop.com/land?zclid=deadbeef01&keep=yes")
	res := d.Debounce(raw)
	if !res.Debounced {
		t.Fatal("should debounce")
	}
	u, _ := url.Parse(res.URL)
	if u.Query().Get("zclid") != "" {
		t.Fatalf("blocklisted param survived: %s", res.URL)
	}
	if u.Query().Get("keep") != "yes" {
		t.Fatalf("innocent param stripped: %s", res.URL)
	}
}

func TestDebounceSameSiteParamIgnored(t *testing.T) {
	// A same-site URL in a parameter is not a bounce destination.
	raw := "http://a.com/login?return=" + url.QueryEscape("http://a.com/account")
	res := NewDebouncer(nil, nil).Debounce(raw)
	if res.Debounced {
		t.Fatalf("same-site return should not debounce: %+v", res)
	}
}

func TestDebounceInterstitialForKnownSmuggler(t *testing.T) {
	d := NewDebouncer([]string{"opaque.smuggler.net"}, nil)
	res := d.Debounce("http://opaque.smuggler.net/c?blob=xyz")
	if res.Debounced || !res.Interstitial {
		t.Fatalf("expected interstitial: %+v", res)
	}
}

func TestStripParams(t *testing.T) {
	raw := "http://shop.com/land?zclid=deadbeef01&lang=en&aid=x1"
	got := StripParams(raw, func(name, _ string) bool { return name == "zclid" })
	u, _ := url.Parse(got)
	if u.Query().Get("zclid") != "" || u.Query().Get("lang") != "en" || u.Query().Get("aid") != "x1" {
		t.Fatalf("got %q", got)
	}
	// No-op returns the original string.
	if StripParams(raw, func(string, string) bool { return false }) != raw {
		t.Fatal("no-op should return original")
	}
}

func TestLooksLikeUIDValue(t *testing.T) {
	yes := []string{"4f2a9c1b7d8e0011aabb", "deadbeefdeadbeef"}
	for _, v := range yes {
		if !LooksLikeUIDValue(v) {
			t.Errorf("LooksLikeUIDValue(%q) = false", v)
		}
	}
	no := []string{"en", "share_button", "1646092800", "http://x.com/", "Dental_internal_whitepaper_topic"}
	for _, v := range no {
		if LooksLikeUIDValue(v) {
			t.Errorf("LooksLikeUIDValue(%q) = true", v)
		}
	}
}

func TestStripSuspectedUIDs(t *testing.T) {
	raw := "http://shop.com/land?known=x&mystery=4f2a9c1b7d8e0011aabb&lang=en-US"
	got := StripSuspectedUIDs(raw, map[string]bool{"known": true})
	u, _ := url.Parse(got)
	if u.Query().Get("known") != "" {
		t.Fatal("known param survived")
	}
	if u.Query().Get("mystery") != "" {
		t.Fatal("UID-shaped value survived")
	}
	if u.Query().Get("lang") != "en-US" {
		t.Fatal("benign param stripped")
	}
}

func mkPath(t *testing.T, urls ...string) *tokens.Path {
	t.Helper()
	p := &tokens.Path{}
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		node := tokens.PathNode{URL: raw, Host: u.Hostname(), Domain: u.Hostname()}
		p.Nodes = append(p.Nodes, node)
	}
	return p
}

func TestITPClassifier(t *testing.T) {
	c := NewITPClassifier()
	// pure.net only ever redirects; shared.com redirects but is also a
	// destination elsewhere; buddy.org shares a path with pure.net.
	c.ObservePath(mkPath(t, "http://a.com/", "http://pure.net/c", "http://b.com/"))
	c.ObservePath(mkPath(t, "http://a.com/", "http://pure.net/c", "http://buddy.org/c", "http://b.com/"))
	c.ObservePath(mkPath(t, "http://x.com/", "http://shared.com/r", "http://y.com/"))
	c.ObservePath(mkPath(t, "http://x.com/", "http://shared.com/"))

	got := c.Classified()
	set := map[string]bool{}
	for _, h := range got {
		set[h] = true
	}
	if !set["pure.net"] {
		t.Fatal("pure redirector not classified")
	}
	if !set["buddy.org"] {
		t.Fatal("guilt-by-association failed")
	}
	if set["shared.com"] {
		t.Fatal("user-facing site misclassified")
	}
}

func TestPurgeListed(t *testing.T) {
	s := storage.New(storage.Partitioned)
	ctx := storage.Context{FrameHost: "tracker.net", TopHost: "tracker.net"}
	s.SetCookie(ctx, storage.Cookie{Name: "uid", Value: "x"})
	visited := storage.Context{FrameHost: "visited.com", TopHost: "visited.com"}
	s.SetCookie(visited, storage.Cookie{Name: "uid", Value: "y"})

	purged := PurgeListed(s, []string{"tracker.net", "visited.com"}, func(d string) bool {
		return d == "visited.com"
	})
	if len(purged) != 1 || purged[0] != "tracker.net" {
		t.Fatalf("purged = %v", purged)
	}
	if s.CookieCount() != 1 {
		t.Fatalf("cookies left = %d", s.CookieCount())
	}
}

// TestBreakageExperiment reproduces §6: strip the auth token from account
// pages and observe the breakage classes the world was built with.
func TestBreakageExperiment(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0
	w := web.BuildWorld(cfg)

	// Collect one account URL per breakage class available.
	byClass := map[int]string{}
	for _, s := range w.Sites() {
		if !s.HasAccount {
			continue
		}
		atok := ident.UID(cfg.Seed, s.Domain, "sso", "breakage-user")
		byClass[s.BreakageClass] = "http://" + s.Domain + "/account?atok=" + atok
	}
	if len(byClass) == 0 {
		t.Skip("no account pages in small world")
	}
	newBrowser := func() *browser.Browser {
		return browser.New(browser.Config{
			Seed: cfg.Seed, ProfileID: "breakage-user", ClientID: "breakage-client",
			Machine: "m", Policy: storage.Partitioned, Network: w.Network(),
		})
	}
	remove := func(name, _ string) bool { return name == "atok" }
	want := map[int]BreakageClass{
		0: BreakNone,
		1: BreakMinor,
		2: BreakMissingField,
		3: BreakRedirect,
	}
	for class, pageURL := range byClass {
		res := EvaluateBreakage(newBrowser(), pageURL, remove)
		if res.Class != want[class] {
			t.Errorf("class %d page %s: got %q, want %q", class, pageURL, res.Class, want[class])
		}
	}
}

func TestBreakageSampleCounts(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0
	w := web.BuildWorld(cfg)
	var urls []string
	for _, s := range w.Sites() {
		if s.HasAccount {
			atok := ident.UID(cfg.Seed, s.Domain, "sso", fmt.Sprintf("u%d", len(urls)))
			urls = append(urls, "http://"+s.Domain+"/account?atok="+atok)
		}
	}
	if len(urls) == 0 {
		t.Skip("no account pages")
	}
	n := 0
	summary := EvaluateBreakageSample(func() *browser.Browser {
		n++
		return browser.New(browser.Config{
			Seed: cfg.Seed, ProfileID: fmt.Sprintf("u%d", n), ClientID: fmt.Sprintf("c%d", n),
			Machine: "m", Policy: storage.Partitioned, Network: w.Network(),
		})
	}, urls, func(name, _ string) bool { return name == "atok" })
	total := 0
	for _, c := range summary.Counts {
		total += c
	}
	if total != len(urls) {
		t.Fatalf("counts %v don't cover %d pages", summary.Counts, len(urls))
	}
}
