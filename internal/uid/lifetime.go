package uid

import (
	"time"

	"crumbcruncher/internal/crawler"
)

// LifetimeIndex maps token values to the lifetime of the cookie that
// stored them, built from the crawl's storage snapshots. Session cookies
// index as lifetime 0.
type LifetimeIndex struct {
	byValue map[string]time.Duration
}

// BuildLifetimeIndex scans every snapshot in the dataset.
func BuildLifetimeIndex(ds *crawler.Dataset) *LifetimeIndex {
	idx := &LifetimeIndex{byValue: map[string]time.Duration{}}
	for _, w := range ds.Walks {
		scanWalkLifetimes(w, idx.byValue)
	}
	return idx
}

// scanWalkLifetimes records every cookie in one walk's snapshots into
// into, first occurrence wins. A cookie value always maps to the same
// lifetime (the value is minted with the cookie), so first-wins is
// order-insensitive. Shared by the batch index builder and the
// streaming LifetimeAccumulator so both produce identical indices.
func scanWalkLifetimes(w *crawler.Walk, into map[string]time.Duration) {
	add := func(snap crawler.Snapshot) {
		for _, c := range snap.Cookies {
			if _, ok := into[c.Value]; ok {
				continue
			}
			if c.Expires.IsZero() {
				into[c.Value] = 0
				continue
			}
			into[c.Value] = c.Expires.Sub(c.Created)
		}
	}
	if w == nil {
		return
	}
	for _, rec := range w.SeedLoad {
		add(rec.Before)
		add(rec.After)
	}
	for _, s := range w.Steps {
		for _, rec := range s.Records {
			add(rec.Before)
			add(rec.After)
		}
	}
}

// Lifetime implements Options.LifetimeOf.
func (idx *LifetimeIndex) Lifetime(value string) (time.Duration, bool) {
	d, ok := idx.byValue[value]
	return d, ok
}

// LifetimeStats reports the fraction of identified UIDs whose storing
// cookie lived under each threshold — the paper's §3.7.1 observation that
// 16% of UIDs live under 90 days and 9% under a month, which prior work's
// lifetime heuristics would have discarded.
type LifetimeStats struct {
	WithCookie  int
	Under90Days int
	Under30Days int
}

// Under90Fraction returns the <90d share of UIDs with a known cookie.
func (s LifetimeStats) Under90Fraction() float64 {
	if s.WithCookie == 0 {
		return 0
	}
	return float64(s.Under90Days) / float64(s.WithCookie)
}

// Under30Fraction returns the <30d share.
func (s LifetimeStats) Under30Fraction() float64 {
	if s.WithCookie == 0 {
		return 0
	}
	return float64(s.Under30Days) / float64(s.WithCookie)
}

// ComputeLifetimeStats matches case values against the index. UIDs whose
// storing cookie was never observed (e.g. partition-bucket ad IDs) are
// excluded, as in the paper's sampled analysis.
func ComputeLifetimeStats(cases []*Case, idx *LifetimeIndex) LifetimeStats {
	var out LifetimeStats
	for _, c := range cases {
		lt, ok := lifetimeOfCase(c, idx)
		if !ok {
			continue
		}
		out.WithCookie++
		if lt > 0 && lt < 90*24*time.Hour {
			out.Under90Days++
		}
		if lt > 0 && lt < 30*24*time.Hour {
			out.Under30Days++
		}
	}
	return out
}

func lifetimeOfCase(c *Case, idx *LifetimeIndex) (time.Duration, bool) {
	for _, v := range c.Values {
		if lt, ok := idx.Lifetime(v); ok {
			return lt, true
		}
	}
	return 0, false
}
