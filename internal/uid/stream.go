package uid

import (
	"context"
	"time"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/parallel"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/tokens"
)

// LifetimeAccumulator builds a LifetimeIndex incrementally, one walk at
// a time, for the streaming engine. AddWalk calls on distinct indices
// may run concurrently; Drain merges per-walk partials in walk-index
// order with first-occurrence-wins semantics — the same scan the batch
// BuildLifetimeIndex performs, so the index is identical.
type LifetimeAccumulator struct {
	perWalk []map[string]time.Duration
}

// NewLifetimeAccumulator sizes an accumulator for the given walk count.
func NewLifetimeAccumulator(walks int) *LifetimeAccumulator {
	return &LifetimeAccumulator{perWalk: make([]map[string]time.Duration, walks)}
}

// AddWalk scans one walk's storage snapshots into a per-walk partial.
func (a *LifetimeAccumulator) AddWalk(w *crawler.Walk) {
	m := map[string]time.Duration{}
	scanWalkLifetimes(w, m)
	a.perWalk[w.Index] = m
}

// Drain merges the per-walk partials into the final index.
func (a *LifetimeAccumulator) Drain() *LifetimeIndex {
	idx := &LifetimeIndex{byValue: map[string]time.Duration{}}
	for _, m := range a.perWalk {
		for v, d := range m {
			if _, ok := idx.byValue[v]; !ok {
				idx.byValue[v] = d
			}
		}
	}
	return idx
}

// StreamIdentifier runs UID identification incrementally for the
// streaming engine. Each walk's candidates are grouped (and, when the
// options permit, classified) as the walk finishes; Drain performs the
// ordered reduce over all walks and returns exactly what a batch
// Identify over the concatenated candidate list would.
//
// Classification is eager unless the prior-work lifetime heuristic is
// enabled without a lifetime function: that rule needs the full
// lifetime index, which only exists after every walk has been scanned,
// so classification is deferred to Drain in that configuration.
type StreamIdentifier struct {
	opt     Options
	include map[string]bool
	eager   bool
	observe func(time.Duration)
	perWalk []walkGroups
}

// walkGroups is one walk's grouped candidates and (when classification
// ran eagerly) their verdicts.
type walkGroups struct {
	candidates int
	groups     []*Group
	verdicts   []groupVerdict
}

// NewStreamIdentifier sizes a streaming identifier for the given walk
// count.
func NewStreamIdentifier(walks int, opt Options) *StreamIdentifier {
	return &StreamIdentifier{
		opt:     opt,
		include: opt.crawlerSet(),
		eager:   opt.LifetimeThreshold <= 0 || opt.LifetimeOf != nil,
		observe: opt.Telemetry.Registry().Histogram("uid.classify_shard_us").Microseconds(),
		perWalk: make([]walkGroups, walks),
	}
}

// AddWalk groups (and eagerly classifies, when possible) one walk's
// candidates. Calls on distinct indices may run concurrently.
func (s *StreamIdentifier) AddWalk(index int, cands []*tokens.Candidate) {
	wg := walkGroups{candidates: len(cands), groups: GroupCandidates(cands, s.opt)}
	if s.eager {
		wg.verdicts = make([]groupVerdict, len(wg.groups))
		for i, g := range wg.groups {
			if s.observe != nil {
				sw := telemetry.StartStopwatch()
				wg.verdicts[i] = classifyGroup(g, s.opt, s.include)
				s.observe(sw.Elapsed())
			} else {
				wg.verdicts[i] = classifyGroup(g, s.opt, s.include)
			}
		}
	}
	s.perWalk[index] = wg
}

// Drain concatenates per-walk groups in walk-index order — candidates
// of one walk only ever form groups of that walk, and GroupCandidates
// sorts by (walk, step, name), so the concatenation equals the batch
// grouping of the full candidate list — classifies any deferred groups
// against the now-complete lifetime index, and performs the same
// ordered reduce as Identify.
func (s *StreamIdentifier) Drain(ctx context.Context, lifetimes *LifetimeIndex) ([]*Case, Stats, error) {
	stats := Stats{Programmatic: map[tokens.FilterReason]int{}}
	totalGroups := 0
	for _, wg := range s.perWalk {
		stats.Candidates += wg.candidates
		totalGroups += len(wg.groups)
	}
	stats.Groups = totalGroups

	reg := s.opt.Telemetry.Registry()
	reg.Counter("uid.candidates").Add(int64(stats.Candidates))
	reg.Counter("uid.groups").Add(int64(totalGroups))

	verdicts := make([]groupVerdict, 0, totalGroups)
	if s.eager {
		for _, wg := range s.perWalk {
			verdicts = append(verdicts, wg.verdicts...)
		}
	} else {
		groups := make([]*Group, 0, totalGroups)
		for _, wg := range s.perWalk {
			groups = append(groups, wg.groups...)
		}
		opt := s.opt
		if lifetimes != nil {
			opt.LifetimeOf = lifetimes.Lifetime
		}
		verdicts = verdicts[:totalGroups]
		err := parallel.ForEachTimedCtx(ctx, len(groups), opt.Parallelism, func(i int) {
			verdicts[i] = classifyGroup(groups[i], opt, s.include)
		}, s.observe)
		if err != nil {
			return nil, stats, err
		}
	}

	cases := reduceVerdicts(verdicts, &stats, reg)
	return cases, stats, nil
}
