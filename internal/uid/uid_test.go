package uid

import (
	"testing"
	"time"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/tokens"
)

// cand builds a minimal candidate.
func cand(walk, step int, crawlerName, name, value string) *tokens.Candidate {
	return &tokens.Candidate{
		Name: name, Value: value,
		Walk: walk, Step: step,
		Crawler: crawlerName, Profile: crawler.ProfileOf(crawlerName),
		FirstIdx: 1, LastIdx: 2, Crossings: 1,
	}
}

// fullStaticGroup: the classic static smuggling case — all four crawlers,
// per-profile values, pair identical.
func fullStaticGroup(name string) []*tokens.Candidate {
	return []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, name, "aaaa1111bbbb2222"),
		cand(0, 1, crawler.Safari1R, name, "aaaa1111bbbb2222"),
		cand(0, 1, crawler.Safari2, name, "cccc3333dddd4444"),
		cand(0, 1, crawler.Chrome3, name, "eeee5555ffff6666"),
	}
}

func TestIdentifyStaticUID(t *testing.T) {
	cases, stats := Identify(fullStaticGroup("zclid"), Options{})
	if len(cases) != 1 {
		t.Fatalf("cases = %d, want 1 (stats %+v)", len(cases), stats)
	}
	if cases[0].Bucket != BucketPairPlus {
		t.Fatalf("bucket = %q, want %q", cases[0].Bucket, BucketPairPlus)
	}
	if stats.Final != 1 || stats.Groups != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestIdentifyDiscardsSameAcrossProfiles(t *testing.T) {
	// Fingerprint-derived UID: identical on different profiles.
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "fpid", "samevalue11112222"),
		cand(0, 1, crawler.Safari2, "fpid", "samevalue11112222"),
	}
	cases, stats := Identify(cands, Options{})
	if len(cases) != 0 || stats.SameAcrossUsers != 1 {
		t.Fatalf("cases=%d stats=%+v", len(cases), stats)
	}
}

func TestIdentifyDiscardsSessionViaRepeatCrawler(t *testing.T) {
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "sid", "sessvalue11112222"),
		cand(0, 1, crawler.Safari1R, "sid", "sessvalue33334444"),
		cand(0, 1, crawler.Safari2, "sid", "sessvalue55556666"),
	}
	cases, stats := Identify(cands, Options{})
	if len(cases) != 0 || stats.SessionByRepeat != 1 {
		t.Fatalf("cases=%d stats=%+v", len(cases), stats)
	}
	// With the repeat crawler disabled, the session ID slips through —
	// the ablation the paper motivates.
	cases, _ = Identify(cands, Options{DisableRepeatCrawler: true})
	if len(cases) != 1 {
		t.Fatalf("repeat-crawler-off should retain the token: %d", len(cases))
	}
}

func TestIdentifyProgrammaticFilters(t *testing.T) {
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "t", "1646092800"),    // timestamp
		cand(0, 2, crawler.Safari1, "u", "http://x.com/"), // URL
		cand(0, 3, crawler.Safari1, "s", "abc"),           // short
	}
	cases, stats := Identify(cands, Options{})
	if len(cases) != 0 {
		t.Fatalf("cases = %d", len(cases))
	}
	if stats.Programmatic[tokens.LooksLikeDate] != 1 ||
		stats.Programmatic[tokens.LooksLikeURL] != 1 ||
		stats.Programmatic[tokens.TooShort] != 1 {
		t.Fatalf("programmatic stats = %+v", stats.Programmatic)
	}
}

func TestIdentifyManualReview(t *testing.T) {
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "topic", "Dental_internal_whitepaper_topic"),
		cand(0, 2, crawler.Safari1, "x", "4f2a9c1b7d8e0011"),
	}
	cases, stats := Identify(cands, Options{})
	if len(cases) != 1 || stats.ManuallyRemoved != 1 || stats.AfterProgrammatic != 2 {
		t.Fatalf("cases=%d stats=%+v", len(cases), stats)
	}
	// SkipManual keeps both.
	cases, _ = Identify(cands, Options{SkipManual: true})
	if len(cases) != 2 {
		t.Fatalf("SkipManual cases = %d", len(cases))
	}
}

func TestBuckets(t *testing.T) {
	mk := func(cands ...*tokens.Candidate) Bucket {
		cases, _ := Identify(cands, Options{})
		if len(cases) != 1 {
			t.Fatalf("expected 1 case, got %d", len(cases))
		}
		return cases[0].Bucket
	}
	if b := mk(fullStaticGroup("a")...); b != BucketPairPlus {
		t.Fatalf("pair plus: %q", b)
	}
	if b := mk(
		cand(0, 1, crawler.Safari2, "b", "cccc3333dddd4444"),
		cand(0, 1, crawler.Chrome3, "b", "eeee5555ffff6666"),
	); b != BucketDifferentOnly {
		t.Fatalf("different only: %q", b)
	}
	if b := mk(
		cand(0, 1, crawler.Safari1, "c", "aaaa1111bbbb2222"),
		cand(0, 1, crawler.Safari1R, "c", "aaaa1111bbbb2222"),
	); b != BucketPairOnly {
		t.Fatalf("pair only: %q", b)
	}
	if b := mk(cand(0, 1, crawler.Chrome3, "d", "eeee5555ffff6666")); b != BucketSingle {
		t.Fatalf("single: %q", b)
	}
	counts := BucketCounts([]*Case{{Bucket: BucketSingle}, {Bucket: BucketSingle}, {Bucket: BucketPairOnly}})
	if counts[BucketSingle] != 2 || counts[BucketPairOnly] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTwoCrawlerBaselineLosesSingles(t *testing.T) {
	// Prior work's two-crawler setup cannot see tokens that only
	// appeared on Chrome-3.
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Chrome3, "only3", "eeee5555ffff6666"),
		cand(0, 1, crawler.Safari1, "both", "aaaa1111bbbb2222"),
		cand(0, 1, crawler.Safari2, "both", "cccc3333dddd4444"),
	}
	full, _ := Identify(cands, Options{})
	two, _ := Identify(cands, Options{Crawlers: []string{crawler.Safari1, crawler.Safari2}})
	if len(full) != 2 {
		t.Fatalf("full = %d", len(full))
	}
	if len(two) != 1 || two[0].Group.Name != "both" {
		t.Fatalf("two-crawler = %+v", two)
	}
}

func TestRatcliffSlackOverDiscards(t *testing.T) {
	// Two users' UIDs share a long prefix; prior work's 33% slack
	// wrongly calls them "the same" and discards the case.
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "pfx", "user-aaaa-bbbb-cccc-0001"),
		cand(0, 1, crawler.Safari2, "pfx", "user-aaaa-bbbb-cccc-0002"),
	}
	exact, _ := Identify(cands, Options{})
	if len(exact) != 1 {
		t.Fatalf("exact = %d", len(exact))
	}
	fuzzy, stats := Identify(cands, Options{SameSlack: 0.33})
	if len(fuzzy) != 0 || stats.SameAcrossUsers != 1 {
		t.Fatalf("fuzzy = %d, stats = %+v", len(fuzzy), stats)
	}
}

func TestLifetimeThresholdBaseline(t *testing.T) {
	lifetimes := map[string]time.Duration{
		"shortlivedvalue1": 30 * 24 * time.Hour, // 30d < 90d
		"longlivedvalue22": 390 * 24 * time.Hour,
	}
	opt := Options{
		LifetimeThreshold: 90 * 24 * time.Hour,
		LifetimeOf: func(v string) (time.Duration, bool) {
			d, ok := lifetimes[v]
			return d, ok
		},
	}
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "a", "shortlivedvalue1"),
		cand(0, 2, crawler.Safari1, "b", "longlivedvalue22"),
	}
	cases, stats := Identify(cands, opt)
	if len(cases) != 1 || cases[0].Group.Name != "b" || stats.SessionByTTL != 1 {
		t.Fatalf("cases=%d stats=%+v", len(cases), stats)
	}
	// CrumbCruncher's method (no threshold) keeps both.
	cases, _ = Identify(cands, Options{})
	if len(cases) != 2 {
		t.Fatalf("no-threshold cases = %d", len(cases))
	}
}

func TestGroupingAcrossSteps(t *testing.T) {
	// The same name at different steps forms separate groups.
	cands := []*tokens.Candidate{
		cand(0, 1, crawler.Safari1, "x", "val1val1val1val1"),
		cand(0, 2, crawler.Safari1, "x", "val2val2val2val2"),
		cand(1, 1, crawler.Safari1, "x", "val3val3val3val3"),
	}
	groups := GroupCandidates(cands, Options{})
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
}

func TestLifetimeStats(t *testing.T) {
	idx := &LifetimeIndex{byValue: map[string]time.Duration{
		"short30short30short30": 21 * 24 * time.Hour,
		"mid60mid60mid60mid60m": 60 * 24 * time.Hour,
		"long390long390long390": 390 * 24 * time.Hour,
	}}
	mkCase := func(v string) *Case {
		return &Case{Values: map[string]string{crawler.Safari1: v}}
	}
	cases := []*Case{
		mkCase("short30short30short30"),
		mkCase("mid60mid60mid60mid60m"),
		mkCase("long390long390long390"),
		mkCase("unknownvalue-no-cookie"),
	}
	st := ComputeLifetimeStats(cases, idx)
	if st.WithCookie != 3 {
		t.Fatalf("WithCookie = %d", st.WithCookie)
	}
	if st.Under90Days != 2 || st.Under30Days != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Under90Fraction() < 0.6 || st.Under90Fraction() > 0.7 {
		t.Fatalf("under90 = %f", st.Under90Fraction())
	}
}

func TestBuildLifetimeIndexFromDataset(t *testing.T) {
	now := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	ds := &crawler.Dataset{
		Walks: []*crawler.Walk{{
			Steps: []*crawler.Step{{
				Records: map[string]*crawler.CrawlerStep{
					crawler.Safari1: {
						After: crawler.Snapshot{Cookies: []crawler.CookieRecord{
							{Name: "uid", Value: "somevalue1234567", Created: now, Expires: now.Add(45 * 24 * time.Hour)},
							{Name: "sess", Value: "sessval123456789", Created: now},
						}},
					},
				},
			}},
		}},
	}
	idx := BuildLifetimeIndex(ds)
	if lt, ok := idx.Lifetime("somevalue1234567"); !ok || lt != 45*24*time.Hour {
		t.Fatalf("lifetime = %v ok=%v", lt, ok)
	}
	if lt, ok := idx.Lifetime("sessval123456789"); !ok || lt != 0 {
		t.Fatalf("session lifetime = %v ok=%v", lt, ok)
	}
	if _, ok := idx.Lifetime("missing"); ok {
		t.Fatal("missing value reported present")
	}
}

func seqCand(origin, profile, name, value string) *tokens.Candidate {
	p := &tokens.Path{
		Profile: profile,
		Nodes: []tokens.PathNode{
			{URL: "http://" + origin + "/", Host: origin, Domain: origin},
			{URL: "http://dest.com/?x=1", Host: "dest.com", Domain: "dest.com"},
		},
	}
	return &tokens.Candidate{
		Name: name, Value: value, Profile: profile, Crawler: profile,
		Path: p, FirstIdx: 1, LastIdx: 1, Crossings: 1,
	}
}

func TestSequentialIdentify(t *testing.T) {
	cands := []*tokens.Candidate{
		// Two users observed the same (origin, param) with different
		// values: confirmed.
		seqCand("news.com", "user1", "zid", "aaaa1111bbbb2222"),
		seqCand("news.com", "user2", "zid", "cccc3333dddd4444"),
		// Only one user ever saw this one: unconfirmable.
		seqCand("blog.com", "user1", "qid", "eeee5555ffff6666"),
		// Same value across users: not a UID.
		seqCand("shop.com", "user1", "lang", "value-shared-1"),
		seqCand("shop.com", "user2", "lang", "value-shared-1"),
	}
	cases, stats := SequentialIdentify(cands, nil, 0)
	if len(cases) != 1 {
		t.Fatalf("cases = %d, want 1 (stats %+v)", len(cases), stats)
	}
	if got := cases[0].TrueParamName(); got != "zid" {
		t.Fatalf("param = %q", got)
	}
	if stats.SingleUser != 1 || stats.SameAcrossUsers != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSequentialIdentifyLifetimeThreshold(t *testing.T) {
	cands := []*tokens.Candidate{
		seqCand("a.com", "user1", "zid", "shortlivedvalue1"),
		seqCand("a.com", "user2", "zid", "shortlivedvalu22"),
	}
	lifetimes := func(v string) (time.Duration, bool) { return 30 * 24 * time.Hour, true }
	cases, stats := SequentialIdentify(cands, lifetimes, 90*24*time.Hour)
	if len(cases) != 0 || stats.SessionByTTL != 1 {
		t.Fatalf("cases=%d stats=%+v", len(cases), stats)
	}
}

// Property: identification is invariant to candidate input order.
func TestIdentifyOrderInvariant(t *testing.T) {
	base := []*tokens.Candidate{}
	base = append(base, fullStaticGroup("p1")...)
	base = append(base,
		cand(1, 2, crawler.Safari2, "p2", "bbbb2222cccc3333"),
		cand(1, 2, crawler.Chrome3, "p2", "dddd4444eeee5555"),
		cand(2, 3, crawler.Safari1, "p3", "ffff6666gggg7777"),
	)
	fingerprint := func(cands []*tokens.Candidate) string {
		cases, _ := Identify(cands, Options{})
		out := ""
		for _, c := range cases {
			out += c.Group.Name + "/" + string(c.Bucket) + ";"
		}
		return out
	}
	want := fingerprint(base)
	// A few deterministic shuffles.
	for rot := 1; rot < len(base); rot += 2 {
		shuffled := append(append([]*tokens.Candidate{}, base[rot:]...), base[:rot]...)
		if got := fingerprint(shuffled); got != want {
			t.Fatalf("rotation %d changed result:\n got %q\nwant %q", rot, got, want)
		}
	}
}
