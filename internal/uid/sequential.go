package uid

import (
	"sort"
	"strings"
	"time"

	"crumbcruncher/internal/tokens"
)

// SequentialStats accounts for the sequential baseline's token fates.
type SequentialStats struct {
	Candidates      int
	Groups          int
	SingleUser      int // unconfirmable: only one user ever observed the token
	SameAcrossUsers int
	SessionByTTL    int
	Programmatic    int
	ManuallyRemoved int
	Final           int
}

// SequentialIdentify implements prior work's sequential-user UID
// identification (Koop et al. and the single-crawler studies of §8.1):
// tokens are grouped by (originator site, parameter name) across users'
// independent visits — there are no synchronized steps to align on — and
// a token is kept only when at least two users observed it with entirely
// different values. Session IDs are removed with a cookie-lifetime
// threshold (the prior-work method), since there is no repeat crawler.
//
// The structural disadvantage the paper calls out appears as
// SequentialStats.SingleUser: with no synchronization, nothing guarantees
// a website (let alone an ad) is observed by more than one user, and all
// such tokens must be discarded.
func SequentialIdentify(cands []*tokens.Candidate, lifetimeOf func(string) (time.Duration, bool), threshold time.Duration) ([]*Case, SequentialStats) {
	stats := SequentialStats{Candidates: len(cands)}

	type groupKey struct {
		origin string
		name   string
	}
	groups := map[groupKey]map[string][]*tokens.Candidate{} // → profile → observations
	var order []groupKey
	for _, c := range cands {
		k := groupKey{origin: c.Path.Originator().Domain, name: c.Name}
		if groups[k] == nil {
			groups[k] = map[string][]*tokens.Candidate{}
			order = append(order, k)
		}
		groups[k][c.Profile] = append(groups[k][c.Profile], c)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].origin != order[j].origin {
			return order[i].origin < order[j].origin
		}
		return order[i].name < order[j].name
	})
	stats.Groups = len(order)

	var cases []*Case
	for _, k := range order {
		byProfile := groups[k]
		if len(byProfile) < 2 {
			stats.SingleUser++
			continue
		}
		// Any value shared by two users disqualifies the token.
		valueUsers := map[string]int{}
		for _, obs := range byProfile {
			seen := map[string]bool{}
			for _, c := range obs {
				if !seen[c.Value] {
					seen[c.Value] = true
					valueUsers[c.Value]++
				}
			}
		}
		shared := false
		for _, n := range valueUsers {
			if n > 1 {
				shared = true
				break
			}
		}
		if shared {
			stats.SameAcrossUsers++
			continue
		}
		rep := firstObservation(byProfile)
		if threshold > 0 && lifetimeOf != nil {
			if lt, ok := lifetimeOf(rep.Value); ok && lt < threshold {
				stats.SessionByTTL++
				continue
			}
		}
		if tokens.ProgrammaticFilter(rep.Value) != tokens.KeepToken {
			stats.Programmatic++
			continue
		}
		if tokens.ManualReview(rep.Value) {
			stats.ManuallyRemoved++
			continue
		}
		// Wrap in a Case for downstream tooling; the group coordinates
		// are synthetic (sequential data has no shared walk/step).
		g := &Group{Walk: -1, Step: -1, Name: k.origin + "|" + k.name,
			Observations: map[string][]*tokens.Candidate{}}
		c := &Case{Group: g, Bucket: BucketDifferentOnly, Values: map[string]string{}}
		profiles := make([]string, 0, len(byProfile))
		for p := range byProfile {
			profiles = append(profiles, p)
		}
		sort.Strings(profiles)
		for _, p := range profiles {
			g.Observations[p] = byProfile[p]
			c.Values[p] = byProfile[p][0].Value
			c.Candidates = append(c.Candidates, byProfile[p]...)
		}
		cases = append(cases, c)
	}
	stats.Final = len(cases)
	return cases, stats
}

func firstObservation(byProfile map[string][]*tokens.Candidate) *tokens.Candidate {
	profiles := make([]string, 0, len(byProfile))
	for p := range byProfile {
		profiles = append(profiles, p)
	}
	sort.Strings(profiles)
	return byProfile[profiles[0]][0]
}

// TrueParamNames extracts the underlying parameter name from a sequential
// case's synthetic group name ("origin|param").
func (c *Case) TrueParamName() string {
	if i := strings.LastIndexByte(c.Group.Name, '|'); i >= 0 {
		return c.Group.Name[i+1:]
	}
	return c.Group.Name
}
