// Package uid implements CrumbCruncher's UID identification stage (§3.7):
// deciding which cross-context tokens are true user identifiers. It
// encodes the paper's rules — discard tokens identical across different
// user profiles, discard tokens that differ between the Safari-1/Safari-1R
// repeat pair (session IDs), then apply programmatic filters and the
// lexicon "manual" review — and the prior-work baselines those rules
// improve on (two-crawler comparison, cookie-lifetime session heuristics,
// Ratcliff/Obershelp fuzzy value matching), for the ablation benchmarks.
package uid

import (
	"context"
	"sort"
	"time"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/parallel"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/textmatch"
	"crumbcruncher/internal/tokens"
)

// Bucket is a Table 1 crawler-combination category.
type Bucket string

const (
	// BucketPairPlus: the identical-profile pair plus at least one other
	// profile ("2 identical plus 1 or more different profiles").
	BucketPairPlus Bucket = "2 identical plus 1 or more different profiles"
	// BucketDifferentOnly: two or more different profiles, no identical
	// pair.
	BucketDifferentOnly Bucket = "2 or more different profiles only"
	// BucketPairOnly: only the identical-profile pair.
	BucketPairOnly Bucket = "2 identical profiles only"
	// BucketSingle: a single crawler.
	BucketSingle Bucket = "1 profile only"
)

// Buckets lists the Table 1 rows in presentation order.
var Buckets = []Bucket{BucketPairPlus, BucketDifferentOnly, BucketPairOnly, BucketSingle}

// Options configures identification. The zero value is CrumbCruncher's
// full method over all four crawlers.
type Options struct {
	// Crawlers restricts which crawlers' observations are used (the
	// two-crawler prior-work ablation). Empty means all four.
	Crawlers []string
	// DisableRepeatCrawler turns off session-ID elimination via
	// Safari-1R.
	DisableRepeatCrawler bool
	// LifetimeThreshold, when positive, discards tokens whose storing
	// cookie lived less than this (the 90-day/30-day prior-work session
	// heuristic). Requires LifetimeOf.
	LifetimeThreshold time.Duration
	// LifetimeOf reports the storing-cookie lifetime of a token value.
	// It is runtime wiring, not configuration, and is not serialized.
	LifetimeOf func(value string) (time.Duration, bool) `json:"-"`
	// SameSlack treats values within this Ratcliff/Obershelp slack as
	// "the same" across users (prior work used 0.33 or 0.45);
	// CrumbCruncher's method is exact equality (0).
	SameSlack float64
	// SkipManual disables the lexicon review stage.
	SkipManual bool
	// Parallelism bounds the worker pool classifying candidate groups
	// (0 or 1: sequential). It is runtime wiring, not configuration:
	// results are bit-identical for any value.
	Parallelism int `json:"-"`
	// Telemetry, when non-nil, receives verdict counters and
	// classification shard timings. Runtime wiring, not configuration;
	// observation only.
	Telemetry *telemetry.Telemetry `json:"-"`
}

func (o Options) crawlerSet() map[string]bool {
	set := map[string]bool{}
	if len(o.Crawlers) == 0 {
		for _, c := range crawler.AllCrawlers {
			set[c] = true
		}
		return set
	}
	for _, c := range o.Crawlers {
		set[c] = true
	}
	return set
}

// Group is a token observed under one name at one synchronized step,
// collected across crawlers.
type Group struct {
	Walk int
	Step int
	Name string
	// Observations maps crawler → that crawler's candidate observations.
	Observations map[string][]*tokens.Candidate
}

// valuesOf returns a crawler's distinct observed values.
func (g *Group) valuesOf(c string) []string {
	seen := map[string]bool{}
	var out []string
	for _, cand := range g.Observations[c] {
		if !seen[cand.Value] {
			seen[cand.Value] = true
			out = append(out, cand.Value)
		}
	}
	sort.Strings(out)
	return out
}

// Case is a confirmed UID smuggling instance.
type Case struct {
	Group  *Group
	Bucket Bucket
	// Values maps crawler → the UID value it observed (first of its
	// observations).
	Values map[string]string
	// Candidates holds every surviving observation (path context for the
	// analysis package).
	Candidates []*tokens.Candidate
}

// Stats accounts for every token's fate — the §3.7 numbers.
type Stats struct {
	Candidates        int
	Groups            int
	SameAcrossUsers   int // discarded: identical across different profiles
	SessionByRepeat   int // discarded: differs across the identical pair
	SessionByTTL      int // discarded by the lifetime baseline (if enabled)
	Programmatic      map[tokens.FilterReason]int
	AfterProgrammatic int // reaches the manual stage (the paper's 1,581)
	ManuallyRemoved   int // removed by the lexicon review (the paper's 577)
	Final             int
}

// GroupCandidates partitions candidates by (walk, step, name).
func GroupCandidates(cands []*tokens.Candidate, opt Options) []*Group {
	include := opt.crawlerSet()
	byKey := map[[2]int]map[string]*Group{}
	var order []*Group
	for _, c := range cands {
		if !include[c.Crawler] {
			continue
		}
		key := [2]int{c.Walk, c.Step}
		m := byKey[key]
		if m == nil {
			m = map[string]*Group{}
			byKey[key] = m
		}
		g := m[c.Name]
		if g == nil {
			g = &Group{Walk: c.Walk, Step: c.Step, Name: c.Name,
				Observations: map[string][]*tokens.Candidate{}}
			m[c.Name] = g
			order = append(order, g)
		}
		g.Observations[c.Crawler] = append(g.Observations[c.Crawler], c)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Walk != b.Walk {
			return a.Walk < b.Walk
		}
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		return a.Name < b.Name
	})
	return order
}

// same compares two values under the configured slack.
func (o Options) same(a, b string) bool {
	if o.SameSlack <= 0 {
		return a == b
	}
	return textmatch.SameWithin(a, b, o.SameSlack)
}

// verdictKind is the fate classifyGroup assigned to a group.
type verdictKind int8

const (
	verdictKeep verdictKind = iota
	verdictSameAcrossUsers
	verdictSessionByRepeat
	verdictSessionByTTL
	verdictProgrammatic
	verdictManual
)

// groupVerdict is one group's classification outcome. Groups are
// classified independently (the fan-out unit of the parallel pipeline)
// and reduced into Stats and the case list in group order.
type groupVerdict struct {
	kind   verdictKind
	reason tokens.FilterReason // set for verdictProgrammatic
	c      *Case               // set for verdictKeep
}

// Identify runs the full §3.7 procedure and returns the confirmed UID
// cases with bookkeeping statistics. Per-group work runs concurrently
// when opt.Parallelism > 1; the result is bit-identical regardless.
func Identify(cands []*tokens.Candidate, opt Options) ([]*Case, Stats) {
	cases, stats, _ := IdentifyCtx(context.Background(), cands, opt)
	return cases, stats
}

// IdentifyCtx is Identify bounded by ctx: cancellation stops the
// classification pool from taking new groups and returns ctx's error
// with unusable partial results.
func IdentifyCtx(ctx context.Context, cands []*tokens.Candidate, opt Options) ([]*Case, Stats, error) {
	include := opt.crawlerSet()
	stats := Stats{Programmatic: map[tokens.FilterReason]int{}}
	stats.Candidates = len(cands)
	groups := GroupCandidates(cands, opt)
	stats.Groups = len(groups)

	reg := opt.Telemetry.Registry()
	reg.Counter("uid.candidates").Add(int64(stats.Candidates))
	reg.Counter("uid.groups").Add(int64(stats.Groups))

	verdicts := make([]groupVerdict, len(groups))
	err := parallel.ForEachTimedCtx(ctx, len(groups), opt.Parallelism, func(i int) {
		verdicts[i] = classifyGroup(groups[i], opt, include)
	}, reg.Histogram("uid.classify_shard_us").Microseconds())
	if err != nil {
		return nil, stats, err
	}

	cases := reduceVerdicts(verdicts, &stats, reg)
	return cases, stats, nil
}

// reduceVerdicts performs the ordered reduce: statistics and confirmed
// cases accumulate in group order, exactly as a sequential loop would.
// Verdict counters live here rather than in classifyGroup so they
// increment in deterministic order too. Shared by the batch entry
// points and the streaming identifier's drain.
func reduceVerdicts(verdicts []groupVerdict, stats *Stats, reg *telemetry.Registry) []*Case {
	var cases []*Case
	for _, v := range verdicts {
		switch v.kind {
		case verdictSameAcrossUsers:
			stats.SameAcrossUsers++
			reg.Counter("uid.verdict_same_across_users").Inc()
		case verdictSessionByRepeat:
			stats.SessionByRepeat++
			reg.Counter("uid.verdict_session_by_repeat").Inc()
		case verdictSessionByTTL:
			stats.SessionByTTL++
			reg.Counter("uid.verdict_session_by_ttl").Inc()
		case verdictProgrammatic:
			stats.Programmatic[v.reason]++
			reg.Counter("uid.verdict_programmatic").Inc()
		case verdictManual:
			stats.AfterProgrammatic++
			stats.ManuallyRemoved++
			reg.Counter("uid.verdict_manual").Inc()
		case verdictKeep:
			stats.AfterProgrammatic++
			cases = append(cases, v.c)
			reg.Counter("uid.verdict_confirmed").Inc()
		}
	}
	stats.Final = len(cases)
	return cases
}

// classifyGroup applies the §3.7 rules to one group. It only reads the
// group and shared read-only state (options, lifetime index), so calls
// are safe to run concurrently.
func classifyGroup(g *Group, opt Options, include map[string]bool) groupVerdict {
	// Rule 1: a value shared by two different profiles is not a UID
	// (§3.7.2 rule 1; also covers the static case of §3.7.1).
	if g.sharedAcrossProfiles(opt) {
		return groupVerdict{kind: verdictSameAcrossUsers}
	}
	// Rule 2: the identical pair observed different values — a
	// session ID (§3.7.1, §3.7.2 rule 2).
	if !opt.DisableRepeatCrawler && include[crawler.Safari1] && include[crawler.Safari1R] {
		v1 := g.valuesOf(crawler.Safari1)
		v1r := g.valuesOf(crawler.Safari1R)
		if len(v1) > 0 && len(v1r) > 0 && !anyCommon(v1, v1r, opt) {
			return groupVerdict{kind: verdictSessionByRepeat}
		}
	}
	// Prior-work lifetime heuristic (baseline only).
	if opt.LifetimeThreshold > 0 && opt.LifetimeOf != nil {
		if lt, ok := opt.LifetimeOf(g.anyValue()); ok && lt < opt.LifetimeThreshold {
			return groupVerdict{kind: verdictSessionByTTL}
		}
	}
	// Programmatic filters.
	if reason := tokens.ProgrammaticFilter(g.anyValue()); reason != tokens.KeepToken {
		return groupVerdict{kind: verdictProgrammatic, reason: reason}
	}
	// Lexicon review (the paper's manual stage).
	if !opt.SkipManual && tokens.ManualReview(g.anyValue()) {
		return groupVerdict{kind: verdictManual}
	}
	return groupVerdict{kind: verdictKeep, c: g.toCase(opt)}
}

// sharedAcrossProfiles reports whether any value is observed by two
// crawlers with different user profiles.
func (g *Group) sharedAcrossProfiles(opt Options) bool {
	crawlers := g.crawlers()
	for i, a := range crawlers {
		for _, b := range crawlers[i+1:] {
			if crawler.SameProfile(a, b) {
				continue
			}
			if anyCommon(g.valuesOf(a), g.valuesOf(b), opt) {
				return true
			}
		}
	}
	return false
}

func anyCommon(a, b []string, opt Options) bool {
	for _, x := range a {
		for _, y := range b {
			if opt.same(x, y) {
				return true
			}
		}
	}
	return false
}

func (g *Group) crawlers() []string {
	var out []string
	for _, c := range crawler.AllCrawlers {
		if len(g.Observations[c]) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func (g *Group) anyValue() string {
	for _, c := range crawler.AllCrawlers {
		if obs := g.Observations[c]; len(obs) > 0 {
			return obs[0].Value
		}
	}
	return ""
}

// toCase builds the confirmed case with its Table 1 bucket.
func (g *Group) toCase(opt Options) *Case {
	c := &Case{Group: g, Values: map[string]string{}}
	for _, name := range g.crawlers() {
		c.Values[name] = g.valuesOf(name)[0]
		c.Candidates = append(c.Candidates, g.Observations[name]...)
	}
	c.Bucket = bucketOf(g, opt)
	return c
}

// bucketOf classifies the crawler combination (Table 1).
func bucketOf(g *Group, opt Options) Bucket {
	v1 := g.valuesOf(crawler.Safari1)
	v1r := g.valuesOf(crawler.Safari1R)
	pair := anyCommon(v1, v1r, opt)

	profiles := map[string]bool{}
	for _, name := range g.crawlers() {
		profiles[crawler.ProfileOf(name)] = true
	}
	switch {
	case pair && len(profiles) > 1:
		return BucketPairPlus
	case pair:
		return BucketPairOnly
	case len(profiles) > 1:
		return BucketDifferentOnly
	default:
		return BucketSingle
	}
}

// BucketCounts tallies cases per Table 1 row.
func BucketCounts(cases []*Case) map[Bucket]int {
	out := map[Bucket]int{}
	for _, c := range cases {
		out[c.Bucket]++
	}
	return out
}
