// Package words holds the vocabulary shared by the synthetic-web generator
// (which coins domain names, slugs and benign token values from it) and the
// token pipeline's lexicon-based "manual review" stage (which recognises
// natural-language tokens the way the paper's authors did by hand —
// §3.7.2's "Dental_internal_whitepaper_topic", "sweetmagnolias",
// "share_button" false positives).
package words

// Common is a list of ordinary English words used to build slugs, campaign
// names and other benign token values.
var Common = []string{
	"about", "account", "action", "article", "autumn", "banner", "basket",
	"beach", "board", "bonus", "bright", "bundle", "button", "campaign",
	"castle", "checkout", "cloud", "coast", "coffee", "content", "corner",
	"country", "coupon", "daily", "dental", "design", "digital", "dinner",
	"discount", "dream", "editor", "energy", "event", "express", "family",
	"fashion", "featured", "festival", "field", "finance", "flash", "flower",
	"forest", "forward", "fresh", "friend", "garden", "gold", "grand",
	"green", "guide", "harbor", "health", "hidden", "holiday", "home",
	"internal", "island", "journal", "kitchen", "launch", "leader", "letter",
	"light", "magnolia", "market", "meadow", "media", "member", "midnight",
	"morning", "mountain", "nature", "news", "night", "ocean", "offer",
	"office", "orange", "order", "outlet", "page", "partner", "pepper",
	"picture", "pilot", "planet", "player", "pocket", "policy", "premium",
	"profile", "promo", "purple", "rapid", "reader", "report", "review", "sale",
	"river", "royal", "sample", "season", "secret", "section", "share",
	"signal", "silver", "simple", "smart", "social", "special", "sport",
	"spring", "square", "star", "stream", "street", "studio", "summer",
	"sunset", "sweet", "topic", "total", "track", "trade", "travel",
	"trusted", "update", "valley", "video", "village", "vision", "weather",
	"weekly", "welcome", "whitepaper", "winter", "wonder", "world", "yellow",
}

// Brandish is a list of coined, brand-sounding fragments used for domain
// names (they read like words but are not in Common, exercising the
// "concatenated words with no delimiter" false-positive class).
var Brandish = []string{
	"ado", "axo", "bliq", "brev", "cart", "dex", "flux", "gno", "hup",
	"ionix", "jolt", "kura", "lyn", "mova", "nuvo", "oxo", "pex", "quil",
	"rix", "sana", "tivo", "ulo", "vant", "wix", "xel", "ynd", "zum",
	"navi", "mail", "pulse", "metric", "route", "sync", "serve", "pixel",
	"trail", "crumb", "spark", "shift", "loop", "beam", "forge", "nest",
}

// Locales is the language/region specifier vocabulary ("en-US" style
// acronym tokens the paper's manual filter removes).
var Locales = []string{
	"en-US", "en-GB", "de-DE", "fr-FR", "es-ES", "pt-BR", "ru-RU",
	"ja-JP", "zh-CN", "it-IT", "nl-NL", "sv-SE", "pl-PL", "ko-KR",
}

// Acronyms are short obvious acronym tokens.
var Acronyms = []string{
	"UTC", "GMT", "USD", "EUR", "GBP", "FAQ", "API", "RSS", "SEO",
	"CPM", "CPC", "CTA", "B2B", "GDPR",
}

// IsCommon reports whether w (lowercase) is in the Common vocabulary.
func IsCommon(w string) bool { return commonSet[w] }

// IsBrandish reports whether w (lowercase) is a coined brand fragment.
func IsBrandish(w string) bool { return brandishSet[w] }

var commonSet = toSet(Common)
var brandishSet = toSet(Brandish)

func toSet(ws []string) map[string]bool {
	m := make(map[string]bool, len(ws))
	for _, w := range ws {
		m[w] = true
	}
	return m
}

// SegmentWords greedily splits a lowercase alphabetic string into known
// vocabulary words (longest match first). It returns the words and whether
// the whole string was covered — the recogniser behind the manual filter's
// "concatenated words with no delimiter" rule (e.g. "sweetmagnolias" →
// sweet + magnolia + s).
func SegmentWords(s string) (parts []string, ok bool) {
	return segment(s, 0)
}

func segment(s string, depth int) ([]string, bool) {
	if s == "" {
		return nil, true
	}
	if depth > 16 {
		return nil, false
	}
	// Longest-match-first keeps the common case linear.
	max := len(s)
	if max > 12 {
		max = 12
	}
	for l := max; l >= 3; l-- {
		w := s[:l]
		if commonSet[w] || brandishSet[w] {
			if rest, ok := segment(s[l:], depth+1); ok {
				return append([]string{w}, rest...), true
			}
		}
	}
	// Allow a single trailing plural/letter.
	if len(s) == 1 {
		return []string{s}, true
	}
	return nil, false
}
