package words

import "testing"

func TestIsCommon(t *testing.T) {
	if !IsCommon("share") || !IsCommon("whitepaper") {
		t.Fatal("expected vocabulary words")
	}
	if IsCommon("zxqj") {
		t.Fatal("nonsense accepted")
	}
}

func TestSegmentWordsConcatenated(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"sweetmagnolias", true}, // sweet + magnolia + s
		{"sharebutton", true},
		{"navimail", true}, // brandish navi + mail
		{"dentalinternalwhitepapertopic", true},
		{"4f2a9c1b7d8e", false}, // hex UID
		{"x9k2m", false},
		{"", true},
	}
	for _, c := range cases {
		_, ok := SegmentWords(c.in)
		if ok != c.want {
			t.Errorf("SegmentWords(%q) ok = %v, want %v", c.in, ok, c.want)
		}
	}
}

func TestSegmentWordsParts(t *testing.T) {
	parts, ok := SegmentWords("sharebutton")
	if !ok || len(parts) != 2 || parts[0] != "share" || parts[1] != "button" {
		t.Fatalf("parts = %v ok=%v", parts, ok)
	}
}

func TestVocabularyDisjointness(t *testing.T) {
	for _, b := range Brandish {
		if IsCommon(b) {
			t.Errorf("brandish word %q also in Common (ambiguous lexicon)", b)
		}
	}
}

func TestSegmentDoesNotLoopOnLongInput(t *testing.T) {
	long := ""
	for i := 0; i < 50; i++ {
		long += "share"
	}
	if _, ok := SegmentWords(long); ok {
		// 50 words exceeds the depth bound; must simply return false,
		// never hang.
		t.Log("long input segmented (acceptable if within depth)")
	}
}
