package stats

import (
	"errors"
	"math"
)

// Proportion is a count of successes out of a number of trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Value returns the sample proportion, or 0 for an empty sample.
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// ZTestResult reports a two-proportion Z test, the procedure the paper uses
// in §3.5 to compare the multi-crawler fraction of UID smuggling on
// fingerprinting vs. non-fingerprinting originators.
type ZTestResult struct {
	// Z is the test statistic.
	Z float64
	// PValue is the two-tailed p-value.
	PValue float64
	// PooledP is the pooled proportion used by the statistic.
	PooledP float64
	// Diff is p1 - p2.
	Diff float64
}

// Significant reports whether the difference is significant at level alpha
// (two-tailed).
func (r ZTestResult) Significant(alpha float64) bool { return r.PValue < alpha }

// ErrDegenerateSample is returned when a Z test cannot be computed (empty
// groups, or a pooled proportion of exactly 0 or 1, which makes the
// standard error zero).
var ErrDegenerateSample = errors.New("stats: degenerate sample for z-test")

// TwoProportionZTest performs the classic pooled two-proportion Z test.
func TwoProportionZTest(a, b Proportion) (ZTestResult, error) {
	if a.Trials == 0 || b.Trials == 0 {
		return ZTestResult{}, ErrDegenerateSample
	}
	n1, n2 := float64(a.Trials), float64(b.Trials)
	p1, p2 := a.Value(), b.Value()
	pooled := float64(a.Successes+b.Successes) / (n1 + n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/n1 + 1/n2))
	if se == 0 {
		return ZTestResult{}, ErrDegenerateSample
	}
	z := (p1 - p2) / se
	return ZTestResult{
		Z:       z,
		PValue:  2 * (1 - StdNormalCDF(math.Abs(z))),
		PooledP: pooled,
		Diff:    p1 - p2,
	}, nil
}

// StdNormalCDF returns the standard normal cumulative distribution function
// at x, computed via the complementary error function.
func StdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
