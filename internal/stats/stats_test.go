package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "world")
	b := DeriveSeed(42, "world")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d != %d", a, b)
	}
}

func TestDeriveSeedLabelSeparation(t *testing.T) {
	labels := []string{"world", "walk/0", "walk/1", "faults", "ads", ""}
	seen := make(map[int64]string)
	for _, l := range labels {
		s := DeriveSeed(7, l)
		if prev, ok := seen[s]; ok {
			t.Fatalf("labels %q and %q collide on seed %d", prev, l, s)
		}
		seen[s] = l
	}
}

func TestDeriveSeedParentSeparation(t *testing.T) {
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("different parents produced same derived seed")
	}
}

func TestSplitterHierarchy(t *testing.T) {
	s := NewSplitter(99)
	c1 := s.Child("walks").Seed("0")
	c2 := s.Child("walks").Seed("0")
	if c1 != c2 {
		t.Fatal("Child derivation not deterministic")
	}
	if s.Child("walks").Seed("0") == s.Child("faults").Seed("0") {
		t.Fatal("sibling children collide")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatalf("stream diverged at draw %d", i)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 50; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(2)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if p < 0.27 || p > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.3", p)
	}
}

func TestWeightedIndex(t *testing.T) {
	g := NewRNG(3)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	for i := 0; i < 40000; i++ {
		counts[g.WeightedIndex(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestWeightedIndexPanicsWithoutPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).WeightedIndex([]float64{0, -1})
}

func TestGeometric(t *testing.T) {
	g := NewRNG(4)
	const trials = 30000
	var sum int
	for i := 0; i < trials; i++ {
		n := g.Geometric(0.5, 100)
		if n < 0 || n > 100 {
			t.Fatalf("Geometric out of range: %d", n)
		}
		sum += n
	}
	mean := float64(sum) / trials
	// Mean of geometric (failures before success) with p=0.5 is 1.
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("Geometric mean = %.3f, want ~1", mean)
	}
	if g.Geometric(0, 7) != 7 {
		t.Fatal("Geometric(0, max) should return max")
	}
	if g.Geometric(1, 7) != 0 {
		t.Fatal("Geometric(1, max) should return 0")
	}
}

func TestTokenShape(t *testing.T) {
	g := NewRNG(6)
	tok := g.Token(32)
	if len(tok) != 32 {
		t.Fatalf("Token length = %d, want 32", len(tok))
	}
	for _, c := range tok {
		if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
			t.Fatalf("Token contains non-hex char %q", c)
		}
	}
}

func TestAlphaNumShape(t *testing.T) {
	g := NewRNG(6)
	s := g.AlphaNum(20)
	if len(s) != 20 {
		t.Fatalf("AlphaNum length = %d, want 20", len(s))
	}
}

func TestZipfBasics(t *testing.T) {
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	g := NewRNG(8)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		r := z.Rank(g)
		if r < 1 || r > 100 {
			t.Fatalf("rank out of range: %d", r)
		}
		counts[r]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("rank 1 (%d draws) should dominate rank 10 (%d draws)", counts[1], counts[10])
	}
	// Theoretical ratio P(1)/P(2) = 2 for s=1.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("P(1)/P(2) = %.2f, want ~2", ratio)
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(50, 0.8)
	var sum float64
	for r := 1; r <= 50; r++ {
		p := z.P(r)
		if p <= 0 {
			t.Fatalf("P(%d) = %g, want > 0", r, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if z.P(0) != 0 || z.P(51) != 0 {
		t.Fatal("out-of-range ranks should have probability 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for r := 1; r <= 10; r++ {
		if math.Abs(z.P(r)-0.1) > 1e-9 {
			t.Fatalf("s=0 P(%d) = %g, want 0.1", r, z.P(r))
		}
	}
}

func TestTwoProportionZTestKnownValue(t *testing.T) {
	// 52/100 vs 44/100: z should be ~1.13, not significant at 0.05.
	res, err := TwoProportionZTest(
		Proportion{Successes: 52, Trials: 100},
		Proportion{Successes: 44, Trials: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Z-1.1314) > 0.01 {
		t.Fatalf("Z = %.4f, want ~1.1314", res.Z)
	}
	if res.Significant(0.05) {
		t.Fatal("should not be significant at 0.05")
	}
	if res.Diff <= 0 {
		t.Fatalf("Diff = %g, want > 0", res.Diff)
	}
}

func TestTwoProportionZTestSignificant(t *testing.T) {
	res, err := TwoProportionZTest(
		Proportion{Successes: 700, Trials: 1000},
		Proportion{Successes: 500, Trials: 1000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Fatalf("70%% vs 50%% with n=1000 must be significant; p=%g", res.PValue)
	}
}

func TestTwoProportionZTestDegenerate(t *testing.T) {
	if _, err := TwoProportionZTest(Proportion{}, Proportion{Successes: 1, Trials: 2}); err == nil {
		t.Fatal("expected error for empty group")
	}
	if _, err := TwoProportionZTest(
		Proportion{Successes: 5, Trials: 5},
		Proportion{Successes: 3, Trials: 3},
	); err == nil {
		t.Fatal("expected error for pooled p = 1")
	}
}

func TestStdNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		got := StdNormalCDF(c.x)
		if math.Abs(got-c.want) > 0.001 {
			t.Errorf("StdNormalCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("Stddev = %g", s.Stddev)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty sample should yield zero summary")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0); q != 10 {
		t.Fatalf("q0 = %g", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Fatalf("q1 = %g", q)
	}
	if q := Quantile(sorted, 0.5); q != 25 {
		t.Fatalf("median = %g, want 25", q)
	}
}

func TestCounterTopOrdering(t *testing.T) {
	c := NewCounter()
	c.Add("b", 3)
	c.Add("a", 3)
	c.Inc("z")
	top := c.Top(0)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Key != "a" || top[1].Key != "b" || top[2].Key != "z" {
		t.Fatalf("tie-break ordering wrong: %v", top)
	}
	if got := c.Top(1); len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("Top(1) = %v", got)
	}
	if c.Total() != 7 || c.Len() != 3 || c.Count("b") != 3 {
		t.Fatalf("counter accessors wrong: total=%d len=%d", c.Total(), c.Len())
	}
}

// Property: quantiles are monotone in q for any sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs) // sorts internally; rebuild sorted here
		_ = s
		sorted := append([]float64(nil), xs...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		a := math.Abs(q1)
		b := math.Abs(q2)
		a -= math.Floor(a)
		b -= math.Floor(b)
		if a > b {
			a, b = b, a
		}
		return Quantile(sorted, a) <= Quantile(sorted, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DeriveSeed is a pure function.
func TestDeriveSeedPureProperty(t *testing.T) {
	f := func(seed int64, label string) bool {
		return DeriveSeed(seed, label) == DeriveSeed(seed, label)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
