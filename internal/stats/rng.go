// Package stats provides the deterministic randomness and statistical
// machinery CrumbCruncher relies on: a splittable seeded RNG, weighted and
// Zipf samplers, proportions, and the two-proportion Z test used by the
// fingerprinting experiment (paper §3.5).
//
// Everything in this package is pure computation: given the same inputs it
// produces the same outputs, which is the foundation of CrumbCruncher's
// end-to-end reproducibility.
package stats

import (
	"math"
	"math/rand"
	"sync"
)

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is used only for deriving independent sub-seeds; the actual
// random streams are math/rand PCG-quality sources seeded from it.
func splitmix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// rngPool recycles rand.Rand instances. The stock rand.NewSource
// allocates a 607-word (~4.9KB) lagged-Fibonacci state per instance, and
// CrumbCruncher creates RNGs by the hundred-thousand (two per page
// render) — source construction was one of the largest allocation sites
// in a crawl. Re-seeding a pooled source deterministically resets its
// entire state, so a pooled RNG's stream is byte-identical to a fresh
// NewRNG's: pooling changes allocation counts, never output.
var rngPool = sync.Pool{
	New: func() any { return rand.New(rand.NewSource(0)) },
}

// DeriveSeed deterministically mixes a parent seed with a label so that
// independent subsystems (world generation, ad rotation, fault injection,
// per-crawler fallback choices) get decorrelated streams. The label keeps
// derivations stable across code reorderings: adding a new consumer never
// perturbs existing streams.
func DeriveSeed(parent int64, label string) int64 {
	state := uint64(parent) ^ 0x6a09e667f3bcc908
	var out uint64
	for i := 0; i < len(label); i++ {
		state ^= uint64(label[i]) << (uint(i%8) * 8)
		state, out = splitmix64(state)
	}
	state, out = splitmix64(state)
	_ = state
	return int64(out)
}

// DeriveSeedN deterministically mixes a parent seed with an integer
// label. It is the allocation-free sibling of DeriveSeed for indexed
// derivations (per-site, per-walk): DeriveSeedN(s, i) is stable across
// releases and decorrelated from DeriveSeed streams.
func DeriveSeedN(parent int64, n int) int64 {
	state := uint64(parent) ^ 0x6a09e667f3bcc908
	state ^= uint64(n) * 0xbf58476d1ce4e5b9
	var out uint64
	state, out = splitmix64(state)
	state, out = splitmix64(state)
	_ = state
	return int64(out)
}

// UnitAt returns a deterministic uniform float64 in [0, 1) for the pair
// (seed, i) without constructing an RNG. It is used for cheap per-index
// classification decisions (e.g. a lazy world's site kinds) where paying
// for a full random stream per index would dominate generation.
func UnitAt(seed int64, i int) float64 {
	_, out := splitmix64(uint64(DeriveSeedN(seed, i)))
	return float64(out>>11) / (1 << 53)
}

// RNG is a deterministic random source. It wraps math/rand with a
// convenience layer (splitting, weighted choice) and is NOT safe for
// concurrent use; split one child per goroutine instead.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// AcquireRNG returns an RNG re-seeded from the pool, stream-identical to
// NewRNG(seed). Callers that can bound the RNG's lifetime should pair it
// with Release on every path; callers that can't should use NewRNG.
func AcquireRNG(seed int64) *RNG {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return &RNG{r: r}
}

// Release returns the RNG's source to the pool. The RNG must not be used
// afterwards (any use panics). Safe to call on a NewRNG-built RNG too —
// its source simply joins the pool.
func (g *RNG) Release() {
	if g.r != nil {
		rngPool.Put(g.r)
		g.r = nil
	}
}

// Splitter derives independent RNGs from a root seed by label.
type Splitter struct {
	seed int64
}

// NewSplitter returns a Splitter rooted at seed.
func NewSplitter(seed int64) *Splitter { return &Splitter{seed: seed} }

// Seed returns the deterministic sub-seed for label.
func (s *Splitter) Seed(label string) int64 { return DeriveSeed(s.seed, label) }

// RNG returns a fresh RNG for label.
func (s *Splitter) RNG(label string) *RNG { return NewRNG(s.Seed(label)) }

// Child returns a Splitter namespaced under label, for hierarchical
// derivation (e.g. "walk/17/step/3").
func (s *Splitter) Child(label string) *Splitter {
	return &Splitter{seed: s.Seed(label)}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform uint64.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// WeightedIndex returns an index into weights chosen with probability
// proportional to the weight. Zero or negative weights are never chosen.
// It panics if no weight is positive.
func (g *RNG) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedIndex requires a positive weight")
	}
	x := g.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Geometric samples a geometric count with success probability p: the
// number of failures before the first success, capped at max. It is used
// for redirect-chain lengths.
func (g *RNG) Geometric(p float64, max int) int {
	if p <= 0 {
		return max
	}
	if p >= 1 {
		return 0
	}
	n := 0
	for n < max && g.Float64() >= p {
		n++
	}
	return n
}

// Token returns a random lowercase hex token of n characters, the shape of
// a typical smuggled UID.
func (g *RNG) Token(n int) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexdigits[g.Intn(16)]
	}
	return string(b)
}

// AlphaNum returns a random alphanumeric string of n characters.
func (g *RNG) AlphaNum(n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[g.Intn(len(alphabet))]
	}
	return string(b)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has the given mu and sigma. Used for latency simulation.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}
