package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	var sd float64
	if len(sorted) > 1 {
		sd = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: sd,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P99:    Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already-sorted sample
// using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter tallies string keys and reports them in rank order. It is the
// workhorse behind every "top N" table and figure in the paper.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add increments key by n.
func (c *Counter) Add(key string, n int) { c.counts[key] += n }

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.counts[key]++ }

// Count returns the tally for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Total returns the sum of all tallies.
func (c *Counter) Total() int {
	var t int
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Entry is a key with its tally.
type Entry struct {
	Key   string
	Count int
}

// Top returns the n highest-count entries, ties broken by key so output is
// deterministic. n <= 0 returns all entries.
func (c *Counter) Top(n int) []Entry {
	entries := make([]Entry, 0, len(c.counts))
	for k, v := range c.counts {
		entries = append(entries, Entry{Key: k, Count: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	return entries
}
