package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s. It is
// used to give the synthetic web a realistic popularity skew: a handful of
// hyper-popular sites (the Sports-Reference- and Facebook-alikes of the
// paper's Figure 4) and a long tail.
//
// The implementation precomputes the CDF and answers draws with a binary
// search, so sampling is O(log N) and allocation-free after construction.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf builds a Zipf distribution over ranks 1..n with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewZipf n=%d, want > 0", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("stats: NewZipf s=%g, want >= 0", s))
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against FP drift
	return &Zipf{cdf: cdf}
}

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(g *RNG) int {
	x := g.Float64()
	i := sort.SearchFloat64s(z.cdf, x)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i + 1
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// ZipfRank maps a uniform u in [0, 1) to a rank in [1, n] with density
// approximately proportional to 1/rank^s, by inverting the CDF of the
// continuous Zipf approximation in closed form. Unlike NewZipf it holds
// no per-rank state, so popularity-biased sampling over a million-site
// lazy world costs O(1) memory instead of an 8 MB CDF table. s must not
// equal 1 (the skews used here are well below it).
func ZipfRank(n int, s, u float64) int {
	if n <= 1 {
		return 1
	}
	t := math.Pow(float64(n), 1-s)
	r := int(math.Pow(u*(t-1)+1, 1/(1-s)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// P returns the probability of drawing rank r (1-based).
func (z *Zipf) P(r int) float64 {
	if r < 1 || r > len(z.cdf) {
		return 0
	}
	if r == 1 {
		return z.cdf[0]
	}
	return z.cdf[r-1] - z.cdf[r-2]
}
