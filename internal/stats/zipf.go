package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s. It is
// used to give the synthetic web a realistic popularity skew: a handful of
// hyper-popular sites (the Sports-Reference- and Facebook-alikes of the
// paper's Figure 4) and a long tail.
//
// The implementation precomputes the CDF and answers draws with a binary
// search, so sampling is O(log N) and allocation-free after construction.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf builds a Zipf distribution over ranks 1..n with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewZipf n=%d, want > 0", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("stats: NewZipf s=%g, want >= 0", s))
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against FP drift
	return &Zipf{cdf: cdf}
}

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(g *RNG) int {
	x := g.Float64()
	i := sort.SearchFloat64s(z.cdf, x)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i + 1
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// P returns the probability of drawing rank r (1-based).
func (z *Zipf) P(r int) float64 {
	if r < 1 || r > len(z.cdf) {
		return 0
	}
	if r == 1 {
		return z.cdf[0]
	}
	return z.cdf[r-1] - z.cdf[r-2]
}
