package browser

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"

	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/storage"
)

const testSeed = 424242

// fixture builds a miniature world exercising every mechanism the paper
// describes: an originator with a link-decorating tracker, a dedicated
// redirector that stores smuggled UIDs first-party, a destination with a
// collector script and a leaky analytics beacon, and an ad iframe.
func fixture(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New()

	// Originator: one cross-domain link, one same-domain link, a tracker
	// that decorates cross-domain links, and an ad iframe.
	n.HandleFunc("news.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `<html><body>
<script src="http://trk.com/t.js" data-cc="link-decorator" data-tracker="trk.com" data-param="tclid" data-cookie="_trk" data-ttl-days="390"></script>
<a id="out" href="http://smuggler.net/r?dest=http%3A%2F%2Fshop.com%2Fland">Deal!</a>
<a id="in" href="/local/page">More news</a>
<iframe src="http://ads.com/slot?pub=news.com" width="300" height="250"></iframe>
</body></html>`)
	})
	n.HandleFunc("smuggler.net", func(w http.ResponseWriter, r *http.Request) {
		// Dedicated smuggler: stores the incoming UID as its own
		// first-party cookie and bounces on, appending its own UID.
		uid := r.URL.Query().Get("tclid")
		if uid != "" {
			http.SetCookie(w, &http.Cookie{Name: "aggr", Value: uid, MaxAge: 86400 * 390})
		}
		dest := r.URL.Query().Get("dest")
		http.Redirect(w, r, dest+"?tclid="+uid, http.StatusFound)
	})
	n.HandleFunc("shop.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<script src="http://trk.com/t.js" data-cc="collector" data-tracker="trk.com" data-params="tclid" data-cookie-prefix="_got_" data-beacon="http://trk.com/collect"></script>
<script data-cc="beacon" data-endpoint="http://analytics.com/g" data-include-url="1" data-uid-param="cid" data-tracker="analytics.com"></script>
<h1>Shop</h1>
</body></html>`)
	})
	n.HandleFunc("ads.com", func(w http.ResponseWriter, r *http.Request) {
		// Ad slot: the served ad links through the network's click domain.
		top := r.Header.Get("Referer")
		_ = top
		io.WriteString(w, `<html><body><a href="http://click.ads.com/c?ad=77&dest=http%3A%2F%2Fretailer.com%2F">Buy now</a></body></html>`)
	})
	n.HandleFunc("click.ads.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, r.URL.Query().Get("dest"), http.StatusFound)
	})
	n.HandleFunc("retailer.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><h1>Retailer</h1></body></html>`)
	})
	n.HandleFunc("trk.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	n.HandleFunc("analytics.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	n.HandleFunc("local.news.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>internal</body></html>`)
	})
	return n
}

func newBrowser(t *testing.T, n *netsim.Network, profile string) *Browser {
	t.Helper()
	return New(Config{
		Seed:      testSeed,
		ProfileID: profile,
		ClientID:  profile + "-client",
		Machine:   "machine-1",
		UserAgent: DefaultSafariUA,
		Policy:    storage.Partitioned,
		Network:   n,
	})
}

func TestNavigateParsesPage(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, err := b.Navigate("http://news.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.FinalHost() != "news.com" {
		t.Fatalf("final host = %q", p.FinalHost())
	}
	if len(p.Chain) != 1 || p.Chain[0].Status != 200 {
		t.Fatalf("chain = %+v", p.Chain)
	}
	cs := b.Clickables(p)
	// 2 anchors + 1 iframe.
	if len(cs) != 3 {
		t.Fatalf("clickables = %d, want 3", len(cs))
	}
	if cs[0].Kind != "a" || cs[2].Kind != "iframe" {
		t.Fatalf("kinds: %+v", cs)
	}
}

func TestLinkDecorationCrossDomainOnly(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, err := b.Navigate("http://news.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-domain anchor gets decorated.
	u, err := b.ClickURL(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	uid := u.Query().Get("tclid")
	if uid == "" {
		t.Fatalf("cross-domain link not decorated: %s", u)
	}
	want := ident.UID(testSeed, "trk.com", "u1", "news.com")
	if uid != want {
		t.Fatalf("decorated uid = %q, want %q", uid, want)
	}
	// Same-site anchor untouched.
	u2, err := b.ClickURL(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Query().Get("tclid") != "" {
		t.Fatalf("same-site link decorated: %s", u2)
	}
	// The decorating tracker stored its UID as a first-party cookie on
	// the originator.
	if c, ok := b.Store().Cookie(storage.Context{FrameHost: "news.com", TopHost: "news.com"}, "_trk", b.cfg.Network.Clock().Now()); !ok || c.Value != want {
		t.Fatalf("originator first-party UID cookie missing/wrong: %+v ok=%v", c, ok)
	}
}

func TestDecoratedUIDDiffersAcrossProfilesAndSites(t *testing.T) {
	n := fixture(t)
	b1 := newBrowser(t, n, "u1")
	b2 := newBrowser(t, n, "u2")
	p1, _ := b1.Navigate("http://news.com/", "")
	p2, _ := b2.Navigate("http://news.com/", "")
	u1, _ := b1.ClickURL(p1, 0)
	u2, _ := b2.ClickURL(p2, 0)
	if u1.Query().Get("tclid") == u2.Query().Get("tclid") {
		t.Fatal("different profiles must receive different UIDs")
	}
	// Same profile on a repeat crawler (same profile ID) gets the same UID.
	b1r := newBrowser(t, n, "u1")
	p1r, _ := b1r.Navigate("http://news.com/", "")
	u1r, _ := b1r.ClickURL(p1r, 0)
	if u1.Query().Get("tclid") != u1r.Query().Get("tclid") {
		t.Fatal("same profile must receive the same UID on revisit")
	}
}

func TestFullSmugglingNavigationChain(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, err := b.Navigate("http://news.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	dest, err := b.Click(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dest.FinalHost() != "shop.com" {
		t.Fatalf("landed on %q", dest.FinalHost())
	}
	// Chain: smuggler.net 302 → shop.com 200.
	if len(dest.Chain) != 2 {
		t.Fatalf("chain = %+v", dest.Chain)
	}
	if !strings.Contains(dest.Chain[0].URL, "smuggler.net") || dest.Chain[0].Status != 302 {
		t.Fatalf("hop 0 = %+v", dest.Chain[0])
	}
	uid := ident.UID(testSeed, "trk.com", "u1", "news.com")
	// The redirector stored the smuggled UID as ITS first-party cookie.
	now := b.cfg.Network.Clock().Now()
	c, ok := b.Store().Cookie(storage.Context{FrameHost: "smuggler.net", TopHost: "smuggler.net"}, "aggr", now)
	if !ok || c.Value != uid {
		t.Fatalf("redirector first-party cookie: %+v ok=%v", c, ok)
	}
	// The destination's collector stored it too.
	c2, ok := b.Store().Cookie(storage.Context{FrameHost: "shop.com", TopHost: "shop.com"}, "_got_tclid", now)
	if !ok || c2.Value != uid {
		t.Fatalf("destination collector cookie: %+v ok=%v", c2, ok)
	}
}

func TestRequestLogCoversAllKinds(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, err := b.Navigate("http://news.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Click(p, 0); err != nil {
		t.Fatal(err)
	}
	var navs, frames, beacons int
	for _, r := range b.Requests() {
		switch r.Kind {
		case KindNavigation:
			navs++
		case KindSubframe:
			frames++
		case KindBeacon:
			beacons++
		}
	}
	// news.com + smuggler.net + shop.com navigations.
	if navs != 3 {
		t.Fatalf("navigations = %d, want 3", navs)
	}
	if frames != 1 {
		t.Fatalf("subframes = %d, want 1", frames)
	}
	// collector beacon + analytics beacon on shop.com.
	if beacons != 2 {
		t.Fatalf("beacons = %d, want 2", beacons)
	}
}

func TestBeaconLeaksFullURL(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, _ := b.Navigate("http://news.com/", "")
	if _, err := b.Click(p, 0); err != nil {
		t.Fatal(err)
	}
	var analyticsURL string
	for _, r := range b.Requests() {
		if r.Kind == KindBeacon && strings.Contains(r.URL, "analytics.com") {
			analyticsURL = r.URL
		}
	}
	if analyticsURL == "" {
		t.Fatal("analytics beacon not fired")
	}
	uid := ident.UID(testSeed, "trk.com", "u1", "news.com")
	if !strings.Contains(analyticsURL, uid) {
		t.Fatalf("beacon should leak the smuggled UID inside url=: %s", analyticsURL)
	}
}

func TestIframeClickThroughAdChain(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, err := b.Navigate("http://news.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	dest, err := b.Click(p, 2) // the iframe
	if err != nil {
		t.Fatal(err)
	}
	if dest.FinalHost() != "retailer.com" {
		t.Fatalf("ad click landed on %q", dest.FinalHost())
	}
	if len(dest.Chain) != 2 || !strings.Contains(dest.Chain[0].URL, "click.ads.com") {
		t.Fatalf("chain = %+v", dest.Chain)
	}
}

func TestClickErrorsOnEmptyIframe(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("a.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><iframe src="http://empty.com/"></iframe></body></html>`)
	})
	n.HandleFunc("empty.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>no links here</body></html>`)
	})
	b := newBrowser(t, n, "u1")
	p, _ := b.Navigate("http://a.com/", "")
	_, err := b.Click(p, 0)
	var nt *ErrNoTarget
	if !errors.As(err, &nt) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestNavigateConnectionFailure(t *testing.T) {
	n := fixture(t)
	n.SetFaults(netsim.NewFaultInjector(1, 1.0))
	b := newBrowser(t, n, "u1")
	_, err := b.Navigate("http://news.com/", "")
	var ne *NavError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NavError", err)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) && !errors.Is(err, syscall.ECONNRESET) {
		// timeout flavour is also possible; accept it
		var nerr interface{ Timeout() bool }
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("unexpected failure flavour: %v", err)
		}
	}
	// The failed attempt is still in the request log.
	reqs := b.Requests()
	if len(reqs) != 1 || reqs[0].Err == "" {
		t.Fatalf("request log = %+v", reqs)
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("loop.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://loop.com/again", http.StatusFound)
	})
	b := newBrowser(t, n, "u1")
	_, err := b.Navigate("http://loop.com/", "")
	if err == nil || !strings.Contains(err.Error(), "too many redirects") {
		t.Fatalf("err = %v", err)
	}
}

func TestUserAgentAndHeadersSent(t *testing.T) {
	n := netsim.New()
	var ua, profile, client, machine string
	n.HandleFunc("x.com", func(w http.ResponseWriter, r *http.Request) {
		ua = r.Header.Get("User-Agent")
		profile = r.Header.Get(HeaderProfile)
		client = r.Header.Get(HeaderClient)
		machine = r.Header.Get(HeaderMachine)
		fmt.Fprint(w, "<html></html>")
	})
	b := newBrowser(t, n, "u9")
	if _, err := b.Navigate("http://x.com/", ""); err != nil {
		t.Fatal(err)
	}
	if ua != DefaultSafariUA {
		t.Fatalf("UA = %q", ua)
	}
	if profile != "u9" || client != "u9-client" || machine != "machine-1" {
		t.Fatalf("identity headers: %q %q %q", profile, client, machine)
	}
}

func TestCookiesRoundTripThroughServer(t *testing.T) {
	n := netsim.New()
	var secondVisitCookie string
	visit := 0
	n.HandleFunc("c.com", func(w http.ResponseWriter, r *http.Request) {
		visit++
		if visit == 1 {
			http.SetCookie(w, &http.Cookie{Name: "sid", Value: "server-set", MaxAge: 3600})
		} else {
			if c, err := r.Cookie("sid"); err == nil {
				secondVisitCookie = c.Value
			}
		}
		fmt.Fprint(w, "<html></html>")
	})
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://c.com/", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate("http://c.com/again", ""); err != nil {
		t.Fatal(err)
	}
	if secondVisitCookie != "server-set" {
		t.Fatalf("cookie not returned on second visit: %q", secondVisitCookie)
	}
}

func TestThirdPartyFrameCookiesPartitioned(t *testing.T) {
	n := netsim.New()
	page := func(host string) {
		n.HandleFunc(host, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `<html><body><iframe src="http://widget.com/w"></iframe></body></html>`)
		})
	}
	page("a.com")
	page("b.com")
	var cookieSeen []string
	n.HandleFunc("widget.com", func(w http.ResponseWriter, r *http.Request) {
		v := ""
		if c, err := r.Cookie("wid"); err == nil {
			v = c.Value
		}
		cookieSeen = append(cookieSeen, v)
		if v == "" {
			http.SetCookie(w, &http.Cookie{Name: "wid", Value: "W-" + r.Header.Get("Referer"), MaxAge: 86400})
		}
		fmt.Fprint(w, `<html><body><a href="http://a.com/">x</a></body></html>`)
	})
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://a.com/", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate("http://b.com/", ""); err != nil {
		t.Fatal(err)
	}
	// Partitioned: widget.com sees no cookie on b.com even though it set
	// one under a.com.
	if len(cookieSeen) != 2 || cookieSeen[0] != "" || cookieSeen[1] != "" {
		t.Fatalf("partitioning violated: %q", cookieSeen)
	}
	// And the a.com-partition cookie does exist.
	now := n.Clock().Now()
	if _, ok := b.Store().Cookie(storage.Context{FrameHost: "widget.com", TopHost: "a.com"}, "wid", now); !ok {
		t.Fatal("partition bucket missing")
	}
}

func TestFingerprintUIDSameAcrossProfiles(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("fp.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<script data-cc="link-decorator" data-tracker="fptrk.com" data-param="fpid" data-fingerprint="1"></script>
<a href="http://other.com/">out</a>
</body></html>`)
	})
	n.HandleFunc("other.com", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "<html></html>") })
	b1 := newBrowser(t, n, "u1")
	b2 := newBrowser(t, n, "u2")
	p1, _ := b1.Navigate("http://fp.com/", "")
	p2, _ := b2.Navigate("http://fp.com/", "")
	u1, _ := b1.ClickURL(p1, 0)
	u2, _ := b2.ClickURL(p2, 0)
	if u1.Query().Get("fpid") != u2.Query().Get("fpid") {
		t.Fatal("fingerprint UIDs must match across profiles on one machine")
	}
}

func TestLocalTokenDirective(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("l.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<script data-cc="local-token" data-key="app_uid" data-kind="uid" data-tracker="l.com"></script>
<script data-cc="local-token" data-key="sess" data-kind="session"></script>
<script data-cc="local-token" data-key="theme" data-kind="benign" data-value="dark"></script>
</body></html>`)
	})
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://l.com/", ""); err != nil {
		t.Fatal(err)
	}
	local := b.Store().FirstPartyLocal("l.com")
	if len(local) != 3 {
		t.Fatalf("local = %v", local)
	}
	if local["theme"] != "dark" {
		t.Fatalf("benign token = %q", local["theme"])
	}
	if local["app_uid"] != ident.UID(testSeed, "l.com", "u1", "l.com") {
		t.Fatal("uid token derivation mismatch")
	}
	// Session token changes on revisit.
	sess1 := local["sess"]
	if _, err := b.Navigate("http://l.com/", ""); err != nil {
		t.Fatal(err)
	}
	if sess2 := b.Store().FirstPartyLocal("l.com")["sess"]; sess2 == sess1 {
		t.Fatal("session token must differ across visits")
	}
}

func TestUIDSyncStorageModes(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("s.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<script data-cc="uid-sync" data-tracker="t1.com" data-cookie="_t1" data-storage="both" data-beacon="http://t1.com/b"></script>
</body></html>`)
	})
	n.HandleFunc("t1.com", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://s.com/", ""); err != nil {
		t.Fatal(err)
	}
	now := n.Clock().Now()
	c, ok := b.Store().Cookie(storage.Context{FrameHost: "s.com", TopHost: "s.com"}, "_t1", now)
	if !ok {
		t.Fatal("uid-sync cookie missing")
	}
	if v, ok := b.Store().GetLocal(storage.Context{FrameHost: "s.com", TopHost: "s.com"}, "_t1"); !ok || v != c.Value {
		t.Fatal("uid-sync localStorage mirror missing")
	}
	var beacons int
	for _, r := range b.Requests() {
		if r.Kind == KindBeacon && strings.Contains(r.URL, "t1.com/b") && strings.Contains(r.URL, c.Value) {
			beacons++
		}
	}
	if beacons != 1 {
		t.Fatalf("uid beacons = %d", beacons)
	}
}

func TestCollectorPrefersStoredUID(t *testing.T) {
	// If a UID was smuggled in and stored, a later uid-sync keeps it
	// instead of minting a new one.
	n := netsim.New()
	n.HandleFunc("d.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
<script data-cc="collector" data-tracker="t.com" data-params="xid" data-cookie-prefix=""></script>
<script data-cc="uid-sync" data-tracker="t.com" data-cookie="xid"></script>
</body></html>`)
	})
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://d.com/?xid=smuggledvalue123", ""); err != nil {
		t.Fatal(err)
	}
	now := n.Clock().Now()
	c, ok := b.Store().Cookie(storage.Context{FrameHost: "d.com", TopHost: "d.com"}, "xid", now)
	if !ok || c.Value != "smuggledvalue123" {
		t.Fatalf("uid-sync overwrote the smuggled UID: %+v", c)
	}
}

func TestResetRequests(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	if _, err := b.Navigate("http://news.com/", ""); err != nil {
		t.Fatal(err)
	}
	if len(b.Requests()) == 0 {
		t.Fatal("expected requests")
	}
	b.ResetRequests()
	if len(b.Requests()) != 0 {
		t.Fatal("ResetRequests left records")
	}
}

func TestCrossDomainDetection(t *testing.T) {
	b := newBrowser(t, fixture(t), "u1")
	p, _ := b.Navigate("http://news.com/", "")
	cs := b.Clickables(p)
	if !b.CrossDomain(p, cs[0]) {
		t.Fatal("smuggler.net link should be cross-domain")
	}
	if b.CrossDomain(p, cs[1]) {
		t.Fatal("/local/page should be same-site")
	}
	if b.CrossDomain(p, cs[2]) {
		t.Fatal("iframes report false (unknown destination)")
	}
}

func TestCookieSyncDirective(t *testing.T) {
	n := netsim.New()
	var syncedValue string
	n.HandleFunc("pageowner.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `<html><body>
<script data-cc="cookie-sync" data-tracker="t1.com" data-endpoint="http://t2.com/sync"></script>
</body></html>`)
	})
	n.HandleFunc("t2.com", func(w http.ResponseWriter, r *http.Request) {
		syncedValue = r.URL.Query().Get("puid")
		http.SetCookie(w, &http.Cookie{Name: "partner_uid", Value: syncedValue, MaxAge: 3600})
		fmt.Fprint(w, "ok")
	})
	b := newBrowser(t, n, "u1")
	if _, err := b.Navigate("http://pageowner.com/", ""); err != nil {
		t.Fatal(err)
	}
	want := ident.UID(testSeed, "t1.com", "u1", "pageowner.com")
	if syncedValue != want {
		t.Fatalf("synced value = %q, want %q", syncedValue, want)
	}
	// The partner stored it third-party — partitioned under this page.
	now := n.Clock().Now()
	if c, ok := b.Store().Cookie(storage.Context{FrameHost: "t2.com", TopHost: "pageowner.com"}, "partner_uid", now); !ok || c.Value != want {
		t.Fatalf("partner partition cookie: %+v ok=%v", c, ok)
	}
	// And NOT in any other partition (cookie syncing cannot cross sites
	// under partitioned storage — the reason UID smuggling exists).
	if _, ok := b.Store().Cookie(storage.Context{FrameHost: "t2.com", TopHost: "elsewhere.com"}, "partner_uid", now); ok {
		t.Fatal("cookie sync leaked across partitions")
	}
}

func TestMatchClassDecoration(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("m.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `<html><body>
<script data-cc="link-decorator" data-tracker="aff.com" data-param="affid" data-match-class="aff-x"></script>
<a href="http://shop1.com/" class="aff-x other">tagged</a>
<a href="http://shop2.com/">untagged</a>
</body></html>`)
	})
	b := newBrowser(t, n, "u1")
	p, err := b.Navigate("http://m.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	u0, err := b.ClickURL(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u0.Query().Get("affid") == "" {
		t.Fatalf("class-matched link not decorated: %s", u0)
	}
	u1, err := b.ClickURL(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u1.Query().Get("affid") != "" {
		t.Fatalf("unmatched link decorated: %s", u1)
	}
}

func TestGAFormatUID(t *testing.T) {
	n := netsim.New()
	n.HandleFunc("g.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `<html><body>
<script data-cc="link-decorator" data-tracker="ga-like.com" data-param="cid" data-cookie="_ga_like" data-uid-format="ga"></script>
<a href="http://other.com/">out</a>
</body></html>`)
	})
	n.HandleFunc("other.com", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "<html></html>") })
	b1 := newBrowser(t, n, "u1")
	b2 := newBrowser(t, n, "u2")
	p1, _ := b1.Navigate("http://g.com/", "")
	p2, _ := b2.Navigate("http://g.com/", "")
	u1, _ := b1.ClickURL(p1, 0)
	u2, _ := b2.ClickURL(p2, 0)
	v1, v2 := u1.Query().Get("cid"), u2.Query().Get("cid")
	if !strings.HasPrefix(v1, "GA1.2.") || !strings.HasSuffix(v1, ".1646092800") {
		t.Fatalf("GA format wrong: %q", v1)
	}
	if v1 == v2 {
		t.Fatal("different users must get different GA client ids")
	}
	// The cookie stores the same formatted value the link carries.
	now := n.Clock().Now()
	if c, ok := b1.Store().Cookie(storage.Context{FrameHost: "g.com", TopHost: "g.com"}, "_ga_like", now); !ok || c.Value != v1 {
		t.Fatalf("cookie/link value mismatch: %+v vs %q", c, v1)
	}
}
