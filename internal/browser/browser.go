// Package browser implements the simulated browser CrumbCruncher drives:
// the substitute for the paper's Chrome-under-Puppeteer. It provides the
// narrow surface the measurement needs — navigate and follow redirect
// chains hop by hop, parse pages, load iframes, execute on-page tracker
// scripts, read/write cookies and localStorage under a third-party policy,
// spoof the User-Agent, and record every web request the way the paper's
// extension does.
//
// Tracker behaviour is *data*, not browser code: pages carry declarative
// <script data-cc="..."> directives (see scripts.go) that this engine
// interprets, the same way a real browser executes whatever JavaScript a
// page ships. Server-side tracker behaviour (redirectors, ad servers)
// lives in the web package's HTTP handlers; the two halves communicate
// exclusively through real HTTP requests, cookies and URLs.
package browser

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"crumbcruncher/internal/dom"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/telemetry"
)

// Simulation identity headers, re-exported from ident for convenience.
// Handlers use them only to seed deterministic identifier derivation; see
// the web package.
const (
	// HeaderProfile carries the simulated user identity (a user data
	// directory in the paper's terms).
	HeaderProfile = ident.HeaderProfile
	// HeaderClient carries the crawler instance identity; Safari-1 and
	// Safari-1R share a profile but have distinct clients, which is what
	// makes server-issued session IDs differ between them.
	HeaderClient = ident.HeaderClient
	// HeaderMachine carries the machine fingerprint surface (User-Agent,
	// fonts, codecs...); fingerprinting trackers derive UIDs from it.
	HeaderMachine = ident.HeaderMachine
)

// DefaultSafariUA is the Safari User-Agent string the paper spoofs
// (§3.4, footnote 3).
const DefaultSafariUA = "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.1.2 Safari/605.1.15"

// DefaultChromeUA is a Chrome 95 User-Agent, the real browser under the
// hood of all four crawlers.
const DefaultChromeUA = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/95.0.4638.69 Safari/537.36"

// Config configures a Browser.
type Config struct {
	// Seed is the world seed; client-side tracker scripts derive UIDs
	// from it exactly as the server-side handlers do.
	Seed int64
	// ProfileID identifies the simulated user.
	ProfileID string
	// ClientID identifies the crawler instance.
	ClientID string
	// Machine identifies the crawl machine (fingerprint surface).
	Machine string
	// UserAgent is sent on every request.
	UserAgent string
	// Policy is the third-party storage policy.
	Policy storage.Policy
	// Network is the virtual network to talk to.
	Network *netsim.Network
	// MaxRedirects bounds navigation chains; 0 means the default (20).
	MaxRedirects int
	// ViewportWidth is used for layout; 0 means 1280.
	ViewportWidth int
	// Telemetry, when non-nil, receives page-load spans and browser
	// counters (navigations, redirect-chain lengths, scripts run,
	// iframes loaded, beacons fired). Observation only: a nil value
	// costs nothing.
	Telemetry *telemetry.Telemetry
}

// Browser is one simulated browser with its own profile storage. It is
// used by a single crawler goroutine; the request log is nevertheless
// mutex-guarded so tests may inspect it concurrently.
type Browser struct {
	cfg    Config
	store  *storage.Store
	client *http.Client
	clock  *netsim.VirtualClock
	psl    *publicsuffix.List

	mu       sync.Mutex
	requests []RequestRecord
	visits   map[string]int // per-registered-domain visit counters

	// attempt is the retry layer's current attempt index; it rides on
	// every request as netsim.HeaderAttempt so transient fault episodes
	// can recover deterministically per (domain, attempt). The browser
	// is single-goroutine, so no lock is needed.
	attempt int

	// Cached telemetry instruments (all nil-safe no-ops when
	// cfg.Telemetry is nil).
	tel        *telemetry.Telemetry
	cNavs      *telemetry.Counter
	cScripts   *telemetry.Counter
	cIframes   *telemetry.Counter
	cBeacons   *telemetry.Counter
	hChainHops *telemetry.Histogram
}

// New returns a Browser for cfg. Network must be non-nil.
func New(cfg Config) *Browser {
	if cfg.Network == nil {
		panic("browser: Config.Network is required")
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 20
	}
	if cfg.ViewportWidth <= 0 {
		cfg.ViewportWidth = 1280
	}
	if cfg.UserAgent == "" {
		cfg.UserAgent = DefaultChromeUA
	}
	reg := cfg.Telemetry.Registry()
	return &Browser{
		cfg:        cfg,
		store:      storage.New(cfg.Policy),
		client:     cfg.Network.Client(),
		clock:      cfg.Network.Clock(),
		psl:        publicsuffix.Default(),
		tel:        cfg.Telemetry,
		cNavs:      reg.Counter("browser.navigations"),
		cScripts:   reg.Counter("browser.scripts_run"),
		cIframes:   reg.Counter("browser.iframes_loaded"),
		cBeacons:   reg.Counter("browser.beacons_fired"),
		hChainHops: reg.Histogram("browser.redirect_chain_hops"),
	}
}

// SetAttempt sets the retry attempt index stamped on subsequent requests
// (0: first try, header omitted). The crawler's retry loop calls it
// before each attempt and resets it to 0 afterwards.
func (b *Browser) SetAttempt(n int) { b.attempt = n }

// Store exposes the profile's storage (tests and countermeasures).
func (b *Browser) Store() *storage.Store { return b.store }

// ProfileID returns the simulated user identity.
func (b *Browser) ProfileID() string { return b.cfg.ProfileID }

// ClientID returns the crawler instance identity.
func (b *Browser) ClientID() string { return b.cfg.ClientID }

// Requests returns a copy of the request log.
func (b *Browser) Requests() []RequestRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]RequestRecord, len(b.requests))
	copy(out, b.requests)
	return out
}

// ResetRequests clears the request log (called at crawl-step boundaries).
func (b *Browser) ResetRequests() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.requests = nil
}

func (b *Browser) record(r RequestRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.requests = append(b.requests, r)
}

// NavError reports a failed navigation, wrapping the transport error and
// retaining the chain walked so far.
type NavError struct {
	URL   string
	Chain []Hop
	Err   error
}

func (e *NavError) Error() string { return fmt.Sprintf("browser: navigate %s: %v", e.URL, e.Err) }

// Unwrap supports errors.Is/As against the transport error.
func (e *NavError) Unwrap() error { return e.Err }

// Navigate performs a top-level navigation to rawURL, following the
// redirect chain hop by hop. Every hop is recorded as a navigation
// request; each hop's host acts as a first party (the redirector
// privilege at the heart of UID smuggling): its cookies are attached, and
// its Set-Cookie responses are stored first-party. On success the final
// page is parsed, laid out, its declarative scripts run, its iframes
// loaded and its beacons fired.
func (b *Browser) Navigate(rawURL, referer string) (*Page, error) {
	sp := b.tel.StartSpan("browser", "navigate").Attr("url", rawURL)
	b.cNavs.Inc()
	page, err := b.navigate(rawURL, referer)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	b.hChainHops.Observe(int64(len(page.Chain)))
	sp.Attr("host", page.URL.Hostname()).End()
	return page, nil
}

func (b *Browser) navigate(rawURL, referer string) (*Page, error) {
	cur, err := url.Parse(rawURL)
	if err != nil {
		return nil, &NavError{URL: rawURL, Err: err}
	}
	var chain []Hop
	for hop := 0; hop <= b.cfg.MaxRedirects; hop++ {
		resp, err := b.fetch(cur, referer, KindNavigation)
		if err != nil {
			chain = append(chain, Hop{URL: cur.String()})
			return nil, &NavError{URL: cur.String(), Chain: chain, Err: err}
		}
		h := Hop{URL: cur.String(), Status: resp.StatusCode, Location: resp.Header.Get("Location")}
		chain = append(chain, h)
		if isRedirect(resp.StatusCode) && h.Location != "" {
			netsim.ReadBody(resp) // drain
			next, err := cur.Parse(h.Location)
			if err != nil {
				return nil, &NavError{URL: cur.String(), Chain: chain, Err: err}
			}
			cur = next
			continue
		}
		body, err := netsim.ReadBody(resp)
		if err != nil {
			return nil, &NavError{URL: cur.String(), Chain: chain, Err: err}
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			// Degraded response: surface it as an error carrying the
			// Retry-After hint so the retry layer can classify and pace.
			he := &resilience.HTTPError{Status: resp.StatusCode, URL: cur.String()}
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				he.RetryAfter = time.Duration(s) * time.Second
			}
			return nil, &NavError{URL: cur.String(), Chain: chain, Err: he}
		}
		page := &Page{
			URL:   cur,
			Doc:   dom.Parse(body),
			Chain: chain,
		}
		dom.Layout(page.Doc, b.cfg.ViewportWidth)
		b.runScripts(page)
		b.loadFrames(page)
		return page, nil
	}
	return nil, &NavError{URL: cur.String(), Chain: chain, Err: fmt.Errorf("too many redirects (%d)", b.cfg.MaxRedirects)}
}

// fetch issues one request with the browser's identity headers and the
// cookies visible to (target-as-frame, top). For top-level navigations the
// target is its own top. Set-Cookie headers on the response are stored
// under the same context.
func (b *Browser) fetch(u *url.URL, referer string, kind RequestKind) (*http.Response, error) {
	return b.fetchCtx(u, referer, kind, storage.Context{FrameHost: u.Hostname(), TopHost: u.Hostname()})
}

// fetchCtx is fetch with an explicit storage context (used for iframe and
// beacon subrequests, whose cookie access is third-party).
func (b *Browser) fetchCtx(u *url.URL, referer string, kind RequestKind, ctx storage.Context) (*http.Response, error) {
	// Build the request directly: http.NewRequest would re-parse the URL
	// string we already hold parsed. The URL struct is copied so neither
	// handlers nor the transport can alias the caller's value.
	reqURL := *u
	req := &http.Request{
		Method: http.MethodGet,
		URL:    &reqURL,
		Header: make(http.Header, 8),
		Host:   u.Host,
	}
	req.Header.Set("User-Agent", b.cfg.UserAgent)
	req.Header.Set(HeaderProfile, b.cfg.ProfileID)
	req.Header.Set(HeaderClient, b.cfg.ClientID)
	req.Header.Set(HeaderMachine, b.cfg.Machine)
	if b.attempt > 0 {
		req.Header.Set(netsim.HeaderAttempt, strconv.Itoa(b.attempt))
	}
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	now := b.clock.Now()
	for _, c := range b.store.Cookies(ctx, now) {
		req.AddCookie(&http.Cookie{Name: c.Name, Value: c.Value})
	}

	resp, err := b.client.Do(req)
	rec := RequestRecord{URL: u.String(), Kind: kind, Referer: referer, Attempt: b.attempt, Time: now}
	if err != nil {
		rec.Err = err.Error()
		b.record(rec)
		return nil, err
	}
	rec.Status = resp.StatusCode
	b.record(rec)
	b.storeSetCookies(resp, ctx)
	return resp, nil
}

// storeSetCookies applies a response's Set-Cookie headers to the store
// under ctx, converting Max-Age/Expires into absolute virtual-clock
// expiry.
func (b *Browser) storeSetCookies(resp *http.Response, ctx storage.Context) {
	now := b.clock.Now()
	for _, c := range resp.Cookies() {
		sc := storage.Cookie{Name: c.Name, Value: c.Value, Created: now}
		switch {
		case c.MaxAge > 0:
			sc.Expires = now.Add(time.Duration(c.MaxAge) * time.Second)
		case c.MaxAge < 0:
			continue // immediate deletion request: skip storing
		case !c.Expires.IsZero():
			sc.Expires = c.Expires
		}
		b.store.SetCookie(ctx, sc)
	}
}

func isRedirect(status int) bool {
	switch status {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

// regDomain is a convenience wrapper.
func (b *Browser) regDomain(host string) string {
	if rd := b.psl.RegisteredDomain(host); rd != "" {
		return rd
	}
	return host
}

// sameSite reports whether two URLs share a registered domain.
func (b *Browser) sameSite(a, c *url.URL) bool {
	return b.psl.SameSite(a.Hostname(), c.Hostname())
}

// resolveHref resolves an element's href against the page URL, returning
// nil for unparsable or non-HTTP targets.
func resolveHref(page *url.URL, href string) *url.URL {
	if strings.TrimSpace(href) == "" {
		return nil
	}
	u, err := page.Parse(href)
	if err != nil {
		return nil
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil
	}
	return u
}
