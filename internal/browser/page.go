package browser

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"crumbcruncher/internal/dom"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/storage"
)

// Page is a loaded top-level document plus the iframes it embeds and the
// navigation chain that produced it.
type Page struct {
	URL   *url.URL
	Doc   *dom.Node
	Chain []Hop

	// Frames maps iframe elements (by identity) to their loaded
	// subdocuments.
	Frames map[*dom.Node]*Frame

	// decorators are the click-time link decorators registered by this
	// page's scripts.
	decorators []linkDecorator
	// refererDecorators decorate the Referer header of outgoing
	// navigations rather than their URLs (the §6 limitation).
	refererDecorators []linkDecorator

	// clickables memoizes Clickables: the document never changes after
	// load, and ClickURL re-enumerates for every click, so computing
	// attribute names and x-paths twice per step was pure overhead.
	clickables     []Clickable
	clickablesDone bool
}

// Frame is a loaded iframe document.
type Frame struct {
	SrcURL string
	Doc    *dom.Node
	Err    string
}

// FinalHost returns the host of the page URL.
func (p *Page) FinalHost() string { return p.URL.Hostname() }

// Clickable describes one element the crawler may click — an anchor or an
// iframe — together with the identification signals the central controller
// compares (§3.3): href (anchors), attribute names, bounding box and
// x-path.
type Clickable struct {
	// Index is the element's position in the page's clickable list; the
	// controller's chosen index is clicked on every crawler.
	Index int
	// Kind is "a" or "iframe".
	Kind string
	// Href is the anchor target (empty for iframes, whose destination is
	// opaque until clicked — the paper's motivating difficulty).
	Href string
	// AttrNames are the element's attribute names in document order.
	AttrNames []string
	// Box is the layout bounding box.
	Box dom.Rect
	// XPath is the positional x-path.
	XPath string

	node *dom.Node
}

// Clickables enumerates the page's candidate elements in document order.
// The result is memoized on the page (which is immutable after load);
// callers must not modify the returned slice.
func (b *Browser) Clickables(p *Page) []Clickable {
	if p.clickablesDone {
		return p.clickables
	}
	var out []Clickable
	add := func(kind string, n *dom.Node) {
		c := Clickable{
			Index:     len(out),
			Kind:      kind,
			AttrNames: n.AttrNames(),
			Box:       n.Box,
			XPath:     n.XPath(),
			node:      n,
		}
		if kind == "a" {
			c.Href = n.AttrOr("href", "")
		}
		out = append(out, c)
	}
	for _, n := range p.Doc.FindAll(func(e *dom.Node) bool { return e.Tag == "a" || e.Tag == "iframe" }) {
		if n.Tag == "a" {
			if resolveHref(p.URL, n.AttrOr("href", "")) == nil {
				continue
			}
			add("a", n)
		} else {
			add("iframe", n)
		}
	}
	p.clickables, p.clickablesDone = out, true
	return out
}

// CrossDomain reports whether the clickable is known to navigate off the
// current registered domain. Iframes report false: their destination is
// unknown before the click, but the crawler still prefers them (ads live
// in iframes).
func (b *Browser) CrossDomain(p *Page, c Clickable) bool {
	if c.Kind != "a" {
		return false
	}
	u := resolveHref(p.URL, c.Href)
	if u == nil {
		return false
	}
	return !b.sameSite(p.URL, u)
}

// ErrNoTarget is returned by Click when the element cannot trigger a
// navigation (e.g. an iframe whose ad failed to load).
type ErrNoTarget struct{ Reason string }

func (e *ErrNoTarget) Error() string { return "browser: click has no target: " + e.Reason }

// ClickURL computes the URL a click on clickable index would navigate to,
// applying link decoration for anchors, without performing the
// navigation. Iframe clicks resolve to the frame document's first anchor —
// the ad's click-through link.
func (b *Browser) ClickURL(p *Page, index int) (*url.URL, error) {
	cs := b.Clickables(p)
	if index < 0 || index >= len(cs) {
		return nil, &ErrNoTarget{Reason: fmt.Sprintf("index %d out of range (%d clickables)", index, len(cs))}
	}
	c := cs[index]
	if c.Kind == "a" {
		target := resolveHref(p.URL, c.node.AttrOr("href", ""))
		if target == nil {
			return nil, &ErrNoTarget{Reason: "unresolvable href"}
		}
		return b.decorate(p, c.node, target), nil
	}
	frame := p.Frames[c.node]
	if frame == nil || frame.Doc == nil {
		return nil, &ErrNoTarget{Reason: "iframe not loaded"}
	}
	anchors := frame.Doc.ElementsByTag("a")
	if len(anchors) == 0 {
		return nil, &ErrNoTarget{Reason: "iframe has no link"}
	}
	frameURL, err := url.Parse(frame.SrcURL)
	if err != nil {
		return nil, &ErrNoTarget{Reason: "bad frame URL"}
	}
	target := resolveHref(frameURL, anchors[0].AttrOr("href", ""))
	if target == nil {
		return nil, &ErrNoTarget{Reason: "unresolvable ad href"}
	}
	// Ad click URLs are fully formed by the ad server; page decorators do
	// not touch content inside cross-origin frames.
	return target, nil
}

// Click clicks the element and performs the resulting navigation,
// returning the destination page.
func (b *Browser) Click(p *Page, index int) (*Page, error) {
	target, err := b.ClickURL(p, index)
	if err != nil {
		return nil, err
	}
	return b.Navigate(target.String(), b.outgoingReferer(p))
}

// outgoingReferer computes the Referer for navigations leaving p,
// applying any referrer decorators.
func (b *Browser) outgoingReferer(p *Page) string {
	ref := *p.URL
	q := ref.Query()
	changed := false
	for _, d := range p.refererDecorators {
		q.Set(d.param, d.value)
		changed = true
	}
	if changed {
		ref.RawQuery = encodeQueryStable(q)
	}
	return ref.String()
}

// decorate applies the page's registered link decorators to a navigation
// target, returning a decorated copy (the original URL is not modified).
func (b *Browser) decorate(p *Page, anchor *dom.Node, target *url.URL) *url.URL {
	if len(p.decorators) == 0 {
		return target
	}
	class := anchor.AttrOr("class", "")
	out := *target
	q := out.Query()
	changed := false
	for _, d := range p.decorators {
		if d.scope == scopeCrossDomain && b.sameSite(p.URL, target) {
			continue
		}
		if d.matchClass != "" && !hasClass(class, d.matchClass) {
			continue
		}
		q.Set(d.param, d.value)
		changed = true
	}
	if changed {
		out.RawQuery = encodeQueryStable(q)
	}
	return &out
}

// hasClass reports whether the space-separated class list contains token.
func hasClass(classAttr, token string) bool {
	for _, c := range strings.Fields(classAttr) {
		if c == token {
			return true
		}
	}
	return false
}

// encodeQueryStable encodes query values with sorted keys so decorated
// URLs are byte-stable.
func encodeQueryStable(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		for _, v := range q[k] {
			if b.Len() > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}

// loadFrames fetches every iframe's document. Iframe loads are sub_frame
// requests: the Referer is the embedding page, and cookie access is
// third-party (partitioned or blocked per policy) unless the frame is
// same-site.
func (b *Browser) loadFrames(p *Page) {
	p.Frames = make(map[*dom.Node]*Frame)
	for _, n := range p.Doc.ElementsByTag("iframe") {
		src := n.AttrOr("src", "")
		u := resolveHref(p.URL, src)
		if u == nil {
			p.Frames[n] = &Frame{SrcURL: src, Err: "bad src"}
			continue
		}
		ctx := storage.Context{FrameHost: u.Hostname(), TopHost: p.URL.Hostname()}
		resp, err := b.fetchCtx(u, p.URL.String(), KindSubframe, ctx)
		if err != nil {
			p.Frames[n] = &Frame{SrcURL: u.String(), Err: err.Error()}
			continue
		}
		body, err := netsim.ReadBody(resp)
		if err != nil {
			p.Frames[n] = &Frame{SrcURL: u.String(), Err: err.Error()}
			continue
		}
		p.Frames[n] = &Frame{SrcURL: u.String(), Doc: dom.Parse(body)}
		b.cIframes.Inc()
	}
}
