package browser

import "time"

// RequestKind classifies a recorded web request, mirroring the resource
// types Chrome's webRequest API reports.
type RequestKind string

const (
	// KindNavigation is a top-level navigation request (including every
	// hop of a redirect chain).
	KindNavigation RequestKind = "navigation"
	// KindSubframe is an iframe document load.
	KindSubframe RequestKind = "sub_frame"
	// KindBeacon is a tracker-initiated subresource request.
	KindBeacon RequestKind = "beacon"
)

// RequestRecord is one observed web request — what the paper's custom
// Chrome extension records via chrome.webRequest.onBeforeRequest (§3.8).
type RequestRecord struct {
	URL     string
	Kind    RequestKind
	Referer string
	Status  int    // 0 when the request failed
	Err     string // network error, if any
	Attempt int    // retry attempt index (0: first try)
	Time    time.Time
}

// Hop is one step of a navigation redirect chain.
type Hop struct {
	URL      string
	Status   int
	Location string // Location header for 3xx responses
}
