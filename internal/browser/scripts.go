package browser

import (
	"net/url"
	"strconv"
	"strings"
	"time"

	"crumbcruncher/internal/dom"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/storage"
)

// The script engine.
//
// Real tracker behaviour is JavaScript shipped by the page; our synthetic
// web ships the same behaviour as declarative directives on <script>
// elements, which this engine interprets at page-load time (and, for link
// decorators, at click time). The attribute vocabulary:
//
//	data-cc="uid-sync"        ensure a first-party UID cookie exists for a
//	                          tracker (the _ga/_fbp pattern), optionally
//	                          mirror it to localStorage and beacon it home
//	data-cc="link-decorator"  decorate outgoing links with the tracker's
//	                          UID as a query parameter (step 1 of Fig. 2)
//	data-cc="collector"       on arrival, harvest listed query parameters
//	                          into first-party cookies and beacon them
//	                          home (step 3 of Fig. 2)
//	data-cc="beacon"          fire a third-party request, optionally
//	                          embedding the full page URL (the accidental
//	                          UID leak of Fig. 6)
//	data-cc="referrer-decorator"  append the tracker's UID to the
//	                          Referer the browser sends on outgoing
//	                          navigations instead of the target URL — the
//	                          §6 limitation: CrumbCruncher only inspects
//	                          query parameters of navigation URLs, so
//	                          these transfers are invisible to it
//	data-cc="cookie-sync"     share this tracker's UID with a partner
//	                          tracker's endpoint (classic cookie syncing,
//	                          §8.2 — same-page sharing that partitioned
//	                          storage already contains, and which the
//	                          pipeline must NOT flag as smuggling)
//	data-cc="local-token"     write a token into first-party localStorage
//
// Common attributes: data-tracker (owning tracker domain), data-cookie
// (cookie name), data-ttl-days, data-fingerprint ("1" derives the UID from
// the machine fingerprint instead of the profile), data-scope
// ("cross-domain" or "all"), data-params, data-beacon, data-param,
// data-key, data-kind, data-value, data-storage.

type decoratorScope int

const (
	scopeCrossDomain decoratorScope = iota
	scopeAll
)

type linkDecorator struct {
	param string
	value string
	scope decoratorScope
	// matchClass restricts decoration to anchors whose class attribute
	// contains this token (the way gclid only appears on Google ad links);
	// empty decorates every in-scope anchor.
	matchClass string
}

// trackerUID resolves the UID a tracker's client-side code uses on this
// page: fingerprint-derived (same across profiles — §3.5's failure mode)
// or profile-derived (per-user, per-site first-party ID).
func (b *Browser) trackerUID(tracker, pageHost string, fingerprint bool) string {
	if fingerprint {
		return ident.UID(b.cfg.Seed, tracker, "fp", ident.Fingerprint(b.cfg.Seed, b.cfg.Machine))
	}
	return ident.UID(b.cfg.Seed, tracker, b.cfg.ProfileID, b.regDomain(pageHost))
}

// formatUID renders a UID in the tracker's value format. The "ga" format
// mimics Google-Analytics-style client IDs ("GA1.2.<random>.<epoch>"):
// different users share most of the characters, so prior work's
// Ratcliff/Obershelp fuzzy matching (33–45% slack) wrongly unifies them
// while CrumbCruncher's exact comparison keeps them apart (§8.1).
func formatUID(format, raw string) string {
	if format != "ga" {
		return raw
	}
	var n uint64
	for i := 0; i < len(raw) && i < 12; i++ {
		n = n*16 + uint64(hexVal(raw[i]))
	}
	return "GA1.2." + strconv.FormatUint(100000000+n%900000000, 10) + ".1646092800"
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return 0
	}
}

// runScripts interprets the page's directives in document order.
func (b *Browser) runScripts(p *Page) {
	host := p.URL.Hostname()
	sp := b.tel.StartSpan("browser", "scripts").Attr("host", host)
	ran := 0
	fpCtx := storage.Context{FrameHost: host, TopHost: host}
	for _, s := range p.Doc.ElementsByTag("script") {
		if s.AttrOr("data-cc", "") != "" {
			ran++
		}
		switch s.AttrOr("data-cc", "") {
		case "uid-sync":
			b.scriptUIDSync(p, s, fpCtx)
		case "link-decorator":
			b.scriptLinkDecorator(p, s, fpCtx)
		case "collector":
			b.scriptCollector(p, s, fpCtx)
		case "beacon":
			b.scriptBeacon(p, s, "")
		case "referrer-decorator":
			b.scriptReferrerDecorator(p, s)
		case "cookie-sync":
			b.scriptCookieSync(p, s)
		case "local-token":
			b.scriptLocalToken(p, s, fpCtx)
		}
	}
	b.cScripts.Add(int64(ran))
	sp.Attr("scripts", strconv.Itoa(ran)).End()
}

// ensureUIDCookie returns the tracker's first-party UID on this page,
// creating the cookie if needed, honouring an existing value (so a UID
// smuggled in earlier and stored by a collector wins, exactly as real
// tracker snippets prefer the stored ID).
func (b *Browser) ensureUIDCookie(p *Page, ctx storage.Context, cookieName, tracker, format string, fingerprint bool, ttlDays int) string {
	now := b.clock.Now()
	if cookieName != "" {
		if c, ok := b.store.Cookie(ctx, cookieName, now); ok {
			return c.Value
		}
	}
	v := formatUID(format, b.trackerUID(tracker, p.URL.Hostname(), fingerprint))
	if cookieName != "" {
		c := storage.Cookie{Name: cookieName, Value: v, Created: now}
		if ttlDays > 0 {
			c.Expires = now.Add(time.Duration(ttlDays) * 24 * time.Hour)
		}
		b.store.SetCookie(ctx, c)
	}
	return v
}

func (b *Browser) scriptUIDSync(p *Page, s *dom.Node, ctx storage.Context) {
	tracker := s.AttrOr("data-tracker", "")
	if tracker == "" {
		return
	}
	ttl := atoiOr(s.AttrOr("data-ttl-days", ""), 390)
	fp := s.AttrOr("data-fingerprint", "") == "1"
	cookie := s.AttrOr("data-cookie", "_uid_"+sanitize(tracker))
	v := b.ensureUIDCookie(p, ctx, cookie, tracker, s.AttrOr("data-uid-format", ""), fp, ttl)
	switch s.AttrOr("data-storage", "cookie") {
	case "local", "both":
		b.store.SetLocal(ctx, cookie, v)
	}
	if ep := s.AttrOr("data-beacon", ""); ep != "" {
		b.fireBeacon(p, ep, url.Values{"uid": {v}})
	}
}

func (b *Browser) scriptLinkDecorator(p *Page, s *dom.Node, ctx storage.Context) {
	tracker := s.AttrOr("data-tracker", "")
	param := s.AttrOr("data-param", "")
	if tracker == "" || param == "" {
		return
	}
	fp := s.AttrOr("data-fingerprint", "") == "1"
	cookie := s.AttrOr("data-cookie", "")
	v := b.ensureUIDCookie(p, ctx, cookie, tracker, s.AttrOr("data-uid-format", ""), fp,
		atoiOr(s.AttrOr("data-ttl-days", ""), 390))
	scope := scopeCrossDomain
	if s.AttrOr("data-scope", "") == "all" {
		scope = scopeAll
	}
	p.decorators = append(p.decorators, linkDecorator{
		param:      param,
		value:      v,
		scope:      scope,
		matchClass: s.AttrOr("data-match-class", ""),
	})
}

func (b *Browser) scriptCollector(p *Page, s *dom.Node, ctx storage.Context) {
	tracker := s.AttrOr("data-tracker", "")
	params := splitList(s.AttrOr("data-params", ""))
	if len(params) == 0 {
		return
	}
	prefix := s.AttrOr("data-cookie-prefix", "_cc_")
	ttl := atoiOr(s.AttrOr("data-ttl-days", ""), 390)
	q := p.URL.Query()
	now := b.clock.Now()
	collected := url.Values{}
	for _, name := range params {
		v := q.Get(name)
		if v == "" {
			continue
		}
		b.store.SetCookie(ctx, storage.Cookie{
			Name:    prefix + name,
			Value:   v,
			Created: now,
			Expires: now.Add(time.Duration(ttl) * 24 * time.Hour),
		})
		collected.Set(name, v)
	}
	if ep := s.AttrOr("data-beacon", ""); ep != "" && len(collected) > 0 {
		if tracker != "" {
			collected.Set("tuid", b.trackerUID(tracker, p.URL.Hostname(), false))
		}
		b.fireBeacon(p, ep, collected)
	}
}

func (b *Browser) scriptBeacon(p *Page, s *dom.Node, _ string) {
	ep := s.AttrOr("data-endpoint", "")
	if ep == "" {
		return
	}
	vals := url.Values{}
	if s.AttrOr("data-include-url", "") == "1" {
		vals.Set("url", p.URL.String())
	}
	if uidParam := s.AttrOr("data-uid-param", ""); uidParam != "" {
		tracker := s.AttrOr("data-tracker", "")
		if tracker != "" {
			vals.Set(uidParam, b.trackerUID(tracker, p.URL.Hostname(), false))
		}
	}
	b.fireBeacon(p, ep, vals)
}

func (b *Browser) scriptLocalToken(p *Page, s *dom.Node, ctx storage.Context) {
	key := s.AttrOr("data-key", "")
	if key == "" {
		return
	}
	tracker := s.AttrOr("data-tracker", p.URL.Hostname())
	var v string
	switch s.AttrOr("data-kind", "benign") {
	case "uid":
		v = b.trackerUID(tracker, p.URL.Hostname(), false)
	case "session":
		v = ident.SessionID(b.cfg.Seed, b.regDomain(p.URL.Hostname()), b.cfg.ClientID, strconv.Itoa(b.visitCount(p.URL.Hostname())))
	default:
		v = s.AttrOr("data-value", "enabled")
	}
	b.store.SetLocal(ctx, key, v)
}

// scriptReferrerDecorator registers a referrer decoration: the tracker's
// UID rides the Referer header of outgoing navigations (via
// history.replaceState tricks in the real world), not the target URL.
func (b *Browser) scriptReferrerDecorator(p *Page, s *dom.Node) {
	tracker := s.AttrOr("data-tracker", "")
	param := s.AttrOr("data-param", "")
	if tracker == "" || param == "" {
		return
	}
	p.refererDecorators = append(p.refererDecorators, linkDecorator{
		param: param,
		value: b.trackerUID(tracker, p.URL.Hostname(), false),
	})
}

// scriptCookieSync shares the tracker's UID with a partner tracker's sync
// endpoint. The partner stores it in its own (partitioned) bucket: the two
// third parties on this page now agree on the user — but only within this
// top-level site, which is exactly why cookie syncing is not UID smuggling
// (§2, §8.2).
func (b *Browser) scriptCookieSync(p *Page, s *dom.Node) {
	tracker := s.AttrOr("data-tracker", "")
	ep := s.AttrOr("data-endpoint", "")
	if tracker == "" || ep == "" {
		return
	}
	v := b.trackerUID(tracker, p.URL.Hostname(), false)
	b.fireBeacon(p, ep, url.Values{"puid": {v}, "from": {tracker}})
}

// fireBeacon sends a third-party GET to endpoint with extra query values
// merged in. Beacon cookie access is third-party under the page.
func (b *Browser) fireBeacon(p *Page, endpoint string, vals url.Values) {
	u := resolveHref(p.URL, endpoint)
	if u == nil {
		return
	}
	q := u.Query()
	for k, vs := range vals {
		for _, v := range vs {
			q.Set(k, v)
		}
	}
	u.RawQuery = encodeQueryStable(q)
	ctx := storage.Context{FrameHost: u.Hostname(), TopHost: p.URL.Hostname()}
	resp, err := b.fetchCtx(u, p.URL.String(), KindBeacon, ctx)
	if err != nil {
		return
	}
	b.cBeacons.Inc()
	resp.Body.Close()
}

// visitCount increments and returns the per-(client, domain) visit
// counter used for client-side session tokens. Each crawler is a single
// goroutine, so this needs no lock beyond the struct's own.
func (b *Browser) visitCount(host string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.visits == nil {
		b.visits = make(map[string]int)
	}
	k := b.regDomain(host)
	b.visits[k]++
	return b.visits[k]
}

func atoiOr(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func sanitize(domain string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(domain)
}
