// Package textmatch implements the Ratcliff/Obershelp pattern-matching
// algorithm ("gestalt pattern matching"). Prior work on UID detection
// (Acar et al., Englehardt et al., Koop et al. — paper §8.1) treated two
// tokens as "the same" if their Ratcliff/Obershelp similarity exceeded a
// threshold; CrumbCruncher deliberately requires exact equality instead.
// We implement the algorithm so the ablation benchmarks can compare the two
// strategies.
package textmatch

// Similarity returns the Ratcliff/Obershelp similarity of a and b in
// [0, 1]: twice the total length of matching characters (found by
// recursively locating the longest common substring and matching the
// regions to its left and right) divided by the combined length. Two empty
// strings are defined to be identical (similarity 1).
func Similarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := matchTotal(a, b)
	return 2 * float64(m) / float64(len(a)+len(b))
}

// SameWithin reports whether the similarity of a and b is at least
// 1 - slack. Prior work used slack values of 0.33 and 0.45; slack 0 is
// exact equality (up to Ratcliff/Obershelp's notion, which equals string
// equality at similarity 1).
func SameWithin(a, b string, slack float64) bool {
	return Similarity(a, b) >= 1-slack
}

// matchTotal returns the total number of matching characters per
// Ratcliff/Obershelp, using an explicit stack instead of recursion so that
// pathological inputs cannot overflow the goroutine stack.
func matchTotal(a, b string) int {
	type region struct {
		aLo, aHi, bLo, bHi int
	}
	total := 0
	stack := []region{{0, len(a), 0, len(b)}}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.aHi-r.aLo == 0 || r.bHi-r.bLo == 0 {
			continue
		}
		ai, bi, n := longestCommonSubstring(a[r.aLo:r.aHi], b[r.bLo:r.bHi])
		if n == 0 {
			continue
		}
		total += n
		stack = append(stack,
			region{r.aLo, r.aLo + ai, r.bLo, r.bLo + bi},
			region{r.aLo + ai + n, r.aHi, r.bLo + bi + n, r.bHi},
		)
	}
	return total
}

// longestCommonSubstring returns the starting offsets in a and b and the
// length of their longest common substring, preferring the earliest
// occurrence in a (then b) on ties, which matches the classic
// implementation's determinism.
func longestCommonSubstring(a, b string) (ai, bi, n int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	// Dynamic programming over suffix lengths with two rolling rows.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	bestLen, bestA, bestB := 0, 0, 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > bestLen {
					bestLen = cur[j]
					bestA = i - cur[j]
					bestB = j - cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return bestA, bestB, bestLen
}
