package textmatch

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSimilarityIdentical(t *testing.T) {
	for _, s := range []string{"", "a", "abcdef", "a1b2c3d4"} {
		if got := Similarity(s, s); got != 1 {
			t.Errorf("Similarity(%q, %q) = %g, want 1", s, s, got)
		}
	}
}

func TestSimilarityDisjoint(t *testing.T) {
	if got := Similarity("aaaa", "bbbb"); got != 0 {
		t.Fatalf("got %g, want 0", got)
	}
	if got := Similarity("abc", ""); got != 0 {
		t.Fatalf("empty vs non-empty = %g, want 0", got)
	}
}

func TestSimilarityClassicExample(t *testing.T) {
	// The canonical Ratcliff/Obershelp example: WIKIMEDIA vs WIKIMANIA.
	// LCS "WIKIM" (5), then right regions "EDIA" vs "ANIA" contribute
	// "IA" (2): 7 matching chars over 18 — the same value Python's
	// difflib.SequenceMatcher.ratio() computes.
	got := Similarity("WIKIMEDIA", "WIKIMANIA")
	want := 2.0 * 7 / 18
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestSimilarityPartial(t *testing.T) {
	// One differing character out of 8: 2*7/16.
	got := Similarity("abcdefgh", "abcdefgX")
	want := 2.0 * 7 / 16
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestSameWithin(t *testing.T) {
	// UIDs that share a long prefix but differ in a suffix — the pattern
	// prior work's 33% slack would conflate and CrumbCruncher would not.
	a := "user-aaaa-bbbb-cccc-0001"
	b := "user-aaaa-bbbb-cccc-0002"
	if !SameWithin(a, b, 0.33) {
		t.Fatal("33% slack should treat near-identical tokens as same")
	}
	if SameWithin(a, b, 0) {
		t.Fatal("zero slack must require exact equality")
	}
	if !SameWithin(a, a, 0) {
		t.Fatal("identical strings are the same at zero slack")
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	ai, bi, n := longestCommonSubstring("xxhelloyy", "aahellobb")
	if n != 5 || ai != 2 || bi != 2 {
		t.Fatalf("got ai=%d bi=%d n=%d", ai, bi, n)
	}
	_, _, n = longestCommonSubstring("", "abc")
	if n != 0 {
		t.Fatalf("empty input n = %d", n)
	}
}

// Property: similarity is bounded in [0, 1], and equals 1 exactly for
// identical inputs. (Ratcliff/Obershelp is not perfectly symmetric: with
// several equally long common substrings the tie-break can split the
// regions differently depending on argument order — the same behaviour as
// Python's difflib — so we do not assert symmetry.)
func TestSimilarityProperties(t *testing.T) {
	f := func(a, b string) bool {
		// Bound input size to keep the O(n*m) DP quick under quick.Check.
		if len(a) > 60 {
			a = a[:60]
		}
		if len(b) > 60 {
			b = b[:60]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 1 && Similarity(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: appending a shared suffix can only maintain or increase the
// number of matched characters.
func TestSimilaritySharedSuffixProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		suffix := strings.Repeat("z", 10)
		before := Similarity(a, b) * float64(len(a)+len(b)) / 2
		after := Similarity(a+suffix, b+suffix) * float64(len(a)+len(b)+20) / 2
		return after >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
