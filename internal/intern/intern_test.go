package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// data returns the address of a string's backing bytes — the identity
// interning is about.
func data(s string) *byte { return unsafe.StringData(s) }

func TestInternCanonicalIdentity(t *testing.T) {
	in := New(42)
	a := in.Intern("tracker.example.com")
	b := in.Intern("tracker." + "example.com")
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if data(a) != data(b) {
		t.Fatal("equal strings must share one canonical backing array")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
}

func TestInternCopiesSubstrings(t *testing.T) {
	in := New(0)
	big := "http://ad.example.net/click?uid=deadbeef&ts=12345"
	sub := big[7:21] // "ad.example.net"
	c := in.Intern(sub)
	if c != sub {
		t.Fatalf("canonical %q != input %q", c, sub)
	}
	if data(c) == data(sub) {
		t.Fatal("canonical string must be a copy, not a slice pinning the source buffer")
	}
}

func TestInternNilAndEmpty(t *testing.T) {
	var in *Interner
	if got := in.Intern("x"); got != "x" {
		t.Fatalf("nil interner must pass through, got %q", got)
	}
	if in.Len() != 0 {
		t.Fatal("nil interner Len must be 0")
	}
	live := New(0)
	if got := live.Intern(""); got != "" {
		t.Fatalf("empty string must pass through, got %q", got)
	}
	if live.Len() != 0 {
		t.Fatal("empty string must not be stored")
	}
}

// TestInternConcurrent hammers one interner from many goroutines over
// an overlapping key set. Run under -race (make race does) it proves
// the shard locking; the assertions prove every goroutine observed the
// same canonical instance per key.
func TestInternConcurrent(t *testing.T) {
	in := New(7)
	const goroutines = 16
	const keys = 100
	got := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]string, keys)
			for i := 0; i < keys; i++ {
				// Every goroutine interns the full key set, rotated so
				// insertions race from different starting points.
				k := (i + g*7) % keys
				got[g][k] = in.Intern(fmt.Sprintf("host-%d.example.com", k))
			}
		}(g)
	}
	wg.Wait()
	if in.Len() != keys {
		t.Fatalf("Len = %d, want %d", in.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		want := got[0][k]
		for g := 1; g < goroutines; g++ {
			if got[g][k] != want {
				t.Fatalf("goroutine %d got %q for key %d, want %q", g, got[g][k], k, want)
			}
			if data(got[g][k]) != data(want) {
				t.Fatalf("goroutine %d got a non-canonical instance for key %d", g, k)
			}
		}
	}
}

// TestInternNoCrossRunnerLeakage proves interners are fully isolated:
// two runners interning the same strings get equal values but disjoint
// canonical instances, and neither runner's table sees the other's
// entries. This is the contract that lets concurrent Runners (and
// concurrent tests) each own an interner without any global state.
func TestInternNoCrossRunnerLeakage(t *testing.T) {
	run1 := New(1)
	run2 := New(2)
	keys := []string{"news.com", "track.t.net", "shop.com", "zclid", "uid"}
	for _, k := range keys {
		c1 := run1.Intern(k)
		c2 := run2.Intern(k)
		if c1 != c2 {
			t.Fatalf("values must be equal across runners: %q vs %q", c1, c2)
		}
		if data(c1) == data(c2) {
			t.Fatalf("runners share a canonical instance for %q — cross-runner leakage", k)
		}
	}
	if run1.Len() != len(keys) || run2.Len() != len(keys) {
		t.Fatalf("Len = %d/%d, want %d each", run1.Len(), run2.Len(), len(keys))
	}
	// A fresh runner starts empty no matter how much earlier runners
	// interned.
	if fresh := New(3); fresh.Len() != 0 {
		t.Fatalf("fresh interner Len = %d, want 0", fresh.Len())
	}
}
