// Package intern provides a concurrency-safe, seeded-stable string
// interner for the token pipeline's high-repetition strings: registered
// domains, FQDNs and query-parameter names recur across every walk, and
// before interning each occurrence either held its own heap copy or —
// worse — pinned the multi-kilobyte URL/page string it was sliced from.
//
// Interning is identity-only: the canonical string is byte-equal to the
// input, so replacing a string with its canonical copy can never change
// pipeline output, only allocation counts and retained bytes. That is
// the same invariant the rest of the performance layer relies on
// (pooling changes allocation counts, never output).
//
// Interners are per-pipeline-run objects with no package-level state:
// each Runner (batch entry point or streaming Accumulator) constructs
// its own, so concurrent runs cannot leak canonical instances into one
// another and a run's working set is released when its interner is.
package intern

import (
	"strings"
	"sync"
)

// shardCount spreads the table over independently-locked shards so the
// analysis worker pool doesn't serialize on one mutex. Power of two so
// shard selection is a mask.
const shardCount = 32

// fnv-1a constants; the hash must only be stable within one interner's
// lifetime, so a seeded variant is fine (and keeps shard assignment
// deterministic per run rather than process-global).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// Interner deduplicates strings into canonical copies. The zero value
// is not usable; construct with New. A nil *Interner is valid and
// interns nothing (Intern returns its argument), so call sites need no
// guards.
type Interner struct {
	seed   uint64
	shards [shardCount]shard
}

// New returns an empty interner whose shard assignment is salted with
// seed. Runs with the same seed place equal strings in the same shards
// — useful only for reproducing contention patterns; results never
// depend on the seed because canonical strings are byte-equal to their
// inputs.
func New(seed int64) *Interner {
	in := &Interner{seed: uint64(seed)}
	for i := range in.shards {
		in.shards[i].m = make(map[string]string)
	}
	return in
}

// Intern returns the canonical copy of s, inserting one if absent. The
// inserted canonical string is a fresh copy (strings.Clone), so
// interning a substring of a large buffer — a host sliced out of a page
// URL, say — releases the buffer instead of pinning it. Safe for
// concurrent use; the fast path is a shared read lock.
func (in *Interner) Intern(s string) string {
	if in == nil || s == "" {
		return s
	}
	sh := &in.shards[in.shardOf(s)]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.m[s]; ok {
		return c
	}
	c = strings.Clone(s)
	sh.m[c] = c
	return c
}

// Len returns the number of canonical strings held.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	n := 0
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// shardOf hashes s with seeded FNV-1a and masks down to a shard index.
func (in *Interner) shardOf(s string) uint64 {
	h := uint64(offset64) ^ in.seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h & (shardCount - 1)
}
