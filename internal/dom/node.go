// Package dom implements the small HTML engine CrumbCruncher's simulated
// browser runs on: a tokenizer and parser for the HTML subset the synthetic
// web emits, an element tree with attributes, x-path computation, and a
// deterministic block-layout pass that assigns bounding boxes.
//
// The paper's crawlers identify "the same" element across page instances by
// href, by attribute names + bounding box, or by attribute names + x-path
// (§3.3); this package supplies all three signals.
package dom

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeType distinguishes the node kinds in the tree.
type NodeType int

const (
	// ElementNode is a tag with attributes and children.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
)

// Attr is a single name="value" attribute. Attribute order is preserved
// from the source, which keeps rendering and attribute-name fingerprints
// deterministic.
type Attr struct {
	Name  string
	Value string
}

// Rect is an element's layout bounding box in CSS pixels.
type Rect struct {
	X, Y, W, H int
}

// String renders a Rect compactly for logs and controller payloads.
func (r Rect) String() string { return fmt.Sprintf("(%d,%d %dx%d)", r.X, r.Y, r.W, r.H) }

// Node is a node in the document tree. The zero value is an empty text
// node.
type Node struct {
	Type     NodeType
	Tag      string // lowercase tag name for ElementNode
	Text     string // data for TextNode and CommentNode
	Attrs    []Attr
	Parent   *Node
	Children []*Node

	// Box is populated by Layout.
	Box Rect
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or a default.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// AttrNames returns the attribute names in document order. Two elements
// "have the same HTML attribute names" (heuristics 2 and 3 in §3.3) when
// these slices are equal.
func (n *Node) AttrNames() []string {
	names := make([]string, len(n.Attrs))
	for i, a := range n.Attrs {
		names[i] = a.Name
	}
	return names
}

// AppendChild adds c as the last child of n and sets its parent. The
// child slice starts at capacity 4: growing 1→2→4 cost three heap
// objects per parent across the document, and parents with more than a
// couple of children are the common case in both parsed and generated
// trees.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	if n.Children == nil {
		n.Children = make([]*Node, 0, 4)
	}
	n.Children = append(n.Children, c)
}

// Find returns the first element (depth-first, document order) for which
// pred returns true, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	if n.Type == ElementNode && pred(n) {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(pred); m != nil {
			return m
		}
	}
	return nil
}

// FindAll appends every matching element in document order.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.walk(func(e *Node) {
		if pred(e) {
			out = append(out, e)
		}
	})
	return out
}

// ElementsByTag returns all elements with the given tag in document order.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.FindAll(func(e *Node) bool { return e.Tag == tag })
}

// ByID returns the element with the given id attribute, or nil.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(e *Node) bool { return e.AttrOr("id", "") == id })
}

// walk visits every element node depth-first.
func (n *Node) walk(visit func(*Node)) {
	if n.Type == ElementNode {
		visit(n)
	}
	for _, c := range n.Children {
		c.walk(visit)
	}
}

// InnerText concatenates the text content beneath n.
func (n *Node) InnerText() string {
	var b strings.Builder
	var rec func(*Node)
	rec = func(m *Node) {
		if m.Type == TextNode {
			b.WriteString(m.Text)
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

// XPath returns a simple positional x-path for the element, e.g.
// /html[1]/body[1]/div[2]/a[1]. Positions count same-tag siblings only,
// matching what browser devtools produce and what the paper's controller
// compares.
//
// The path is assembled in stack buffers and allocates only the final
// string — it runs once per candidate element per page snapshot, where
// the earlier Sprintf-per-segment version was the crawl's single largest
// allocation site.
func (n *Node) XPath() string {
	if n.Type != ElementNode {
		if n.Parent != nil {
			return n.Parent.XPath()
		}
		return ""
	}
	// Collect the ancestor chain; document order is the reverse.
	var stack [32]*Node
	chain := stack[:0]
	for e := n; e != nil && e.Type == ElementNode && e.Tag != "#document"; e = e.Parent {
		chain = append(chain, e)
	}
	var buf [128]byte
	out := buf[:0]
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		pos := 1
		if e.Parent != nil {
			for _, sib := range e.Parent.Children {
				if sib == e {
					break
				}
				if sib.Type == ElementNode && sib.Tag == e.Tag {
					pos++
				}
			}
		}
		out = append(out, '/')
		out = append(out, e.Tag...)
		out = append(out, '[')
		out = strconv.AppendInt(out, int64(pos), 10)
		out = append(out, ']')
	}
	return string(out)
}

// NewElement constructs an element node with alternating attribute
// name/value pairs. It panics on an odd number of pairs, which is always a
// programming error in the generator.
func NewElement(tag string, attrPairs ...string) *Node {
	if len(attrPairs)%2 != 0 {
		panic("dom: NewElement attrPairs must be name/value pairs")
	}
	n := &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
	if len(attrPairs) > 0 {
		n.Attrs = make([]Attr, 0, len(attrPairs)/2)
		for i := 0; i < len(attrPairs); i += 2 {
			n.Attrs = append(n.Attrs, Attr{Name: attrPairs[i], Value: attrPairs[i+1]})
		}
	}
	return n
}

// NewText constructs a text node.
func NewText(text string) *Node { return &Node{Type: TextNode, Text: text} }
