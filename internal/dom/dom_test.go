package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Shop</title><meta charset="utf-8"></head>
<body>
<nav id="top"><a href="/home">Home</a><a href="/deals">Deals</a></nav>
<div class="content">
  <h1>Welcome</h1>
  <p>Some text with &amp; entity.</p>
  <a href="https://other.example/path?x=1" rel="sponsored">Ad link</a>
  <iframe src="https://ads.example/slot/1" width="300" height="250"></iframe>
</div>
<script>var x = 1 < 2;</script>
</body>
</html>`

func TestParseBasicStructure(t *testing.T) {
	doc := Parse(samplePage)
	anchors := doc.ElementsByTag("a")
	if len(anchors) != 3 {
		t.Fatalf("anchors = %d, want 3", len(anchors))
	}
	iframes := doc.ElementsByTag("iframe")
	if len(iframes) != 1 {
		t.Fatalf("iframes = %d, want 1", len(iframes))
	}
	if got := iframes[0].AttrOr("src", ""); got != "https://ads.example/slot/1" {
		t.Fatalf("iframe src = %q", got)
	}
	if nav := doc.ByID("top"); nav == nil || nav.Tag != "nav" {
		t.Fatal("ByID failed to find nav#top")
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<p title="a&amp;b">x &lt; y</p>`)
	p := doc.ElementsByTag("p")[0]
	if v, _ := p.Attr("title"); v != "a&b" {
		t.Fatalf("attr entity: %q", v)
	}
	if got := strings.TrimSpace(p.InnerText()); got != "x < y" {
		t.Fatalf("text entity: %q", got)
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := Parse(`<script>if (a < b && c > d) { go(); }</script><p>after</p>`)
	scripts := doc.ElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	if !strings.Contains(scripts[0].InnerText(), "a < b && c > d") {
		t.Fatalf("script body mangled: %q", scripts[0].InnerText())
	}
	if len(doc.ElementsByTag("p")) != 1 {
		t.Fatal("content after script lost")
	}
}

func TestParseVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<div><img src="/a.png"><br/><input type="text"></div><p>sib</p>`)
	div := doc.ElementsByTag("div")[0]
	if len(div.ElementsByTag("img")) != 1 || len(div.ElementsByTag("input")) != 1 {
		t.Fatal("void elements not children of div")
	}
	// p must be a sibling of div, not nested inside img.
	p := doc.ElementsByTag("p")[0]
	if p.Parent.Tag != "#document" {
		t.Fatalf("p parent = %q", p.Parent.Tag)
	}
}

func TestParseToleratesMalformed(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<div",
		"</nothing>",
		"<div><span>unclosed",
		"<a href=>x</a>",
		"<a href='unterminated>x",
		"<!-- unterminated comment",
		"<p>text<p>more", // unclosed p elements
	}
	for _, c := range cases {
		doc := Parse(c) // must not panic
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", c)
		}
	}
}

func TestParseBooleanAttr(t *testing.T) {
	doc := Parse(`<input disabled type="text">`)
	in := doc.ElementsByTag("input")[0]
	if _, ok := in.Attr("disabled"); !ok {
		t.Fatal("boolean attribute lost")
	}
	if got := in.AttrNames(); len(got) != 2 || got[0] != "disabled" || got[1] != "type" {
		t.Fatalf("AttrNames = %v", got)
	}
}

func TestXPath(t *testing.T) {
	doc := Parse(`<html><body><div><a href="1">x</a><span></span><a href="2">y</a></div></body></html>`)
	anchors := doc.ElementsByTag("a")
	if got := anchors[0].XPath(); got != "/html[1]/body[1]/div[1]/a[1]" {
		t.Fatalf("xpath[0] = %q", got)
	}
	if got := anchors[1].XPath(); got != "/html[1]/body[1]/div[1]/a[2]" {
		t.Fatalf("xpath[1] = %q", got)
	}
}

func TestSetAttrAndRoundTrip(t *testing.T) {
	el := NewElement("a", "href", "/x")
	el.SetAttr("href", "/y")
	el.SetAttr("rel", "nofollow")
	if got := el.AttrOr("href", ""); got != "/y" {
		t.Fatalf("SetAttr replace failed: %q", got)
	}
	if got := el.AttrOr("rel", ""); got != "nofollow" {
		t.Fatalf("SetAttr add failed: %q", got)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	doc := Parse(samplePage)
	rendered := Render(doc)
	doc2 := Parse(rendered)
	if len(doc.ElementsByTag("a")) != len(doc2.ElementsByTag("a")) {
		t.Fatal("anchor count changed across round trip")
	}
	a1 := doc.ElementsByTag("a")[2]
	a2 := doc2.ElementsByTag("a")[2]
	if a1.AttrOr("href", "") != a2.AttrOr("href", "") {
		t.Fatal("href changed across round trip")
	}
	if a1.XPath() != a2.XPath() {
		t.Fatalf("xpath changed: %q vs %q", a1.XPath(), a2.XPath())
	}
}

func TestRenderEscaping(t *testing.T) {
	el := NewElement("a", "href", `/x?a=1&b="q"`)
	el.AppendChild(NewText("5 < 6 & 7 > 2"))
	html := Render(el)
	doc := Parse(html)
	a := doc.ElementsByTag("a")[0]
	if got := a.AttrOr("href", ""); got != `/x?a=1&b="q"` {
		t.Fatalf("attr round trip: %q", got)
	}
	if got := a.InnerText(); got != "5 < 6 & 7 > 2" {
		t.Fatalf("text round trip: %q", got)
	}
}

func TestLayoutVerticalStacking(t *testing.T) {
	doc := Parse(`<html><body><div id="a" height="100"></div><div id="b" height="50"></div></body></html>`)
	Layout(doc, 1280)
	a, b := doc.ByID("a"), doc.ByID("b")
	if a.Box.H != 100 {
		t.Fatalf("a height = %d", a.Box.H)
	}
	if b.Box.Y <= a.Box.Y {
		t.Fatalf("b (y=%d) should be below a (y=%d)", b.Box.Y, a.Box.Y)
	}
}

func TestLayoutDynamicContentShiftsOnlyY(t *testing.T) {
	// The same iframe rendered below differently sized dynamic content
	// must keep x/w/h and differ only in y — the invariant behind matching
	// heuristic 2.
	page := func(bannerH int) *Node {
		doc := Parse(`<html><body><div id="banner"></div><iframe id="ad" src="/s" width="300" height="250"></iframe></body></html>`)
		doc.ByID("banner").SetAttr("height", itoa(bannerH))
		Layout(doc, 1280)
		return doc
	}
	p1, p2 := page(60), page(200)
	ad1, ad2 := p1.ByID("ad"), p2.ByID("ad")
	if ad1.Box.X != ad2.Box.X || ad1.Box.W != ad2.Box.W || ad1.Box.H != ad2.Box.H {
		t.Fatalf("x/w/h changed: %v vs %v", ad1.Box, ad2.Box)
	}
	if ad1.Box.Y == ad2.Box.Y {
		t.Fatal("y should differ when content above resizes")
	}
}

func TestLayoutInlineWrapping(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<html><body><div>")
	for i := 0; i < 20; i++ {
		sb.WriteString(`<a href="/x">link</a>`)
	}
	sb.WriteString("</div></body></html>")
	doc := Parse(sb.String())
	Layout(doc, 400)
	anchors := doc.ElementsByTag("a")
	rows := map[int]bool{}
	for _, a := range anchors {
		rows[a.Box.Y] = true
		if a.Box.X+a.Box.W > 400+160 {
			t.Fatalf("anchor exceeds viewport badly: %v", a.Box)
		}
	}
	if len(rows) < 2 {
		t.Fatal("20 anchors at 160px in 400px viewport should wrap to multiple rows")
	}
}

func TestLayoutZeroViewportDefaults(t *testing.T) {
	doc := Parse(`<html><body><p>x</p></body></html>`)
	Layout(doc, 0) // must not panic; defaults to 1280
	p := doc.ElementsByTag("p")[0]
	if p.Box.W != 1280 {
		t.Fatalf("full-width p = %d, want 1280", p.Box.W)
	}
}

// Property: Render then Parse preserves element count and tag multiset for
// generator-shaped trees.
func TestRoundTripProperty(t *testing.T) {
	f := func(hrefs []string, useIframe bool) bool {
		body := NewElement("body")
		for i, h := range hrefs {
			if i > 10 {
				break
			}
			a := NewElement("a", "href", h)
			a.AppendChild(NewText("t"))
			body.AppendChild(a)
		}
		if useIframe {
			body.AppendChild(NewElement("iframe", "src", "/slot"))
		}
		html := NewElement("html")
		html.AppendChild(body)
		doc2 := Parse(Render(html))
		wantA := len(body.ElementsByTag("a"))
		wantI := len(body.ElementsByTag("iframe"))
		return len(doc2.ElementsByTag("a")) == wantA && len(doc2.ElementsByTag("iframe")) == wantI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
