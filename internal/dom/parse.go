package dom

import (
	"strings"
)

// voidElements never have children and need no closing tag.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// nodeArena hands out tree nodes in blocks so parsing a page costs one
// heap object per arenaBlock nodes instead of one per node (the parser
// was the crawl's densest source of small allocations). Nodes in a
// block share a backing array, so a single retained node keeps its
// whole block alive — fine here, because the crawler discards pages
// wholesale. The arena is per-Parse call, never pooled or shared:
// trees built from it are identical to individually-allocated ones in
// every observable way.
type nodeArena struct{ blk []Node }

// arenaOverflowBlock sizes the blocks handed out after the initial
// estimate (see Parse) runs dry.
const arenaOverflowBlock = 32

func (a *nodeArena) node() *Node {
	if len(a.blk) == 0 {
		a.blk = make([]Node, arenaOverflowBlock)
	}
	n := &a.blk[0]
	a.blk = a.blk[1:]
	return n
}

// Parse parses an HTML document into a tree rooted at a synthetic
// #document node. The parser accepts the well-formed subset the synthetic
// web emits and degrades gracefully on the rest: unknown entities pass
// through, stray close tags are ignored, and unclosed elements are closed
// at end of input. Parse never fails; like a browser, it always produces a
// tree.
func Parse(html string) *Node {
	// Every node begins at a '<' (open tag, comment) or follows one
	// (text run), and close tags consume a '<' without producing a
	// node, so the '<' count is a tight upper bound on the node count.
	// One counting pass sizes the arena's first block so a typical
	// document costs a single node allocation with little slack.
	arena := nodeArena{blk: make([]Node, strings.Count(html, "<")+2)}
	newText := func(text string) *Node {
		n := arena.node()
		n.Type, n.Text = TextNode, text
		return n
	}
	root := arena.node()
	root.Type, root.Tag = ElementNode, "#document"
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }

	i := 0
	for i < len(html) {
		if html[i] != '<' {
			// Text run.
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				j = len(html) - i
			}
			text := html[i : i+j]
			if strings.TrimSpace(text) != "" {
				top().AppendChild(newText(decodeEntities(text)))
			}
			i += j
			continue
		}
		// Comment.
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				c := arena.node()
				c.Type, c.Text = CommentNode, html[i+4:]
				top().AppendChild(c)
				break
			}
			c := arena.node()
			c.Type, c.Text = CommentNode, html[i+4:i+4+end]
			top().AppendChild(c)
			i += 4 + end + 3
			continue
		}
		// Doctype or other declaration: skip to '>'.
		if strings.HasPrefix(html[i:], "<!") || strings.HasPrefix(html[i:], "<?") {
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		// Close tag.
		if strings.HasPrefix(html[i:], "</") {
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				break
			}
			name := strings.ToLower(strings.TrimSpace(html[i+2 : i+end]))
			// Pop to the matching open element if one exists.
			for d := len(stack) - 1; d >= 1; d-- {
				if stack[d].Tag == name {
					stack = stack[:d]
					break
				}
			}
			i += end + 1
			continue
		}
		// Open tag.
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		raw := html[i+1 : i+end]
		i += end + 1
		selfClose := strings.HasSuffix(raw, "/")
		if selfClose {
			raw = strings.TrimSuffix(raw, "/")
		}
		el := parseTag(raw, &arena)
		if el == nil {
			continue
		}
		top().AppendChild(el)
		if el.Tag == "script" || el.Tag == "style" {
			// Raw-text elements: consume to the closing tag verbatim.
			closer := "</" + el.Tag
			idx := strings.Index(strings.ToLower(html[i:]), closer)
			if idx < 0 {
				el.AppendChild(newText(html[i:]))
				break
			}
			if idx > 0 {
				el.AppendChild(newText(html[i : i+idx]))
			}
			gt := strings.IndexByte(html[i+idx:], '>')
			if gt < 0 {
				break
			}
			i += idx + gt + 1
			continue
		}
		if !selfClose && !voidElements[el.Tag] {
			stack = append(stack, el)
		}
	}
	return root
}

// parseTag parses "name attr=val attr2="v2" flag" into an element
// allocated from the parse arena.
func parseTag(raw string, a *nodeArena) *Node {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	nameEnd := 0
	for nameEnd < len(raw) && !isSpace(raw[nameEnd]) {
		nameEnd++
	}
	el := a.node()
	el.Type, el.Tag = ElementNode, strings.ToLower(raw[:nameEnd])
	rest := raw[nameEnd:]
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		// Attribute name.
		j := 0
		for j < len(rest) && rest[j] != '=' && !isSpace(rest[j]) {
			j++
		}
		name := strings.ToLower(rest[:j])
		rest = rest[j:]
		if name == "" {
			break
		}
		rest = strings.TrimLeft(rest, " \t\r\n")
		if !strings.HasPrefix(rest, "=") {
			// Boolean attribute.
			el.Attrs = append(el.Attrs, Attr{Name: name})
			continue
		}
		rest = strings.TrimLeft(rest[1:], " \t\r\n")
		var value string
		switch {
		case strings.HasPrefix(rest, `"`):
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				value, rest = rest[1:], ""
			} else {
				value, rest = rest[1:1+end], rest[2+end:]
			}
		case strings.HasPrefix(rest, "'"):
			end := strings.IndexByte(rest[1:], '\'')
			if end < 0 {
				value, rest = rest[1:], ""
			} else {
				value, rest = rest[1:1+end], rest[2+end:]
			}
		default:
			j = 0
			for j < len(rest) && !isSpace(rest[j]) {
				j++
			}
			value, rest = rest[:j], rest[j:]
		}
		el.Attrs = append(el.Attrs, Attr{Name: name, Value: decodeEntities(value)})
	}
	return el
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
)

var entityEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}

// EscapeText escapes text for safe inclusion in HTML content or attribute
// values.
func EscapeText(s string) string { return entityEscaper.Replace(s) }

// Render serializes the tree back to HTML. Rendering a parsed document and
// re-parsing it yields an equivalent tree (the round-trip property tested
// in dom_test.go).
func Render(n *Node) string {
	var b strings.Builder
	renderTo(&b, n)
	return b.String()
}

func renderTo(b *strings.Builder, n *Node) {
	switch n.Type {
	case TextNode:
		b.WriteString(EscapeText(n.Text))
		return
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Text)
		b.WriteString("-->")
		return
	}
	if n.Tag == "#document" {
		for _, c := range n.Children {
			renderTo(b, c)
		}
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeText(a.Value))
		b.WriteByte('"')
	}
	b.WriteByte('>')
	if voidElements[n.Tag] {
		return
	}
	if n.Tag == "script" || n.Tag == "style" {
		// Raw text: no escaping.
		for _, c := range n.Children {
			if c.Type == TextNode {
				b.WriteString(c.Text)
			}
		}
	} else {
		for _, c := range n.Children {
			renderTo(b, c)
		}
	}
	b.WriteString("</")
	b.WriteString(n.Tag)
	b.WriteByte('>')
}
