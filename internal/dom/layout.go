package dom

import "strconv"

// Layout assigns bounding boxes to every element under root using a
// deterministic block-layout model:
//
//   - The viewport is viewportWidth pixels wide; the document flows top to
//     bottom.
//   - An element's width/height come from its width/height attributes when
//     present, otherwise from per-tag defaults.
//   - Block elements stack vertically; inline elements (a, span, img,
//     button) flow left to right and wrap at the viewport edge.
//
// The model is intentionally simple but captures the property the paper's
// synchronization heuristics depend on: inserting or resizing a dynamic
// element above another element shifts the lower element's y-coordinate
// while preserving its x/width/height — which is exactly why heuristic 2 in
// §3.3 ignores y when comparing bounding boxes.
func Layout(root *Node, viewportWidth int) {
	if viewportWidth <= 0 {
		viewportWidth = 1280
	}
	l := &layouter{viewport: viewportWidth}
	l.layoutBlock(root, 0, 0, viewportWidth)
}

type layouter struct {
	viewport int
}

// tagDefaults gives intrinsic sizes for tags whose dimensions matter to
// element matching. Iframes default to the classic 300x250 ad slot.
var tagDefaults = map[string]Rect{
	"iframe": {W: 300, H: 250},
	"img":    {W: 120, H: 90},
	"a":      {W: 160, H: 18},
	"button": {W: 96, H: 28},
	"span":   {W: 80, H: 18},
	"input":  {W: 180, H: 24},
	"h1":     {W: 0, H: 40}, // W 0 => full width
	"h2":     {W: 0, H: 32},
	"p":      {W: 0, H: 60},
	"div":    {W: 0, H: 0}, // sized by children
	"nav":    {W: 0, H: 48},
	"footer": {W: 0, H: 80},
}

var inlineTags = map[string]bool{
	"a": true, "span": true, "img": true, "button": true, "input": true,
}

// layoutBlock lays out n's children starting at (x, y) within width, and
// returns the total height consumed.
func (l *layouter) layoutBlock(n *Node, x, y, width int) int {
	startY := y
	curX, lineH := x, 0
	flushLine := func() {
		if lineH > 0 {
			y += lineH
			curX, lineH = x, 0
		}
	}
	for _, c := range n.Children {
		if c.Type != ElementNode {
			continue
		}
		w, h := elementSize(c, width)
		if inlineTags[c.Tag] {
			if curX+w > x+width && curX > x {
				// Wrap.
				y += lineH
				curX, lineH = x, 0
			}
			c.Box = Rect{X: curX, Y: y, W: w, H: h}
			// Inline elements may still have children (e.g. <a><img></a>).
			l.layoutBlock(c, curX, y, w)
			curX += w + 8
			if h > lineH {
				lineH = h
			}
			continue
		}
		flushLine()
		if w == 0 {
			w = width
		}
		c.Box = Rect{X: x, Y: y, W: w, H: h}
		childH := l.layoutBlock(c, x, y, w)
		if childH > h {
			h = childH
			c.Box.H = h
		}
		y += h + 4
	}
	flushLine()
	return y - startY
}

// elementSize resolves an element's declared or default size.
func elementSize(n *Node, containerWidth int) (w, h int) {
	def := tagDefaults[n.Tag]
	w, h = def.W, def.H
	if v, ok := n.Attr("width"); ok {
		if p, err := strconv.Atoi(v); err == nil && p > 0 {
			w = p
		}
	}
	if v, ok := n.Attr("height"); ok {
		if p, err := strconv.Atoi(v); err == nil && p > 0 {
			h = p
		}
	}
	if w > containerWidth && containerWidth > 0 {
		w = containerWidth
	}
	return w, h
}
