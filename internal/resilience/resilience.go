// Package resilience is the pipeline's failure-handling layer: a generic
// retry policy (capped exponential backoff with seeded jitter, slept on
// the simulation's virtual clock so retries cost zero wall time), a
// retryable-vs-permanent error classifier, and per-registered-domain
// circuit breakers that stop retry storms against hosts that are down for
// good.
//
// Everything here is deterministic: backoff delays are a pure function of
// (seed, key, attempt), fault recovery in netsim is a pure function of
// (domain, attempt), and breaker state advances only on explicit
// sequence-level reports — so a crawl with retries enabled produces the
// same dataset for a given seed regardless of wall-clock scheduling or
// Parallelism.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/telemetry"
)

// Clock is the virtual clock backoff sleeps on. netsim's VirtualClock
// satisfies it: Advance moves simulated time forward without any real
// sleeping.
type Clock interface {
	Now() time.Time
	Advance(d time.Duration) time.Time
}

// Policy is a capped exponential backoff retry policy. The zero value
// means "one attempt, no retries" (the pre-resilience behaviour), so
// configurations that never mention retries are unchanged.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 1: a single attempt, no retries).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseDelay is the backoff before the second attempt (0: 500ms when
	// retries are enabled).
	BaseDelay time.Duration `json:"base_delay,omitempty"`
	// MaxDelay caps the backoff (0: 8s).
	MaxDelay time.Duration `json:"max_delay,omitempty"`
	// Multiplier is the per-attempt growth factor (0: 2).
	Multiplier float64 `json:"multiplier,omitempty"`
	// JitterFrac spreads each delay uniformly over ±JitterFrac of its
	// value, derived deterministically from the retry key — so
	// synchronized crawlers don't hammer a recovering host in lockstep,
	// yet every run schedules identically.
	JitterFrac float64 `json:"jitter_frac,omitempty"`
}

// DefaultPolicy returns the crawl's standard retry policy: three
// attempts with 500ms–8s capped exponential backoff and 20% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 500 * time.Millisecond, MaxDelay: 8 * time.Second, Multiplier: 2, JitterFrac: 0.2}
}

// withDefaults fills zero fields of an enabled policy.
func (p Policy) withDefaults() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 8 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Enabled reports whether the policy performs any retries.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff returns the deterministic delay before attempt+1, i.e. after
// attempt (0-based) failed: min(Base·Multiplier^attempt, Max) spread by
// seeded jitter. It is a pure function of (seed, key, attempt).
func (p Policy) Backoff(seed int64, key string, attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 {
		h := uint64(stats.DeriveSeed(seed, fmt.Sprintf("resilience/backoff/%s/%d", key, attempt)))
		u := float64(h>>11) / float64(1<<53) // uniform [0,1)
		d *= 1 - p.JitterFrac + 2*p.JitterFrac*u
	}
	return time.Duration(d)
}

// Metrics caches the resilience layer's telemetry instruments; all
// fields are nil-safe no-ops when built from a nil registry.
type Metrics struct {
	// Retries counts attempts beyond the first.
	Retries *telemetry.Counter
	// Recovered counts retry sequences that succeeded after at least one
	// failed attempt (the transient-recovered population).
	Recovered *telemetry.Counter
	// Exhausted counts sequences that failed every attempt (the
	// permanently-unreachable population).
	Exhausted *telemetry.Counter
	// Backoff observes virtual backoff sleeps in microseconds.
	Backoff *telemetry.Histogram
}

// NewMetrics binds the standard resilience instruments out of reg
// (nil-safe: a nil registry yields no-op instruments).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Retries:   reg.Counter("resilience.retries"),
		Recovered: reg.Counter("resilience.recovered"),
		Exhausted: reg.Counter("resilience.exhausted"),
		Backoff:   reg.Histogram("resilience.backoff_us"),
	}
}

// Do runs op under the policy: up to MaxAttempts attempts, backing off
// on the virtual clock between retryable failures. Permanent errors
// (per Retryable) stop immediately. A response's Retry-After hint, when
// longer than the computed backoff, replaces it. sleep, when non-nil,
// is additionally invoked with each backoff delay — a wall-clock hook
// used by tests to prove schedules perturbed only in real time leave
// results identical. m may be nil.
func Do(ctx context.Context, clock Clock, seed int64, key string, p Policy, sleep func(time.Duration), m *Metrics, op func(attempt int) error) error {
	if m == nil {
		m = &Metrics{}
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx != nil && ctx.Err() != nil && err != nil {
			return err // cancelled mid-sequence: surface the real failure
		}
		if attempt > 0 {
			m.Retries.Inc()
		}
		err = op(attempt)
		if err == nil {
			if attempt > 0 {
				m.Recovered.Inc()
			}
			return nil
		}
		if attempt == attempts-1 || !Retryable(err) {
			break
		}
		d := p.Backoff(seed, key, attempt)
		if hint, ok := RetryAfterHint(err); ok && hint > d {
			d = hint
		}
		if sleep != nil {
			sleep(d)
		}
		clock.Advance(d)
		m.Backoff.Observe(d.Microseconds())
	}
	m.Exhausted.Inc()
	return err
}

// HTTPError reports a degraded HTTP response (5xx or 429) as an error,
// carrying the server's Retry-After hint when present. The browser layer
// converts degraded navigation responses into this type so the retry
// classifier can see status codes.
type HTTPError struct {
	Status     int
	RetryAfter time.Duration
	URL        string
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d from %s", e.Status, e.URL)
}

// Temporary reports whether the status is worth retrying.
func (e *HTTPError) Temporary() bool {
	switch e.Status {
	case 429, 502, 503, 504:
		return true
	}
	return false
}

// Permanenter lets error types declare themselves non-retryable
// regardless of their transport shape (e.g. netsim's unknown-host
// NXDOMAIN, breaker-open fail-fasts).
type Permanenter interface{ Permanent() bool }

// Retryable classifies an error as transient (worth retrying) or
// permanent, via errors.As over the wrap chain: explicit Permanent()
// declarations win, then degraded HTTP statuses, then net.Error
// timeouts and transport-level *net.OpError flavours (ECONNREFUSED,
// ECONNRESET and friends). Anything else — click-logic failures,
// controller errors, parse errors — is permanent.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var perm Permanenter
	if errors.As(err, &perm) {
		return !perm.Permanent()
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Temporary()
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// RetryAfterHint extracts a server-provided Retry-After delay from the
// error chain.
func RetryAfterHint(err error) (time.Duration, bool) {
	var he *HTTPError
	if errors.As(err, &he) && he.RetryAfter > 0 {
		return he.RetryAfter, true
	}
	return 0, false
}
