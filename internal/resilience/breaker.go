package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crumbcruncher/internal/telemetry"
)

// BreakerConfig configures the per-domain circuit breakers. The zero
// value disables them.
type BreakerConfig struct {
	// Threshold is the number of consecutive failed navigation
	// *sequences* (whole retry loops, not individual attempts) that trip
	// a domain's breaker open (<= 0: breakers disabled). Counting
	// sequences rather than attempts keeps breaker state independent of
	// goroutine interleaving: a transient domain always recovers within
	// its sequence, so it can never trip a breaker no matter how walks
	// overlap.
	Threshold int `json:"threshold,omitempty"`
	// Cooldown is how long (virtual time) an open breaker rejects
	// traffic before admitting a half-open probe (0: 5 minutes).
	Cooldown time.Duration `json:"cooldown,omitempty"`
}

// Enabled reports whether breakers are active.
func (c BreakerConfig) Enabled() bool { return c.Threshold > 0 }

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	return c
}

// BreakerState is a circuit breaker's state.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits probe traffic; the next report decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOpenError is the fail-fast error returned for requests to a
// domain whose breaker is open. It wraps the failure that tripped the
// breaker, so crawl records keep the domain's real error flavour, and is
// permanent so the retry layer never retries against an open breaker.
type BreakerOpenError struct {
	Domain string
	Err    error
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open for %s: %v", e.Domain, e.Err)
}

// Unwrap exposes the tripping error to errors.Is/As.
func (e *BreakerOpenError) Unwrap() error { return e.Err }

// Permanent marks breaker rejections non-retryable (no retry storms).
func (e *BreakerOpenError) Permanent() bool { return true }

// Timeout implements net.Error (the original failure was transport
// level, and crawl code classifies transport failures via net.Error).
func (e *BreakerOpenError) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *BreakerOpenError) Temporary() bool { return false }

// IsBreakerOpen reports whether err is (or wraps) a breaker rejection.
func IsBreakerOpen(err error) bool {
	var boe *BreakerOpenError
	return errors.As(err, &boe)
}

// breaker is one domain's circuit state; guarded by its BreakerSet.
type breaker struct {
	state    BreakerState
	fails    int       // consecutive failed sequences while closed
	lastErr  error     // the failure that tripped the breaker
	openedAt time.Time // virtual instant the breaker last opened
}

// BreakerSet is the per-registered-domain circuit breaker table shared
// by a crawl. The transport (netsim) consults Allow on every request to
// fail fast; the crawler reports whole navigation sequences via
// ReportHost. Safe for concurrent use.
type BreakerSet struct {
	cfg   BreakerConfig
	clock Clock
	// key maps a host to its breaker key (registered domain in the real
	// pipeline; identity when nil).
	key func(host string) string

	mu sync.Mutex
	m  map[string]*breaker

	// Transition counters (nil-safe when built without a registry).
	cOpened   *telemetry.Counter
	cClosed   *telemetry.Counter
	cHalfOpen *telemetry.Counter
	gOpen     *telemetry.Gauge
}

// NewBreakerSet returns a breaker table. clock must be non-nil when cfg
// is enabled; key may be nil (hosts are then their own keys); reg may be
// nil (no transition telemetry).
func NewBreakerSet(cfg BreakerConfig, clock Clock, key func(string) string, reg *telemetry.Registry) *BreakerSet {
	if key == nil {
		key = func(h string) string { return h }
	}
	return &BreakerSet{
		cfg:       cfg.withDefaults(),
		clock:     clock,
		key:       key,
		m:         make(map[string]*breaker),
		cOpened:   reg.Counter("netsim.breaker_opened"),
		cClosed:   reg.Counter("netsim.breaker_closed"),
		cHalfOpen: reg.Counter("netsim.breaker_half_open"),
		gOpen:     reg.Gauge("netsim.breakers_open"),
	}
}

// Allow reports whether a request to host may proceed. When the domain's
// breaker is open (and the cooldown has not elapsed) it returns
// (rejection error, false); the error wraps the failure that tripped the
// breaker. An elapsed cooldown moves the breaker to half-open and admits
// the probe. Safe on a nil set.
func (s *BreakerSet) Allow(host string) (error, bool) {
	if s == nil || !s.cfg.Enabled() {
		return nil, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.key(host)
	b := s.m[d]
	if b == nil || b.state == BreakerClosed {
		return nil, true
	}
	if b.state == BreakerOpen {
		if s.clock.Now().Sub(b.openedAt) < s.cfg.Cooldown {
			return &BreakerOpenError{Domain: d, Err: b.lastErr}, false
		}
		b.state = BreakerHalfOpen
		s.cHalfOpen.Inc()
		s.gOpen.Add(-1)
	}
	return nil, true // half-open: admit probes until a report decides
}

// ReportHost records the outcome of one whole navigation sequence (a
// full retry loop) against host: nil err resets/closes the domain's
// breaker, a failure counts toward Threshold (closed) or re-opens it
// (half-open). Breaker rejections themselves must not be reported.
// Safe on a nil set.
func (s *BreakerSet) ReportHost(host string, err error) {
	if s == nil || !s.cfg.Enabled() || IsBreakerOpen(err) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.key(host)
	b := s.m[d]
	if b == nil {
		if err == nil {
			return // healthy domain with no breaker yet: nothing to track
		}
		b = &breaker{}
		s.m[d] = b
	}
	if err == nil {
		if b.state != BreakerClosed {
			s.cClosed.Inc()
		}
		b.state = BreakerClosed
		b.fails = 0
		b.lastErr = nil
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		s.open(b, err)
	case BreakerClosed:
		b.fails++
		b.lastErr = err
		if b.fails >= s.cfg.Threshold {
			s.open(b, err)
		}
	}
}

// open transitions b to open; callers hold the lock.
func (s *BreakerSet) open(b *breaker, err error) {
	b.state = BreakerOpen
	b.fails = 0
	b.lastErr = err
	b.openedAt = s.clock.Now()
	s.cOpened.Inc()
	s.gOpen.Add(1)
}

// State returns the current state of host's breaker (closed when
// untracked). Exposed for tests and reporting.
func (s *BreakerSet) State(host string) BreakerState {
	if s == nil {
		return BreakerClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[s.key(host)]; b != nil {
		return b.state
	}
	return BreakerClosed
}
