package resilience

import (
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"crumbcruncher/internal/telemetry"
)

// fakeClock is a minimal virtual clock for tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time                    { return c.t }
func (c *fakeClock) Advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func TestBackoffDeterministic(t *testing.T) {
	p := DefaultPolicy()
	for attempt := 0; attempt < 4; attempt++ {
		a := p.Backoff(7, "seed/3/Safari-1", attempt)
		b := p.Backoff(7, "seed/3/Safari-1", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
	}
	if p.Backoff(7, "seed/3/Safari-1", 0) == p.Backoff(7, "seed/4/Safari-1", 0) {
		t.Error("distinct keys produced identical jittered delays (possible, but with 20% jitter over float64 it signals the key is ignored)")
	}
	if p.Backoff(7, "k", 1) == p.Backoff(8, "k", 1) {
		t.Error("distinct seeds produced identical jittered delays")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Second, MaxDelay: 8 * time.Second, Multiplier: 2}
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second, 8 * time.Second}
	for attempt, w := range want {
		if got := p.Backoff(1, "k", attempt); got != w {
			t.Errorf("attempt %d: backoff = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: 8 * time.Second, Multiplier: 2, JitterFrac: 0.2}
	for i := 0; i < 200; i++ {
		d := p.Backoff(int64(i), "k", 1) // nominal 2s
		lo, hi := 1600*time.Millisecond, 2400*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("seed %d: jittered delay %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestDoRecoversAfterTransientFailure(t *testing.T) {
	clock := &fakeClock{}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	var slept []time.Duration
	calls := 0
	err := Do(nil, clock, 1, "k", Policy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: time.Second, Multiplier: 1},
		func(d time.Duration) { slept = append(slept, d) }, m,
		func(attempt int) error {
			calls++
			if attempt < 2 {
				return &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do = %v, want recovery", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if got := clock.Now().Sub(time.Time{}); got != 2*time.Second {
		t.Errorf("virtual clock advanced %v, want 2s (two 1s backoffs)", got)
	}
	if len(slept) != 2 {
		t.Errorf("sleep hook invoked %d times, want 2", len(slept))
	}
	if v := m.Retries.Value(); v != 2 {
		t.Errorf("retries counter = %d, want 2", v)
	}
	if v := m.Recovered.Value(); v != 1 {
		t.Errorf("recovered counter = %d, want 1", v)
	}
	if v := m.Exhausted.Value(); v != 0 {
		t.Errorf("exhausted counter = %d, want 0", v)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	clock := &fakeClock{}
	m := NewMetrics(telemetry.NewRegistry())
	calls := 0
	permanent := errors.New("no common element")
	err := Do(nil, clock, 1, "k", DefaultPolicy(), nil, m, func(int) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1 (permanent errors must not retry)", calls)
	}
	if clock.Now() != (time.Time{}) {
		t.Errorf("clock advanced %v for a permanent failure", clock.Now().Sub(time.Time{}))
	}
	if v := m.Exhausted.Value(); v != 1 {
		t.Errorf("exhausted counter = %d, want 1", v)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	clock := &fakeClock{}
	m := NewMetrics(telemetry.NewRegistry())
	calls := 0
	err := Do(nil, clock, 1, "k", Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, nil, m, func(int) error {
		calls++
		return &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}
	})
	if err == nil {
		t.Fatal("Do = nil, want exhaustion error")
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if v := m.Exhausted.Value(); v != 1 {
		t.Errorf("exhausted counter = %d, want 1", v)
	}
	if v := m.Recovered.Value(); v != 0 {
		t.Errorf("recovered counter = %d, want 0", v)
	}
}

func TestDoHonoursRetryAfterHint(t *testing.T) {
	clock := &fakeClock{}
	err := Do(nil, clock, 1, "k", Policy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: time.Second, Multiplier: 1}, nil, nil,
		func(attempt int) error {
			if attempt == 0 {
				return &HTTPError{Status: 503, RetryAfter: 10 * time.Second, URL: "http://a.example.com/"}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do = %v, want recovery", err)
	}
	if got := clock.Now().Sub(time.Time{}); got != 10*time.Second {
		t.Errorf("clock advanced %v, want the 10s Retry-After hint over the 1s backoff", got)
	}
}

func TestDoZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	failure := &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}
	err := Do(nil, &fakeClock{}, 1, "k", Policy{}, nil, nil, func(int) error {
		calls++
		return failure
	})
	if calls != 1 {
		t.Errorf("zero policy ran %d attempts, want exactly 1 (pre-resilience behaviour)", calls)
	}
	if !errors.Is(err, failure) {
		t.Errorf("Do = %v, want the op's error", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("click failed"), false},
		{"op error", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"wrapped op error", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"http 502", &HTTPError{Status: 502}, true},
		{"http 503", &HTTPError{Status: 503}, true},
		{"http 504", &HTTPError{Status: 504}, true},
		{"http 429", &HTTPError{Status: 429}, true},
		{"http 500", &HTTPError{Status: 500}, false},
		{"http 404", &HTTPError{Status: 404}, false},
		{"breaker open", &BreakerOpenError{Domain: "a.example.com", Err: errors.New("down")}, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	reg := telemetry.NewRegistry()
	set := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, clock, nil, reg)
	down := errors.New("connection refused")

	if err, ok := set.Allow("dead.example.com"); !ok || err != nil {
		t.Fatalf("fresh breaker rejected traffic: %v", err)
	}
	set.ReportHost("dead.example.com", down)
	if st := set.State("dead.example.com"); st != BreakerClosed {
		t.Fatalf("after 1/2 failures state = %v, want closed", st)
	}
	set.ReportHost("dead.example.com", down)
	if st := set.State("dead.example.com"); st != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", st)
	}
	err, ok := set.Allow("dead.example.com")
	if ok {
		t.Fatal("open breaker admitted traffic")
	}
	if !IsBreakerOpen(err) {
		t.Fatalf("rejection error %v is not a BreakerOpenError", err)
	}
	if !errors.Is(err, down) {
		t.Errorf("rejection %v does not wrap the tripping failure", err)
	}
	if Retryable(err) {
		t.Error("breaker rejection classified retryable; would cause retry storms")
	}
	if v := reg.Counter("netsim.breaker_opened").Value(); v != 1 {
		t.Errorf("breaker_opened = %d, want 1", v)
	}
	if v := reg.Gauge("netsim.breakers_open").Value(); v != 1 {
		t.Errorf("breakers_open gauge = %d, want 1", v)
	}

	// Cooldown elapses: the next Allow is a half-open probe.
	clock.Advance(2 * time.Minute)
	if err, ok := set.Allow("dead.example.com"); !ok || err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if st := set.State("dead.example.com"); st != BreakerHalfOpen {
		t.Fatalf("post-cooldown state = %v, want half-open", st)
	}

	// Probe fails: re-open.
	set.ReportHost("dead.example.com", down)
	if st := set.State("dead.example.com"); st != BreakerOpen {
		t.Fatalf("after failed probe state = %v, want open", st)
	}

	// Second probe succeeds: closed, failure count reset.
	clock.Advance(2 * time.Minute)
	set.Allow("dead.example.com")
	set.ReportHost("dead.example.com", nil)
	if st := set.State("dead.example.com"); st != BreakerClosed {
		t.Fatalf("after successful probe state = %v, want closed", st)
	}
	set.ReportHost("dead.example.com", down)
	if st := set.State("dead.example.com"); st != BreakerClosed {
		t.Fatalf("one failure after recovery state = %v, want closed (count must reset)", st)
	}
	if v := reg.Counter("netsim.breaker_closed").Value(); v != 1 {
		t.Errorf("breaker_closed = %d, want 1", v)
	}
	if v := reg.Gauge("netsim.breakers_open").Value(); v != 0 {
		t.Errorf("breakers_open gauge = %d, want 0", v)
	}
}

func TestBreakerKeyGroupsHosts(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	key := func(h string) string {
		// Toy registered-domain mapping: strip one subdomain label.
		if h == "a.tracker.example.com" || h == "b.tracker.example.com" {
			return "tracker.example.com"
		}
		return h
	}
	set := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute}, clock, key, nil)
	down := errors.New("down")
	set.ReportHost("a.tracker.example.com", down)
	set.ReportHost("b.tracker.example.com", down)
	if _, ok := set.Allow("a.tracker.example.com"); ok {
		t.Error("failures on sibling hosts did not trip the shared registered-domain breaker")
	}
	if _, ok := set.Allow("b.tracker.example.com"); ok {
		t.Error("sibling host admitted despite the domain breaker being open")
	}
}

func TestBreakerIgnoresBreakerOpenReports(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, clock, nil, nil)
	set.ReportHost("dead.example.com", errors.New("down"))
	rejection, _ := set.Allow("dead.example.com")
	// Feeding rejections back must not extend or mutate breaker state.
	set.ReportHost("dead.example.com", rejection)
	if st := set.State("dead.example.com"); st != BreakerOpen {
		t.Fatalf("state = %v, want open (rejection reports are ignored, not failures)", st)
	}
}

func TestBreakerNilAndDisabled(t *testing.T) {
	var nilSet *BreakerSet
	if err, ok := nilSet.Allow("x"); !ok || err != nil {
		t.Error("nil set must admit everything")
	}
	nilSet.ReportHost("x", errors.New("down")) // must not panic
	if st := nilSet.State("x"); st != BreakerClosed {
		t.Errorf("nil set state = %v, want closed", st)
	}

	disabled := NewBreakerSet(BreakerConfig{}, &fakeClock{}, nil, nil)
	for i := 0; i < 10; i++ {
		disabled.ReportHost("x", errors.New("down"))
	}
	if _, ok := disabled.Allow("x"); !ok {
		t.Error("disabled breakers rejected traffic")
	}
}
