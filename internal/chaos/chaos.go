// Package chaos is the deterministic fault harness behind the
// crash-recover-verify tests (DESIGN.md §12). An Injector implements
// runio.Fault: installed with runio.SetFault it intercepts every record
// append and fsync at the write boundary and — as a pure function of
// its configuration and the write sequence number, never of wall clock
// or goroutine scheduling — tears a chosen write short, flips a bit in
// a chosen frame, or "crashes" the process at a chosen append or fsync
// (abandons the writer with ErrCrash, the in-process stand-in for
// SIGKILL). The same seed always damages the same byte of the same
// record, so every recovery path the tests exercise is replayable.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// ErrCrash is the error an Injector returns at its crash point. To the
// writer it is indistinguishable from the process dying: the append (or
// fsync) does not complete, and every later operation on the writer
// fails with the same error.
var ErrCrash = errors.New("chaos: crash point reached")

// Config pins an Injector's faults. The zero value injects nothing.
// Record sequence numbers count per matching file: the header is record
// 0, entries from 1 — the same numbering runio reports in DamageError.
type Config struct {
	// Seed feeds the deterministic choices the config leaves open (which
	// bit a flip lands on). Independent from the run's world seed.
	Seed int64
	// Target restricts faults to files of one artifact format (e.g.
	// runio.CheckpointFormat). Empty matches every format.
	Target string
	// CrashAtRecord, when > 0, crashes at the Nth matching append
	// (1-based count across the process): the record's frame is cut to
	// TearBytes bytes (0 = nothing lands) and the writer is abandoned.
	CrashAtRecord int
	// TearBytes is how many leading bytes of the crashed record still
	// reach the file — the torn tail the next open must recover from.
	TearBytes int
	// FlipAtRecord, when > 0, flips one deterministically chosen payload
	// bit of the Nth matching append. The write itself succeeds: the
	// damage is latent until a reader checks the frame, exactly like bit
	// rot.
	FlipAtRecord int
	// CrashAtSync, when > 0, crashes at the Nth matching fsync instead
	// of completing it.
	CrashAtSync int
}

// Injector is a deterministic runio.Fault. Create with New, install
// with runio.SetFault(inj), and always clear the hook afterwards.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	appends int // matching appends seen (1-based when compared)
	syncs   int // matching fsyncs seen
	crashed bool

	crashOnce sync.Once
	crashedCh chan struct{}
}

// New returns an Injector for cfg. Nothing fires until the injector is
// installed with runio.SetFault.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, crashedCh: make(chan struct{})}
}

// Crashed is closed the moment a crash point fires. Crash-recover tests
// select on it to cancel the run's context — the rest of the "process"
// stops doing useful work, as it would have if the kernel had killed it.
func (in *Injector) Crashed() <-chan struct{} { return in.crashedCh }

// matches reports whether a file of this format is fault-eligible.
func (in *Injector) matches(format string) bool {
	return in.cfg.Target == "" || in.cfg.Target == format
}

// BeforeAppend implements runio.Fault.
func (in *Injector) BeforeAppend(format string, seq uint64, frame []byte) ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, in.crashErr()
	}
	if !in.matches(format) {
		return frame, nil
	}
	in.appends++
	if in.cfg.CrashAtRecord > 0 && in.appends == in.cfg.CrashAtRecord {
		tear := in.cfg.TearBytes
		if tear > len(frame) {
			tear = len(frame)
		}
		in.crashed = true
		return frame[:tear], in.crashErr()
	}
	if in.cfg.FlipAtRecord > 0 && in.appends == in.cfg.FlipAtRecord {
		return flipBit(in.cfg.Seed, seq, frame), nil
	}
	return frame, nil
}

// BeforeSync implements runio.Fault.
func (in *Injector) BeforeSync(format string, syncSeq uint64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return in.crashErr()
	}
	if !in.matches(format) {
		return nil
	}
	in.syncs++
	if in.cfg.CrashAtSync > 0 && in.syncs == in.cfg.CrashAtSync {
		in.crashed = true
		return in.crashErr()
	}
	return nil
}

// crashErr marks the crash observable and returns the sentinel wrapped
// with the injector's identity. Callers hold in.mu.
func (in *Injector) crashErr() error {
	in.crashOnce.Do(func() { close(in.crashedCh) })
	return fmt.Errorf("chaos: injector(seed=%d): %w", in.cfg.Seed, ErrCrash)
}

// flipBit flips one bit of the frame's payload region, chosen by
// hashing the seed with the record's sequence number — stable across
// runs, different across records. The frame prefix and trailing newline
// are spared so the damage reads as a checksum mismatch (mid-file
// corruption), not a framing tear.
func flipBit(seed int64, seq uint64, frame []byte) []byte {
	const prefix = 19 // runio frame prefix: '!' + 8 hex + '!' + 8 hex + '!'
	out := append([]byte(nil), frame...)
	region := len(out) - prefix - 1 // spare the trailing '\n'
	if region <= 0 {
		return out
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", seed, seq)
	sum := h.Sum64()
	idx := prefix + int(sum%uint64(region))
	out[idx] ^= 1 << (sum >> 32 % 8)
	return out
}
