package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"crumbcruncher/internal/runio"
)

func openFaulted(t *testing.T, path string, hdr runio.Header, cfg Config, appends int) (*Injector, error) {
	t.Helper()
	inj := New(cfg)
	runio.SetFault(inj)
	defer runio.SetFault(nil)

	lf, _, err := runio.OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < appends; i++ {
		if err := lf.Append(map[string]int{"n": i}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := lf.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return inj, firstErr
}

func TestCrashAtRecordTearsAndAbandons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	hdr := runio.Header{Format: runio.CheckpointFormat, Version: 1, Seed: 3}
	// Record numbering counts the header as append 1 through this
	// handle; crash on the 4th append = entry 3, with 5 torn bytes.
	inj, err := openFaulted(t, path, hdr, Config{Seed: 1, CrashAtRecord: 4, TearBytes: 5}, 5)
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("crash not surfaced: %v", err)
	}
	select {
	case <-inj.Crashed():
	default:
		t.Fatal("Crashed() channel not closed")
	}

	// Recovery: the torn record is dropped, the two whole entries kept.
	lf, entries, err := runio.OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2", len(entries))
	}
	if rec := lf.Recovery(); !rec.DroppedTail || rec.TornBytes != 5 {
		t.Fatalf("recovery = %+v, want dropped tail of 5 bytes", rec)
	}
}

func TestFlipAtRecordQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	hdr := runio.Header{Format: runio.CheckpointFormat, Version: 1, Seed: 3}
	if _, err := openFaulted(t, path, hdr, Config{Seed: 7, FlipAtRecord: 3}, 4); err != nil {
		t.Fatalf("bit flip must be latent, got %v", err)
	}

	_, _, err := runio.OpenLineFile(path, hdr)
	var dmg *runio.DamageError
	if !errors.As(err, &dmg) || !errors.Is(err, runio.ErrCorrupt) {
		t.Fatalf("flip not classified corrupt: %v", err)
	}
	if dmg.Record != 2 {
		t.Fatalf("damage at record %d, want 2", dmg.Record)
	}
	if dmg.Quarantined == "" {
		t.Fatal("corrupt file not quarantined")
	}
	if _, err := os.Stat(dmg.Quarantined); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("damaged file still present: %v", err)
	}
}

func TestFlipIsDeterministic(t *testing.T) {
	read := func(dir string) []byte {
		path := filepath.Join(dir, "cp.jsonl")
		hdr := runio.Header{Format: runio.CheckpointFormat, Version: 1, Seed: 3}
		if _, err := openFaulted(t, path, hdr, Config{Seed: 7, FlipAtRecord: 3}, 4); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := read(t.TempDir())
	b := read(t.TempDir())
	if string(a) != string(b) {
		t.Fatal("same seed flipped different bytes")
	}
}

func TestCrashAtSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	hdr := runio.Header{Format: runio.CheckpointFormat, Version: 1, Seed: 3}
	// Sync 1 covers the header write during open; crash on the first
	// entry's fsync.
	inj := New(Config{Seed: 1, CrashAtSync: 2})
	runio.SetFault(inj)
	defer runio.SetFault(nil)

	lf, _, err := runio.OpenLineFileOpts(path, hdr, runio.OpenOptions{Sync: runio.SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	err = lf.Append(map[string]int{"n": 1})
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("sync crash not surfaced: %v", err)
	}
	// Post-crash the writer is dead: further appends fail the same way.
	if err := lf.Append(map[string]int{"n": 2}); !errors.Is(err, ErrCrash) {
		t.Fatalf("abandoned writer accepted append: %v", err)
	}
	lf.Close()
}

func TestTargetRestrictsFaults(t *testing.T) {
	dir := t.TempDir()
	inj := New(Config{Seed: 1, Target: runio.AnalysisFormat, CrashAtRecord: 1})
	runio.SetFault(inj)
	defer runio.SetFault(nil)

	// A checkpoint-format file is untouched even with the fault armed.
	hdr := runio.Header{Format: runio.CheckpointFormat, Version: 1, Seed: 3}
	lf, _, err := runio.OpenLineFile(filepath.Join(dir, "cp.jsonl"), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Append(map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
}
