package filterlist

import "testing"

func TestParseSkipsCommentsAndCosmetic(t *testing.T) {
	l := Parse([]string{
		"! comment",
		"[Adblock Plus 2.0]",
		"example.com##.ad-banner",
		"",
		"||tracker.net^",
	})
	if l.Len() != 1 {
		t.Fatalf("rules = %d, want 1", l.Len())
	}
}

func TestDomainAnchorMatching(t *testing.T) {
	l := Parse([]string{"||doubleclick.net^"})
	if !l.Matches("http://adclick.g.doubleclick.net/c?d=x") {
		t.Fatal("subdomain must match domain anchor")
	}
	if !l.Matches("http://doubleclick.net/") {
		t.Fatal("apex must match")
	}
	if l.Matches("http://notdoubleclick.net/") {
		t.Fatal("suffix-overlap must not match")
	}
	if l.Matches("http://doubleclick.net.evil.com/") {
		t.Fatal("prefix spoof must not match")
	}
}

func TestDomainAnchorWithPath(t *testing.T) {
	l := Parse([]string{"||tracker.com/click"})
	if !l.Matches("http://tracker.com/click?x=1") {
		t.Fatal("anchored domain with path suffix should match by domain")
	}
}

func TestSubstringAndWildcard(t *testing.T) {
	l := Parse([]string{"/adclick?*uid="})
	if !l.Matches("http://x.com/adclick?a=1&uid=abc") {
		t.Fatal("wildcard rule must match in order")
	}
	if l.Matches("http://x.com/uid?adclick") {
		t.Fatal("out-of-order parts must not match")
	}
}

func TestOptionsStripped(t *testing.T) {
	l := Parse([]string{"||ads.example.com^$third-party"})
	if !l.Matches("http://ads.example.com/x") {
		t.Fatal("options suffix should be ignored, rule still applied")
	}
}

func TestBlockedFraction(t *testing.T) {
	l := Parse([]string{"||blocked.com^"})
	urls := []string{
		"http://blocked.com/a",
		"http://fine.com/b",
		"http://fine.com/c",
		"http://sub.blocked.com/d",
	}
	if got := l.BlockedFraction(urls); got != 0.5 {
		t.Fatalf("fraction = %f, want 0.5", got)
	}
	if got := l.BlockedFraction(nil); got != 0 {
		t.Fatalf("empty fraction = %f", got)
	}
}

func TestDomainList(t *testing.T) {
	l := NewDomainList([]string{"tracker.net", "adclick.g.bigads.com"})
	if !l.Contains("sub.tracker.net") {
		t.Fatal("subdomain must be contained (registered-domain semantics)")
	}
	if !l.Contains("bigads.com") {
		t.Fatal("host input must reduce to registered domain")
	}
	if l.Contains("other.org") {
		t.Fatal("unlisted domain contained")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestMissingFraction(t *testing.T) {
	l := NewDomainList([]string{"known.com"})
	hosts := []string{"r.known.com", "x.unknown1.com", "y.unknown2.com"}
	got := l.MissingFraction(hosts)
	want := 2.0 / 3.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("missing = %f, want %f", got, want)
	}
}

func TestRulesRoundTrip(t *testing.T) {
	in := []string{"||a.com^", "/banner/*"}
	l := Parse(in)
	if got := l.Rules(); len(got) != 2 || got[0] != "||a.com^" {
		t.Fatalf("Rules() = %v", got)
	}
}
