// Package filterlist implements the blocklist formats the paper evaluates
// against its findings (§5.1, §7.1): an EasyList-style URL filter engine
// (domain-anchor rules, substring rules, wildcards, comments) and a
// Disconnect-style tracker domain list. The paper found only 6% of
// smuggling URLs blocked by EasyList/EasyPrivacy and 41% of dedicated
// smugglers missing from Disconnect — coverage measurement is therefore a
// first-class operation here.
package filterlist

import (
	"net/url"
	"sort"
	"strings"

	"crumbcruncher/internal/publicsuffix"
)

// ruleKind discriminates rule syntaxes.
type ruleKind int

const (
	domainAnchor ruleKind = iota // ||example.com^
	substring                    // plain text, may contain * wildcards
)

// rule is one compiled filter rule.
type rule struct {
	kind   ruleKind
	domain string   // domainAnchor: the anchored domain
	parts  []string // substring: wildcard-split parts
	raw    string
}

// List is a compiled EasyList-style filter list.
type List struct {
	rules []rule
}

// Parse compiles filter-list text lines. Unsupported syntax (element
// hiding "##", options after "$") is skipped rather than erroring, as ad
// blockers do.
func Parse(lines []string) *List {
	l := &List{}
	for _, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") {
			continue // element hiding: not URL blocking
		}
		if i := strings.IndexByte(line, '$'); i >= 0 {
			line = line[:i] // drop options
			if line == "" {
				continue
			}
		}
		if strings.HasPrefix(line, "||") {
			domain := strings.TrimSuffix(strings.TrimPrefix(line, "||"), "^")
			if i := strings.IndexAny(domain, "/^"); i >= 0 {
				domain = domain[:i]
			}
			if domain != "" {
				l.rules = append(l.rules, rule{kind: domainAnchor, domain: strings.ToLower(domain), raw: raw})
			}
			continue
		}
		l.rules = append(l.rules, rule{kind: substring, parts: strings.Split(line, "*"), raw: raw})
	}
	return l
}

// Len returns the number of compiled rules.
func (l *List) Len() int { return len(l.rules) }

// Rules returns the raw text of the compiled rules.
func (l *List) Rules() []string {
	out := make([]string, len(l.rules))
	for i, r := range l.rules {
		out[i] = r.raw
	}
	return out
}

// Matches reports whether the URL is blocked by any rule.
func (l *List) Matches(rawURL string) bool {
	u, err := url.Parse(rawURL)
	if err != nil {
		return false
	}
	host := strings.ToLower(u.Hostname())
	full := strings.ToLower(rawURL)
	for _, r := range l.rules {
		switch r.kind {
		case domainAnchor:
			if host == r.domain || strings.HasSuffix(host, "."+r.domain) {
				return true
			}
		case substring:
			if wildcardContains(full, r.parts) {
				return true
			}
		}
	}
	return false
}

// wildcardContains checks that the parts appear in order in s (a "*"
// wildcard separates parts; a single part is a plain substring match).
func wildcardContains(s string, parts []string) bool {
	for _, p := range parts {
		if p == "" {
			continue
		}
		idx := strings.Index(s, strings.ToLower(p))
		if idx < 0 {
			return false
		}
		s = s[idx+len(p):]
	}
	return true
}

// BlockedFraction measures list coverage over a URL set — the paper's
// "only 6% of the unique URLs we found would have been blocked".
func (l *List) BlockedFraction(urls []string) float64 {
	if len(urls) == 0 {
		return 0
	}
	blocked := 0
	for _, u := range urls {
		if l.Matches(u) {
			blocked++
		}
	}
	return float64(blocked) / float64(len(urls))
}

// DomainList is a Disconnect-style tracker list: a set of registered
// domains.
type DomainList struct {
	domains map[string]bool
}

// NewDomainList builds a list from tracker domains (hosts are reduced to
// registered domains).
func NewDomainList(domains []string) *DomainList {
	l := &DomainList{domains: map[string]bool{}}
	for _, d := range domains {
		l.domains[reg(d)] = true
	}
	return l
}

func reg(host string) string {
	if rd := publicsuffix.RegisteredDomain(host); rd != "" {
		return rd
	}
	return strings.ToLower(host)
}

// Contains reports whether the host's registered domain is listed.
func (l *DomainList) Contains(host string) bool { return l.domains[reg(host)] }

// Len returns the number of listed domains.
func (l *DomainList) Len() int { return len(l.domains) }

// Domains returns the listed domains, sorted.
func (l *DomainList) Domains() []string {
	out := make([]string, 0, len(l.domains))
	for d := range l.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// MissingFraction reports the fraction of hosts NOT covered by the list —
// the paper's 41%-of-dedicated-smugglers gap.
func (l *DomainList) MissingFraction(hosts []string) float64 {
	if len(hosts) == 0 {
		return 0
	}
	missing := 0
	for _, h := range hosts {
		if !l.Contains(h) {
			missing++
		}
	}
	return float64(missing) / float64(len(hosts))
}
