package web

import (
	"io"
	"net/http"
	"reflect"
	"testing"
)

func lazyPair(t *testing.T) (*World, *World) {
	t.Helper()
	cfg := SmallConfig()
	cfg.ConnectFailRate = 0
	eager := BuildWorld(cfg)
	cfg.Lazy = true
	lazy := BuildWorld(cfg)
	return eager, lazy
}

func TestLazyWorldStartsEmpty(t *testing.T) {
	cfg := SmallConfig()
	cfg.Lazy = true
	w := BuildWorld(cfg)
	w.cache.mu.RLock()
	n := len(w.cache.byIdx)
	w.cache.mu.RUnlock()
	if n != 0 {
		t.Fatalf("lazy world materialised %d sites before any visit", n)
	}
	// Touching one host materialises that site only.
	first := w.SeedersN(1)[0]
	if w.Site(first) == nil {
		t.Fatalf("Site(%q) = nil", first)
	}
	w.cache.mu.RLock()
	n = len(w.cache.byIdx)
	w.cache.mu.RUnlock()
	if n != 1 {
		t.Fatalf("after one lookup cache holds %d sites, want 1", n)
	}
}

func TestLazyWorldMatchesEager(t *testing.T) {
	eager, lazy := lazyPair(t)

	es, ls := eager.Sites(), lazy.Sites()
	if len(es) != len(ls) {
		t.Fatalf("site counts: eager=%d lazy=%d", len(es), len(ls))
	}
	for i := range es {
		if !reflect.DeepEqual(es[i], ls[i]) {
			t.Fatalf("site %d (%s) differs between eager and lazy:\neager: %+v\nlazy:  %+v",
				i, es[i].Domain, es[i], ls[i])
		}
	}
	if !reflect.DeepEqual(eager.Seeders(), lazy.Seeders()) {
		t.Fatal("seeder lists differ")
	}
	if !reflect.DeepEqual(eager.Truth().UIDParams(), lazy.Truth().UIDParams()) {
		t.Fatal("UID param sets differ")
	}
	if !reflect.DeepEqual(eager.Truth().DedicatedHosts(), lazy.Truth().DedicatedHosts()) {
		t.Fatal("dedicated host sets differ")
	}
	if !reflect.DeepEqual(eager.Organizations(), lazy.Organizations()) {
		t.Fatal("organization maps differ")
	}
	if !reflect.DeepEqual(eager.Categories(), lazy.Categories()) {
		t.Fatal("category maps differ")
	}
	if !reflect.DeepEqual(eager.Fingerprinters(), lazy.Fingerprinters()) {
		t.Fatal("fingerprinter lists differ")
	}
	if !reflect.DeepEqual(eager.EntityListDomains(), lazy.EntityListDomains()) {
		t.Fatal("entity lists differ")
	}
	if !reflect.DeepEqual(eager.DisconnectList(), lazy.DisconnectList()) {
		t.Fatal("disconnect lists differ")
	}
	if !reflect.DeepEqual(eager.EasyListRules(), lazy.EasyListRules()) {
		t.Fatal("easylist rules differ")
	}
}

// TestLazyWorldServesIdenticalPages fetches the same URLs through both
// networks. The lazy world has never seen these hosts, so the fetch
// exercises the resolver path end to end.
func TestLazyWorldServesIdenticalPages(t *testing.T) {
	eager, lazy := lazyPair(t)
	ec := &http.Client{Transport: eager.Network()}
	lc := &http.Client{Transport: lazy.Network()}

	fetch := func(c *http.Client, url string) string {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Transport.RoundTrip(req)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Status + "\n" + string(b)
	}

	for _, d := range eager.SeedersN(8) {
		url := "http://" + d + "/"
		if e, l := fetch(ec, url), fetch(lc, url); e != l {
			t.Fatalf("page bytes differ for %s:\neager: %.200q\nlazy:  %.200q", url, e, l)
		}
	}
}

func TestLazyForkSharesCache(t *testing.T) {
	cfg := SmallConfig()
	cfg.Lazy = true
	w := BuildWorld(cfg)
	f := w.Fork()
	if f.cache != w.cache {
		t.Fatal("fork should share the site cache")
	}
	if f.gen != w.gen {
		t.Fatal("fork should share the generation plan")
	}
	d := w.SeedersN(1)[0]
	if w.Site(d) != f.Site(d) {
		t.Fatal("forked world returned a different *Site for the same domain")
	}
}
