package web

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/stats"
)

// TrackerKind classifies a tracker organisation.
type TrackerKind int

const (
	// AdNetwork serves display ads in iframes and routes clicks through
	// its redirectors (the DoubleClick-alikes; dedicated smugglers).
	AdNetwork TrackerKind = iota
	// AffiliateNetwork decorates text links on publisher pages and
	// routes them through its click hosts (the AWIN-alikes).
	AffiliateNetwork
	// BounceTracker redirects without transferring UIDs (Koop et al.'s
	// subject).
	BounceTracker
	// Analytics receives beacons only — the Figure 6 third parties that
	// get UIDs leaked to them.
	Analytics
	// OrgSync is a pseudo-tracker: a multi-site organisation syncing its
	// own UID across its domains (the Sports-Reference pattern).
	OrgSync
)

// String names the kind.
func (k TrackerKind) String() string {
	switch k {
	case AdNetwork:
		return "ad-network"
	case AffiliateNetwork:
		return "affiliate-network"
	case BounceTracker:
		return "bounce-tracker"
	case Analytics:
		return "analytics"
	case OrgSync:
		return "org-sync"
	default:
		return "unknown"
	}
}

// Tracker is one tracker organisation and its infrastructure.
type Tracker struct {
	Name string
	Org  string
	Kind TrackerKind
	// Domain is the primary registered domain.
	Domain string
	// OwnedDomains lists every registered domain the organisation owns
	// (Domain first).
	OwnedDomains []string
	// ScriptHost serves tracker scripts and collect endpoints.
	ScriptHost string
	// ServeHost serves iframe ad slots (ad networks).
	ServeHost string
	// ClickHosts are the redirector FQDNs (dedicated smugglers for
	// smuggling trackers).
	ClickHosts []string
	// Param is the UID query-parameter name this tracker smuggles under.
	Param string
	// MidParam is the parameter name used when a redirector injects its
	// own UID mid-chain.
	MidParam string
	// CookieName is the first-party cookie the tracker's script uses.
	CookieName string
	// TTLDays is the UID cookie lifetime.
	TTLDays int
	// Weight is relative market share.
	Weight float64
	// Campaigns are the ad network's campaigns.
	Campaigns []*Campaign
	// DestRetailers are the retailers an affiliate network's links point
	// to (these destinations carry its collector script).
	DestRetailers []string
	// Smuggles marks trackers whose navigation URLs carry UIDs. Ad
	// networks with Smuggles=false serve untracked ads: their redirects
	// are bounce tracking, not UID smuggling.
	Smuggles bool
	// UIDFormat selects the UID value shape: "" for opaque hex, "ga" for
	// Google-Analytics-style structured IDs ("GA1.2.<random>.<epoch>").
	// Structured IDs share most of their characters across users, which
	// is exactly what makes prior work's Ratcliff/Obershelp fuzzy
	// matching discard them as "the same" (§8.1).
	UIDFormat string
	// SafariOnly trackers sniff the User-Agent and smuggle only on
	// Safari (§3.4's hypothesis about partitioned-storage evasion).
	SafariOnly bool
	// RefererSmuggler trackers decorate the Referer header instead of
	// the destination URL (§6 limitation).
	RefererSmuggler bool
}

// Campaign is one ad campaign: a destination retailer reached through a
// redirect chain.
type Campaign struct {
	ID    string
	Owner *Tracker
	Dest  string   // retailer registered domain
	Chain []string // redirector FQDNs, possibly empty
	Ads   int      // number of creatives
	// Extra are the campaign's own benign parameters (topics, creative
	// names) that ride its click URLs — the natural-language token
	// classes the paper's manual review removes.
	Extra map[string]string
}

// Site is one content site.
type Site struct {
	Domain   string
	Rank     int // 1 = most popular
	Kind     SiteKind
	Category string
	Org      string
	// Fingerprinting marks sites that host browser-fingerprinting code
	// (membership in the Iqbal-style list of §3.5).
	Fingerprinting bool

	// Decorators are affiliate trackers whose scripts run on this site's
	// pages. fpDecorator marks which of them derive UIDs from the
	// machine fingerprint here.
	Decorators  []*Tracker
	fpDecorator map[string]bool
	// Analytics are beacon third parties on this site.
	Analytics []*Tracker
	// AdNetworks provide this site's iframe slots.
	AdNetworks []*Tracker
	// Partners are other sites this one links to.
	Partners []string
	// Siblings are same-organisation sites (org-sync link targets).
	Siblings []string
	// SyncTracker is the organisation's own cross-domain syncer, if any.
	SyncTracker *Tracker
	// ShortenerHost is the site's own outbound redirector (t.co
	// pattern), empty if none.
	ShortenerHost string
	// SSOHost is the organisation's sign-in redirector, empty if none.
	SSOHost string
	// HasAccount marks sites with a token-gated /account page.
	HasAccount bool
	// BreakageClass is how /account degrades without its token:
	// 0 = no change, 1 = minor layout shift, 2 = missing autofill,
	// 3 = redirect to homepage (§6's breakage experiment).
	BreakageClass int

	// AdSlots is the number of iframe slots per page.
	AdSlots int
	// ExtLinks is the number of static external links per page.
	ExtLinks int
	// Collectors are the trackers whose destination-side scripts run on
	// this site, harvesting their own smuggled parameters into
	// first-party cookies with the tracker's own cookie lifetime.
	Collectors []*Tracker
}

// World is a built synthetic web.
type World struct {
	cfg   Config
	net   *netsim.Network
	truth *Truth
	psl   *publicsuffix.List
	split *stats.Splitter

	sites        []*Site
	siteByDomain map[string]*Site
	trackers     []*Tracker
	adNetworks   []*Tracker
	affiliates   []*Tracker
	bounces      []*Tracker
	analytics    []*Tracker

	orgOf      map[string]string // registered domain → organisation (full truth)
	categories map[string]string // registered domain → category

	// allCampaigns is the cross-network syndication pool rotated ads are
	// drawn from; campaignsByDest indexes it by destination for
	// same-destination rotation.
	allCampaigns    []*Campaign
	campaignsByDest map[string][]*Campaign

	visitMu sync.Mutex
	visits  map[string]int
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Network returns the virtual network serving this world.
func (w *World) Network() *netsim.Network { return w.net }

// Truth returns the ground-truth registry.
func (w *World) Truth() *Truth { return w.truth }

// Sites returns all content sites.
func (w *World) Sites() []*Site { return w.sites }

// Trackers returns all tracker organisations.
func (w *World) Trackers() []*Tracker { return w.trackers }

// Site returns the site owning the registered domain of host, or nil.
func (w *World) Site(host string) *Site {
	return w.siteByDomain[w.regDomain(host)]
}

// Seeders returns the seeder domain list (most popular first) — the
// world's Tranco equivalent.
func (w *World) Seeders() []string {
	out := make([]string, len(w.sites))
	for i, s := range w.sites {
		out[i] = s.Domain
	}
	sort.Slice(out, func(i, j int) bool {
		return w.siteByDomain[out[i]].Rank < w.siteByDomain[out[j]].Rank
	})
	return out
}

// Organizations returns the complete domain → organisation map.
func (w *World) Organizations() map[string]string {
	out := make(map[string]string, len(w.orgOf))
	for d, o := range w.orgOf {
		out[d] = o
	}
	return out
}

// Categories returns the complete domain → category map.
func (w *World) Categories() map[string]string {
	out := make(map[string]string, len(w.categories))
	for d, c := range w.categories {
		out[d] = c
	}
	return out
}

// Fingerprinters returns the domains of sites hosting fingerprinting code.
func (w *World) Fingerprinters() []string {
	var out []string
	for _, s := range w.sites {
		if s.Fingerprinting {
			out = append(out, s.Domain)
		}
	}
	sort.Strings(out)
	return out
}

func (w *World) regDomain(host string) string {
	if rd := w.psl.RegisteredDomain(host); rd != "" {
		return rd
	}
	return host
}

// visit increments and returns a deterministic per-key counter. Keys embed
// the client identity, so each crawler's sequence is reproducible
// regardless of goroutine scheduling.
func (w *World) visit(key string) int {
	w.visitMu.Lock()
	defer w.visitMu.Unlock()
	w.visits[key]++
	return w.visits[key]
}

// BuildWorld constructs the synthetic web and registers every handler on a
// fresh network.
func BuildWorld(cfg Config) *World {
	if cfg.NumSites <= 0 {
		cfg = DefaultConfig()
	}
	w := &World{
		cfg:          cfg,
		net:          netsim.New(),
		truth:        newTruth(),
		psl:          publicsuffix.Default(),
		split:        stats.NewSplitter(cfg.Seed),
		siteByDomain: make(map[string]*Site),
		orgOf:        make(map[string]string),
		categories:   make(map[string]string),
		visits:       make(map[string]int),
	}
	rng := w.split.RNG("world/build")
	forge := newNameForge(w.split.RNG("world/names"))

	w.buildTrackers(rng, forge)
	w.buildSites(rng, forge)
	w.buildCampaigns(rng)
	w.assignTrackersToSites(rng)
	w.registerParams()
	w.registerHandlers()
	w.installFaults()
	return w
}

// Fork returns a run-private view of the world. The expensive seeded
// generation — sites, trackers, campaigns, the ground-truth registry,
// organisation and category maps — is shared with the receiver, all of
// it immutable (or internally locked) after BuildWorld returns. The
// per-run mutable substrate is rebuilt fresh: a new virtual network
// with its own clock and fault injector, and zeroed visit counters.
//
// A template world that is never crawled directly can therefore serve
// any number of concurrent runs, each fork producing results
// byte-identical to a world built from scratch with the same Config
// (the serve layer's world cache relies on exactly this). Forking pays
// only handler registration and fault installation, not generation.
// Fork is safe to call concurrently on the same receiver.
func (w *World) Fork() *World {
	nw := &World{
		cfg:             w.cfg,
		net:             netsim.New(),
		truth:           w.truth,
		psl:             w.psl,
		split:           w.split,
		sites:           w.sites,
		siteByDomain:    w.siteByDomain,
		trackers:        w.trackers,
		adNetworks:      w.adNetworks,
		affiliates:      w.affiliates,
		bounces:         w.bounces,
		analytics:       w.analytics,
		orgOf:           w.orgOf,
		categories:      w.categories,
		allCampaigns:    w.allCampaigns,
		campaignsByDest: w.campaignsByDest,
		visits:          make(map[string]int),
	}
	nw.registerHandlers()
	nw.installFaults()
	return nw
}

// buildTrackers creates the tracker organisations (sites come later, so
// campaign destinations and retailer partnerships are wired in
// buildCampaigns).
func (w *World) buildTrackers(rng *stats.RNG, forge *nameForge) {
	newTracker := func(kind TrackerKind, weight float64) *Tracker {
		domain := forge.trackerDomain()
		t := &Tracker{
			Name:         domain[:len(domain)-len(tldOf(domain))],
			Org:          forge.orgName(),
			Kind:         kind,
			Domain:       domain,
			OwnedDomains: []string{domain},
			ScriptHost:   "cdn." + domain,
			Weight:       weight,
		}
		w.orgOf[domain] = t.Org
		return t
	}

	smuggling := int(w.cfg.AdSmugglesFraction*float64(w.cfg.NumAdNetworks) + 0.5)
	for i := 0; i < w.cfg.NumAdNetworks; i++ {
		t := newTracker(AdNetwork, 1/float64(i+1))
		t.ServeHost = "serve." + t.Domain
		t.ClickHosts = []string{"adclick.g." + t.Domain}
		// The biggest networks smuggle (the DoubleClick-alikes dominate
		// Table 3); the tail serves untracked ads. A couple of
		// mid-market smuggling networks only do so on Safari, where
		// partitioned storage makes smuggling worthwhile (§3.4).
		t.Smuggles = i < smuggling
		t.SafariOnly = t.Smuggles && i >= 2 && i < 2+w.cfg.SafariOnlyAdNetworks
		// The two biggest networks own a second domain whose redirector
		// always follows the first (the awin1.com → zenaps.com pattern).
		if i < 2 {
			d2 := forge.trackerDomain()
			t.OwnedDomains = append(t.OwnedDomains, d2)
			t.ClickHosts = append(t.ClickHosts, "r."+d2)
			w.orgOf[d2] = t.Org
		}
		t.Param = forge.paramName()
		t.MidParam = forge.paramName()
		t.CookieName = "_" + t.Name + "_id"
		t.TTLDays = shortTTLFor(i, w.cfg.NumAdNetworks, w.cfg.ShortUIDTTLFraction)
		w.adNetworks = append(w.adNetworks, t)
		w.trackers = append(w.trackers, t)
	}

	for i := 0; i < w.cfg.NumDecorators; i++ {
		t := newTracker(AffiliateNetwork, 1/float64(i+1))
		t.Smuggles = true
		t.ClickHosts = []string{"track." + t.Domain}
		if rng.Bool(0.3) {
			t.ClickHosts = append(t.ClickHosts, "go."+t.Domain)
		}
		t.Param = forge.paramName()
		t.MidParam = forge.paramName()
		t.CookieName = "_" + t.Name
		t.TTLDays = shortTTLFor(i, w.cfg.NumDecorators, w.cfg.ShortUIDTTLFraction)
		if i%3 == 1 {
			t.UIDFormat = "ga"
		}
		// A few trackers smuggle via the Referer header (§6 limitation);
		// keep them off the biggest networks so the main results aren't
		// dominated by invisible transfers.
		if mid := w.cfg.NumDecorators / 2; i >= mid && i < mid+w.cfg.RefererDecorators {
			t.RefererSmuggler = true
		}
		w.affiliates = append(w.affiliates, t)
		w.trackers = append(w.trackers, t)
	}

	for i := 0; i < w.cfg.NumBounceTrackers; i++ {
		t := newTracker(BounceTracker, 1/float64(i+1))
		t.ClickHosts = []string{"b." + t.Domain}
		t.CookieName = "_" + t.Name + "_b"
		w.bounces = append(w.bounces, t)
		w.trackers = append(w.trackers, t)
	}

	for i := 0; i < w.cfg.NumAnalytics; i++ {
		t := newTracker(Analytics, 1/float64(i+1))
		t.ScriptHost = "g." + t.Domain
		t.CookieName = "_" + t.Name + "_a"
		w.analytics = append(w.analytics, t)
		w.trackers = append(w.trackers, t)
	}
}

// shortTTLs are the sub-90-day cookie lifetimes some trackers use — the
// UIDs prior work's lifetime heuristics would have thrown away (§3.7.1:
// 16% of UIDs lived under 90 days, 9% under a month).
var shortTTLs = []int{21, 25, 45, 60, 75}

// shortTTLFor assigns lifetimes: a ShortUIDTTLFraction-sized window of
// mid-market trackers (starting below the very biggest, which keep
// year-long cookies) uses short-lived UID cookies.
func shortTTLFor(i, n int, frac float64) int {
	lo := 6
	if lo >= n {
		lo = n / 2
	}
	hi := lo + int(frac*float64(n)+0.5)
	if i >= lo && i < hi {
		return shortTTLs[(i-lo)%len(shortTTLs)]
	}
	return 390
}

func tldOf(domain string) string {
	for i := len(domain) - 1; i >= 0; i-- {
		if domain[i] == '.' {
			return domain[i:]
		}
	}
	return ""
}

// categoryWeights defines the IAB-style taxonomy per site kind; the
// weights shape Figure 5's category distribution (news and sports heavy on
// the originator side, shopping and technology on the destination side).
var categoryWeights = map[SiteKind][]stats.Entry{
	Publisher: {
		{Key: "News/Weather/Information", Count: 22},
		{Key: "Sports", Count: 12},
		{Key: "Technology & Computing", Count: 12},
		{Key: "Arts & Entertainment", Count: 9},
		{Key: "Hobbies & Interests", Count: 8},
		{Key: "Health & Fitness", Count: 6},
		{Key: "Style & Fashion", Count: 5},
		{Key: "Automotive", Count: 4},
		{Key: "Science", Count: 3},
		{Key: "Travel", Count: 3},
		{Key: "Food & Drink", Count: 2},
		{Key: "Streaming Media", Count: 2},
		{Key: "Adult Content", Count: 2},
		{Key: "Religion & Spirituality", Count: 1},
	},
	Retailer: {
		{Key: "Shopping", Count: 18},
		{Key: "Technology & Computing", Count: 12},
		{Key: "Business", Count: 10},
		{Key: "Style & Fashion", Count: 7},
		{Key: "Home & Garden", Count: 6},
		{Key: "Personal Finance", Count: 5},
		{Key: "Education", Count: 4},
		{Key: "Automotive", Count: 3},
		{Key: "Food & Drink", Count: 2},
		{Key: "Dating/Personals", Count: 1},
	},
	Portal: {
		{Key: "Business", Count: 10},
		{Key: "Education", Count: 8},
		{Key: "Social Networking", Count: 6},
		{Key: "Law Government & Politics", Count: 5},
		{Key: "Careers", Count: 3},
		{Key: "Family & Parenting", Count: 2},
		{Key: "Under Construction", Count: 1},
		{Key: "Content Server", Count: 1},
	},
}

func pickCategory(rng *stats.RNG, kind SiteKind) string {
	entries := categoryWeights[kind]
	weights := make([]float64, len(entries))
	for i, e := range entries {
		weights[i] = float64(e.Count)
	}
	return entries[rng.WeightedIndex(weights)].Key
}

// buildSites creates content sites, multi-site organisations and the
// partner link graph.
func (w *World) buildSites(rng *stats.RNG, forge *nameForge) {
	n := w.cfg.NumSites
	kinds := make([]SiteKind, n)
	for i := range kinds {
		r := rng.Float64()
		switch {
		case r < w.cfg.PublisherFraction:
			kinds[i] = Publisher
		case r < w.cfg.PublisherFraction+w.cfg.RetailerFraction:
			kinds[i] = Retailer
		default:
			kinds[i] = Portal
		}
	}

	for i := 0; i < n; i++ {
		s := &Site{
			Domain:   forge.siteDomain(""),
			Rank:     i + 1,
			Kind:     kinds[i],
			Category: pickCategory(rng, kinds[i]),
		}
		s.Org = orgFromDomain(s.Domain)
		w.addSite(s)
	}

	// Multi-site sync organisations: mid-popularity publishers owning
	// several heavily interlinked domains (Sports Reference pattern).
	// They start below the very top of the ranking — reference networks
	// are popular but not Facebook-popular.
	idx := 25
	if idx >= len(w.sites) {
		idx = 0
	}
	for o := 0; o < w.cfg.NumSyncOrgs && idx < len(w.sites); o++ {
		size := 3 + rng.Intn(3)
		org := forge.orgName()
		syncParam := forge.paramName()
		var members []*Site
		for k := 0; k < size && idx < len(w.sites); k++ {
			s := w.sites[idx]
			idx++
			s.Org = org
			w.orgOf[s.Domain] = org
			members = append(members, s)
		}
		if len(members) < 2 {
			continue
		}
		primary := members[0]
		sync := &Tracker{
			Name:         "sync-" + primary.Domain,
			Org:          org,
			Kind:         OrgSync,
			Domain:       primary.Domain,
			OwnedDomains: []string{primary.Domain},
			Param:        syncParam,
			CookieName:   "_org_uid",
			TTLDays:      720,
		}
		w.trackers = append(w.trackers, sync)
		for _, s := range members {
			s.SyncTracker = sync
			for _, m := range members {
				if m != s {
					s.Siblings = append(s.Siblings, m.Domain)
				}
			}
		}
		// Sync orgs with an SSO host: the multi-purpose login
		// redirector.
		if o%2 == 0 {
			sso := "signin." + primary.Domain
			for _, s := range members {
				s.SSOHost = sso
				s.HasAccount = true
				s.BreakageClass = breakageClassFor(rng)
			}
		}
	}

	// A couple of popular publishers run their own outbound shortener
	// (the t.co / l.facebook.com pattern).
	shorteners := 0
	for _, s := range w.sites {
		if s.Kind == Publisher && s.Rank <= 20 && rng.Bool(0.35) {
			s.ShortenerHost = "l." + s.Domain
			shorteners++
			if shorteners >= 4 {
				break
			}
		}
	}

	// Fingerprinting sites.
	for _, s := range w.sites {
		if rng.Bool(w.cfg.FingerprinterSiteFraction) {
			s.Fingerprinting = true
		}
	}

	// Partner graph: sample partners with popularity bias.
	zipf := stats.NewZipf(len(w.sites), 0.35)
	for _, s := range w.sites {
		want := 4 + rng.Intn(5)
		seen := map[string]bool{s.Domain: true}
		for _, sib := range s.Siblings {
			if !seen[sib] {
				s.Partners = append(s.Partners, sib)
				seen[sib] = true
			}
		}
		for tries := 0; len(s.Partners) < want && tries < 50; tries++ {
			p := w.sites[zipf.Rank(rng)-1]
			if seen[p.Domain] {
				continue
			}
			seen[p.Domain] = true
			s.Partners = append(s.Partners, p.Domain)
		}
	}
}

// breakageClassFor draws the /account degradation class with the 7/1/1/1
// weighting that reproduces the paper's 10-page experiment.
func breakageClassFor(rng *stats.RNG) int {
	return rng.WeightedIndex([]float64{7, 1, 1, 1})
}

// campaignExtras coins a campaign's benign parameters: rare names (each
// campaign its own), natural-language values. When ads rotate, these land
// on a single crawler and reach the pipeline's manual-review stage, where
// the lexicon removes them — the paper's §3.7.2 false-positive classes.
func campaignExtras(rng *stats.RNG, truth *Truth) map[string]string {
	out := map[string]string{}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		name := concatWords(rng, 2)
		var value string
		switch rng.Intn(4) {
		case 0:
			value = slugFrom(rng, 3+rng.Intn(2))
		case 1:
			value = concatWords(rng, 2)
		case 2:
			value = fmt.Sprintf("%d.%04d,-%d.%04d", rng.Intn(80), rng.Intn(9999), rng.Intn(170), rng.Intn(9999))
		default:
			value = slugFrom(rng, 2) + "_topic"
		}
		truth.registerParam(name, ParamBenign)
		out[name] = value
	}
	return out
}

func (w *World) addSite(s *Site) {
	w.sites = append(w.sites, s)
	w.siteByDomain[s.Domain] = s
	w.orgOf[s.Domain] = s.Org
	w.categories[s.Domain] = s.Category
}

// orgFromDomain derives a single-site organisation name from its domain.
func orgFromDomain(domain string) string {
	name := domain
	if t := tldOf(domain); t != "" {
		name = domain[:len(domain)-len(t)]
	}
	return titleCase(name)
}

// buildCampaigns wires ad networks and affiliates to retailer
// destinations and builds redirect chains.
func (w *World) buildCampaigns(rng *stats.RNG) {
	w.campaignsByDest = map[string][]*Campaign{}
	var retailers []*Site
	for _, s := range w.sites {
		if s.Kind == Retailer {
			retailers = append(retailers, s)
		}
	}
	if len(retailers) == 0 {
		return
	}
	// Display campaigns concentrate on the bigger advertisers, so several
	// campaigns share each destination and same-destination rotation has
	// a pool to draw from.
	adRetailers := retailers
	if len(adRetailers) > 40 {
		adRetailers = adRetailers[:40]
	}

	// Chain hosts available for multi-tracker chains.
	var allClickHosts []string
	for _, t := range w.adNetworks {
		allClickHosts = append(allClickHosts, t.ClickHosts...)
	}
	for _, t := range w.affiliates {
		allClickHosts = append(allClickHosts, t.ClickHosts...)
	}

	for _, t := range w.adNetworks {
		n := 4 + rng.Intn(8)
		for c := 0; c < n; c++ {
			camp := &Campaign{
				ID:    fmt.Sprintf("%s-c%d", t.Name, c),
				Owner: t,
				Dest:  stats.Pick(rng, adRetailers).Domain,
				Ads:   2 + rng.Intn(4),
				Extra: campaignExtras(rng, w.truth),
			}
			// Chain: usually the network's own click host(s), sometimes
			// extended through partners, occasionally empty (direct ad
			// click → retailer).
			if !rng.Bool(0.15) {
				camp.Chain = append(camp.Chain, t.ClickHosts...)
				extra := rng.Geometric(1-w.cfg.ChainExtraP, w.cfg.MaxChain-len(camp.Chain))
				for e := 0; e < extra; e++ {
					camp.Chain = append(camp.Chain, stats.Pick(rng, allClickHosts))
				}
			}
			t.Campaigns = append(t.Campaigns, camp)
			w.allCampaigns = append(w.allCampaigns, camp)
			w.campaignsByDest[camp.Dest] = append(w.campaignsByDest[camp.Dest], camp)
		}
	}

	for _, t := range w.affiliates {
		n := 3 + rng.Intn(6)
		seen := map[string]bool{}
		for c := 0; c < n; c++ {
			d := stats.Pick(rng, retailers).Domain
			if !seen[d] {
				seen[d] = true
				t.DestRetailers = append(t.DestRetailers, d)
			}
		}
	}

	// Destination-side collectors: every tracker that targets a retailer
	// puts its own collector script there, storing its smuggled
	// parameters with its own cookie lifetime.
	collect := map[string]map[string]*Tracker{}
	addCollector := func(dest string, t *Tracker) {
		if collect[dest] == nil {
			collect[dest] = map[string]*Tracker{}
		}
		collect[dest][t.Domain] = t
	}
	for _, t := range w.adNetworks {
		for _, c := range t.Campaigns {
			addCollector(c.Dest, t)
		}
	}
	for _, t := range w.affiliates {
		for _, d := range t.DestRetailers {
			addCollector(d, t)
		}
	}
	for dest, ts := range collect {
		s := w.siteByDomain[dest]
		var domains []string
		for d := range ts {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		for _, d := range domains {
			s.Collectors = append(s.Collectors, ts[d])
		}
	}
}

// assignTrackersToSites places decorator scripts, analytics beacons and ad
// slots on sites.
func (w *World) assignTrackersToSites(rng *stats.RNG) {
	pickWeighted := func(ts []*Tracker) *Tracker {
		weights := make([]float64, len(ts))
		for i, t := range ts {
			weights[i] = t.Weight
		}
		return ts[rng.WeightedIndex(weights)]
	}
	for _, s := range w.sites {
		s.fpDecorator = map[string]bool{}
		// Analytics on almost everything.
		na := 1 + rng.Intn(2)
		seen := map[string]bool{}
		for i := 0; i < na && len(w.analytics) > 0; i++ {
			t := pickWeighted(w.analytics)
			if !seen[t.Domain] {
				seen[t.Domain] = true
				s.Analytics = append(s.Analytics, t)
			}
		}
		if s.Kind != Publisher {
			continue
		}
		// Publishers: decorators and ad slots.
		nd := 1 + rng.Intn(2)
		seen = map[string]bool{}
		for i := 0; i < nd && len(w.affiliates) > 0; i++ {
			t := pickWeighted(w.affiliates)
			if seen[t.Domain] {
				continue
			}
			seen[t.Domain] = true
			s.Decorators = append(s.Decorators, t)
			if s.Fingerprinting && rng.Bool(0.8) {
				s.fpDecorator[t.Domain] = true
			}
		}
		nn := 1 + rng.Intn(2)
		seen = map[string]bool{}
		for i := 0; i < nn && len(w.adNetworks) > 0; i++ {
			t := pickWeighted(w.adNetworks)
			if !seen[t.Domain] {
				seen[t.Domain] = true
				s.AdNetworks = append(s.AdNetworks, t)
			}
		}
		s.AdSlots = rng.Geometric(1/(1+w.cfg.AdSlotMean), 3)
		s.ExtLinks = rng.Geometric(1/(1+w.cfg.ExternalLinkMean), 6)
	}
	// Retailers and portals still carry a couple of external links so
	// walks continue from them.
	for _, s := range w.sites {
		if s.Kind != Publisher {
			s.ExtLinks = rng.Intn(3)
		}
	}
}

// registerParams records every parameter name's ground truth.
func (w *World) registerParams() {
	for _, t := range w.trackers {
		if t.Param != "" {
			w.truth.registerParam(t.Param, ParamUID)
		}
		if t.MidParam != "" {
			w.truth.registerParam(t.MidParam, ParamUID)
		}
	}
	w.truth.registerParam("atok", ParamUID) // SSO auth token: a true UID
	w.truth.registerParam("sid", ParamSession)
	w.truth.registerParam("ts", ParamTimestamp)
	w.truth.registerParam("d", ParamDest)
	w.truth.registerParam("return", ParamDest)
	w.truth.registerParam("url", ParamDest)
	for _, p := range []string{"ref", "utm_campaign", "topic", "lang", "geo", "share", "cat", "camp", "cr"} {
		w.truth.registerParam(p, ParamBenign)
	}
	for _, p := range []string{"aid", "sl", "pub", "via", "ad", "cb", "p"} {
		w.truth.registerParam(p, ParamRouting)
	}
	// Dedicated-smuggler ground truth: ad and affiliate click hosts are
	// pure redirector infrastructure — they have no purpose in a
	// navigation path besides redirecting and carrying whatever UID
	// parameters arrive. Even a non-smuggling network's click host can
	// appear inside another network's smuggling chain and forward its
	// UIDs, which is exactly the behaviour the paper's "dedicated
	// smuggler" label describes.
	for _, t := range w.adNetworks {
		for _, h := range t.ClickHosts {
			w.truth.markDedicated(h)
		}
	}
	for _, t := range w.affiliates {
		for _, h := range t.ClickHosts {
			w.truth.markDedicated(h)
		}
	}
	for _, s := range w.sites {
		if s.SSOHost != "" {
			w.truth.markSmuggler(s.SSOHost)
		}
		if s.ShortenerHost != "" && s.SyncTracker != nil {
			w.truth.markSmuggler(s.ShortenerHost)
		}
	}
}

// installFaults configures connection failures for content sites,
// exempting tracker infrastructure so redirect chains don't break mid-hop
// (the paper's connect failures happen at step 1 of a walk, visiting the
// site itself) and the most popular sites — hyper-popular domains are
// essentially never down, and without this exemption a single faulted hub
// would fail a disproportionate share of crawl steps.
func (w *World) installFaults() {
	f := netsim.NewFaultInjectorConfig(w.cfg.Seed, netsim.FaultConfig{
		ConnectFailRate:   w.cfg.ConnectFailRate,
		TransientRate:     w.cfg.TransientFailRate,
		TransientMaxFails: w.cfg.TransientMaxFails,
		DegradeRate:       w.cfg.HTTPDegradeRate,
		SpikeRate:         w.cfg.LatencySpikeRate,
		SpikeLatency:      time.Duration(w.cfg.SpikeLatencyMS) * time.Millisecond,
	})
	for _, t := range w.trackers {
		f.Exempt(t.OwnedDomains...)
	}
	for _, s := range w.sites {
		if s.Rank <= 15 {
			f.Exempt(s.Domain)
		}
	}
	// SSO and shortener hosts share the registered domain of their site,
	// so they fail with it — acceptable: they ARE the site.
	w.net.SetFaults(f)
}
