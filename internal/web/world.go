package web

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/stats"
)

// TrackerKind classifies a tracker organisation.
type TrackerKind int

const (
	// AdNetwork serves display ads in iframes and routes clicks through
	// its redirectors (the DoubleClick-alikes; dedicated smugglers).
	AdNetwork TrackerKind = iota
	// AffiliateNetwork decorates text links on publisher pages and
	// routes them through its click hosts (the AWIN-alikes).
	AffiliateNetwork
	// BounceTracker redirects without transferring UIDs (Koop et al.'s
	// subject).
	BounceTracker
	// Analytics receives beacons only — the Figure 6 third parties that
	// get UIDs leaked to them.
	Analytics
	// OrgSync is a pseudo-tracker: a multi-site organisation syncing its
	// own UID across its domains (the Sports-Reference pattern).
	OrgSync
)

// String names the kind.
func (k TrackerKind) String() string {
	switch k {
	case AdNetwork:
		return "ad-network"
	case AffiliateNetwork:
		return "affiliate-network"
	case BounceTracker:
		return "bounce-tracker"
	case Analytics:
		return "analytics"
	case OrgSync:
		return "org-sync"
	default:
		return "unknown"
	}
}

// Tracker is one tracker organisation and its infrastructure.
type Tracker struct {
	Name string
	Org  string
	Kind TrackerKind
	// Domain is the primary registered domain.
	Domain string
	// OwnedDomains lists every registered domain the organisation owns
	// (Domain first).
	OwnedDomains []string
	// ScriptHost serves tracker scripts and collect endpoints.
	ScriptHost string
	// ServeHost serves iframe ad slots (ad networks).
	ServeHost string
	// ClickHosts are the redirector FQDNs (dedicated smugglers for
	// smuggling trackers).
	ClickHosts []string
	// Param is the UID query-parameter name this tracker smuggles under.
	Param string
	// MidParam is the parameter name used when a redirector injects its
	// own UID mid-chain.
	MidParam string
	// CookieName is the first-party cookie the tracker's script uses.
	CookieName string
	// TTLDays is the UID cookie lifetime.
	TTLDays int
	// Weight is relative market share.
	Weight float64
	// Campaigns are the ad network's campaigns.
	Campaigns []*Campaign
	// DestRetailers are the retailers an affiliate network's links point
	// to (these destinations carry its collector script).
	DestRetailers []string
	// Smuggles marks trackers whose navigation URLs carry UIDs. Ad
	// networks with Smuggles=false serve untracked ads: their redirects
	// are bounce tracking, not UID smuggling.
	Smuggles bool
	// UIDFormat selects the UID value shape: "" for opaque hex, "ga" for
	// Google-Analytics-style structured IDs ("GA1.2.<random>.<epoch>").
	// Structured IDs share most of their characters across users, which
	// is exactly what makes prior work's Ratcliff/Obershelp fuzzy
	// matching discard them as "the same" (§8.1).
	UIDFormat string
	// SafariOnly trackers sniff the User-Agent and smuggle only on
	// Safari (§3.4's hypothesis about partitioned-storage evasion).
	SafariOnly bool
	// RefererSmuggler trackers decorate the Referer header instead of
	// the destination URL (§6 limitation).
	RefererSmuggler bool
}

// Campaign is one ad campaign: a destination retailer reached through a
// redirect chain.
type Campaign struct {
	ID    string
	Owner *Tracker
	Dest  string   // retailer registered domain
	Chain []string // redirector FQDNs, possibly empty
	Ads   int      // number of creatives
	// Extra are the campaign's own benign parameters (topics, creative
	// names) that ride its click URLs — the natural-language token
	// classes the paper's manual review removes.
	Extra map[string]string
}

// Site is one content site.
type Site struct {
	Domain   string
	Rank     int // 1 = most popular
	Kind     SiteKind
	Category string
	Org      string
	// Fingerprinting marks sites that host browser-fingerprinting code
	// (membership in the Iqbal-style list of §3.5).
	Fingerprinting bool

	// Decorators are affiliate trackers whose scripts run on this site's
	// pages. fpDecorator marks which of them derive UIDs from the
	// machine fingerprint here.
	Decorators  []*Tracker
	fpDecorator map[string]bool
	// Analytics are beacon third parties on this site.
	Analytics []*Tracker
	// AdNetworks provide this site's iframe slots.
	AdNetworks []*Tracker
	// Partners are other sites this one links to.
	Partners []string
	// Siblings are same-organisation sites (org-sync link targets).
	Siblings []string
	// SyncTracker is the organisation's own cross-domain syncer, if any.
	SyncTracker *Tracker
	// ShortenerHost is the site's own outbound redirector (t.co
	// pattern), empty if none.
	ShortenerHost string
	// SSOHost is the organisation's sign-in redirector, empty if none.
	SSOHost string
	// HasAccount marks sites with a token-gated /account page.
	HasAccount bool
	// BreakageClass is how /account degrades without its token:
	// 0 = no change, 1 = minor layout shift, 2 = missing autofill,
	// 3 = redirect to homepage (§6's breakage experiment).
	BreakageClass int

	// AdSlots is the number of iframe slots per page.
	AdSlots int
	// ExtLinks is the number of static external links per page.
	ExtLinks int
	// Collectors are the trackers whose destination-side scripts run on
	// this site, harvesting their own smuggled parameters into
	// first-party cookies with the tracker's own cookie lifetime.
	Collectors []*Tracker
}

// World is a built synthetic web: an immutable generation plan plus the
// per-run mutable substrate (network, visit counters). In eager mode
// (the default) every site is materialised and registered up front; with
// Config.Lazy sites derive and register on first visit through the
// network's resolver, so an unvisited world holds only its plan.
type World struct {
	cfg   Config
	net   *netsim.Network
	truth *Truth
	psl   *publicsuffix.List
	split *stats.Splitter
	gen   *worldGen
	cache *siteCache

	trackers   []*Tracker
	adNetworks []*Tracker
	affiliates []*Tracker
	bounces    []*Tracker
	analytics  []*Tracker

	// allCampaigns is the cross-network syndication pool rotated ads are
	// drawn from; campaignsByDest indexes it by destination for
	// same-destination rotation.
	allCampaigns    []*Campaign
	campaignsByDest map[string][]*Campaign

	visitMu sync.Mutex
	visits  map[string]int
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Network returns the virtual network serving this world.
func (w *World) Network() *netsim.Network { return w.net }

// Truth returns the ground-truth registry.
func (w *World) Truth() *Truth { return w.truth }

// Sites returns all content sites in rank order. In lazy mode this
// materialises the whole world — evaluation-only; the crawl path never
// calls it.
func (w *World) Sites() []*Site {
	out := make([]*Site, w.cfg.NumSites)
	for i := range out {
		out[i] = w.cache.site(w.gen, i)
	}
	return out
}

// Trackers returns all tracker organisations.
func (w *World) Trackers() []*Tracker { return w.trackers }

// Site returns the site owning the registered domain of host, or nil.
// Site domains carry their index, so resolution decodes and validates
// instead of consulting a world-sized map.
func (w *World) Site(host string) *Site {
	i, ok := w.gen.siteIndexOf(w.regDomain(host))
	if !ok {
		return nil
	}
	return w.cache.site(w.gen, i)
}

// Seeders returns the seeder domain list (most popular first) — the
// world's Tranco equivalent. Site index order IS rank order.
func (w *World) Seeders() []string { return w.SeedersN(w.cfg.NumSites) }

// SeedersN returns the n most popular seeder domains. A crawl of k walks
// only ever consults the first min(k, NumSites) seeders, so callers at
// scale avoid materialising a million-entry list.
func (w *World) SeedersN(n int) []string {
	if n > w.cfg.NumSites {
		n = w.cfg.NumSites
	}
	if n < 0 {
		n = 0
	}
	out := make([]string, n)
	for i := range out {
		out[i] = w.gen.domainAt(i)
	}
	return out
}

// NumSeeders returns the size of the full seeder list.
func (w *World) NumSeeders() int { return w.cfg.NumSites }

// Organizations returns the complete domain → organisation map.
func (w *World) Organizations() map[string]string {
	out := make(map[string]string, w.cfg.NumSites+len(w.gen.trackerOrgOf))
	for d, o := range w.gen.trackerOrgOf {
		out[d] = o
	}
	for i := 0; i < w.cfg.NumSites; i++ {
		out[w.gen.domainAt(i)] = w.gen.orgAt(i)
	}
	return out
}

// Categories returns the complete domain → category map.
func (w *World) Categories() map[string]string {
	out := make(map[string]string, w.cfg.NumSites)
	for i := 0; i < w.cfg.NumSites; i++ {
		out[w.gen.domainAt(i)] = w.gen.categoryAt(i)
	}
	return out
}

// Fingerprinters returns the domains of sites hosting fingerprinting
// code, in domain order.
func (w *World) Fingerprinters() []string {
	var out []string
	for i := 0; i < w.cfg.NumSites; i++ {
		if w.gen.fingerprintingAt(i) {
			out = append(out, w.gen.domainAt(i))
		}
	}
	sort.Strings(out)
	return out
}

func (w *World) regDomain(host string) string {
	if rd := w.psl.RegisteredDomain(host); rd != "" {
		return rd
	}
	return host
}

// visit increments and returns a deterministic per-key counter. Keys embed
// the client identity, so each crawler's sequence is reproducible
// regardless of goroutine scheduling.
func (w *World) visit(key string) int {
	w.visitMu.Lock()
	defer w.visitMu.Unlock()
	w.visits[key]++
	return w.visits[key]
}

// BuildWorld constructs the synthetic web on a fresh network. It is now a
// thin wrapper over the demand-driven plan: eager mode materialises and
// registers every site immediately, lazy mode (Config.Lazy) installs a
// resolver and leaves sites to derive on first visit.
func BuildWorld(cfg Config) *World {
	if cfg.NumSites <= 0 {
		cfg = DefaultConfig()
	}
	gen := newWorldGen(cfg)
	return newWorldFrom(cfg, gen, newSiteCache())
}

// newWorldFrom assembles a world (or fork) around a shared plan and site
// cache, wiring the per-run substrate: network, handlers, faults,
// visit counters.
func newWorldFrom(cfg Config, gen *worldGen, cache *siteCache) *World {
	w := &World{
		cfg:             cfg,
		net:             netsim.New(),
		truth:           gen.truth,
		psl:             publicsuffix.Default(),
		split:           stats.NewSplitter(cfg.Seed),
		gen:             gen,
		cache:           cache,
		trackers:        gen.trackers,
		adNetworks:      gen.adNetworks,
		affiliates:      gen.affiliates,
		bounces:         gen.bounces,
		analytics:       gen.analytics,
		allCampaigns:    gen.allCampaigns,
		campaignsByDest: gen.campaignsByDest,
		visits:          make(map[string]int),
	}
	w.registerTrackerHandlers()
	if cfg.Lazy {
		w.net.SetResolver(w.resolveHost)
	} else {
		for i := 0; i < cfg.NumSites; i++ {
			w.registerSiteHandlers(cache.site(gen, i))
		}
	}
	w.installFaults()
	return w
}

// Fork returns a run-private view of the world. The expensive seeded
// generation — the plan, materialised sites, the ground-truth registry —
// is shared with the receiver, all of it immutable (or internally
// locked). The per-run mutable substrate is rebuilt fresh: a new virtual
// network with its own clock and fault injector, and zeroed visit
// counters. Lazily materialised sites accumulate in the shared cache, so
// concurrent forks of a lazy world pay each site's derivation once.
//
// A template world that is never crawled directly can therefore serve
// any number of concurrent runs, each fork producing results
// byte-identical to a world built from scratch with the same Config
// (the serve layer's world cache relies on exactly this). Fork is safe
// to call concurrently on the same receiver.
func (w *World) Fork() *World {
	return newWorldFrom(w.cfg, w.gen, w.cache)
}

// resolveHost is the lazy network resolver: on the first request to an
// unknown host, materialise the owning site and register its handlers.
// Only real site domains decode, so garbage hosts still fail with
// ErrUnknownHost exactly as in eager mode.
func (w *World) resolveHost(host string) {
	if s := w.Site(host); s != nil {
		w.registerSiteHandlers(s)
	}
}

// shortTTLs are the sub-90-day cookie lifetimes some trackers use — the
// UIDs prior work's lifetime heuristics would have thrown away (§3.7.1:
// 16% of UIDs lived under 90 days, 9% under a month).
var shortTTLs = []int{21, 25, 45, 60, 75}

// shortTTLFor assigns lifetimes: a ShortUIDTTLFraction-sized window of
// mid-market trackers (starting below the very biggest, which keep
// year-long cookies) uses short-lived UID cookies.
func shortTTLFor(i, n int, frac float64) int {
	lo := 6
	if lo >= n {
		lo = n / 2
	}
	hi := lo + int(frac*float64(n)+0.5)
	if i >= lo && i < hi {
		return shortTTLs[(i-lo)%len(shortTTLs)]
	}
	return 390
}

func tldOf(domain string) string {
	for i := len(domain) - 1; i >= 0; i-- {
		if domain[i] == '.' {
			return domain[i:]
		}
	}
	return ""
}

// categoryWeights defines the IAB-style taxonomy per site kind; the
// weights shape Figure 5's category distribution (news and sports heavy on
// the originator side, shopping and technology on the destination side).
var categoryWeights = map[SiteKind][]stats.Entry{
	Publisher: {
		{Key: "News/Weather/Information", Count: 22},
		{Key: "Sports", Count: 12},
		{Key: "Technology & Computing", Count: 12},
		{Key: "Arts & Entertainment", Count: 9},
		{Key: "Hobbies & Interests", Count: 8},
		{Key: "Health & Fitness", Count: 6},
		{Key: "Style & Fashion", Count: 5},
		{Key: "Automotive", Count: 4},
		{Key: "Science", Count: 3},
		{Key: "Travel", Count: 3},
		{Key: "Food & Drink", Count: 2},
		{Key: "Streaming Media", Count: 2},
		{Key: "Adult Content", Count: 2},
		{Key: "Religion & Spirituality", Count: 1},
	},
	Retailer: {
		{Key: "Shopping", Count: 18},
		{Key: "Technology & Computing", Count: 12},
		{Key: "Business", Count: 10},
		{Key: "Style & Fashion", Count: 7},
		{Key: "Home & Garden", Count: 6},
		{Key: "Personal Finance", Count: 5},
		{Key: "Education", Count: 4},
		{Key: "Automotive", Count: 3},
		{Key: "Food & Drink", Count: 2},
		{Key: "Dating/Personals", Count: 1},
	},
	Portal: {
		{Key: "Business", Count: 10},
		{Key: "Education", Count: 8},
		{Key: "Social Networking", Count: 6},
		{Key: "Law Government & Politics", Count: 5},
		{Key: "Careers", Count: 3},
		{Key: "Family & Parenting", Count: 2},
		{Key: "Under Construction", Count: 1},
		{Key: "Content Server", Count: 1},
	},
}

func pickCategory(rng *stats.RNG, kind SiteKind) string {
	entries := categoryWeights[kind]
	weights := make([]float64, len(entries))
	for i, e := range entries {
		weights[i] = float64(e.Count)
	}
	return entries[rng.WeightedIndex(weights)].Key
}

// breakageClassFor draws the /account degradation class with the 7/1/1/1
// weighting that reproduces the paper's 10-page experiment.
func breakageClassFor(rng *stats.RNG) int {
	return rng.WeightedIndex([]float64{7, 1, 1, 1})
}

// campaignExtras coins a campaign's benign parameters: rare names (each
// campaign its own), natural-language values. When ads rotate, these land
// on a single crawler and reach the pipeline's manual-review stage, where
// the lexicon removes them — the paper's §3.7.2 false-positive classes.
func campaignExtras(rng *stats.RNG, truth *Truth) map[string]string {
	out := map[string]string{}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		name := concatWords(rng, 2)
		var value string
		switch rng.Intn(4) {
		case 0:
			value = slugFrom(rng, 3+rng.Intn(2))
		case 1:
			value = concatWords(rng, 2)
		case 2:
			value = fmt.Sprintf("%d.%04d,-%d.%04d", rng.Intn(80), rng.Intn(9999), rng.Intn(170), rng.Intn(9999))
		default:
			value = slugFrom(rng, 2) + "_topic"
		}
		truth.registerParam(name, ParamBenign)
		out[name] = value
	}
	return out
}

// orgFromDomain derives a single-site organisation name from its domain.
func orgFromDomain(domain string) string {
	name := domain
	if t := tldOf(domain); t != "" {
		name = domain[:len(domain)-len(t)]
	}
	return titleCase(name)
}

// installFaults configures connection failures for content sites,
// exempting tracker infrastructure so redirect chains don't break mid-hop
// (the paper's connect failures happen at step 1 of a walk, visiting the
// site itself) and the most popular sites — hyper-popular domains are
// essentially never down, and without this exemption a single faulted hub
// would fail a disproportionate share of crawl steps.
func (w *World) installFaults() {
	f := netsim.NewFaultInjectorConfig(w.cfg.Seed, netsim.FaultConfig{
		ConnectFailRate:   w.cfg.ConnectFailRate,
		TransientRate:     w.cfg.TransientFailRate,
		TransientMaxFails: w.cfg.TransientMaxFails,
		DegradeRate:       w.cfg.HTTPDegradeRate,
		SpikeRate:         w.cfg.LatencySpikeRate,
		SpikeLatency:      time.Duration(w.cfg.SpikeLatencyMS) * time.Millisecond,
	})
	for _, t := range w.trackers {
		f.Exempt(t.OwnedDomains...)
	}
	top := 15
	if top > w.cfg.NumSites {
		top = w.cfg.NumSites
	}
	for i := 0; i < top; i++ {
		f.Exempt(w.gen.domainAt(i))
	}
	// SSO and shortener hosts share the registered domain of their site,
	// so they fail with it — acceptable: they ARE the site.
	w.net.SetFaults(f)
}
