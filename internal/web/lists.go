package web

import (
	"sort"

	"crumbcruncher/internal/ident"
)

// The synthetic world publishes deliberately *incomplete* defence lists,
// because the paper's list-related findings are measurements of coverage
// gaps: the Disconnect entity list knew the owner of only 45 of 436
// originator/destination domains, 41% of dedicated smugglers were missing
// from the Disconnect tracker list, and EasyList blocked only 6% of
// smuggling URLs. Coverage here is decided deterministically per domain
// from the world seed.

// EntityListDomains returns the partial domain → organisation map
// standing in for the Disconnect entity list. Membership derives per
// domain, so the returned map is coverage-sized even for a lazy
// million-site world.
func (w *World) EntityListDomains() map[string]string {
	out := map[string]string{}
	cut := int(w.cfg.EntityListCoverage * 1000)
	add := func(d, org string) {
		if ident.ShortHash(w.cfg.Seed, 1000, "entitylist", d) < cut {
			out[d] = org
		}
	}
	for d, org := range w.gen.trackerOrgOf {
		add(d, org)
	}
	for i := 0; i < w.cfg.NumSites; i++ {
		add(w.gen.domainAt(i), w.gen.orgAt(i))
	}
	return out
}

// DisconnectList returns the partial tracker-domain list standing in for
// the Disconnect tracking-protection list. Coverage applies to tracker
// registered domains.
func (w *World) DisconnectList() []string {
	cut := int(w.cfg.DisconnectTrackerCoverage * 1000)
	var out []string
	for _, t := range w.trackers {
		if t.Kind == OrgSync {
			continue
		}
		for _, d := range t.OwnedDomains {
			if ident.ShortHash(w.cfg.Seed, 1000, "disconnect", d) < cut {
				out = append(out, d)
			}
		}
	}
	sort.Strings(out)
	return out
}

// EasyListRules returns the partial EasyList/EasyPrivacy-style rules.
// Coverage is deliberately thin and skips the largest networks — UID
// smuggling was too new for the lists to have caught up (§7.1) — so the
// measured blocked fraction lands near the paper's 6%.
func (w *World) EasyListRules() []string {
	var rules []string
	cut := int(w.cfg.EasyListCoverage * 4 * 1000)
	add := func(ts []*Tracker) {
		for i, t := range ts {
			if i < 1 {
				// The biggest networks are exactly the ones the lists
				// had not caught up with.
				continue
			}
			if ident.ShortHash(w.cfg.Seed, 1000, "easylist", t.Domain) < cut {
				rules = append(rules, "||"+t.Domain+"^")
			}
		}
	}
	add(w.adNetworks)
	add(w.affiliates)
	sort.Strings(rules)
	return rules
}
