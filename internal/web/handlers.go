package web

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"crumbcruncher/internal/dom"
	"crumbcruncher/internal/ident"
)

// registerSiteHandlers wires one site's hosts onto the network: the
// content domain, its shortener and its org's SSO host. Eager worlds
// call it for every site at build time; lazy worlds call it from the
// network resolver on a site's first visit. Registering the same host
// twice (SSO hosts shared by sync-org members, resolver races) is
// harmless — the handlers behave identically.
func (w *World) registerSiteHandlers(s *Site) {
	site := s
	w.net.HandleFunc(site.Domain, func(rw http.ResponseWriter, r *http.Request) {
		w.serveSite(site, rw, r)
	})
	if site.ShortenerHost != "" {
		w.net.HandleFunc(site.ShortenerHost, func(rw http.ResponseWriter, r *http.Request) {
			w.serveShortener(site, rw, r)
		})
	}
	if site.SSOHost != "" {
		sso := site.SSOHost
		w.net.HandleFunc(sso, func(rw http.ResponseWriter, r *http.Request) {
			w.serveSSO(sso, rw, r)
		})
	}
}

// registerTrackerHandlers wires every tracker host onto the network.
// Tracker infrastructure is always registered eagerly: it is plan-sized
// (a few hundred hosts), and redirect chains must resolve even when the
// chain's hosts were never visited as sites.
func (w *World) registerTrackerHandlers() {
	for _, t := range w.trackers {
		tracker := t
		if tracker.ScriptHost != "" {
			w.net.HandleFunc(tracker.ScriptHost, func(rw http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/sync" {
					// Cookie-sync endpoint: store the partner's UID in
					// this tracker's own (policy-partitioned) bucket.
					if puid := r.URL.Query().Get("puid"); puid != "" {
						http.SetCookie(rw, &http.Cookie{Name: "partner_uid", Value: puid, MaxAge: 86400 * 390})
					}
				}
				rw.Header().Set("Content-Type", "text/plain")
				fmt.Fprint(rw, "ok")
			})
		}
		if tracker.ServeHost != "" {
			w.net.HandleFunc(tracker.ServeHost, func(rw http.ResponseWriter, r *http.Request) {
				w.serveAdSlot(tracker, rw, r)
			})
		}
		for _, h := range tracker.ClickHosts {
			host := h
			w.net.HandleFunc(host, func(rw http.ResponseWriter, r *http.Request) {
				w.serveClick(tracker, host, rw, r)
			})
		}
	}
}

// serveSite renders a content page, the retailer landing page, or the
// token-gated account page.
func (w *World) serveSite(s *Site, rw http.ResponseWriter, r *http.Request) {
	v := visitorFrom(r)
	// Session cookie on every page response (no expiry: a true session
	// cookie, dying with the profile).
	loadKey := ident.Join("sess", v.client, s.Domain)
	http.SetCookie(rw, &http.Cookie{
		Name:  "PSESSID",
		Value: ident.SessionID(w.cfg.Seed, s.Domain, v.client, strconv.Itoa(w.visit(loadKey))),
	})

	if r.URL.Path == "/account" && s.HasAccount {
		w.serveAccount(s, rw, r)
		return
	}
	page := w.buildPage(s, r.URL.Path, v)
	rw.Header().Set("Content-Type", "text/html")
	fmt.Fprint(rw, dom.Render(page))
}

// serveAccount implements the §6 breakage experiment's login pages: how
// the page degrades without its token depends on the site's breakage
// class.
func (w *World) serveAccount(s *Site, rw http.ResponseWriter, r *http.Request) {
	atok := r.URL.Query().Get("atok")
	if atok == "" && s.BreakageClass == 3 {
		// Hard breakage: bounce to the homepage.
		http.Redirect(rw, r, "http://"+s.Domain+"/", http.StatusFound)
		return
	}
	if atok != "" {
		http.SetCookie(rw, &http.Cookie{Name: "auth", Value: atok, MaxAge: 86400 * 180})
	}

	html := dom.NewElement("html")
	head := dom.NewElement("head")
	title := dom.NewElement("title")
	title.AppendChild(dom.NewText("Account — " + s.Domain))
	head.AppendChild(title)
	html.AppendChild(head)
	body := dom.NewElement("body")
	html.AppendChild(body)

	if atok == "" && s.BreakageClass == 1 {
		// Minor breakage: an extra 20px notice shifts the body down.
		banner := dom.NewElement("div", "id", "notice", "height", "20")
		banner.AppendChild(dom.NewText("please sign in"))
		body.AppendChild(banner)
	}
	h1 := dom.NewElement("h1")
	h1.AppendChild(dom.NewText("Your account"))
	body.AppendChild(h1)
	form := dom.NewElement("form", "id", "profile")
	email := dom.NewElement("input", "type", "text", "name", "email")
	if s.BreakageClass == 2 && atok != "" {
		// Autofill only works with the token.
		email.SetAttr("value", "user@"+s.Domain)
	}
	form.AppendChild(email)
	body.AppendChild(form)
	a := dom.NewElement("a", "href", "/")
	a.AppendChild(dom.NewText("home"))
	body.AppendChild(a)

	rw.Header().Set("Content-Type", "text/html")
	fmt.Fprint(rw, dom.Render(html))
}

// serveSSO is the organisation's sign-in redirector: it mints (or
// recalls) the org-wide auth UID as a first-party cookie and forwards it
// to the return URL — a multi-purpose smuggler (§5.1's
// signin.lexisnexis.com pattern).
func (w *World) serveSSO(host string, rw http.ResponseWriter, r *http.Request) {
	v := visitorFrom(r)
	atok := ""
	if c, err := r.Cookie("sso_uid"); err == nil {
		atok = c.Value
	}
	if atok == "" {
		atok = ident.UID(w.cfg.Seed, w.regDomain(host), "sso", v.profile)
	}
	http.SetCookie(rw, &http.Cookie{Name: "sso_uid", Value: atok, MaxAge: 86400 * 390})

	ret := r.URL.Query().Get("return")
	if ret == "" {
		home := strings.TrimPrefix(host, "signin.")
		rw.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(rw, `<html><head><title>Sign in</title></head><body><h1>Sign in</h1><form id="login"><input type="text" name="user"></form><a href="http://%s/">back</a></body></html>`, home)
		return
	}
	u, err := url.Parse(ret)
	if err != nil {
		http.Error(rw, "bad return", http.StatusBadRequest)
		return
	}
	q := u.Query()
	q.Set("atok", atok)
	u.RawQuery = q.Encode()
	http.Redirect(rw, r, u.String(), http.StatusFound)
}

// serveShortener is a site-owned outbound redirector (t.co pattern). When
// the owning organisation syncs UIDs, incoming sync parameters are stored
// and carried onward.
func (w *World) serveShortener(s *Site, rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	dest := q.Get("d")
	if dest == "" {
		http.Error(rw, "missing destination", http.StatusBadRequest)
		return
	}
	u, err := url.Parse(dest)
	if err != nil {
		http.Error(rw, "bad destination", http.StatusBadRequest)
		return
	}
	if s.SyncTracker != nil {
		if uid := q.Get(s.SyncTracker.Param); uid != "" {
			http.SetCookie(rw, &http.Cookie{Name: "_short_in", Value: uid, MaxAge: 86400 * 390})
			// Carry onward with the tracker-confidence probability,
			// decided deterministically per destination.
			if ident.ShortHash(w.cfg.Seed, 1000, "short-carry", s.ShortenerHost, u.Hostname()) <
				int(w.cfg.TrackerConfidence*1000) {
				uq := u.Query()
				uq.Set(s.SyncTracker.Param, uid)
				u.RawQuery = uq.Encode()
			}
		}
	}
	http.Redirect(rw, r, u.String(), http.StatusFound)
}

// serveClick is a tracker redirector hop — the paper's Figure 2 step 2.
// It stores every incoming UID parameter as a first-party cookie (the
// privilege partitioned storage cannot remove), forwards UID parameters
// with the tracker's confidence, sometimes injects its own UID, and
// redirects to the next hop or the destination.
func (w *World) serveClick(t *Tracker, host string, rw http.ResponseWriter, r *http.Request) {
	v := visitorFrom(r)
	q := r.URL.Query()
	aid := q.Get("aid")

	// Own first-party UID (reused via cookie, minted deterministically
	// otherwise).
	own := ""
	if c, err := r.Cookie("ruid"); err == nil {
		own = c.Value
	}
	if own == "" {
		own = ident.UID(w.cfg.Seed, w.regDomain(host), v.profile)
	}
	http.SetCookie(rw, &http.Cookie{Name: "ruid", Value: own, MaxAge: 86400 * 390})

	// Harvest incoming UID parameters into first-party storage. Query
	// values are a map, so walk its keys sorted: Set-Cookie header order
	// (and uidParams below) must not leak map-iteration order into the
	// simulated responses.
	names := make([]string, 0, len(q))
	for name := range q {
		names = append(names, name)
	}
	sort.Strings(names)
	var uidParams []string
	for _, name := range names {
		if w.truth.ParamKindOf(name) == ParamUID {
			uidParams = append(uidParams, name)
			http.SetCookie(rw, &http.Cookie{
				Name:   "in_" + name,
				Value:  q.Get(name),
				MaxAge: 86400 * 390,
			})
		}
	}

	// Resolve the next hop.
	dest := q.Get("d")
	if dest == "" {
		// A click host visited without routing state serves a bare page.
		rw.Header().Set("Content-Type", "text/html")
		fmt.Fprint(rw, "<html><head><title>redirect</title></head><body></body></html>")
		return
	}
	var via []string
	if vstr := q.Get("via"); vstr != "" {
		via = strings.Split(vstr, "|")
	}
	var next *url.URL
	var err error
	if len(via) > 0 {
		next, err = url.Parse("http://" + via[0] + "/c")
		if err == nil {
			nq := url.Values{}
			nq.Set("d", dest)
			if len(via) > 1 {
				nq.Set("via", strings.Join(via[1:], "|"))
			}
			if aid != "" {
				nq.Set("aid", aid)
			}
			next.RawQuery = nq.Encode()
		}
	} else {
		next, err = url.Parse(dest)
		if err == nil && aid != "" {
			nq := next.Query()
			nq.Set("aid", aid)
			next.RawQuery = nq.Encode()
		}
	}
	if err != nil || next == nil {
		http.Error(rw, "bad routing", http.StatusBadRequest)
		return
	}

	// Forward incoming UID parameters per-hop with the tracker's
	// confidence (deterministic per hop/link, so all crawlers agree).
	nq := next.Query()
	for _, name := range uidParams {
		if ident.ShortHash(w.cfg.Seed, 1000, "carry", host, aid, name) <
			int(w.cfg.TrackerConfidence*1000) {
			nq.Set(name, q.Get(name))
		}
	}
	// Mid-chain injection of the redirector's own UID — how partial
	// transfers beginning at a redirector arise (Fig. 8).
	if t.Smuggles && t.MidParam != "" &&
		ident.ShortHash(w.cfg.Seed, 1000, "inj", host, aid) < int(w.cfg.PMidChainInject*1000) {
		nq.Set(t.MidParam, own)
	}
	next.RawQuery = nq.Encode()
	http.Redirect(rw, r, next.String(), http.StatusFound)
}

// isSafariUA recognises a Safari User-Agent the way real trackers do:
// WebKit "Version/x" token present, "Chrome" absent. Spoofed UAs pass —
// the paper notes only sophisticated fingerprinting could see through the
// spoof (§3.4).
func isSafariUA(ua string) bool {
	return strings.Contains(ua, "Version/") && !strings.Contains(ua, "Chrome")
}

// serveAdSlot serves an iframe ad. The creative usually comes from the
// campaign's default (identical across crawlers) and is otherwise rotated
// per load — the source of dynamic UID smuggling and divergent-FQDN
// failures. The click URL carries the network's partition-scoped UID,
// which is exactly what the network needs to link back to its first-party
// identity at the click host.
func (w *World) serveAdSlot(t *Tracker, rw http.ResponseWriter, r *http.Request) {
	v := visitorFrom(r)
	q := r.URL.Query()
	pub := q.Get("pub")
	sl := q.Get("sl")

	// Partition-scoped UID: reuse the cookie when the browser's policy
	// lets it return, mint deterministically otherwise.
	top := ""
	if ref := r.Header.Get("Referer"); ref != "" {
		if u, err := url.Parse(ref); err == nil {
			top = w.regDomain(u.Hostname())
		}
	}
	puid := ""
	if c, err := r.Cookie("pid"); err == nil {
		puid = c.Value
	}
	if puid == "" {
		puid = ident.UID(w.cfg.Seed, t.Domain, v.profile, top)
	}
	http.SetCookie(rw, &http.Cookie{Name: "pid", Value: puid, MaxAge: 86400 * 390})

	if len(t.Campaigns) == 0 {
		rw.Header().Set("Content-Type", "text/html")
		fmt.Fprint(rw, "<html><body></body></html>")
		return
	}
	loadN := w.visit(ident.Join("ad", v.client, t.ServeHost, pub, sl))
	var camp *Campaign
	var adIdx int
	if ident.ShortHash(w.cfg.Seed, 1000, "adroll", v.client, pub, sl, strconv.Itoa(loadN)) <
		int(w.cfg.PDefaultAd*1000) {
		// The slot's default campaign: one of the serving network's own,
		// identical for every crawler.
		camp = t.Campaigns[ident.ShortHash(w.cfg.Seed, len(t.Campaigns), "defcamp", pub, sl)]
		adIdx = 0
	} else {
		// Rotation draws from the cross-network syndication pool, so a
		// rotated creative may belong to a different tracker entirely —
		// different UID parameter, different chain. Most rotation stays
		// on the default campaign's destination (different advertiser
		// pipes, same landing site); occasionally it jumps destinations,
		// which is what produces the paper's 1.8% divergent steps.
		def := t.Campaigns[ident.ShortHash(w.cfg.Seed, len(t.Campaigns), "defcamp", pub, sl)]
		pool := w.campaignsByDest[def.Dest]
		if len(pool) < 2 ||
			ident.ShortHash(w.cfg.Seed, 1000, "freerot", v.client, pub, sl, strconv.Itoa(loadN)) <
				int(w.cfg.PAdFreeRotation*1000) {
			pool = w.allCampaigns
		}
		camp = pool[ident.ShortHash(w.cfg.Seed, len(pool), "rndcamp", v.client, pub, sl, strconv.Itoa(loadN))]
		adIdx = ident.ShortHash(w.cfg.Seed, camp.Ads, "rndad", v.client, pub, sl, strconv.Itoa(loadN))
	}
	owner := camp.Owner

	// The routing id is short (under the token pipeline's length floor);
	// the creative carries the campaign's own benign parameters.
	aid := ident.OpaqueToken(w.cfg.Seed, 8, "aid", camp.ID, strconv.Itoa(adIdx))[:6]
	extras := url.Values{}
	if owner.Smuggles && !(owner.SafariOnly && !isSafariUA(r.UserAgent())) {
		ownerUID := puid
		if owner != t {
			// Syndicated creative: the owning network's partition UID
			// (synced through the exchange).
			ownerUID = ident.UID(w.cfg.Seed, owner.Domain, v.profile, top)
		}
		extras.Set(owner.Param, ownerUID)
	}
	for k, val := range camp.Extra {
		extras.Set(k, val)
	}
	click := clickChainURL(camp.Chain, "http://"+camp.Dest+"/land", aid, extras)

	ad := dom.NewElement("html")
	body := dom.NewElement("body")
	ad.AppendChild(body)
	a := dom.NewElement("a", "href", click, "class", "ad-click")
	img := dom.NewElement("img", "src", "http://"+t.ServeHost+"/img/"+aid+".png", "alt", "ad")
	a.AppendChild(img)
	body.AppendChild(a)
	rw.Header().Set("Content-Type", "text/html")
	fmt.Fprint(rw, dom.Render(ad))
}
