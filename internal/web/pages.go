package web

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"crumbcruncher/internal/dom"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/words"
)

// visitor is the request identity extracted from the simulation headers.
type visitor struct {
	profile string
	client  string
	machine string
}

func visitorFrom(r *http.Request) visitor {
	return visitor{
		profile: r.Header.Get(ident.HeaderProfile),
		client:  r.Header.Get(ident.HeaderClient),
		machine: r.Header.Get(ident.HeaderMachine),
	}
}

// adSizes are standard display-ad dimensions for iframe slots.
var adSizes = [][2]int{{300, 250}, {728, 90}, {160, 600}, {336, 280}}

// buildPage synthesizes a site page. Static structure derives from (seed,
// site, path); dynamic parts derive from (seed, site, path, client, load
// count), so simultaneous loads by different crawlers agree on the static
// skeleton and disagree on rotated content — the split that drives the
// paper's static/dynamic smuggling distinction and its synchronization
// failures.
func (w *World) buildPage(s *Site, path string, v visitor) *dom.Node {
	srng := stats.AcquireRNG(w.split.Child("page").Child(s.Domain).Seed(path))
	defer srng.Release()
	loadN := w.visit(ident.Join("load", v.client, s.Domain, path))
	drng := stats.AcquireRNG(stats.DeriveSeed(w.cfg.Seed,
		ident.Join("dyn", s.Domain, path, v.client, strconv.Itoa(loadN))))
	defer drng.Release()
	volatile := srng.Bool(w.cfg.PVolatilePage)
	sess := ident.SessionID(w.cfg.Seed, s.Domain, v.client, strconv.Itoa(loadN))

	html := dom.NewElement("html")
	head := dom.NewElement("head")
	title := dom.NewElement("title")
	title.AppendChild(dom.NewText(titleCase(s.Domain) + " — " + s.Category))
	head.AppendChild(title)
	html.AppendChild(head)
	body := dom.NewElement("body")
	html.AppendChild(body)

	w.addScripts(s, body)

	content := dom.NewElement("div", "class", "content", "id", "main")
	h1 := dom.NewElement("h1")
	h1.AppendChild(dom.NewText(slugFrom(srng, 2)))
	content.AppendChild(h1)

	if volatile {
		// A fully dynamic page: even its navigation differs per load, so
		// the controller finds no common element (the paper's 7.6%
		// synchronization failures).
		nav := dom.NewElement("nav", "id", "top")
		for k := 0; k < 3; k++ {
			a := dom.NewElement("a",
				"href", fmt.Sprintf("/p/%d", drng.Intn(100000)),
				"data-n"+strconv.Itoa(drng.Intn(50)), "1",
			)
			a.AppendChild(dom.NewText(slugFrom(drng, 1)))
			nav.AppendChild(a)
		}
		body.AppendChild(nav)
		body.AppendChild(content)
		w.addVolatileContent(s, content, drng)
		return html
	}

	// Navigation: internal links, one optionally carrying a session ID.
	nav := dom.NewElement("nav", "id", "top")
	for k := 0; k < w.cfg.InternalLinkCount; k++ {
		href := fmt.Sprintf("/p/%d", (k*7+len(path)*3)%30)
		if k == 1 && srng.Bool(w.cfg.PSessionLink) {
			href += "?sid=" + sess
		}
		a := dom.NewElement("a", "href", href)
		a.AppendChild(dom.NewText(stats.Pick(srng, words.Common)))
		nav.AppendChild(a)
	}
	body.AppendChild(nav)
	body.AppendChild(content)

	// Static external links.
	for i := 0; i < s.ExtLinks; i++ {
		w.addExternalLink(s, content, srng, v, i, sess)
	}
	// Org-sync sibling links (static, on some pages).
	if s.SyncTracker != nil && len(s.Siblings) > 0 && srng.Bool(0.22) {
		sib := s.Siblings[srng.Intn(len(s.Siblings))]
		a := dom.NewElement("a", "href", "http://"+sib+"/", "class", "org-link")
		a.AppendChild(dom.NewText("our " + stats.Pick(srng, words.Common) + " site"))
		content.AppendChild(a)
	}
	// SSO login link to a partner with an account page. Some links omit
	// the return URL: the sign-in host is then visited as a destination,
	// which is what keeps it out of the dedicated-smuggler class.
	if p, ok := w.ssoPartner(s, srng); ok {
		href := "http://" + p.ssoHost + "/login"
		if !srng.Bool(w.cfg.PSSOBareLogin) {
			href += "?return=" + url.QueryEscape("http://"+p.domain+"/account")
		}
		a := dom.NewElement("a", "href", href, "class", "login")
		a.AppendChild(dom.NewText("sign in"))
		content.AppendChild(a)
	}
	// One dynamic "recommended" link: present on every load but pointing
	// somewhere different per client, with a varying attribute set so the
	// matching heuristics correctly reject it.
	rec := w.gen.domainAt(drng.Intn(w.cfg.NumSites))
	recA := dom.NewElement("a",
		"href", "http://"+rec+"/?ref="+slugFrom(drng, 2),
		"class", "recommended",
		"data-v"+strconv.Itoa(drng.Intn(50)), "1",
	)
	recA.AppendChild(dom.NewText("recommended"))
	content.AppendChild(recA)

	// Ad slots.
	for k := 0; k < s.AdSlots && len(s.AdNetworks) > 0; k++ {
		net := s.AdNetworks[k%len(s.AdNetworks)]
		size := adSizes[srng.Intn(len(adSizes))]
		iframe := dom.NewElement("iframe",
			"src", fmt.Sprintf("http://%s/slot?pub=%s&sl=%d", net.ServeHost, s.Domain, k),
			"width", strconv.Itoa(size[0]),
			"height", strconv.Itoa(size[1]),
			"class", "ad-slot",
		)
		content.AppendChild(iframe)
	}

	footer := dom.NewElement("footer")
	footer.AppendChild(dom.NewText("© " + s.Org))
	body.AppendChild(footer)
	return html
}

// addScripts emits the site's tracker script tags.
func (w *World) addScripts(s *Site, body *dom.Node) {
	for _, t := range s.Decorators {
		directive := "link-decorator"
		if t.RefererSmuggler {
			directive = "referrer-decorator"
		}
		script := dom.NewElement("script",
			"src", "http://"+t.ScriptHost+"/t.js",
			"data-cc", directive,
			"data-tracker", t.Domain,
			"data-param", t.Param,
			"data-cookie", t.CookieName,
			"data-ttl-days", strconv.Itoa(t.TTLDays),
			"data-match-class", "aff-"+t.Name,
		)
		if t.UIDFormat != "" {
			script.SetAttr("data-uid-format", t.UIDFormat)
		}
		if s.fpDecorator[t.Domain] {
			script.SetAttr("data-fingerprint", "1")
		}
		body.AppendChild(script)
	}
	if s.SyncTracker != nil {
		body.AppendChild(dom.NewElement("script",
			"data-cc", "link-decorator",
			"data-tracker", s.SyncTracker.Domain,
			"data-param", s.SyncTracker.Param,
			"data-cookie", s.SyncTracker.CookieName,
			"data-ttl-days", strconv.Itoa(s.SyncTracker.TTLDays),
			"data-match-class", "org-link",
		))
	}
	for _, t := range s.Analytics {
		body.AppendChild(dom.NewElement("script",
			"src", "http://"+t.ScriptHost+"/a.js",
			"data-cc", "beacon",
			"data-endpoint", "http://"+t.ScriptHost+"/collect",
			"data-include-url", "1",
			"data-uid-param", "cid",
			"data-tracker", t.Domain,
		))
	}
	// Cookie syncing between co-located third parties (§8.2): same-page
	// UID sharing that partitioned storage already contains. The pipeline
	// must not confuse these beacons with navigational smuggling.
	if len(s.Analytics) >= 2 {
		a, b := s.Analytics[0], s.Analytics[1]
		body.AppendChild(dom.NewElement("script",
			"src", "http://"+a.ScriptHost+"/sync.js",
			"data-cc", "cookie-sync",
			"data-tracker", a.Domain,
			"data-endpoint", "http://"+b.ScriptHost+"/sync",
		))
	}
	for _, t := range s.Collectors {
		// Destination-side collector: the tracker's own script harvests
		// its smuggled parameters into first-party cookies with its own
		// lifetime (step 3 of Fig. 2).
		body.AppendChild(dom.NewElement("script",
			"src", "http://"+t.ScriptHost+"/t.js",
			"data-cc", "collector",
			"data-tracker", t.Domain,
			"data-params", t.Param+","+t.MidParam,
			"data-cookie-prefix", "_in_",
			"data-ttl-days", strconv.Itoa(t.TTLDays),
			"data-beacon", "http://"+t.ScriptHost+"/collect",
		))
	}
	if s.Fingerprinting {
		// Marker for fingerprinting code (function carried by the
		// decorators' data-fingerprint attribute).
		body.AppendChild(dom.NewElement("script", "src", "http://"+s.Domain+"/fp.js", "class", "fingerprint"))
	}
}

// addExternalLink appends the i-th static external link, choosing its
// tracking flavour from the configured mix.
func (w *World) addExternalLink(s *Site, content *dom.Node, srng *stats.RNG, v visitor, i int, sess string) {
	roll := srng.Float64()
	cfg := w.cfg
	var a *dom.Node
	switch {
	case roll < cfg.PDirectDecorated && len(s.Decorators) > 0:
		// Affiliate link straight to the retailer; the decorator script
		// adds the UID at click time (smuggling, zero redirectors).
		t := s.Decorators[srng.Intn(len(s.Decorators))]
		if len(t.DestRetailers) == 0 {
			break
		}
		dest := t.DestRetailers[srng.Intn(len(t.DestRetailers))]
		a = dom.NewElement("a", "href", "http://"+dest+"/land?aid="+linkID(t, s, i),
			"class", "aff-"+t.Name)
	case roll < cfg.PDirectDecorated+cfg.PViaSmuggler && len(s.Decorators) > 0:
		// Affiliate link through the tracker's click-host chain.
		t := s.Decorators[srng.Intn(len(s.Decorators))]
		if len(t.DestRetailers) == 0 || len(t.ClickHosts) == 0 {
			break
		}
		dest := t.DestRetailers[srng.Intn(len(t.DestRetailers))]
		chain := t.ClickHosts
		href := clickChainURL(chain, "http://"+dest+"/land", linkID(t, s, i), nil)
		a = dom.NewElement("a", "href", href, "class", "aff-"+t.Name)
	case roll < cfg.PDirectDecorated+cfg.PViaSmuggler+cfg.PViaBounce && len(w.bounces) > 0:
		// Bounce-tracked link: redirector, no UID.
		t := w.bounces[srng.Intn(len(w.bounces))]
		dest := s.Partners[srng.Intn(len(s.Partners))]
		a = dom.NewElement("a", "href",
			"http://"+t.ClickHosts[0]+"/b?d="+url.QueryEscape("http://"+dest+"/"))
	default:
		if len(s.Partners) == 0 {
			break
		}
		dest := s.Partners[srng.Intn(len(s.Partners))]
		href := "http://" + dest + "/"
		if s.ShortenerHost != "" && srng.Bool(0.5) {
			// Outbound links through the site's own shortener; when the
			// org syncs UIDs, the shortener URL carries one
			// (server-side decoration).
			q := "d=" + url.QueryEscape(href)
			if s.SyncTracker != nil {
				q += "&" + s.SyncTracker.Param + "=" + ident.UID(w.cfg.Seed, s.SyncTracker.Domain, v.profile)
			}
			href = "http://" + s.ShortenerHost + "/r?" + q
		} else if srng.Bool(cfg.PSessionLeak) {
			// Session-ID leak across the site boundary — the token class
			// the Safari-1R repeat crawler exists to discard.
			href += "?sid=" + sess
		} else if srng.Bool(cfg.PBenignParams) {
			href += "?" + benignQuery(srng)
		}
		a = dom.NewElement("a", "href", href)
	}
	if a == nil {
		return
	}
	a.AppendChild(dom.NewText(slugFrom(srng, 1)))
	content.AppendChild(a)
}

// addVolatileContent fills a fully dynamic page: every element differs per
// client, so the central controller can never find a common element (the
// paper's 7.6% synchronization failures).
func (w *World) addVolatileContent(s *Site, content *dom.Node, drng *stats.RNG) {
	nLinks := 2 + drng.Intn(3)
	for i := 0; i < nLinks; i++ {
		dest := w.gen.domainAt(drng.Intn(w.cfg.NumSites))
		a := dom.NewElement("a",
			"href", fmt.Sprintf("http://%s/p/%d?ref=%s", dest, drng.Intn(10), slugFrom(drng, 2)),
			"data-v"+strconv.Itoa(drng.Intn(50)), "1",
		)
		a.AppendChild(dom.NewText(slugFrom(drng, 1)))
		content.AppendChild(a)
	}
	if len(s.AdNetworks) > 0 {
		net := s.AdNetworks[0]
		content.AppendChild(dom.NewElement("iframe",
			"src", fmt.Sprintf("http://%s/slot?pub=%s&sl=0&cb=%d", net.ServeHost, s.Domain, drng.Intn(1<<30)),
			"width", strconv.Itoa(200+drng.Intn(400)),
			"height", strconv.Itoa(100+drng.Intn(300)),
			"data-r"+strconv.Itoa(drng.Intn(50)), "1",
		))
	}
}

// ssoPartner picks a partner site with an SSO host, if any. Candidates
// resolve from the generation plan alone, so a lazy world never
// materialises a partner just to learn it has no sign-in host.
func (w *World) ssoPartner(s *Site, rng *stats.RNG) (ssoRef, bool) {
	var candidates []ssoRef
	for _, d := range s.Partners {
		if info, ok := w.gen.ssoInfo(d); ok {
			candidates = append(candidates, info)
		}
	}
	if len(candidates) == 0 || !rng.Bool(0.12) {
		return ssoRef{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// linkID derives the stable affiliate link identifier used for
// deterministic per-link carry/injection decisions at the redirectors.
func linkID(t *Tracker, s *Site, i int) string {
	return fmt.Sprintf("%s-%s-l%d", t.Name, s.Domain, i)
}

// clickChainURL builds the entry URL of a redirect chain: the first hop
// with the destination, remaining hops and ad/link id encoded, plus any
// pre-set uid parameters.
func clickChainURL(chain []string, dest, aid string, uidParams url.Values) string {
	if len(chain) == 0 {
		u, _ := url.Parse(dest)
		q := u.Query()
		q.Set("aid", aid)
		for k, vs := range uidParams {
			for _, v := range vs {
				q.Set(k, v)
			}
		}
		u.RawQuery = q.Encode()
		return u.String()
	}
	q := url.Values{}
	q.Set("d", dest)
	q.Set("aid", aid)
	if len(chain) > 1 {
		q.Set("via", strings.Join(chain[1:], "|"))
	}
	for k, vs := range uidParams {
		for _, v := range vs {
			q.Set(k, v)
		}
	}
	return "http://" + chain[0] + "/c?" + q.Encode()
}

// benignQuery builds look-alike query parameters: slugs, locales,
// coordinates, timestamps, concatenated words — the paper's §3.7.2
// false-positive classes.
func benignQuery(rng *stats.RNG) string {
	var parts []string
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			parts = append(parts, "ref="+slugFrom(rng, 2+rng.Intn(3)))
		case 1:
			parts = append(parts, "utm_campaign="+slugFrom(rng, 2))
		case 2:
			parts = append(parts, "lang="+stats.Pick(rng, words.Locales))
		case 3:
			parts = append(parts, fmt.Sprintf("geo=%d.%d,-%d.%d",
				rng.Intn(80), rng.Intn(9999), rng.Intn(170), rng.Intn(9999)))
		case 4:
			// Epoch-era timestamp drawn from the page RNG, not the shared
			// virtual clock: the clock's reading depends on how concurrent
			// walks interleave their dwell drains, and a live read here
			// made the page bytes — and every downstream metric —
			// schedule-dependent at Parallelism > 1.
			parts = append(parts, fmt.Sprintf("ts=%d",
				netsim.Epoch.Unix()+int64(rng.Intn(45*24*3600))))
		default:
			parts = append(parts, "topic="+concatWords(rng, 2+rng.Intn(2)))
		}
	}
	return strings.Join(parts, "&")
}
