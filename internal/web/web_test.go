package web

import (
	"net/url"
	"strings"
	"testing"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/storage"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	cfg := SmallConfig()
	cfg.ConnectFailRate = 0 // separate test covers faults
	return BuildWorld(cfg)
}

func testBrowser(w *World, profile, client string) *browser.Browser {
	return browser.New(browser.Config{
		Seed:      w.Config().Seed,
		ProfileID: profile,
		ClientID:  client,
		Machine:   "m1",
		UserAgent: browser.DefaultSafariUA,
		Policy:    storage.Partitioned,
		Network:   w.Network(),
	})
}

func TestBuildWorldDeterministic(t *testing.T) {
	w1 := BuildWorld(SmallConfig())
	w2 := BuildWorld(SmallConfig())
	s1, s2 := w1.Seeders(), w2.Seeders()
	if len(s1) != len(s2) || len(s1) == 0 {
		t.Fatalf("seeder lengths: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("seeder %d differs: %q vs %q", i, s1[i], s2[i])
		}
	}
	if len(w1.Trackers()) != len(w2.Trackers()) {
		t.Fatal("tracker counts differ")
	}
}

func TestWorldPopulation(t *testing.T) {
	w := testWorld(t)
	cfg := w.Config()
	if len(w.Sites()) != cfg.NumSites {
		t.Fatalf("sites = %d, want %d", len(w.Sites()), cfg.NumSites)
	}
	var pubs, rets int
	for _, s := range w.Sites() {
		if s.Category == "" {
			t.Fatalf("site %s has no category", s.Domain)
		}
		if s.Org == "" {
			t.Fatalf("site %s has no org", s.Domain)
		}
		switch s.Kind {
		case Publisher:
			pubs++
		case Retailer:
			rets++
		}
	}
	if pubs == 0 || rets == 0 {
		t.Fatalf("degenerate mix: pubs=%d rets=%d", pubs, rets)
	}
	// Sync orgs exist and have siblings.
	var synced int
	for _, s := range w.Sites() {
		if s.SyncTracker != nil {
			synced++
			if len(s.Siblings) == 0 {
				t.Fatalf("sync site %s has no siblings", s.Domain)
			}
		}
	}
	if synced < 4 {
		t.Fatalf("synced sites = %d, want >= 4", synced)
	}
}

func TestGroundTruthParams(t *testing.T) {
	w := testWorld(t)
	uidParams := w.Truth().UIDParams()
	if len(uidParams) < 10 {
		t.Fatalf("uid params = %d, want many", len(uidParams))
	}
	if w.Truth().ParamKindOf("sid") != ParamSession {
		t.Fatal("sid should be a session param")
	}
	if w.Truth().ParamKindOf("d") != ParamDest {
		t.Fatal("d should be a dest param")
	}
	if w.Truth().ParamKindOf("nonexistent") != ParamUnknown {
		t.Fatal("unknown params should be ParamUnknown")
	}
	if len(w.Truth().DedicatedHosts()) == 0 {
		t.Fatal("no dedicated smuggler hosts")
	}
}

func TestPublisherPageStructure(t *testing.T) {
	w := testWorld(t)
	b := testBrowser(w, "u1", "c1")
	var pub *Site
	for _, s := range w.Sites() {
		if s.Kind == Publisher && s.AdSlots > 0 && len(s.Decorators) > 0 {
			pub = s
			break
		}
	}
	if pub == nil {
		t.Skip("no suitable publisher in small world")
	}
	p, err := b.Navigate("http://"+pub.Domain+"/", "")
	if err != nil {
		t.Fatal(err)
	}
	cs := b.Clickables(p)
	if len(cs) < 5 {
		t.Fatalf("clickables = %d, want several", len(cs))
	}
	var haveIframe bool
	for _, c := range cs {
		if c.Kind == "iframe" {
			haveIframe = true
		}
	}
	if !haveIframe {
		t.Fatal("publisher page missing ad iframe")
	}
}

func TestAdClickChainLandsOnRetailer(t *testing.T) {
	w := testWorld(t)
	b := testBrowser(w, "u1", "c1")
	// Click ads across publishers: every ad click must land on a
	// retailer, and at least one must carry a UID parameter on its first
	// hop. (A given creative may belong to a non-smuggling network — the
	// syndication pool mixes them — so not every click smuggles.)
	clicks, withUID := 0, 0
	for _, s := range w.Sites() {
		if s.Kind != Publisher || s.AdSlots == 0 || len(s.AdNetworks) == 0 {
			continue
		}
		p, err := b.Navigate("http://"+s.Domain+"/", "")
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range b.Clickables(p) {
			if c.Kind != "iframe" {
				continue
			}
			dest, err := b.Click(p, c.Index)
			if err != nil {
				continue
			}
			clicks++
			land := w.Site(dest.FinalHost())
			if land == nil || land.Kind != Retailer {
				t.Fatalf("ad click landed on %q (not a retailer)", dest.FinalHost())
			}
			first, err := url.Parse(dest.Chain[0].URL)
			if err != nil {
				t.Fatal(err)
			}
			for name := range first.Query() {
				if w.Truth().ParamKindOf(name) == ParamUID {
					withUID++
					break
				}
			}
		}
		if clicks >= 10 {
			break
		}
	}
	if clicks == 0 {
		t.Skip("no clickable ad found in small world")
	}
	if withUID == 0 {
		t.Fatalf("none of %d ad clicks carried a UID param", clicks)
	}
}

func TestDefaultAdIdenticalAcrossClients(t *testing.T) {
	cfg := SmallConfig()
	cfg.ConnectFailRate = 0
	cfg.PDefaultAd = 0.95 // force default creatives for this test
	w := BuildWorld(cfg)
	// Two different clients loading the same slot repeatedly should
	// mostly see the same (default) creative; compare href paths modulo
	// the uid params.
	var pub *Site
	for _, s := range w.Sites() {
		if s.Kind == Publisher && s.AdSlots > 0 && len(s.AdNetworks) > 0 {
			pub = s
			break
		}
	}
	if pub == nil {
		t.Skip("no publisher with ads")
	}
	same, total := 0, 0
	for i := 0; i < 10; i++ {
		b1 := testBrowser(w, "u1", "c1")
		b2 := testBrowser(w, "u2", "c2")
		p1, err1 := b1.Navigate("http://"+pub.Domain+"/", "")
		p2, err2 := b2.Navigate("http://"+pub.Domain+"/", "")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		u1, e1 := b1.ClickURL(p1, adIndex(b1, p1))
		u2, e2 := b2.ClickURL(p2, adIndex(b2, p2))
		if e1 != nil || e2 != nil {
			continue
		}
		total++
		if u1.Query().Get("aid") == u2.Query().Get("aid") {
			same++
		}
	}
	if total == 0 {
		t.Skip("no ad clicks possible")
	}
	if float64(same)/float64(total) < 0.5 {
		t.Fatalf("default ads should dominate: same=%d/%d", same, total)
	}
}

func adIndex(b *browser.Browser, p *browser.Page) int {
	for _, c := range b.Clickables(p) {
		if c.Kind == "iframe" {
			return c.Index
		}
	}
	return 0
}

func TestVolatilePagesExist(t *testing.T) {
	w := testWorld(t)
	b1 := testBrowser(w, "u1", "c1")
	b2 := testBrowser(w, "u2", "c2")
	volatileFound := false
	for _, s := range w.Sites()[:30] {
		p1, err1 := b1.Navigate("http://"+s.Domain+"/", "")
		p2, err2 := b2.Navigate("http://"+s.Domain+"/", "")
		if err1 != nil || err2 != nil {
			continue
		}
		// A volatile page has zero anchors with matching hrefs.
		h1 := anchorPathSet(b1, p1)
		h2 := anchorPathSet(b2, p2)
		common := 0
		for h := range h1 {
			if h2[h] {
				common++
			}
		}
		if common == 0 && len(h1) > 0 {
			volatileFound = true
			break
		}
	}
	if !volatileFound {
		t.Log("no fully-volatile page among first 30 sites (acceptable at small scale)")
	}
}

func anchorPathSet(b *browser.Browser, p *browser.Page) map[string]bool {
	out := map[string]bool{}
	for _, c := range b.Clickables(p) {
		if c.Kind == "a" {
			if u, err := url.Parse(c.Href); err == nil {
				out[u.Host+u.Path] = true
			}
		}
	}
	return out
}

func TestSSOFlowSmugglesAuthToken(t *testing.T) {
	w := testWorld(t)
	b := testBrowser(w, "u1", "c1")
	var sso *Site
	for _, s := range w.Sites() {
		if s.SSOHost != "" && s.HasAccount {
			sso = s
			break
		}
	}
	if sso == nil {
		t.Skip("no SSO org in small world")
	}
	ret := "http://" + sso.Domain + "/account"
	p, err := b.Navigate("http://"+sso.SSOHost+"/login?return="+url.QueryEscape(ret), "")
	if err != nil {
		// Breakage class 3 without token redirects home — still a
		// successful navigation; only transport errors are fatal.
		t.Fatal(err)
	}
	// The SSO hop injected atok into the return URL.
	if len(p.Chain) < 2 {
		t.Fatalf("chain = %+v", p.Chain)
	}
	loc := p.Chain[0].Location
	if !strings.Contains(loc, "atok=") {
		t.Fatalf("SSO did not inject atok: %s", loc)
	}
}

func TestAccountBreakageClasses(t *testing.T) {
	w := testWorld(t)
	classes := map[int]bool{}
	for _, s := range w.Sites() {
		if s.HasAccount {
			classes[s.BreakageClass] = true
		}
	}
	if len(classes) == 0 {
		t.Skip("no account pages in small world")
	}
	// At least the no-change class should exist (7/10 weight).
	if !classes[0] {
		t.Log("no class-0 account page (small sample)")
	}
}

func TestFaultRateApplied(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumSites = 300
	cfg.ConnectFailRate = 0.033
	w := BuildWorld(cfg)
	b := testBrowser(w, "u1", "c1")
	failed := 0
	for _, s := range w.Sites() {
		if _, err := b.Navigate("http://"+s.Domain+"/", ""); err != nil {
			failed++
		}
	}
	rate := float64(failed) / float64(len(w.Sites()))
	if rate < 0.005 || rate > 0.09 {
		t.Fatalf("connect failure rate = %.3f, want ~0.033", rate)
	}
}

func TestTrackerHostsExemptFromFaults(t *testing.T) {
	cfg := SmallConfig()
	cfg.ConnectFailRate = 0.5
	w := BuildWorld(cfg)
	for _, tr := range w.Trackers() {
		for _, d := range tr.OwnedDomains {
			if w.Network().Faults().Unreachable(d) {
				t.Fatalf("tracker domain %s not exempt", d)
			}
		}
	}
}

func TestSeedersOrderedByRank(t *testing.T) {
	w := testWorld(t)
	seeders := w.Seeders()
	if len(seeders) != len(w.Sites()) {
		t.Fatalf("seeders = %d", len(seeders))
	}
	if w.Site(seeders[0]).Rank != 1 {
		t.Fatal("first seeder should be rank 1")
	}
}

func TestOrganizationsAndCategories(t *testing.T) {
	w := testWorld(t)
	orgs := w.Organizations()
	cats := w.Categories()
	for _, s := range w.Sites() {
		if orgs[s.Domain] == "" {
			t.Fatalf("no org for %s", s.Domain)
		}
		if cats[s.Domain] == "" {
			t.Fatalf("no category for %s", s.Domain)
		}
	}
	// Tracker domains have orgs too.
	for _, tr := range w.Trackers() {
		if tr.Kind == OrgSync {
			continue
		}
		if orgs[tr.Domain] == "" {
			t.Fatalf("no org for tracker %s", tr.Domain)
		}
	}
}

func TestSessionCookieDiffersAcrossClients(t *testing.T) {
	w := testWorld(t)
	s := w.Sites()[0]
	b1 := testBrowser(w, "u1", "c1")
	b2 := testBrowser(w, "u1", "c1r") // same profile, different client
	if _, err := b1.Navigate("http://"+s.Domain+"/", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Navigate("http://"+s.Domain+"/", ""); err != nil {
		t.Fatal(err)
	}
	now := w.Network().Clock().Now()
	c1, ok1 := b1.Store().Cookie(storage.Context{FrameHost: s.Domain, TopHost: s.Domain}, "PSESSID", now)
	c2, ok2 := b2.Store().Cookie(storage.Context{FrameHost: s.Domain, TopHost: s.Domain}, "PSESSID", now)
	if !ok1 || !ok2 {
		t.Fatal("session cookies missing")
	}
	if c1.Value == c2.Value {
		t.Fatal("session cookie identical across clients — repeat-crawler session detection would break")
	}
}

func TestShortUIDTTLTrackersExist(t *testing.T) {
	w := testWorld(t)
	short := 0
	for _, tr := range w.Trackers() {
		if tr.Kind == AffiliateNetwork && tr.TTLDays < 90 {
			short++
		}
	}
	if short == 0 {
		t.Fatal("no short-TTL trackers; §3.7.1's lifetime experiment needs them")
	}
}

func TestFingerprintersListed(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumSites = 200
	cfg.ConnectFailRate = 0
	w := BuildWorld(cfg)
	fps := w.Fingerprinters()
	if len(fps) == 0 {
		t.Fatal("no fingerprinting sites generated")
	}
	rate := float64(len(fps)) / float64(len(w.Sites()))
	if rate > 0.35 {
		t.Fatalf("fingerprinter rate = %.3f, too high", rate)
	}
}

func TestSafariOnlyTrackerChecksUA(t *testing.T) {
	cfg := SmallConfig()
	cfg.ConnectFailRate = 0
	cfg.PDefaultAd = 1 // deterministic creatives
	w := BuildWorld(cfg)
	var so *Tracker
	for _, tr := range w.Trackers() {
		if tr.SafariOnly {
			so = tr
			break
		}
	}
	if so == nil {
		t.Skip("no safari-only tracker in small world")
	}
	// Find a publisher whose slot's default campaign belongs to the
	// safari-only network.
	for _, s := range w.Sites() {
		if s.Kind != Publisher || s.AdSlots == 0 {
			continue
		}
		hasSO := false
		for _, n := range s.AdNetworks {
			if n == so {
				hasSO = true
			}
		}
		if !hasSO {
			continue
		}
		safari := testBrowser(w, "u1", "safari-client")
		chrome := browser.New(browser.Config{
			Seed: cfg.Seed, ProfileID: "u1", ClientID: "chrome-client",
			Machine: "m1", UserAgent: browser.DefaultChromeUA,
			Policy: storage.Blocked, Network: w.Network(),
		})
		ps, err1 := safari.Navigate("http://"+s.Domain+"/", "")
		pc, err2 := chrome.Navigate("http://"+s.Domain+"/", "")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		us, es := safari.ClickURL(ps, adIndex(safari, ps))
		uc, ec := chrome.ClickURL(pc, adIndex(chrome, pc))
		if es != nil || ec != nil {
			continue
		}
		// Same default creative: if it belongs to the safari-only
		// network, the Safari click carries its param, the Chrome click
		// does not.
		if us.Query().Get(so.Param) != "" {
			if uc.Query().Get(so.Param) != "" {
				t.Fatalf("safari-only tracker smuggled on Chrome: %s", uc)
			}
			return // observed the differential behaviour
		}
	}
	t.Skip("no slot defaulting to the safari-only network in small world")
}
