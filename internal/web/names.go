package web

import (
	"strings"

	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/words"
)

// nameForge coins unique domain and organisation names from the shared
// vocabulary.
type nameForge struct {
	rng  *stats.RNG
	used map[string]bool
}

func newNameForge(rng *stats.RNG) *nameForge {
	return &nameForge{rng: rng, used: make(map[string]bool)}
}

// unique retries gen until it produces an unused name.
func (f *nameForge) unique(gen func() string) string {
	for i := 0; ; i++ {
		n := gen()
		if !f.used[n] {
			f.used[n] = true
			return n
		}
		if i > 200 {
			// Exhausted the nice combinations: suffix a counter.
			n = n + string(rune('a'+f.rng.Intn(26))) + string(rune('a'+f.rng.Intn(26)))
			if !f.used[n] {
				f.used[n] = true
				return n
			}
		}
	}
}

var siteTLDs = []string{".com", ".com", ".com", ".net", ".org", ".co", ".io", ".ru", ".de"}
var trackerTLDs = []string{".com", ".net", ".net", ".io", ".link", ".world"}

// siteDomain coins a content-site domain like "brightvalleynews.com".
func (f *nameForge) siteDomain(categoryHint string) string {
	return f.unique(func() string {
		a := stats.Pick(f.rng, words.Common)
		b := stats.Pick(f.rng, words.Common)
		if a == b {
			b = stats.Pick(f.rng, words.Brandish)
		}
		tld := stats.Pick(f.rng, siteTLDs)
		return a + b + tld
	})
}

// trackerDomain coins an ad-tech domain like "clickmetrix.net".
func (f *nameForge) trackerDomain() string {
	return f.unique(func() string {
		a := stats.Pick(f.rng, words.Brandish)
		b := stats.Pick(f.rng, words.Brandish)
		if a == b {
			b = stats.Pick(f.rng, words.Common)
		}
		return a + b + stats.Pick(f.rng, trackerTLDs)
	})
}

// orgName coins an organisation name like "Brightvalley Media".
func (f *nameForge) orgName() string {
	suffixes := []string{"Media", "Group", "Inc", "Networks", "Digital", "Labs", "Holdings"}
	return f.unique(func() string {
		w := stats.Pick(f.rng, words.Common)
		return titleCase(w) + " " + stats.Pick(f.rng, suffixes)
	})
}

// paramName coins a UID query-parameter name like "zumclid".
func (f *nameForge) paramName() string {
	suffixes := []string{"clid", "uid", "id", "cid", "ref_id", "visitor"}
	return f.unique(func() string {
		return stats.Pick(f.rng, words.Brandish) + stats.Pick(f.rng, suffixes)
	})
}

// slug builds an underscore-joined natural-language slug, one of the
// benign token classes the paper had to remove by hand.
func slugFrom(rng *stats.RNG, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = stats.Pick(rng, words.Common)
	}
	return strings.Join(parts, "_")
}

// concatWords builds a delimiter-free word concatenation
// ("sweetmagnolias" class).
func concatWords(rng *stats.RNG, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(stats.Pick(rng, words.Common))
	}
	return b.String()
}

// titleCase upper-cases the first ASCII letter of w.
func titleCase(w string) string {
	if w == "" {
		return w
	}
	if w[0] >= 'a' && w[0] <= 'z' {
		return string(w[0]-'a'+'A') + w[1:]
	}
	return w
}
