// Package web generates the synthetic web CrumbCruncher crawls: the
// substitute for the paper's live-Internet substrate. A World is a seeded,
// deterministic population of publisher/retailer/portal sites, tracker
// organisations (ad networks, link decorators, bounce trackers, analytics
// beacons, org-level syncers) and the HTTP handlers that serve them over a
// netsim.Network.
//
// Every tracking mechanism the paper catalogues is generated here as
// ordinary web content — link-decorating scripts, redirect chains through
// dedicated and multi-purpose smuggler hosts, rotating iframe ads, session
// IDs, fingerprint-derived UIDs, benign look-alike tokens — and a ground-
// truth registry records what each query parameter really is, so the
// pipeline's precision can be evaluated.
package web

// Config holds the world's scale and base rates. The defaults are
// calibrated (see calibration_test.go and EXPERIMENTS.md) so that a
// paper-scale crawl measures values close to the paper's: ~8% of unique
// URL paths with UID smuggling, ~3% bounce tracking, step failures near
// 7.6%/1.8%/3.3%, and a redirector mix dominated by dedicated smugglers.
type Config struct {
	// Seed drives every derivation in the world.
	Seed int64

	// Lazy defers site materialisation and handler registration until a
	// host is first visited: sites derive on demand as a pure function of
	// (seed, index) and register on the network through a resolver, so an
	// unvisited world holds only its seed and campaign plan. Results are
	// byte-identical to an eager world with the same Config — eager mode
	// simply materialises every index up front.
	Lazy bool

	// NumSites is the number of content sites (publishers, retailers,
	// portals). The seeder list is drawn from these.
	NumSites int
	// NumAdNetworks is the number of ad-network tracker organisations.
	NumAdNetworks int
	// NumDecorators is the number of affiliate/analytics trackers that
	// decorate links on pages.
	NumDecorators int
	// NumBounceTrackers is the number of redirector organisations that
	// bounce without transferring UIDs.
	NumBounceTrackers int
	// NumAnalytics is the number of beacon-only third parties (the
	// recipients of Figure 6's accidental UID leaks).
	NumAnalytics int
	// NumSyncOrgs is the number of multi-site organisations that use link
	// decoration to synchronise UIDs across their own domains (the
	// Sports-Reference pattern of §5.2).
	NumSyncOrgs int

	// PublisherFraction is the fraction of sites that are ad-carrying
	// publishers; most of the rest are retailers (ad destinations).
	PublisherFraction float64
	// RetailerFraction is the fraction of sites that are retailers.
	RetailerFraction float64

	// AdSlotMean is the mean number of iframe ad slots on a publisher
	// page.
	AdSlotMean float64
	// ExternalLinkMean is the mean number of cross-domain anchors per
	// page.
	ExternalLinkMean float64
	// InternalLinkCount is the number of same-site anchors per page.
	InternalLinkCount int

	// PDirectDecorated is the probability an external link is decorated
	// with a UID and points straight at the destination (smuggling with
	// zero redirectors).
	PDirectDecorated float64
	// PViaSmuggler is the probability an external link routes through a
	// UID-smuggling redirector chain.
	PViaSmuggler float64
	// PViaBounce is the probability an external link routes through a
	// bounce-tracking chain (redirectors, no UID).
	PViaBounce float64

	// PDefaultAd is the probability an ad slot serves its campaign's
	// default creative (same for every crawler) rather than a rotated
	// one; rotation is what produces the paper's "dynamic" smuggling and
	// its 1.8% divergent-destination step failures.
	PDefaultAd float64
	// PAdFreeRotation is the probability a rotated creative comes from an
	// arbitrary campaign rather than one sharing the slot's default
	// destination. Same-destination rotation changes the tracker (and so
	// the smuggled parameters) without changing the landing FQDN —
	// dynamic smuggling without a divergence failure.
	PAdFreeRotation float64
	// PVolatilePage is the probability a page is fully dynamic — no
	// element matches across crawlers, producing the paper's 7.6%
	// synchronization failures.
	PVolatilePage float64

	// ConnectFailRate is the fraction of registered domains that refuse
	// connections (paper: 3.3%).
	ConnectFailRate float64

	// TransientFailRate is the fraction of domains that are flaky rather
	// than dead: the first few connection attempts of any retry sequence
	// fail with a transport error, then the domain recovers. 0 (the
	// default) injects none; retries are what turn these from losses
	// into recovered sites.
	TransientFailRate float64
	// TransientMaxFails bounds how many leading attempts a transient
	// domain fails (0: netsim's default of 2).
	TransientMaxFails int
	// HTTPDegradeRate is the fraction of domains whose first attempts
	// are answered with an injected 502/503 carrying a Retry-After hint
	// before real content is served. 0 injects none.
	HTTPDegradeRate float64
	// LatencySpikeRate is the fraction of domains whose first attempt
	// suffers a deadline-blowing latency spike. Only observable when a
	// request deadline is set. 0 injects none.
	LatencySpikeRate float64
	// SpikeLatencyMS is the extra first-attempt latency for spiky
	// domains in milliseconds (0: netsim's default of 30s).
	SpikeLatencyMS int

	// FingerprinterSiteFraction is the fraction of sites that host
	// fingerprinting trackers (the Iqbal-style list of §3.5).
	FingerprinterSiteFraction float64

	// TrackerConfidence is the probability a smuggled UID is carried all
	// the way to the destination rather than dropped mid-chain (Fig. 8's
	// partial transfers).
	TrackerConfidence float64
	// PMidChainInject is the probability a redirector injects its own
	// UID mid-chain (partial transfers that begin at a redirector).
	PMidChainInject float64

	// ChainExtraP is the geometric parameter for extra redirectors in a
	// smuggling chain beyond the first.
	ChainExtraP float64
	// MaxChain bounds redirect chain length.
	MaxChain int

	// PSessionLink is the probability a page carries a session-ID query
	// parameter on its internal links.
	PSessionLink float64
	// PSessionLeak is the probability a plain outbound link leaks the
	// session ID across the site boundary — the token class Safari-1R's
	// repeat observations exist to discard (§3.7.1).
	PSessionLeak float64
	// AdSmugglesFraction is the fraction of ad networks whose click URLs
	// carry UIDs; the rest serve untracked ads whose redirects are mere
	// bounces.
	AdSmugglesFraction float64
	// RefererDecorators is the number of affiliate trackers that decorate
	// the Referer header instead of the destination URL — transfers the
	// pipeline cannot see (the paper's §6 limitation; CrumbCruncher
	// "only look[s] for UIDs transferred in the query parameters of
	// URLs"). The evaluation harness uses ground truth to count how much
	// is missed.
	RefererDecorators int
	// SafariOnlyAdNetworks is the number of smuggling ad networks that
	// check the (spoofed) User-Agent and smuggle only on Safari — the
	// §3.4 hypothesis the paper set out to test with Chrome-3. Their
	// cases appear only on Safari crawlers, indistinguishable from
	// dynamically rotated content, which is the paper's negative result.
	SafariOnlyAdNetworks int
	// PSSOBareLogin is the probability an SSO link has no return URL, so
	// the sign-in host is visited as a destination (which is what makes
	// it multi-purpose rather than dedicated).
	PSSOBareLogin float64
	// PBenignParams is the probability an external link carries benign
	// look-alike parameters (slugs, locales, timestamps, coordinates).
	PBenignParams float64

	// ShortUIDTTLFraction is the fraction of decorator trackers whose
	// UID cookies live less than 90 days (the UIDs prior work's lifetime
	// heuristic would have discarded; paper: 16% under 90d, 9% under
	// 30d).
	ShortUIDTTLFraction float64

	// EntityListCoverage is the fraction of site-owning organisations
	// present in the Disconnect-style entity list (paper: 45/436 of
	// originator/destination registered domains had a recorded owner).
	EntityListCoverage float64
	// DisconnectTrackerCoverage is the fraction of tracker redirector
	// hosts present in the Disconnect-style tracker list (paper: 41% of
	// dedicated smugglers were MISSING, i.e. ~59% coverage).
	DisconnectTrackerCoverage float64
	// EasyListCoverage is the fraction of smuggler URL patterns present
	// in the EasyList-style filter list (paper: only 6% of smuggling
	// URLs blocked).
	EasyListCoverage float64
}

// DefaultConfig returns the calibrated paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumSites:          800,
		NumAdNetworks:     34,
		NumDecorators:     56,
		NumBounceTrackers: 12,
		NumAnalytics:      14,
		NumSyncOrgs:       4,

		PublisherFraction: 0.55,
		RetailerFraction:  0.30,

		AdSlotMean:        0.17,
		ExternalLinkMean:  1.2,
		InternalLinkCount: 6,

		PDirectDecorated: 0.016,
		PViaSmuggler:     0.028,
		PViaBounce:       0.05,

		PDefaultAd:      0.35,
		PAdFreeRotation: 0.45,
		PVolatilePage:   0.08,

		ConnectFailRate: 0.033,

		FingerprinterSiteFraction: 0.13,

		TrackerConfidence: 0.85,
		PMidChainInject:   0.22,

		ChainExtraP: 0.45,
		MaxChain:    6,

		PSessionLink:         0.25,
		PSessionLeak:         0.18,
		AdSmugglesFraction:   0.50,
		SafariOnlyAdNetworks: 1,
		RefererDecorators:    2,
		PSSOBareLogin:        0.3,
		PBenignParams:        0.45,

		ShortUIDTTLFraction: 0.20,

		EntityListCoverage:        0.12,
		DisconnectTrackerCoverage: 0.59,
		EasyListCoverage:          0.06,
	}
}

// SmallConfig returns a reduced world for unit and integration tests.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSites = 60
	cfg.NumAdNetworks = 5
	cfg.NumDecorators = 6
	cfg.NumBounceTrackers = 2
	cfg.NumAnalytics = 4
	cfg.NumSyncOrgs = 2
	return cfg
}

// SiteKind classifies a content site.
type SiteKind int

const (
	// Publisher sites carry ads and external links (news, sports, blogs
	// — the paper's dominant originator categories).
	Publisher SiteKind = iota
	// Retailer sites are ad destinations with landing pages and affiliate
	// programs.
	Retailer
	// Portal sites are everything else (services, corporate, reference).
	Portal
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case Publisher:
		return "publisher"
	case Retailer:
		return "retailer"
	default:
		return "portal"
	}
}
