package web

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/words"
)

// This file is the demand-driven core of world generation. A worldGen is
// the world's *plan*: every tracker organisation, campaign, sync-org
// slab and shortener assignment — everything whose size scales with the
// tracker population, not the site population. Sites themselves derive
// on demand as a pure function of (plan, index): deriveSite(i) draws
// from an RNG seeded only by (seed, i), never from a stream shared with
// other sites, so materialising site 731042 does not require touching
// sites 0..731041. BuildWorld in eager mode simply derives every index
// up front; lazy mode derives on first visit. Both modes produce
// byte-identical sites by construction.
//
// Site domains encode their own index ("brightvalley-00k3.com"): the
// fixed-width base-36 code after the final hyphen is the site index,
// which is what lets Site(host) resolve a domain back to its site in
// O(1) without a world-sized map. Tracker domains are hyphen-free, so
// the two namespaces cannot collide; decoding validates by re-deriving
// the domain, so look-alike hostnames never resolve.

// zipfSkew is the popularity-bias exponent of the partner link graph.
const zipfSkew = 0.35

// orgPlan is one multi-site sync organisation: which site indices it
// owns, its syncing pseudo-tracker, and the SSO/breakage assignments.
type orgPlan struct {
	org      string
	sync     *Tracker
	members  []int
	sso      bool
	breakage map[int]int
}

// worldGen is the immutable generation plan shared by a world and all
// its forks.
type worldGen struct {
	cfg   Config
	truth *Truth

	trackers   []*Tracker
	adNetworks []*Tracker
	affiliates []*Tracker
	bounces    []*Tracker
	analytics  []*Tracker

	// trackerOrgOf maps tracker registered domains to their organisation
	// (site organisations derive per index).
	trackerOrgOf map[string]string

	allCampaigns     []*Campaign
	campaignsByDest  map[string][]*Campaign
	collectorsByDest map[string][]*Tracker

	orgPlans     map[int]*orgPlan
	shortenerIdx map[int]bool

	// Aspect seeds: independent derivation roots so cheap per-index
	// decisions (kind) never perturb the expensive ones (full site).
	kindSeed   int64
	domainSeed int64
	siteSeed   int64

	// domWidth is the fixed width of the base-36 index code embedded in
	// site domains.
	domWidth int

	// Market-share weights, precomputed once for WeightedIndex draws.
	adWeights        []float64
	affWeights       []float64
	analyticsWeights []float64
}

// newWorldGen builds the plan: trackers, campaigns, org slabs, truth —
// O(trackers), independent of NumSites except for bounded index scans.
func newWorldGen(cfg Config) *worldGen {
	split := stats.NewSplitter(cfg.Seed)
	g := &worldGen{
		cfg:              cfg,
		truth:            newTruth(),
		trackerOrgOf:     make(map[string]string),
		campaignsByDest:  make(map[string][]*Campaign),
		collectorsByDest: make(map[string][]*Tracker),
		orgPlans:         make(map[int]*orgPlan),
		shortenerIdx:     make(map[int]bool),
		kindSeed:         split.Seed("world/kinds"),
		domainSeed:       split.Seed("world/domains"),
		siteSeed:         split.Seed("world/sites"),
		domWidth:         idxWidth(cfg.NumSites),
	}
	rng := split.RNG("world/plan")
	forge := newNameForge(split.RNG("world/names"))

	g.buildTrackers(rng, forge)
	g.buildOrgPlans(rng, forge)
	g.buildShorteners(rng)
	g.buildCampaigns(rng)
	g.registerParams()

	weightsOf := func(ts []*Tracker) []float64 {
		out := make([]float64, len(ts))
		for i, t := range ts {
			out[i] = t.Weight
		}
		return out
	}
	g.adWeights = weightsOf(g.adNetworks)
	g.affWeights = weightsOf(g.affiliates)
	g.analyticsWeights = weightsOf(g.analytics)
	return g
}

// idxWidth returns the base-36 digit count needed to encode site indices
// 0..n-1 at fixed width (minimum 2, so codes never look like words).
func idxWidth(n int) int {
	w := len(strconv.FormatInt(int64(maxInt(n-1, 0)), 36))
	if w < 2 {
		w = 2
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// kindAt classifies site i. A single hashed uniform, no RNG stream: kind
// queries drive plan-time retailer scans and must stay allocation-free.
func (g *worldGen) kindAt(i int) SiteKind {
	r := stats.UnitAt(g.kindSeed, i)
	switch {
	case r < g.cfg.PublisherFraction:
		return Publisher
	case r < g.cfg.PublisherFraction+g.cfg.RetailerFraction:
		return Retailer
	default:
		return Portal
	}
}

// domainAt coins site i's domain. The embedded index code guarantees
// global uniqueness, so no cross-site used-set is needed.
func (g *worldGen) domainAt(i int) string {
	rng := stats.AcquireRNG(stats.DeriveSeedN(g.domainSeed, i))
	defer rng.Release()
	a := stats.Pick(rng, words.Common)
	b := stats.Pick(rng, words.Common)
	if a == b {
		b = stats.Pick(rng, words.Brandish)
	}
	tld := stats.Pick(rng, siteTLDs)
	return a + b + "-" + encodeIdx(i, g.domWidth) + tld
}

// encodeIdx renders i as fixed-width base 36.
func encodeIdx(i, width int) string {
	s := strconv.FormatInt(int64(i), 36)
	if len(s) < width {
		s = strings.Repeat("0", width-len(s)) + s
	}
	return s
}

// siteIndexOf decodes a registered domain back to its site index. It
// validates by re-deriving: only the N real site domains resolve.
func (g *worldGen) siteIndexOf(regDomain string) (int, bool) {
	dot := strings.LastIndexByte(regDomain, '.')
	if dot < 0 {
		return 0, false
	}
	name := regDomain[:dot]
	dash := strings.LastIndexByte(name, '-')
	if dash < 0 || dash+1 >= len(name) {
		return 0, false
	}
	n, err := strconv.ParseInt(name[dash+1:], 36, 64)
	if err != nil || n < 0 || int(n) >= g.cfg.NumSites {
		return 0, false
	}
	if g.domainAt(int(n)) != regDomain {
		return 0, false
	}
	return int(n), true
}

// orgAt returns site i's organisation without a full derivation.
func (g *worldGen) orgAt(i int) string {
	if p := g.orgPlans[i]; p != nil {
		return p.org
	}
	return orgFromDomain(g.domainAt(i))
}

// categoryAt returns site i's category: the first draw of the site RNG.
// Must stay in sync with deriveSite's draw order.
func (g *worldGen) categoryAt(i int) string {
	rng := stats.AcquireRNG(stats.DeriveSeedN(g.siteSeed, i))
	defer rng.Release()
	return pickCategory(rng, g.kindAt(i))
}

// fingerprintingAt replays deriveSite's rng prefix (category, then the
// fingerprinting roll) to answer membership without materialising.
func (g *worldGen) fingerprintingAt(i int) bool {
	rng := stats.AcquireRNG(stats.DeriveSeedN(g.siteSeed, i))
	defer rng.Release()
	pickCategory(rng, g.kindAt(i))
	return rng.Bool(g.cfg.FingerprinterSiteFraction)
}

// ssoRef is the pair of fields page generation needs from an SSO-capable
// partner site — resolvable from the plan alone, no materialisation.
type ssoRef struct {
	domain  string
	ssoHost string
}

// ssoInfo reports whether domain belongs to an SSO-enabled sync org.
func (g *worldGen) ssoInfo(domain string) (ssoRef, bool) {
	i, ok := g.siteIndexOf(domain)
	if !ok {
		return ssoRef{}, false
	}
	p := g.orgPlans[i]
	if p == nil || !p.sso {
		return ssoRef{}, false
	}
	return ssoRef{domain: domain, ssoHost: "signin." + p.sync.Domain}, true
}

// deriveSite materialises site i. Pure function of (plan, i): every
// random draw comes from an RNG seeded by (siteSeed, i) in a fixed
// order, so derivation order across sites is irrelevant.
func (g *worldGen) deriveSite(i int) *Site {
	rng := stats.AcquireRNG(stats.DeriveSeedN(g.siteSeed, i))
	defer rng.Release()
	kind := g.kindAt(i)
	s := &Site{
		Domain:      g.domainAt(i),
		Rank:        i + 1,
		Kind:        kind,
		Category:    pickCategory(rng, kind),
		fpDecorator: map[string]bool{},
	}
	s.Org = orgFromDomain(s.Domain)
	if p := g.orgPlans[i]; p != nil {
		s.Org = p.org
		s.SyncTracker = p.sync
		for _, m := range p.members {
			if m != i {
				s.Siblings = append(s.Siblings, g.domainAt(m))
			}
		}
		if p.sso {
			s.SSOHost = "signin." + p.sync.Domain
			s.HasAccount = true
			s.BreakageClass = p.breakage[i]
		}
	}
	if g.shortenerIdx[i] {
		s.ShortenerHost = "l." + s.Domain
	}
	s.Fingerprinting = rng.Bool(g.cfg.FingerprinterSiteFraction)

	// Analytics on almost everything.
	na := 1 + rng.Intn(2)
	seen := map[string]bool{}
	for k := 0; k < na && len(g.analytics) > 0; k++ {
		t := g.analytics[rng.WeightedIndex(g.analyticsWeights)]
		if !seen[t.Domain] {
			seen[t.Domain] = true
			s.Analytics = append(s.Analytics, t)
		}
	}
	if kind == Publisher {
		// Publishers: decorators and ad slots.
		nd := 1 + rng.Intn(2)
		seen = map[string]bool{}
		for k := 0; k < nd && len(g.affiliates) > 0; k++ {
			t := g.affiliates[rng.WeightedIndex(g.affWeights)]
			if seen[t.Domain] {
				continue
			}
			seen[t.Domain] = true
			s.Decorators = append(s.Decorators, t)
			if s.Fingerprinting && rng.Bool(0.8) {
				s.fpDecorator[t.Domain] = true
			}
		}
		nn := 1 + rng.Intn(2)
		seen = map[string]bool{}
		for k := 0; k < nn && len(g.adNetworks) > 0; k++ {
			t := g.adNetworks[rng.WeightedIndex(g.adWeights)]
			if !seen[t.Domain] {
				seen[t.Domain] = true
				s.AdNetworks = append(s.AdNetworks, t)
			}
		}
		s.AdSlots = rng.Geometric(1/(1+g.cfg.AdSlotMean), 3)
		s.ExtLinks = rng.Geometric(1/(1+g.cfg.ExternalLinkMean), 6)
	} else {
		// Retailers and portals still carry a couple of external links so
		// walks continue from them.
		s.ExtLinks = rng.Intn(3)
	}

	// Partner graph: popularity-biased sampling, siblings first.
	want := 4 + rng.Intn(5)
	pseen := map[string]bool{s.Domain: true}
	for _, sib := range s.Siblings {
		if !pseen[sib] {
			s.Partners = append(s.Partners, sib)
			pseen[sib] = true
		}
	}
	for tries := 0; len(s.Partners) < want && tries < 50; tries++ {
		p := g.domainAt(stats.ZipfRank(g.cfg.NumSites, zipfSkew, rng.Float64()) - 1)
		if pseen[p] {
			continue
		}
		pseen[p] = true
		s.Partners = append(s.Partners, p)
	}

	s.Collectors = g.collectorsByDest[s.Domain]
	return s
}

// buildTrackers creates the tracker organisations.
func (g *worldGen) buildTrackers(rng *stats.RNG, forge *nameForge) {
	newTracker := func(kind TrackerKind, weight float64) *Tracker {
		domain := forge.trackerDomain()
		t := &Tracker{
			Name:         domain[:len(domain)-len(tldOf(domain))],
			Org:          forge.orgName(),
			Kind:         kind,
			Domain:       domain,
			OwnedDomains: []string{domain},
			ScriptHost:   "cdn." + domain,
			Weight:       weight,
		}
		g.trackerOrgOf[domain] = t.Org
		return t
	}

	smuggling := int(g.cfg.AdSmugglesFraction*float64(g.cfg.NumAdNetworks) + 0.5)
	for i := 0; i < g.cfg.NumAdNetworks; i++ {
		t := newTracker(AdNetwork, 1/float64(i+1))
		t.ServeHost = "serve." + t.Domain
		t.ClickHosts = []string{"adclick.g." + t.Domain}
		// The biggest networks smuggle (the DoubleClick-alikes dominate
		// Table 3); the tail serves untracked ads. A couple of
		// mid-market smuggling networks only do so on Safari, where
		// partitioned storage makes smuggling worthwhile (§3.4).
		t.Smuggles = i < smuggling
		t.SafariOnly = t.Smuggles && i >= 2 && i < 2+g.cfg.SafariOnlyAdNetworks
		// The two biggest networks own a second domain whose redirector
		// always follows the first (the awin1.com → zenaps.com pattern).
		if i < 2 {
			d2 := forge.trackerDomain()
			t.OwnedDomains = append(t.OwnedDomains, d2)
			t.ClickHosts = append(t.ClickHosts, "r."+d2)
			g.trackerOrgOf[d2] = t.Org
		}
		t.Param = forge.paramName()
		t.MidParam = forge.paramName()
		t.CookieName = "_" + t.Name + "_id"
		t.TTLDays = shortTTLFor(i, g.cfg.NumAdNetworks, g.cfg.ShortUIDTTLFraction)
		g.adNetworks = append(g.adNetworks, t)
		g.trackers = append(g.trackers, t)
	}

	for i := 0; i < g.cfg.NumDecorators; i++ {
		t := newTracker(AffiliateNetwork, 1/float64(i+1))
		t.Smuggles = true
		t.ClickHosts = []string{"track." + t.Domain}
		if rng.Bool(0.3) {
			t.ClickHosts = append(t.ClickHosts, "go."+t.Domain)
		}
		t.Param = forge.paramName()
		t.MidParam = forge.paramName()
		t.CookieName = "_" + t.Name
		t.TTLDays = shortTTLFor(i, g.cfg.NumDecorators, g.cfg.ShortUIDTTLFraction)
		if i%3 == 1 {
			t.UIDFormat = "ga"
		}
		// A few trackers smuggle via the Referer header (§6 limitation);
		// keep them off the biggest networks so the main results aren't
		// dominated by invisible transfers.
		if mid := g.cfg.NumDecorators / 2; i >= mid && i < mid+g.cfg.RefererDecorators {
			t.RefererSmuggler = true
		}
		g.affiliates = append(g.affiliates, t)
		g.trackers = append(g.trackers, t)
	}

	for i := 0; i < g.cfg.NumBounceTrackers; i++ {
		t := newTracker(BounceTracker, 1/float64(i+1))
		t.ClickHosts = []string{"b." + t.Domain}
		t.CookieName = "_" + t.Name + "_b"
		g.bounces = append(g.bounces, t)
		g.trackers = append(g.trackers, t)
	}

	for i := 0; i < g.cfg.NumAnalytics; i++ {
		t := newTracker(Analytics, 1/float64(i+1))
		t.ScriptHost = "g." + t.Domain
		t.CookieName = "_" + t.Name + "_a"
		g.analytics = append(g.analytics, t)
		g.trackers = append(g.trackers, t)
	}
}

// buildOrgPlans lays out the multi-site sync organisations:
// mid-popularity publishers owning several heavily interlinked domains
// (Sports Reference pattern). They start below the very top of the
// ranking — reference networks are popular but not Facebook-popular.
func (g *worldGen) buildOrgPlans(rng *stats.RNG, forge *nameForge) {
	idx := 25
	if idx >= g.cfg.NumSites {
		idx = 0
	}
	for o := 0; o < g.cfg.NumSyncOrgs && idx < g.cfg.NumSites; o++ {
		size := 3 + rng.Intn(3)
		org := forge.orgName()
		syncParam := forge.paramName()
		var members []int
		for k := 0; k < size && idx < g.cfg.NumSites; k++ {
			members = append(members, idx)
			idx++
		}
		if len(members) < 2 {
			continue
		}
		primaryDomain := g.domainAt(members[0])
		sync := &Tracker{
			Name:         "sync-" + primaryDomain,
			Org:          org,
			Kind:         OrgSync,
			Domain:       primaryDomain,
			OwnedDomains: []string{primaryDomain},
			Param:        syncParam,
			CookieName:   "_org_uid",
			TTLDays:      720,
		}
		g.trackers = append(g.trackers, sync)
		p := &orgPlan{org: org, sync: sync, members: members, sso: o%2 == 0}
		if p.sso {
			// Sync orgs with an SSO host: the multi-purpose login
			// redirector.
			p.breakage = make(map[int]int, len(members))
			for _, m := range members {
				p.breakage[m] = breakageClassFor(rng)
			}
		}
		for _, m := range members {
			g.orgPlans[m] = p
		}
	}
}

// buildShorteners picks a couple of popular publishers to run their own
// outbound shortener (the t.co / l.facebook.com pattern).
func (g *worldGen) buildShorteners(rng *stats.RNG) {
	limit := 20
	if limit > g.cfg.NumSites {
		limit = g.cfg.NumSites
	}
	count := 0
	for i := 0; i < limit && count < 4; i++ {
		if g.kindAt(i) == Publisher && rng.Bool(0.35) {
			g.shortenerIdx[i] = true
			count++
		}
	}
}

// buildCampaigns wires ad networks and affiliates to retailer
// destinations and builds redirect chains. Retailer destinations come
// from bounded index scans and rejection sampling, never a full-world
// materialisation.
func (g *worldGen) buildCampaigns(rng *stats.RNG) {
	// Display campaigns concentrate on the bigger advertisers, so several
	// campaigns share each destination and same-destination rotation has
	// a pool to draw from. The scan stops at the 40th retailer; with any
	// positive RetailerFraction that is a few hundred indices.
	var adRetailers []string
	for i := 0; i < g.cfg.NumSites && len(adRetailers) < 40; i++ {
		if g.kindAt(i) == Retailer {
			adRetailers = append(adRetailers, g.domainAt(i))
		}
	}
	if len(adRetailers) == 0 {
		return
	}

	// Chain hosts available for multi-tracker chains.
	var allClickHosts []string
	for _, t := range g.adNetworks {
		allClickHosts = append(allClickHosts, t.ClickHosts...)
	}
	for _, t := range g.affiliates {
		allClickHosts = append(allClickHosts, t.ClickHosts...)
	}

	for _, t := range g.adNetworks {
		n := 4 + rng.Intn(8)
		for c := 0; c < n; c++ {
			camp := &Campaign{
				ID:    fmt.Sprintf("%s-c%d", t.Name, c),
				Owner: t,
				Dest:  stats.Pick(rng, adRetailers),
				Ads:   2 + rng.Intn(4),
				Extra: campaignExtras(rng, g.truth),
			}
			// Chain: usually the network's own click host(s), sometimes
			// extended through partners, occasionally empty (direct ad
			// click → retailer).
			if !rng.Bool(0.15) {
				camp.Chain = append(camp.Chain, t.ClickHosts...)
				extra := rng.Geometric(1-g.cfg.ChainExtraP, g.cfg.MaxChain-len(camp.Chain))
				for e := 0; e < extra; e++ {
					camp.Chain = append(camp.Chain, stats.Pick(rng, allClickHosts))
				}
			}
			t.Campaigns = append(t.Campaigns, camp)
			g.allCampaigns = append(g.allCampaigns, camp)
			g.campaignsByDest[camp.Dest] = append(g.campaignsByDest[camp.Dest], camp)
		}
	}

	// Affiliate destinations: rejection-sample retailer indices. With the
	// default 30% retailer fraction a miss streak of 64 is a ~1e-10
	// event; a draw that still misses is simply skipped.
	for _, t := range g.affiliates {
		n := 3 + rng.Intn(6)
		seen := map[string]bool{}
		for c := 0; c < n; c++ {
			d := ""
			for tries := 0; tries < 64; tries++ {
				if i := rng.Intn(g.cfg.NumSites); g.kindAt(i) == Retailer {
					d = g.domainAt(i)
					break
				}
			}
			if d != "" && !seen[d] {
				seen[d] = true
				t.DestRetailers = append(t.DestRetailers, d)
			}
		}
	}

	// Destination-side collectors: every tracker that targets a retailer
	// puts its own collector script there, storing its smuggled
	// parameters with its own cookie lifetime.
	collect := map[string]map[string]*Tracker{}
	addCollector := func(dest string, t *Tracker) {
		if collect[dest] == nil {
			collect[dest] = map[string]*Tracker{}
		}
		collect[dest][t.Domain] = t
	}
	for _, t := range g.adNetworks {
		for _, c := range t.Campaigns {
			addCollector(c.Dest, t)
		}
	}
	for _, t := range g.affiliates {
		for _, d := range t.DestRetailers {
			addCollector(d, t)
		}
	}
	for dest, ts := range collect {
		domains := make([]string, 0, len(ts))
		for d := range ts {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		ordered := make([]*Tracker, 0, len(domains))
		for _, d := range domains {
			ordered = append(ordered, ts[d])
		}
		g.collectorsByDest[dest] = ordered
	}
}

// registerParams records every parameter name's ground truth and the
// redirector-host classifications — all derivable from the plan.
func (g *worldGen) registerParams() {
	for _, t := range g.trackers {
		if t.Param != "" {
			g.truth.registerParam(t.Param, ParamUID)
		}
		if t.MidParam != "" {
			g.truth.registerParam(t.MidParam, ParamUID)
		}
	}
	g.truth.registerParam("atok", ParamUID) // SSO auth token: a true UID
	g.truth.registerParam("sid", ParamSession)
	g.truth.registerParam("ts", ParamTimestamp)
	g.truth.registerParam("d", ParamDest)
	g.truth.registerParam("return", ParamDest)
	g.truth.registerParam("url", ParamDest)
	for _, p := range []string{"ref", "utm_campaign", "topic", "lang", "geo", "share", "cat", "camp", "cr"} {
		g.truth.registerParam(p, ParamBenign)
	}
	for _, p := range []string{"aid", "sl", "pub", "via", "ad", "cb", "p"} {
		g.truth.registerParam(p, ParamRouting)
	}
	// Dedicated-smuggler ground truth: ad and affiliate click hosts are
	// pure redirector infrastructure — they have no purpose in a
	// navigation path besides redirecting and carrying whatever UID
	// parameters arrive. Even a non-smuggling network's click host can
	// appear inside another network's smuggling chain and forward its
	// UIDs, which is exactly the behaviour the paper's "dedicated
	// smuggler" label describes.
	for _, t := range g.adNetworks {
		for _, h := range t.ClickHosts {
			g.truth.markDedicated(h)
		}
	}
	for _, t := range g.affiliates {
		for _, h := range t.ClickHosts {
			g.truth.markDedicated(h)
		}
	}
	for _, p := range g.orgPlans {
		if p.sso {
			g.truth.markSmuggler("signin." + p.sync.Domain)
		}
	}
	for i := range g.shortenerIdx {
		if p := g.orgPlans[i]; p != nil && p.sync != nil {
			g.truth.markSmuggler("l." + g.domainAt(i))
		}
	}
}

// siteCache lazily materialised sites, shared between a world and its
// forks (sites are immutable once derived).
type siteCache struct {
	mu    sync.RWMutex
	byIdx map[int]*Site
}

func newSiteCache() *siteCache {
	return &siteCache{byIdx: make(map[int]*Site)}
}

// site returns the cached site i, deriving it on first use. Derivation
// happens outside the lock (it is pure); a losing racer's duplicate is
// discarded so every caller sees one canonical *Site per index.
func (c *siteCache) site(g *worldGen, i int) *Site {
	c.mu.RLock()
	s := c.byIdx[i]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	derived := g.deriveSite(i)
	c.mu.Lock()
	if s = c.byIdx[i]; s == nil {
		c.byIdx[i] = derived
		s = derived
	}
	c.mu.Unlock()
	return s
}
