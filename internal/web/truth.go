package web

import (
	"sort"
	"sync"
)

// ParamKind is the ground-truth classification of a query parameter.
type ParamKind int

const (
	// ParamUnknown marks parameters the world never registered.
	ParamUnknown ParamKind = iota
	// ParamUID is a true user identifier: stable per user, distinct
	// across users. Smuggling one across first-party contexts is the
	// behaviour the paper measures.
	ParamUID
	// ParamSession is a per-visit session identifier.
	ParamSession
	// ParamBenign is a harmless value (slug, locale, campaign name,
	// coordinates).
	ParamBenign
	// ParamDest carries a destination URL through a redirector.
	ParamDest
	// ParamTimestamp is a time value.
	ParamTimestamp
	// ParamRouting is simulation/ad routing metadata (ad ids, slot ids).
	ParamRouting
)

// String names the kind.
func (k ParamKind) String() string {
	switch k {
	case ParamUID:
		return "uid"
	case ParamSession:
		return "session"
	case ParamBenign:
		return "benign"
	case ParamDest:
		return "dest"
	case ParamTimestamp:
		return "timestamp"
	case ParamRouting:
		return "routing"
	default:
		return "unknown"
	}
}

// Truth is the generator's ground-truth registry: which query-parameter
// names carry which kind of value, and which redirector hosts are, by
// construction, dedicated smugglers. The measurement pipeline must never
// consult it; evaluation code uses it to score the pipeline's precision
// and recall.
type Truth struct {
	mu     sync.RWMutex
	params map[string]ParamKind
	// dedicated is the set of redirector FQDNs whose only function is UID
	// smuggling.
	dedicated map[string]bool
	// smugglers is the set of all smuggling participant hosts (dedicated
	// + multi-purpose redirectors that transfer UIDs).
	smugglers map[string]bool
}

func newTruth() *Truth {
	return &Truth{
		params:    make(map[string]ParamKind),
		dedicated: make(map[string]bool),
		smugglers: make(map[string]bool),
	}
}

// registerParam records a parameter's kind. Registering the same name with
// a different kind panics: the generator must keep parameter vocabularies
// disjoint or evaluation would be ambiguous.
func (t *Truth) registerParam(name string, kind ParamKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.params[name]; ok && prev != kind {
		panic("web: param " + name + " registered as both " + prev.String() + " and " + kind.String())
	}
	t.params[name] = kind
}

// ParamKindOf returns the ground-truth kind of a parameter name.
func (t *Truth) ParamKindOf(name string) ParamKind {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.params[name]
}

// IsUIDParam reports whether the parameter carries a true UID.
func (t *Truth) IsUIDParam(name string) bool { return t.ParamKindOf(name) == ParamUID }

// UIDParams returns all registered UID parameter names.
func (t *Truth) UIDParams() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for p, k := range t.params {
		if k == ParamUID {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// markDedicated records a dedicated-smuggler host.
func (t *Truth) markDedicated(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dedicated[host] = true
	t.smugglers[host] = true
}

// markSmuggler records a (possibly multi-purpose) smuggling redirector
// host.
func (t *Truth) markSmuggler(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.smugglers[host] = true
}

// IsDedicated reports ground-truth dedicated-smuggler status.
func (t *Truth) IsDedicated(host string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dedicated[host]
}

// IsSmuggler reports whether host participates in UID smuggling as a
// redirector.
func (t *Truth) IsSmuggler(host string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.smugglers[host]
}

// DedicatedHosts returns all ground-truth dedicated smuggler hosts.
func (t *Truth) DedicatedHosts() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.dedicated))
	for h := range t.dedicated {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
