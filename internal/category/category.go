// Package category implements the IAB-style content taxonomy lookup the
// paper uses via Webshrinker to categorise originators and destinations
// (§5.2.1, Figure 5).
package category

import "sort"

// Unknown is the category for domains the taxonomy does not cover (the
// paper had 32 of 339 domains categorised as unknown).
const Unknown = "Unknown"

// Taxonomy maps registered domains to content categories.
type Taxonomy struct {
	byDomain map[string]string
}

// New builds a taxonomy from a domain → category map.
func New(m map[string]string) *Taxonomy {
	t := &Taxonomy{byDomain: make(map[string]string, len(m))}
	for d, c := range m {
		t.byDomain[d] = c
	}
	return t
}

// CategoryOf returns the category of domain, or Unknown.
func (t *Taxonomy) CategoryOf(domain string) string {
	if c, ok := t.byDomain[domain]; ok && c != "" {
		return c
	}
	return Unknown
}

// Categories returns the distinct categories present, sorted.
func (t *Taxonomy) Categories() []string {
	set := map[string]bool{}
	for _, c := range t.byDomain {
		set[c] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CountByCategory tallies the number of distinct domains per category
// (each registered domain counted once, as in Figure 5).
func (t *Taxonomy) CountByCategory(domains []string) map[string]int {
	seen := map[string]bool{}
	out := map[string]int{}
	for _, d := range domains {
		if seen[d] {
			continue
		}
		seen[d] = true
		out[t.CategoryOf(d)]++
	}
	return out
}
