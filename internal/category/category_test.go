package category

import "testing"

func TestCategoryOf(t *testing.T) {
	tax := New(map[string]string{"news.com": "News/Weather/Information"})
	if got := tax.CategoryOf("news.com"); got != "News/Weather/Information" {
		t.Fatalf("got %q", got)
	}
	if got := tax.CategoryOf("mystery.com"); got != Unknown {
		t.Fatalf("got %q", got)
	}
}

func TestCountByCategoryDedupes(t *testing.T) {
	tax := New(map[string]string{
		"a.com": "Sports",
		"b.com": "Sports",
		"c.com": "Shopping",
	})
	counts := tax.CountByCategory([]string{"a.com", "a.com", "b.com", "c.com", "d.com"})
	if counts["Sports"] != 2 {
		t.Fatalf("Sports = %d", counts["Sports"])
	}
	if counts["Shopping"] != 1 {
		t.Fatalf("Shopping = %d", counts["Shopping"])
	}
	if counts[Unknown] != 1 {
		t.Fatalf("Unknown = %d", counts[Unknown])
	}
}

func TestCategoriesSorted(t *testing.T) {
	tax := New(map[string]string{"a.com": "Z", "b.com": "A"})
	cats := tax.Categories()
	if len(cats) != 2 || cats[0] != "A" || cats[1] != "Z" {
		t.Fatalf("cats = %v", cats)
	}
}
