package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (the no-op instrument a nil registry hands
// out).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 buckets: bucket 0 holds values
// <= 0, bucket i holds values in [2^(i-1), 2^i - 1] for i >= 1, i.e.
// values whose bit length is i. 64-bit values need at most 65 buckets.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of int64 observations
// (durations in microseconds, chain lengths, token counts...). Each
// bucket is an independent atomic, so concurrent Observe calls never
// contend on a lock.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Microseconds adapts the histogram into a duration hook recording in
// microseconds, or nil when the histogram is nil — shaped for
// parallel.ForEachTimed, which skips timing entirely on a nil hook.
func (h *Histogram) Microseconds() func(d time.Duration) {
	if h == nil {
		return nil
	}
	return func(d time.Duration) { h.Observe(d.Microseconds()) }
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a concurrent-safe collection of named instruments.
// Instruments are created on first use and live for the registry's
// lifetime; callers should cache the returned pointer on hot paths to
// skip the map lookup. A nil *Registry hands out nil instruments, whose
// methods are all no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BucketCount is one non-empty histogram bucket: Count observations
// with values <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// with deterministic (sorted) map-free bucket ordering so it can be
// embedded in JSON artifacts.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values. Safe on nil (returns
// a zero Snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = snapshotHistogram(h)
		}
	}
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max(), Mean: h.Mean()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			le = int64(1)<<uint(i) - 1
		}
		hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
	}
	sort.Slice(hs.Buckets, func(a, b int) bool { return hs.Buckets[a].Le < hs.Buckets[b].Le })
	return hs
}

// CounterNames returns the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
