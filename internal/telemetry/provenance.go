package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime"
	"runtime/debug"
	"time"
)

// Provenance makes an archived run self-describing: the inputs that
// deterministically reproduce it (seed, configuration hash), the code
// that produced it (git revision, Go version), and a telemetry summary
// of what actually happened — so a saved crawl can be audited without
// re-running it, in the spirit of reproducible web-measurement bundles.
type Provenance struct {
	// Seed is the world seed the run was generated from.
	Seed int64 `json:"seed"`
	// ConfigHash is the SHA-256 of the run configuration's canonical
	// JSON; two runs with equal seeds and hashes are byte-identical.
	ConfigHash string `json:"config_hash"`
	// GitRevision is the VCS revision of the producing binary, when the
	// build carried stamping information ("unknown" otherwise).
	GitRevision string `json:"git_revision"`
	// GoVersion is the toolchain that built the producing binary.
	GoVersion string `json:"go_version"`
	// VirtualEnd is the virtual-clock reading when the provenance block
	// was assembled — the simulated duration of the whole crawl.
	VirtualEnd time.Time `json:"virtual_end"`
	// SpansRecorded/SpansDropped account for the tracer ring.
	SpansRecorded int64 `json:"spans_recorded,omitempty"`
	SpansDropped  int64 `json:"spans_dropped,omitempty"`
	// Metrics is the registry snapshot at save time.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Hasher lets a configuration type supply its own canonical hash.
// core.Config implements it to normalize scheduling-only knobs
// (Parallelism, runtime wiring) out of the digest, so provenance blocks
// and the serve layer's world cache agree on one identity for every
// configuration that provably produces byte-identical results.
type Hasher interface {
	Hash() string
}

// ConfigHash hashes any JSON-serializable configuration value. A value
// implementing Hasher supplies its own canonical digest instead. Errors
// collapse to a sentinel rather than failing a save: provenance is
// descriptive metadata, never load-bearing.
func ConfigHash(cfg any) string {
	if h, ok := cfg.(Hasher); ok {
		return h.Hash()
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return "unserializable"
	}
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// GitRevision reports the vcs.revision baked into the running binary by
// the Go toolchain, suffixed with "+dirty" for modified trees, or
// "unknown" when the build carried no VCS stamp (e.g. go test).
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// NewProvenance assembles a provenance block for a run. The telemetry
// handle may be nil: the block then carries only the reproducibility
// fields (seed, config hash, build identity).
func NewProvenance(seed int64, cfg any, t *Telemetry) Provenance {
	p := Provenance{
		Seed:        seed,
		ConfigHash:  ConfigHash(cfg),
		GitRevision: GitRevision(),
		GoVersion:   runtime.Version(),
	}
	if t != nil {
		p.VirtualEnd = t.now()
		p.SpansRecorded = t.Tracer().Total()
		p.SpansDropped = t.Tracer().Dropped()
		snap := t.Registry().Snapshot()
		p.Metrics = &snap
	}
	return p
}
