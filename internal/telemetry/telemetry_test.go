package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a deterministic test clock advancing 1ms per reading.
type stepClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	tel.SetClock(&stepClock{})
	tel.Counter("x").Add(3)
	tel.Gauge("g").Set(9)
	tel.Histogram("h").Observe(42)
	sp := tel.StartSpan("layer", "name")
	sp.Attr("k", "v").End()
	sp.EndErr(errors.New("boom"))
	if tel.Tracer().Total() != 0 || tel.Registry().Counter("x").Value() != 0 {
		t.Fatal("nil telemetry must observe nothing")
	}
	var tr *Tracer
	tr.Record(Span{})
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL: %v %q", err, buf.String())
	}
	var reg *Registry
	if s := reg.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSpansStampedFromClock(t *testing.T) {
	clock := &stepClock{now: time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)}
	tel := New(clock, 16)
	sp := tel.StartSpan("netsim", "roundtrip").Attr("host", "a.com")
	sp.End()
	spans := tel.Tracer().Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Layer != "netsim" || s.Name != "roundtrip" || s.Attrs["host"] != "a.com" {
		t.Fatalf("span = %+v", s)
	}
	if !s.End.After(s.Start) || s.VirtualDuration() != time.Millisecond {
		t.Fatalf("virtual times: start=%v end=%v", s.Start, s.End)
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Wall: int64(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans", len(spans))
	}
	for i, s := range spans {
		if s.Wall != int64(6+i) {
			t.Fatalf("span %d wall = %d, want %d (oldest-first order)", i, s.Wall, 6+i)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d", tr.Total(), tr.Dropped())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 1110 || h.Max() != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	hs := snapshotHistogram(&h)
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 7 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	// 0 lands in the le=0 bucket; 2 and 3 share le=3; 100 lands in le=127.
	want := map[int64]int64{0: 1, 1: 1, 3: 2, 7: 1, 127: 1, 1023: 1}
	for _, b := range hs.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared").Inc()
				reg.Histogram("h").Observe(int64(i))
				reg.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := reg.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["shared"] != 8000 || snap.Histograms["h"].Count != 8000 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestJSONLRoundTripAndSummary(t *testing.T) {
	clock := &stepClock{now: time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)}
	tel := New(clock, 64)
	tel.StartSpan("netsim", "roundtrip").End()
	tel.StartSpan("crawler", "walk").Attr("idx", "0").End()
	sp := tel.StartSpan("netsim", "roundtrip")
	sp.EndErr(errors.New("dial tcp: refused"))

	var buf bytes.Buffer
	if err := tel.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("JSONL lines = %d", got)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("decoded %d spans", len(spans))
	}

	sum := Summarize(spans, 2)
	if sum.Spans != 3 || len(sum.Slowest) != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.LayerSpanCount("netsim") != 2 || sum.LayerSpanCount("crawler") != 1 {
		t.Fatalf("layer counts = %+v", sum.Layers)
	}
	if len(sum.Faults) != 1 || sum.Faults[0].Err != "dial tcp: refused" {
		t.Fatalf("faults = %+v", sum.Faults)
	}
	if !sum.VEnd.After(sum.VStart) {
		t.Fatalf("virtual window: %v..%v", sum.VStart, sum.VEnd)
	}
}

func TestProvenance(t *testing.T) {
	tel := New(&stepClock{now: time.Unix(100, 0)}, 8)
	tel.Counter("netsim.requests").Add(7)
	tel.StartSpan("analysis", "paths").End()

	type cfg struct{ Seed int64 }
	p := NewProvenance(11, cfg{Seed: 11}, tel)
	if p.Seed != 11 || p.GoVersion == "" || p.GitRevision == "" {
		t.Fatalf("provenance = %+v", p)
	}
	if p.ConfigHash != ConfigHash(cfg{Seed: 11}) {
		t.Fatal("config hash unstable")
	}
	if p.ConfigHash == ConfigHash(cfg{Seed: 12}) {
		t.Fatal("config hash insensitive to config")
	}
	if p.SpansRecorded != 1 || p.Metrics == nil || p.Metrics.Counters["netsim.requests"] != 7 {
		t.Fatalf("telemetry summary = %+v", p)
	}
	// Nil telemetry still yields the reproducibility fields.
	p2 := NewProvenance(11, cfg{Seed: 11}, nil)
	if p2.Metrics != nil || p2.ConfigHash != p.ConfigHash {
		t.Fatalf("nil-telemetry provenance = %+v", p2)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tel := New(&stepClock{}, 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tel.StartSpan("layer", "op").End()
			}
		}(w)
	}
	wg.Wait()
	if tel.Tracer().Total() != 1600 {
		t.Fatalf("total = %d", tel.Tracer().Total())
	}
	if got := len(tel.Tracer().Spans()); got != 128 {
		t.Fatalf("retained = %d", got)
	}
}
