// Package telemetry is the pipeline's observability subsystem: tracing
// spans stamped from the simulation's virtual clock, a registry of named
// counters, gauges and log-bucketed histograms, and run provenance blocks
// that make archived crawls self-describing.
//
// The package is dependency-free (standard library only) and designed
// around two constraints the pipeline imposes:
//
//   - Observation only. Telemetry must never perturb a run: it reads the
//     virtual clock but never advances it, touches no RNG, and every
//     value lives in its own atomic or behind its own short-lived lock.
//     Enabling telemetry leaves run results byte-identical (the
//     determinism test at the repo root enforces this).
//
//   - Nil-safe no-op default. Every method works on a nil receiver, so
//     uninstrumented callers thread a nil *Telemetry through the stack
//     and pay nothing — no allocation, no branching beyond one nil
//     check, no lock.
//
// Span timestamps come from a Clock (netsim's VirtualClock in the real
// pipeline), so traces of the simulated activity are deterministic for a
// given seed. Each span additionally carries a wall-clock duration for
// the quantities that exist only in real time — the analysis stages do
// not advance the virtual clock, so their cost is only visible in wall
// nanoseconds.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies span timestamps. netsim's VirtualClock satisfies it.
type Clock interface {
	Now() time.Time
}

// DefaultSpanCapacity is the tracer ring size used by New.
const DefaultSpanCapacity = 1 << 16

// Telemetry bundles a tracer and a metrics registry behind one handle.
// A nil *Telemetry is the no-op implementation; all methods are safe on
// nil.
type Telemetry struct {
	tracer *Tracer
	reg    *Registry

	// clock is set atomically: the handle is typically created before
	// the virtual clock exists (the network owning the clock is built
	// inside Execute) and wired when instrumentation attaches.
	clock atomic.Value // Clock
}

// New returns a Telemetry with a tracer of the given span capacity
// (<= 0: DefaultSpanCapacity) and a fresh registry. The clock may be nil
// and attached later with SetClock; until then spans carry zero virtual
// timestamps.
func New(clock Clock, spanCapacity int) *Telemetry {
	if spanCapacity <= 0 {
		spanCapacity = DefaultSpanCapacity
	}
	t := &Telemetry{tracer: NewTracer(spanCapacity), reg: NewRegistry()}
	if clock != nil {
		t.clock.Store(clock)
	}
	return t
}

// SetClock attaches the clock spans are stamped from. Instrumented
// layers that own a clock (netsim) call this when telemetry attaches.
func (t *Telemetry) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.clock.Store(c)
}

// now returns the current virtual time, or the zero time with no clock.
func (t *Telemetry) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	if c, ok := t.clock.Load().(Clock); ok {
		return c.Now()
	}
	return time.Time{}
}

// Tracer returns the span collector (nil for a nil Telemetry).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Registry returns the metrics registry (nil for a nil Telemetry).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter is shorthand for Registry().Counter(name); nil-safe.
func (t *Telemetry) Counter(name string) *Counter { return t.Registry().Counter(name) }

// Gauge is shorthand for Registry().Gauge(name); nil-safe.
func (t *Telemetry) Gauge(name string) *Gauge { return t.Registry().Gauge(name) }

// Histogram is shorthand for Registry().Histogram(name); nil-safe.
func (t *Telemetry) Histogram(name string) *Histogram { return t.Registry().Histogram(name) }

// Span is one completed trace record. Start and End are virtual-clock
// timestamps (deterministic per seed); Wall is the real elapsed time
// (diagnostic only, excluded from any determinism guarantee).
type Span struct {
	Layer string            `json:"layer"`
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Wall  int64             `json:"wall_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Err   string            `json:"err,omitempty"`
}

// VirtualDuration is the span's extent on the virtual clock.
func (s Span) VirtualDuration() time.Duration { return s.End.Sub(s.Start) }

// Stopwatch measures real elapsed time for telemetry enrichment. It is
// the pipeline's only sanctioned wall-clock observation point: results
// must be a pure function of the seed, but traces and shard-timing
// histograms legitimately record how long real work took. Everything
// that wants wall time goes through here so the crumblint wallclock
// analyzer has exactly one allowlisted origin to audit.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins measuring wall time.
func StartStopwatch() Stopwatch {
	//crumb:allow wallclock telemetry wall-stamping is observability, never an input to results
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	//crumb:allow wallclock paired read for the sanctioned stopwatch origin
	return time.Since(s.start)
}

// ElapsedMicros returns the elapsed wall time in microseconds, the unit
// the shard-timing histograms observe.
func (s Stopwatch) ElapsedMicros() int64 {
	return s.Elapsed().Microseconds()
}

// Active is an in-flight span handle returned by StartSpan. A nil
// *Active is a valid no-op; all methods are safe on nil.
type Active struct {
	t         *Telemetry
	span      Span
	wallStart Stopwatch
}

// StartSpan opens a span in the given layer. End (or EndErr) completes
// it and hands it to the tracer. On a nil Telemetry it returns nil,
// which every Active method accepts.
func (t *Telemetry) StartSpan(layer, name string) *Active {
	if t == nil {
		return nil
	}
	return &Active{
		t:         t,
		span:      Span{Layer: layer, Name: name, Start: t.now()},
		wallStart: StartStopwatch(),
	}
}

// Attr attaches a key/value attribute and returns the handle for
// chaining.
func (a *Active) Attr(key, value string) *Active {
	if a == nil {
		return nil
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[key] = value
	return a
}

// End completes the span and records it.
func (a *Active) End() { a.EndErr(nil) }

// EndErr completes the span, tagging it with err when non-nil.
func (a *Active) EndErr(err error) {
	if a == nil {
		return
	}
	a.span.End = a.t.now()
	a.span.Wall = a.wallStart.Elapsed().Nanoseconds()
	if err != nil {
		a.span.Err = err.Error()
	}
	a.t.tracer.Record(a.span)
}

// Tracer collects completed spans in a fixed-capacity ring buffer: a
// single short mutex-guarded copy per span, no allocation on the record
// path, and the most recent capacity spans retained when a run overflows
// it.
type Tracer struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
	total   int64
}

// NewTracer returns a tracer retaining the last capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// Record appends a span, overwriting the oldest when full. Safe for
// concurrent use and on a nil tracer.
func (tr *Tracer) Record(s Span) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.buf[tr.next] = s
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next = 0
		tr.wrapped = true
	}
	tr.total++
	tr.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (tr *Tracer) Spans() []Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.wrapped {
		out := make([]Span, tr.next)
		copy(out, tr.buf[:tr.next])
		return out
	}
	out := make([]Span, 0, len(tr.buf))
	out = append(out, tr.buf[tr.next:]...)
	out = append(out, tr.buf[:tr.next]...)
	return out
}

// Total returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (tr *Tracer) Total() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Dropped returns how many recorded spans are no longer retained.
func (tr *Tracer) Dropped() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.wrapped {
		return 0
	}
	return tr.total - int64(len(tr.buf))
}
