package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// WriteJSONL writes the tracer's retained spans as JSON Lines, oldest
// first — the archive format cmd/crumbtrace summarizes. Safe on nil
// (writes nothing).
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range tr.Spans() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("telemetry: encode span: %w", err)
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the trace to path.
func (tr *Tracer) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return tr.WriteJSONL(f)
}

// ReadSpans decodes a JSONL trace stream.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: decode span %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
}

// ReadSpansFile decodes the JSONL trace at path.
func ReadSpansFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return ReadSpans(f)
}

// LayerStat aggregates one layer's spans in a trace summary.
type LayerStat struct {
	Layer    string        `json:"layer"`
	Spans    int           `json:"spans"`
	Errors   int           `json:"errors"`
	WallTime time.Duration `json:"wall_ns"`
	// WallHist buckets span wall times (microseconds, log2).
	WallHist HistogramSnapshot `json:"wall_hist_us"`
}

// FaultEvent is one errored span on the trace's virtual timeline.
type FaultEvent struct {
	VirtualTime time.Time `json:"virtual_time"`
	Layer       string    `json:"layer"`
	Name        string    `json:"name"`
	Err         string    `json:"err"`
}

// TraceSummary is what crumbtrace renders: per-layer aggregates, the
// slowest spans by wall time, and the fault timeline in virtual order.
type TraceSummary struct {
	Spans    int          `json:"spans"`
	Layers   []LayerStat  `json:"layers"`
	Slowest  []Span       `json:"slowest"`
	Faults   []FaultEvent `json:"faults"`
	VStart   time.Time    `json:"virtual_start"`
	VEnd     time.Time    `json:"virtual_end"`
	WallTime int64        `json:"total_wall_ns"`
}

// Summarize aggregates a span list into a TraceSummary, keeping the
// topSlow slowest spans (by wall time; <= 0 means 10).
func Summarize(spans []Span, topSlow int) TraceSummary {
	if topSlow <= 0 {
		topSlow = 10
	}
	sum := TraceSummary{Spans: len(spans)}
	layerHists := map[string]*Histogram{}
	layers := map[string]*LayerStat{}
	for _, s := range spans {
		ls := layers[s.Layer]
		if ls == nil {
			ls = &LayerStat{Layer: s.Layer}
			layers[s.Layer] = ls
			layerHists[s.Layer] = &Histogram{}
		}
		ls.Spans++
		ls.WallTime += time.Duration(s.Wall)
		layerHists[s.Layer].Observe(s.Wall / int64(time.Microsecond))
		sum.WallTime += s.Wall
		if s.Err != "" {
			ls.Errors++
			sum.Faults = append(sum.Faults, FaultEvent{
				VirtualTime: s.Start, Layer: s.Layer, Name: s.Name, Err: s.Err,
			})
		}
		if !s.Start.IsZero() && (sum.VStart.IsZero() || s.Start.Before(sum.VStart)) {
			sum.VStart = s.Start
		}
		if s.End.After(sum.VEnd) {
			sum.VEnd = s.End
		}
	}
	for layer, ls := range layers {
		ls.WallHist = snapshotHistogram(layerHists[layer])
		sum.Layers = append(sum.Layers, *ls)
	}
	sort.Slice(sum.Layers, func(i, j int) bool { return sum.Layers[i].Layer < sum.Layers[j].Layer })
	sort.SliceStable(sum.Faults, func(i, j int) bool {
		return sum.Faults[i].VirtualTime.Before(sum.Faults[j].VirtualTime)
	})

	slow := make([]Span, len(spans))
	copy(slow, spans)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].Wall > slow[j].Wall })
	if len(slow) > topSlow {
		slow = slow[:topSlow]
	}
	sum.Slowest = slow
	return sum
}

// LayerSpanCount returns the summary's span count for a layer (0 when
// the layer never appeared).
func (s TraceSummary) LayerSpanCount(layer string) int {
	for _, ls := range s.Layers {
		if ls.Layer == layer {
			return ls.Spans
		}
	}
	return 0
}
