package tranco

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	l := FromDomains([]string{"alpha.com", "beta.net", "gamma.org"})
	var b strings.Builder
	if err := Write(&b, l); err != nil {
		t.Fatal(err)
	}
	if b.String() != "1,alpha.com\n2,beta.net\n3,gamma.org\n" {
		t.Fatalf("output = %q", b.String())
	}
	back, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 3 || back.Entries[1] != (Entry{Rank: 2, Domain: "beta.net"}) {
		t.Fatalf("entries = %v", back.Entries)
	}
}

func TestParseSkipsCommentsAndNormalizes(t *testing.T) {
	in := "# a comment\n\n1,Alpha.COM  \n5,beta.net\n"
	l, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Entries[0].Domain != "alpha.com" {
		t.Fatalf("normalization: %q", l.Entries[0].Domain)
	}
	if l.Entries[1].Rank != 5 {
		t.Fatal("gap ranks should be accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"no-comma-here",
		"x,domain.com",
		"0,domain.com",
		"2,a.com\n1,b.com", // decreasing
		"1,",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestTop(t *testing.T) {
	l := FromDomains([]string{"a.com", "b.com", "c.com"})
	if got := l.Top(2); len(got) != 2 || got[1] != "b.com" {
		t.Fatalf("Top(2) = %v", got)
	}
	if got := l.Top(10); len(got) != 3 {
		t.Fatalf("Top(10) = %v", got)
	}
}
