// Package tranco reads and writes Tranco-style top-site lists — the
// "rank,domain" CSV format of the research-oriented ranking the paper
// draws its 10,000 seeder domains from (§3.1). The synthetic world
// publishes its popularity ranking in this format, and the crawler can be
// seeded from any such file, so real Tranco snapshots plug in directly
// when crawling outside the simulation.
package tranco

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one ranked domain.
type Entry struct {
	Rank   int
	Domain string
}

// List is a parsed ranking, ordered by rank.
type List struct {
	Entries []Entry
}

// Domains returns the domains in rank order.
func (l *List) Domains() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.Domain
	}
	return out
}

// Top returns the n highest-ranked domains (all if n exceeds the list).
func (l *List) Top(n int) []string {
	d := l.Domains()
	if n < len(d) {
		d = d[:n]
	}
	return d
}

// FromDomains builds a list from domains already in rank order.
func FromDomains(domains []string) *List {
	l := &List{Entries: make([]Entry, len(domains))}
	for i, d := range domains {
		l.Entries[i] = Entry{Rank: i + 1, Domain: d}
	}
	return l
}

// Write emits the list in Tranco's CSV format: "rank,domain" lines.
func Write(w io.Writer, l *List) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a Tranco-style CSV. Blank lines and #-comments are skipped.
// Ranks must be positive and strictly increasing; domains must be
// non-empty.
func Parse(r io.Reader) (*List, error) {
	l := &List{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	prevRank := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rankStr, domain, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("tranco: line %d: want rank,domain, got %q", lineNo, line)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil || rank <= 0 {
			return nil, fmt.Errorf("tranco: line %d: bad rank %q", lineNo, rankStr)
		}
		if rank <= prevRank {
			return nil, fmt.Errorf("tranco: line %d: rank %d not increasing", lineNo, rank)
		}
		prevRank = rank
		domain = strings.ToLower(strings.TrimSpace(domain))
		if domain == "" {
			return nil, fmt.Errorf("tranco: line %d: empty domain", lineNo)
		}
		l.Entries = append(l.Entries, Entry{Rank: rank, Domain: domain})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tranco: %w", err)
	}
	return l, nil
}
