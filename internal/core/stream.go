package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

// Progress is a snapshot of a run's advancement, delivered to
// Config.OnProgress. WalksAnalyzed trails WalksDone by the walks
// sitting in the streaming queue (QueueDepth); in batch mode it jumps
// from 0 to WalksTotal when the analysis phase completes.
type Progress struct {
	WalksTotal    int
	WalksDone     int
	WalksAnalyzed int
	QueueDepth    int
}

// progressNotifier serializes Progress mutations and callback delivery
// so OnProgress observers see monotonic snapshots. All methods are
// no-ops when no callback is registered.
type progressNotifier struct {
	mu sync.Mutex
	fn func(Progress)
	p  Progress
}

func newProgressNotifier(fn func(Progress), walks int) *progressNotifier {
	return &progressNotifier{fn: fn, p: Progress{WalksTotal: walks}}
}

func (n *progressNotifier) update(mut func(*Progress)) {
	if n == nil || n.fn == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	mut(&n.p)
	n.fn(n.p)
}

// analysisStateVersion is bumped when the sidecar layout changes.
const analysisStateVersion = 1

// analysisEntry is one walk's persisted analysis state in the
// checkpoint's "<path>.analysis" sidecar.
type analysisEntry struct {
	Index  int               `json:"index"`
	Tokens tokens.WalkTokens `json:"tokens"`
}

func analysisHeader(seed int64) runio.Header {
	return runio.Header{Format: runio.AnalysisFormat, Version: analysisStateVersion, Seed: seed}
}

// executeStreaming runs the crawl and the per-walk analysis stages
// concurrently: every finished walk is handed through a bounded channel
// to a pool of analysis workers that extract its paths, find its
// candidates, scan its cookie lifetimes and group its tokens, while the
// crawl keeps producing. Only the cross-walk stages (lifetime-index
// merge, deferred classification, ordered reduce, aggregation) wait for
// the last walk.
//
// Determinism: every per-walk product lands in a pre-sized,
// walk-indexed slot and every drain merges those slots in walk-index
// order, so the result is bit-identical to the batch path at any
// parallelism (the same contract as the parallel package).
func executeStreaming(ctx context.Context, cfg Config, world *web.World) (*Run, error) {
	tel := cfg.Telemetry
	reg := tel.Registry()
	par := cfg.analysisParallelism()
	walks := cfg.walkCount(world)

	esp := tel.StartSpan("core", "stream")

	// Resume: adopt per-walk analysis state persisted by a previous,
	// interrupted streaming run. Only walks the checkpoint will actually
	// resume (rather than re-crawl) are eligible — the snapshot is taken
	// before the crawl starts, so the two sets match exactly.
	var sidecar *runio.LineFile
	restored := map[int]tokens.WalkTokens{}
	if cp := cfg.Checkpoint; cp != nil && cp.Path() != "" {
		resumable := map[int]bool{}
		for _, i := range cp.CompletedIndices() {
			resumable[i] = true
		}
		scPath := cp.Path() + ".analysis"
		scOpts := runio.OpenOptions{Tel: tel}
		lf, lines, err := runio.OpenLineFileOpts(scPath, analysisHeader(cfg.World.Seed), scOpts)
		if errors.Is(err, runio.ErrCorrupt) {
			// The sidecar is a pure cache of per-walk analysis state: with
			// the corrupt file quarantined, start a fresh one and recompute
			// the tokens from the checkpointed walks. The run stays
			// byte-identical — only the restore fast path is lost.
			reg.Counter("core.stream_sidecar_errors").Inc()
			lf, lines, err = runio.OpenLineFileOpts(scPath, analysisHeader(cfg.World.Seed), scOpts)
		}
		if err != nil {
			esp.EndErr(err)
			return nil, fmt.Errorf("core: analysis state: %w", err)
		}
		sidecar = lf
		defer sidecar.Close()
		for _, line := range lines {
			var e analysisEntry
			if json.Unmarshal(line, &e) != nil {
				break // schema mismatch in the tail: stop, like a torn write
			}
			if resumable[e.Index] {
				restored[e.Index] = e.Tokens // last entry wins
			}
		}
	}

	acc := tokens.NewAccumulator(cfg.World.Seed, walks, crawler.AllCrawlers, tel)
	lifeAcc := uid.NewLifetimeAccumulator(walks)
	opt := cfg.Identify
	if opt.Parallelism == 0 {
		opt.Parallelism = par
	}
	if opt.Telemetry == nil {
		opt.Telemetry = tel
	}
	ident := uid.NewStreamIdentifier(walks, opt)

	notify := newProgressNotifier(cfg.OnProgress, walks)
	queueDepth := reg.Gauge("core.stream_queue_depth")
	workers := reg.Gauge("core.stream_workers")
	analyzed := reg.Counter("core.stream_walks_analyzed")
	restoredCtr := reg.Counter("core.stream_walks_restored")
	sidecarErrs := reg.Counter("core.stream_sidecar_errors")

	walkCh := make(chan *crawler.Walk, par)
	var wwg sync.WaitGroup
	for k := 0; k < par; k++ {
		wwg.Add(1)
		workers.Add(1)
		go func() {
			defer wwg.Done()
			defer workers.Add(-1)
			for w := range walkCh {
				queueDepth.Add(-1)
				sp := tel.StartSpan("analysis", "stream_walk").
					Attr("walk", strconv.Itoa(w.Index))
				lifeAcc.AddWalk(w)
				wt, ok := restored[w.Index]
				if ok {
					acc.Restore(w.Index, wt)
					restoredCtr.Inc()
					sp.Attr("restored", "true")
				} else {
					wt = acc.AddWalk(w)
					if sidecar != nil && !w.Skipped {
						if err := sidecar.Append(analysisEntry{Index: w.Index, Tokens: wt}); err != nil {
							sidecarErrs.Inc()
						}
					}
				}
				ident.AddWalk(w.Index, wt.Candidates)
				sp.End()
				analyzed.Inc()
				notify.update(func(p *Progress) {
					p.WalksAnalyzed++
					p.QueueDepth--
				})
			}
		}()
	}

	ccfg := cfg.crawlConfig(world)
	ccfg.WalkSink = func(w *crawler.Walk) {
		queueDepth.Add(1)
		notify.update(func(p *Progress) {
			p.WalksDone++
			p.QueueDepth++
		})
		walkCh <- w
	}

	csp := tel.StartSpan("core", "crawl")
	ds, crawlErr := crawler.CrawlContext(ctx, ccfg)
	// CrawlContext only returns once every walk goroutine — and with it
	// every WalkSink call — has finished, so the channel can close now.
	// The workers are drained even on crawl failure: a cancelled run
	// must not leak analysis goroutines.
	close(walkCh)
	wwg.Wait()
	if crawlErr != nil {
		csp.EndErr(crawlErr)
		esp.EndErr(crawlErr)
		return nil, fmt.Errorf("core: crawl: %w", crawlErr)
	}
	csp.End()

	// Drain: merge every per-walk product in walk-index order and run
	// the cross-walk stages.
	dsp := tel.StartSpan("analysis", "stream_drain")
	paths, cands := acc.Drain()
	lifetimes := lifeAcc.Drain()
	cases, stats, err := ident.Drain(ctx, lifetimes)
	if err != nil {
		dsp.EndErr(err)
		esp.EndErr(err)
		return nil, fmt.Errorf("core: identify: %w", err)
	}
	agg, err := analysis.NewContext(ctx, ds, paths, cases, par, tel)
	if err != nil {
		dsp.EndErr(err)
		esp.EndErr(err)
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	dsp.End()
	esp.End()

	return &Run{
		Config:     cfg,
		World:      world,
		Dataset:    ds,
		Paths:      paths,
		Candidates: cands,
		Cases:      cases,
		Stats:      stats,
		Analysis:   agg,
		Lifetimes:  lifetimes,
	}, nil
}
