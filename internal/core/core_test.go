package core

import (
	"sync"
	"testing"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/countermeasures"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

var (
	runOnce sync.Once
	testRun *Run
	runErr  error
)

// sharedRun executes the small pipeline once per test binary.
func sharedRun(t *testing.T) *Run {
	t.Helper()
	runOnce.Do(func() {
		cfg := SmallConfig()
		cfg.Walks = 60
		testRun, runErr = Execute(cfg)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return testRun
}

func TestPipelineFindsSmuggling(t *testing.T) {
	r := sharedRun(t)
	if len(r.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if len(r.Cases) == 0 {
		t.Fatal("no confirmed UID cases")
	}
	rate := r.Analysis.SmugglingRate()
	if rate <= 0 || rate > 0.5 {
		t.Fatalf("smuggling rate = %.4f, want (0, 0.5]", rate)
	}
	t.Logf("candidates=%d cases=%d rate=%.2f%% stats=%+v",
		len(r.Candidates), len(r.Cases), 100*rate, r.Stats)
}

func TestPipelinePrecisionAgainstTruth(t *testing.T) {
	r := sharedRun(t)
	eval := r.EvaluateTruth()
	if eval.Cases == 0 {
		t.Fatal("nothing to evaluate")
	}
	if p := eval.Precision(); p < 0.9 {
		t.Fatalf("precision = %.3f (%d FP of %d) — filters are letting junk through",
			p, eval.FalsePositive, eval.Cases)
	}
}

func TestPipelineSummaryShape(t *testing.T) {
	r := sharedRun(t)
	s := r.Analysis.Summarize()
	if s.UniqueURLPaths == 0 || s.UniqueURLPathsSmuggling == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.UniqueURLPathsSmuggling > s.UniqueURLPaths {
		t.Fatal("smuggling paths exceed total paths")
	}
	if s.UniqueDomainPathsSmuggling > s.UniqueURLPathsSmuggling {
		t.Fatal("domain paths exceed URL paths")
	}
	if s.DedicatedSmugglers+s.MultiPurposeSmugglers != s.UniqueRedirectors {
		t.Fatal("smuggler split doesn't sum to redirectors")
	}
	if s.UniqueOriginators == 0 || s.UniqueDestinations == 0 {
		t.Fatalf("no participants: %+v", s)
	}
}

func TestPipelineDedicatedClassificationAgainstTruth(t *testing.T) {
	r := sharedRun(t)
	truth := r.World.Truth()
	dedicated := r.Analysis.DedicatedSmugglers()
	if len(dedicated) == 0 {
		t.Fatal("no dedicated smugglers classified")
	}
	for _, host := range dedicated {
		// Every classified host must at least be a true smuggling
		// redirector. A multi-purpose host (e.g. an SSO sign-in page)
		// may be classified dedicated when the crawl happened never to
		// observe its user-facing role — the sampling limitation the
		// paper itself notes for its conservative heuristic.
		if !truth.IsSmuggler(host) {
			t.Errorf("host %s classified dedicated but is not a smuggler at all", host)
		}
		if !truth.IsDedicated(host) {
			t.Logf("note: %s classified dedicated; truth says multi-purpose (not observed as endpoint in this crawl)", host)
		}
	}
}

func TestPipelineTable1Buckets(t *testing.T) {
	r := sharedRun(t)
	counts := uid.BucketCounts(r.Cases)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(r.Cases) {
		t.Fatalf("bucket total %d != cases %d", total, len(r.Cases))
	}
	t.Logf("table 1: %v", counts)
}

func TestPipelineFigures(t *testing.T) {
	r := sharedRun(t)
	origs, dests := r.Analysis.TopOrganizations(r.Attributor(), 10)
	if len(origs) == 0 || len(dests) == 0 {
		t.Fatal("figure 4 empty")
	}
	co, cd := r.Analysis.CategoryBreakdown(r.Taxonomy())
	if len(co) == 0 || len(cd) == 0 {
		t.Fatal("figure 5 empty")
	}
	hist := r.Analysis.RedirectorHistogram()
	if len(hist) == 0 {
		t.Fatal("figure 7 empty")
	}
	totalPaths := 0
	for _, b := range hist {
		totalPaths += b.Total()
	}
	if totalPaths != r.Analysis.Summarize().UniqueURLPathsSmuggling {
		t.Fatalf("figure 7 paths %d != smuggling paths %d",
			totalPaths, r.Analysis.Summarize().UniqueURLPathsSmuggling)
	}
	portions := r.Analysis.PathPortions()
	totalUIDs := 0
	for _, pc := range portions {
		totalUIDs += pc.Total()
	}
	if totalUIDs != len(r.Cases) {
		t.Fatalf("figure 8 UIDs %d != cases %d", totalUIDs, len(r.Cases))
	}
}

func TestPipelineThirdParties(t *testing.T) {
	r := sharedRun(t)
	tps := r.Analysis.ThirdPartyReceivers(20)
	if len(tps) == 0 {
		t.Fatal("figure 6 empty — no third-party UID leakage observed")
	}
}

func TestPipelineCoverageGaps(t *testing.T) {
	r := sharedRun(t)
	gap := r.DisconnectDomains().MissingFraction(r.Analysis.DedicatedSmugglers())
	if gap <= 0 || gap >= 1 {
		t.Logf("disconnect gap = %.2f (extreme values possible at small scale)", gap)
	}
	blocked := r.EasyList().BlockedFraction(r.Analysis.SmugglingURLs())
	if blocked < 0 || blocked > 0.5 {
		t.Fatalf("easylist blocked fraction = %.3f", blocked)
	}
}

func TestPipelineReidentifyAblation(t *testing.T) {
	r := sharedRun(t)
	two, _, _ := r.Reidentify(uid.Options{Crawlers: []string{crawler.Safari1, crawler.Safari2}})
	// The two-crawler baseline must miss true UIDs the full method found
	// (everything observed only on Chrome-3 or only on the repeat pair)…
	key := func(c *uid.Case) string {
		return c.Group.Name + "/" + string(rune(c.Group.Walk)) + "/" + string(rune(c.Group.Step))
	}
	twoSet := map[string]bool{}
	for _, c := range two {
		twoSet[key(c)] = true
	}
	missed := 0
	for _, c := range r.Cases {
		if !twoSet[key(c)] {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("two-crawler baseline missed nothing — single-crawler cases absent?")
	}
	// …and, lacking Safari-1R, it admits session IDs the full method
	// discarded, so its precision against ground truth cannot be higher.
	truth := r.World.Truth()
	precision := func(cases []*uid.Case) float64 {
		if len(cases) == 0 {
			return 1
		}
		tp := 0
		for _, c := range cases {
			if truth.IsUIDParam(c.Group.Name) {
				tp++
			}
		}
		return float64(tp) / float64(len(cases))
	}
	pFull, pTwo := precision(r.Cases), precision(two)
	if pTwo > pFull+1e-9 {
		t.Fatalf("two-crawler precision %.3f exceeds full method %.3f", pTwo, pFull)
	}
	t.Logf("full=%d (p=%.3f) two-crawler=%d (p=%.3f) missed=%d", len(r.Cases), pFull, len(two), pTwo, missed)
}

func TestPipelineBounceTracking(t *testing.T) {
	r := sharedRun(t)
	if r.Analysis.BounceRate() <= 0 {
		t.Fatal("no bounce tracking observed")
	}
}

func TestPipelineFingerprintingExperiment(t *testing.T) {
	r := sharedRun(t)
	exp, err := r.Analysis.FingerprintingExperiment(r.World.Fingerprinters())
	if err != nil {
		t.Skipf("degenerate at small scale: %v", err)
	}
	if exp.FPMulti.Trials+exp.NonFPMulti.Trials != len(r.Cases) {
		t.Fatal("experiment does not cover all cases")
	}
}

func TestPipelineFailureRates(t *testing.T) {
	r := sharedRun(t)
	fr := r.Analysis.FailureRates()
	if fr.Steps == 0 {
		t.Fatal("no steps")
	}
	if fr.NoCommonElement < 0 || fr.NoCommonElement > 0.5 {
		t.Fatalf("no-common-element rate = %.3f", fr.NoCommonElement)
	}
	t.Logf("failure rates: %+v", fr)
}

func TestPipelineSessionLifetimes(t *testing.T) {
	r := sharedRun(t)
	st := uid.ComputeLifetimeStats(r.Cases, r.Lifetimes)
	if st.WithCookie == 0 {
		t.Skip("no UID matched a stored cookie at small scale")
	}
	if st.Under90Days < st.Under30Days {
		t.Fatal("lifetime stats inconsistent")
	}
}

func TestPipelineIgnoresCookieSyncing(t *testing.T) {
	// Cookie syncing (§8.2) shares UIDs between third parties on one
	// page via beacons — it never crosses first-party contexts through a
	// navigation, so it must produce no smuggling cases.
	r := sharedRun(t)
	for _, c := range r.Cases {
		if c.Group.Name == "puid" || c.Group.Name == "partner_uid" {
			t.Fatalf("cookie-sync token flagged as smuggling: %s", c.Group.Name)
		}
	}
}

func TestITPClassifierCoverage(t *testing.T) {
	// Safari's ITP-style heuristic (§7.1) over the crawl's paths: every
	// host it classifies must truly be a navigational redirector, and it
	// should find a good share of the hosts our analysis classifies as
	// dedicated smugglers.
	r := sharedRun(t)
	itp := countermeasures.NewITPClassifier()
	for _, p := range r.Paths {
		itp.ObservePath(p)
	}
	classified := map[string]bool{}
	for _, h := range itp.Classified() {
		classified[h] = true
	}
	if len(classified) == 0 {
		t.Fatal("ITP classified nothing")
	}
	dedicated := r.Analysis.DedicatedSmugglers()
	if len(dedicated) == 0 {
		t.Skip("no dedicated smugglers at this scale")
	}
	covered := 0
	for _, h := range dedicated {
		if classified[h] {
			covered++
		}
	}
	if covered == 0 {
		t.Fatalf("ITP covered none of %d dedicated smugglers", len(dedicated))
	}
	t.Logf("ITP classified %d hosts, covering %d/%d dedicated smugglers",
		len(classified), covered, len(dedicated))
}

func TestRefererSmugglingInvisibleToPipeline(t *testing.T) {
	// §6 limitation: UIDs riding the Referer header never become cases,
	// but the evaluation harness can count them via ground truth.
	r := sharedRun(t)
	refSmugglers := map[string]bool{}
	for _, tr := range r.World.Trackers() {
		if tr.RefererSmuggler {
			refSmugglers[tr.Param] = true
		}
	}
	if len(refSmugglers) == 0 {
		t.Skip("no referer smugglers in this world")
	}
	for _, c := range r.Cases {
		if refSmugglers[c.Group.Name] {
			t.Fatalf("referer-smuggled param %s surfaced as a case — it should be invisible", c.Group.Name)
		}
	}
	missed := r.MissedRefererTransfers()
	t.Logf("referer transfers invisible to the pipeline: %d", missed)
}

func TestStorageSourceBreakdown(t *testing.T) {
	r := sharedRun(t)
	breakdown := r.Analysis.StorageSourceBreakdown()
	total := 0
	for _, n := range breakdown {
		total += n
	}
	if total != len(r.Cases) {
		t.Fatalf("breakdown covers %d of %d cases", total, len(r.Cases))
	}
	// Both originator-storage-backed UIDs (decorator cookies) and
	// query-only UIDs (ad partition IDs minted server-side) must exist —
	// §3.6's "tokens are also not required to appear as cookies or local
	// storage values".
	if breakdown["originator cookie"] == 0 {
		t.Error("no cookie-backed UIDs")
	}
	if breakdown["query parameters only"] == 0 {
		t.Error("no query-only UIDs")
	}
	t.Logf("storage sources: %v", breakdown)
}

func TestFailuresByStepNoTrend(t *testing.T) {
	// §3.3: failure probability should be independent of the step index.
	r := sharedRun(t)
	rows := r.Analysis.FailuresByStep()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Sanity: early steps must have the most attempts (walks die off).
	if len(rows) > 2 && rows[0].Attempts < rows[len(rows)-1].Attempts {
		t.Fatal("attempts should not grow with step index")
	}
	for _, row := range rows {
		if row.Attempts > 0 && (row.NoCommonElement < 0 || row.NoCommonElement > 1) {
			t.Fatalf("rate out of range: %+v", row)
		}
	}
}

func TestPrecisionVacuousTruth(t *testing.T) {
	// An empty run made no false claims: precision is 1.0 (vacuous
	// truth), not 0 — dashboards must not read "no cases" as "0%
	// precise".
	if p := (TruthEval{}).Precision(); p != 1 {
		t.Fatalf("empty TruthEval precision = %v, want 1", p)
	}
	e := TruthEval{Cases: 4, TruePositive: 3, FalsePositive: 1}
	if p := e.Precision(); p != 0.75 {
		t.Fatalf("precision = %v, want 0.75", p)
	}
}

func TestCountRefererTransfersMultiValuedParams(t *testing.T) {
	// A Referer carrying the same UID parameter twice with different
	// values is two distinct transfers; the same (param, value) pair
	// seen twice in one step is one.
	rec := &crawler.CrawlerStep{
		Crawler: crawler.Safari1,
		Requests: []browser.RequestRecord{
			{
				Kind:    browser.KindNavigation,
				URL:     "http://dest.com/land",
				Referer: "http://origin.com/page?uid=aaaa1111&uid=bbbb2222&lang=en",
			},
			{ // duplicate request: same values must not double-count
				Kind:    browser.KindNavigation,
				URL:     "http://dest.com/land",
				Referer: "http://origin.com/page?uid=aaaa1111&uid=bbbb2222",
			},
			{ // same-site navigation: never counted
				Kind:    browser.KindNavigation,
				URL:     "http://origin.com/other",
				Referer: "http://origin.com/page?uid=cccc3333",
			},
			{ // UID also present on the target URL: the pipeline sees it
				Kind:    browser.KindNavigation,
				URL:     "http://dest.com/land?uid=dddd4444",
				Referer: "http://origin.com/page?uid=dddd4444",
			},
		},
	}
	ds := &crawler.Dataset{Walks: []*crawler.Walk{{
		Index: 0,
		Steps: []*crawler.Step{{
			Walk: 0, Index: 1,
			Records: map[string]*crawler.CrawlerStep{crawler.Safari1: rec},
		}},
	}}}
	isUID := func(param string) bool { return param == "uid" }
	if got := CountRefererTransfers(ds, isUID); got != 2 {
		t.Fatalf("CountRefererTransfers = %d, want 2 (both values of the repeated param)", got)
	}
}

func TestConfigMachinesPlumbed(t *testing.T) {
	// DefaultConfig keeps the paper's 12 EC2 instances; SmallConfig must
	// not spread 4 walks across 12 phantom fingerprint surfaces.
	if got := DefaultConfig().Machines; got != 12 {
		t.Fatalf("DefaultConfig().Machines = %d, want 12", got)
	}
	if got := SmallConfig().Machines; got != 0 {
		t.Fatalf("SmallConfig().Machines = %d, want 0 (single machine)", got)
	}
	// The knob must reach the crawl rather than being hard-coded: the
	// crawler config Execute builds must carry exactly the configured
	// machine count (a previous version pinned 12 for every run).
	cfg := SmallConfig()
	cfg.Machines = 5
	cfg.NoIframes = true
	world := web.BuildWorld(cfg.World)
	ccfg := cfg.crawlConfig(world)
	if ccfg.Machines != 5 {
		t.Fatalf("crawlConfig Machines = %d, want 5", ccfg.Machines)
	}
	if !ccfg.NoIframes {
		t.Fatal("crawlConfig dropped NoIframes")
	}
	if ccfg.Seed != cfg.World.Seed || ccfg.Walks != cfg.Walks || ccfg.Parallelism != cfg.Parallelism {
		t.Fatalf("crawlConfig mistranslated: %+v", ccfg)
	}
}
