package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runstore"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

// storeSource adapts a runstore.Store to the analysis.WalkSource
// contract. Step totals and outcome counts are tallied once during the
// feed pass — the one full-store scan AnalyzeStore performs anyway —
// so the figure code never re-reads the store for counters.
type storeSource struct {
	st       runstore.Store
	walks    int
	steps    int
	outcomes map[crawler.StepOutcome]int
}

func (s *storeSource) WalkCount() int { return s.walks }
func (s *storeSource) StepCount() int { return s.steps }

func (s *storeSource) OutcomeCounts() map[crawler.StepOutcome]int { return s.outcomes }

func (s *storeSource) ForEachWalk(fn func(*crawler.Walk) error) error {
	cur := s.st.Iter()
	defer cur.Close()
	for {
		w, err := cur.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := fn(w); err != nil {
			return err
		}
	}
}

func (s *storeSource) Walk(idx int) *crawler.Walk {
	w, err := s.st.Get(idx)
	if err != nil {
		return nil
	}
	return w
}

// observe folds one walk into the cached counters.
func (s *storeSource) observe(w *crawler.Walk) {
	s.walks++
	s.steps += len(w.Steps)
	for _, st := range w.Steps {
		s.outcomes[st.Outcome]++
	}
}

// AnalyzeStore runs the post-crawl pipeline over a stored run by
// cursor: each walk streams through token extraction, lifetime
// scanning and UID grouping exactly as the live streaming engine does,
// and the figure aggregation replays the store on demand. The decoded
// dataset is never resident all at once — memory is O(paths +
// candidates + one segment) — so 100k-walk stores analyse within a
// laptop-class budget. Results are byte-identical to loading the whole
// run and calling Analyze, because both paths fold the same walks in
// the same index order through the same accumulators.
//
// The returned Run has a nil Dataset; every consumer in the tree
// (metrics, report, Reidentify, MissedRefererTransfers) reads walk
// statistics through Run.Analysis instead.
func AnalyzeStore(ctx context.Context, cfg Config, world *web.World, st runstore.Store) (*Run, error) {
	src := &storeSource{st: st, outcomes: map[crawler.StepOutcome]int{}}
	return analyzeFeed(ctx, cfg, world, src, st.Walks(), func(fn func(*crawler.Walk) error) error {
		cur := st.Iter()
		defer cur.Close()
		for {
			w, err := cur.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			src.observe(w)
			if err := fn(w); err != nil {
				return err
			}
		}
	})
}

// AnalyzeSource is AnalyzeStore for a walk source that already knows
// its walk count — a Dataset, or the cached source of a previously
// analyzed store-backed run. ReanalyzeContext uses it to re-run the
// pipeline with altered settings when no decoded dataset exists.
func AnalyzeSource(ctx context.Context, cfg Config, world *web.World, src analysis.WalkSource) (*Run, error) {
	return analyzeFeed(ctx, cfg, world, src, src.WalkCount(), src.ForEachWalk)
}

// analyzeFeed streams walks from iter through the same accumulators the
// live streaming engine uses, then aggregates figures over src — so
// results are byte-identical to Analyze over the decoded dataset.
func analyzeFeed(ctx context.Context, cfg Config, world *web.World, src analysis.WalkSource, total int,
	iter func(func(*crawler.Walk) error) error) (*Run, error) {
	tel := cfg.Telemetry
	par := cfg.analysisParallelism()

	acc := tokens.NewAccumulator(cfg.World.Seed, total, crawler.AllCrawlers, tel)
	lifeAcc := uid.NewLifetimeAccumulator(total)
	opt := cfg.Identify
	if opt.Parallelism == 0 {
		opt.Parallelism = par
	}
	if opt.Telemetry == nil {
		opt.Telemetry = tel
	}
	ident := uid.NewStreamIdentifier(total, opt)

	sp := tel.StartSpan("core", "analyze_store")
	ierr := iter(func(w *crawler.Walk) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		lifeAcc.AddWalk(w)
		wt := acc.AddWalk(w)
		ident.AddWalk(w.Index, wt.Candidates)
		return nil
	})
	if ierr != nil {
		sp.EndErr(ierr)
		return nil, fmt.Errorf("core: analyze store: %w", ierr)
	}

	paths, cands := acc.Drain()
	lifetimes := lifeAcc.Drain()
	cases, stats, err := ident.Drain(ctx, lifetimes)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: identify: %w", err)
	}
	agg, err := analysis.NewFromSource(ctx, src, paths, cases, par, tel)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	sp.End()

	return &Run{
		Config:     cfg,
		World:      world,
		Paths:      paths,
		Candidates: cands,
		Cases:      cases,
		Stats:      stats,
		Analysis:   agg,
		Lifetimes:  lifetimes,
	}, nil
}
