// Package core wires the full CrumbCruncher pipeline end to end: build
// the synthetic web, run the four-crawler measurement crawl, extract and
// identify UIDs, and expose the analysis that reproduces every table and
// figure in the paper. The public crumbcruncher package is a facade over
// this package.
package core

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/category"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/entity"
	"crumbcruncher/internal/filterlist"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

// Config configures a full pipeline run.
type Config struct {
	// World configures the synthetic web.
	World web.Config
	// Walks is the number of random walks (0: one per seeder).
	Walks int
	// StepsPerWalk is the walk length (0: the paper's 10).
	StepsPerWalk int
	// Parallelism bounds concurrency across the whole pipeline: the
	// number of concurrent walks during the crawl and the worker-pool
	// size of every post-crawl analysis stage (path reconstruction,
	// candidate extraction, UID identification, aggregation). Every
	// post-crawl stage is bit-identical for any value (see Reanalyze);
	// the crawl itself is only run-repeatable at 1, because concurrent
	// walks share the virtual clock whose readings reach page URLs. 0
	// means sequential; DefaultConfig sets 12, the paper's EC2 count.
	Parallelism int
	// Machines is the number of simulated crawl machines the walks'
	// fingerprint surfaces are spread across (§3.8). 0 or 1 keeps every
	// walk on one machine; DefaultConfig sets the paper's 12 EC2
	// instances.
	Machines int
	// IframeBias is the controller's iframe preference (0: the 0.3
	// default; set NoIframes for a true zero).
	IframeBias float64
	// NoIframes forces a zero iframe preference, which IframeBias alone
	// cannot express (its zero value selects the default bias).
	NoIframes bool
	// Identify configures UID identification (zero value: the paper's
	// full method).
	Identify uid.Options
	// Retry is the crawl's navigation retry policy: capped exponential
	// backoff with seeded jitter, slept on the virtual clock. The zero
	// value performs no retries.
	Retry resilience.Policy `json:"retry,omitempty"`
	// Breaker configures per-registered-domain circuit breakers for the
	// crawl; the zero value disables them.
	Breaker resilience.BreakerConfig `json:"breaker,omitempty"`
	// RequestDeadline, when > 0, makes the virtual network time out any
	// request whose latency (including injected spikes) would exceed it.
	RequestDeadline time.Duration `json:"request_deadline,omitempty"`
	// ControllerHTTP routes crawler↔controller rendezvous over the
	// paper-faithful loopback HTTP server instead of direct in-process
	// calls. The controller's decisions are a pure function of the
	// submitted element lists either way, so results are bit-identical;
	// the HTTP transport only adds a real TCP connection, JSON encode /
	// decode and header churn per step, which profiles showed as a top
	// allocation source. Off by default; turn it on to exercise the
	// deployment shape the paper describes (§3.1).
	ControllerHTTP bool `json:"controller_http,omitempty"`
	// BatchAnalysis restores the pre-streaming two-phase execution:
	// crawl the complete dataset first, then run the post-crawl stages
	// over it. The default (false) streams each walk through token
	// extraction and UID grouping as it finishes; both modes produce
	// bit-identical results (see TestStreamingMatchesBatch), so this is
	// a scheduling knob, not a semantic one.
	BatchAnalysis bool `json:"batch_analysis,omitempty"`
	// Checkpoint, when non-nil, records completed walks incrementally
	// and resumes an interrupted crawl without redoing finished walks.
	// Under the streaming engine the per-walk analysis state is
	// persisted alongside it (in "<path>.analysis"), so resumed walks
	// skip re-analysis too. Runtime wiring, not configuration.
	Checkpoint *crawler.Checkpoint `json:"-"`
	// OnProgress, when non-nil, receives a progress snapshot every time
	// a walk completes or is analyzed. Called from crawl and analysis
	// goroutines (serialized internally); keep it fast. Runtime wiring.
	OnProgress func(Progress) `json:"-"`
	// Telemetry, when non-nil, observes the whole pipeline: spans and
	// metrics from the network simulator, browsers, crawler and every
	// analysis stage. It is runtime wiring, not configuration (not
	// serialized), and strictly observational: a run with telemetry
	// produces bit-identical results to one without.
	Telemetry *telemetry.Telemetry `json:"-"`
}

// Hash returns the SHA-256 of the configuration's canonical JSON with
// every knob that provably cannot change run results normalized away:
// Parallelism is zeroed (every pipeline stage is bit-identical at any
// pool size) and the runtime wiring (Telemetry, Checkpoint, OnProgress)
// never serializes. Two configs with equal hashes therefore produce
// byte-identical runs, which is exactly the contract the serve layer's
// world cache and run provenance need: a scheduling knob must never
// fragment the world cache or make two reruns of the same study look
// like different studies.
//
// BatchAnalysis and ControllerHTTP, though also bit-identical modes,
// stay in the digest: they select genuinely different execution shapes
// and keeping them visible makes provenance blocks more useful.
func (cfg Config) Hash() string {
	cfg.Parallelism = 0
	cfg.Telemetry = nil
	cfg.Checkpoint = nil
	cfg.OnProgress = nil
	// The method-free alias keeps telemetry.ConfigHash on its generic
	// JSON path instead of recursing back into Hash via the Hasher
	// interface.
	type canonical Config
	return telemetry.ConfigHash(canonical(cfg))
}

// analysisParallelism is the worker-pool size for the post-crawl stages.
func (cfg Config) analysisParallelism() int {
	if cfg.Parallelism < 1 {
		return 1
	}
	return cfg.Parallelism
}

// DefaultConfig returns the paper-scale configuration: the default world
// with one walk per seeder domain.
func DefaultConfig() Config {
	w := web.DefaultConfig()
	return Config{World: w, Walks: 2000, Parallelism: 12, Machines: 12}
}

// SmallConfig returns a fast configuration for tests and examples.
func SmallConfig() Config {
	return Config{World: web.SmallConfig(), Walks: 30, Parallelism: 4}
}

// Run is a completed pipeline run.
type Run struct {
	Config     Config
	World      *web.World
	Dataset    *crawler.Dataset
	Paths      []*tokens.Path
	Candidates []*tokens.Candidate
	Cases      []*uid.Case
	Stats      uid.Stats
	Analysis   *analysis.Analysis
	Lifetimes  *uid.LifetimeIndex
}

// Execute runs the full pipeline.
func Execute(cfg Config) (*Run, error) {
	return ExecuteContext(context.Background(), cfg)
}

// ExecuteContext runs the full pipeline under ctx. Cancelling mid-crawl
// drains in-flight walks gracefully (recording them to the checkpoint,
// when one is attached) and returns ctx's error; the analysis stages are
// skipped for interrupted crawls.
//
// By default execution streams: completed walks flow straight into
// token extraction and UID grouping while the crawl is still running,
// and only the final merge waits for the last walk. Set
// Config.BatchAnalysis to run the crawl and the analysis as two
// sequential phases instead; results are bit-identical either way.
func ExecuteContext(ctx context.Context, cfg Config) (*Run, error) {
	sp := cfg.Telemetry.StartSpan("core", "build_world")
	world := web.BuildWorld(cfg.World)
	sp.End()
	return executeInWorld(ctx, cfg, world)
}

// ExecuteInWorld is ExecuteContext over a pre-built world: the crawl
// runs against the supplied world instead of constructing one from
// cfg.World. This is the serve layer's entry point — its world cache
// builds one template per distinct configuration and hands every job a
// run-private fork.
//
// The world must have been built from exactly cfg.World (the pair is
// validated, because walk counts and seeds are derived from the config
// while pages come from the world), and it must be private to this run:
// a World carries per-run mutable state — the virtual network with its
// clock, and the deterministic visit counters — so concurrent runs must
// each bring their own (see web.World.Fork). Results are byte-identical
// to ExecuteContext with the same configuration.
func ExecuteInWorld(ctx context.Context, cfg Config, world *web.World) (*Run, error) {
	if world.Config() != cfg.World {
		return nil, fmt.Errorf("core: world was built from a different configuration than cfg.World")
	}
	return executeInWorld(ctx, cfg, world)
}

// executeInWorld wires telemetry and deadlines into the world's network
// and runs the streaming or batch pipeline over it.
func executeInWorld(ctx context.Context, cfg Config, world *web.World) (*Run, error) {
	// Binds the run's registry (and the virtual clock) to the network;
	// a nil Telemetry leaves the network on its private registry.
	world.Network().SetTelemetry(cfg.Telemetry)
	if cfg.RequestDeadline > 0 {
		world.Network().SetRequestDeadline(cfg.RequestDeadline)
	}
	if !cfg.BatchAnalysis {
		return executeStreaming(ctx, cfg, world)
	}
	notify := newProgressNotifier(cfg.OnProgress, cfg.walkCount(world))
	ccfg := cfg.crawlConfig(world)
	if cfg.OnProgress != nil {
		ccfg.WalkSink = func(*crawler.Walk) {
			notify.update(func(p *Progress) { p.WalksDone++ })
		}
	}
	csp := cfg.Telemetry.StartSpan("core", "crawl")
	ds, err := crawler.CrawlContext(ctx, ccfg)
	if err != nil {
		csp.EndErr(err)
		return nil, fmt.Errorf("core: crawl: %w", err)
	}
	csp.End()
	r, err := AnalyzeContext(ctx, cfg, world, ds)
	if err != nil {
		return nil, err
	}
	notify.update(func(p *Progress) { p.WalksAnalyzed = len(ds.Walks) })
	return r, nil
}

// walkCount resolves the effective number of walks (0 means one per
// seeder, mirroring the crawler's default).
func (cfg Config) walkCount(world *web.World) int {
	if cfg.Walks > 0 {
		return cfg.Walks
	}
	return world.NumSeeders()
}

// crawlConfig translates the run configuration into the crawler's: every
// crawl-affecting knob (including Machines and NoIframes — see their
// field docs) must pass through here rather than being hard-coded.
func (cfg Config) crawlConfig(world *web.World) crawler.Config {
	// Walk i seeds from Seeders[i mod len], so a k-walk crawl only ever
	// consults the first min(k, NumSites) seeders — at million-site
	// scale the full Tranco-style list is never materialised.
	return crawler.Config{
		Seed:             cfg.World.Seed,
		Network:          world.Network(),
		Seeders:          world.SeedersN(cfg.walkCount(world)),
		Walks:            cfg.Walks,
		StepsPerWalk:     cfg.StepsPerWalk,
		Parallelism:      cfg.Parallelism,
		IframeBias:       cfg.IframeBias,
		NoIframes:        cfg.NoIframes,
		Machines:         cfg.Machines,
		Telemetry:        cfg.Telemetry,
		Retry:            cfg.Retry,
		Breaker:          cfg.Breaker,
		Checkpoint:       cfg.Checkpoint,
		DirectController: !cfg.ControllerHTTP,
	}
}

// Analyze runs the post-crawl pipeline over an existing dataset (used by
// cmd/crumbreport to re-analyse saved crawls and by ablations to re-run
// identification with different options). Every stage is sharded over
// cfg.Parallelism workers with deterministic merging, so the output is
// bit-identical to a sequential pass.
func Analyze(cfg Config, world *web.World, ds *crawler.Dataset) (*Run, error) {
	return AnalyzeContext(context.Background(), cfg, world, ds)
}

// AnalyzeContext is Analyze bounded by ctx: cancellation stops every
// stage's shard pool from taking new work and returns ctx's error.
func AnalyzeContext(ctx context.Context, cfg Config, world *web.World, ds *crawler.Dataset) (*Run, error) {
	tel := cfg.Telemetry
	par := cfg.analysisParallelism()

	sp := tel.StartSpan("analysis", "paths")
	paths, err := tokens.PathsFromDatasetCtx(ctx, ds, par, tel)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: paths: %w", err)
	}
	sp.End()

	sp = tel.StartSpan("analysis", "candidates")
	cands, err := tokens.AllCandidatesCtx(ctx, paths, par, tel)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: candidates: %w", err)
	}
	sp.End()

	sp = tel.StartSpan("analysis", "lifetimes")
	lifetimes := uid.BuildLifetimeIndex(ds)
	sp.End()

	opt := cfg.Identify
	if opt.LifetimeOf == nil {
		opt.LifetimeOf = lifetimes.Lifetime
	}
	if opt.Parallelism == 0 {
		opt.Parallelism = par
	}
	if opt.Telemetry == nil {
		opt.Telemetry = tel
	}
	sp = tel.StartSpan("analysis", "identify")
	cases, stats, err := uid.IdentifyCtx(ctx, cands, opt)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: identify: %w", err)
	}
	sp.End()

	sp = tel.StartSpan("analysis", "aggregate")
	agg, err := analysis.NewContext(ctx, ds, paths, cases, par, tel)
	if err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	sp.End()

	return &Run{
		Config:     cfg,
		World:      world,
		Dataset:    ds,
		Paths:      paths,
		Candidates: cands,
		Cases:      cases,
		Stats:      stats,
		Analysis:   agg,
		Lifetimes:  lifetimes,
	}, nil
}

// Reidentify re-runs UID identification with different options over the
// run's candidates (ablation benchmarks) and returns a fresh analysis.
func (r *Run) Reidentify(opt uid.Options) ([]*uid.Case, uid.Stats, *analysis.Analysis) {
	if opt.LifetimeOf == nil {
		opt.LifetimeOf = r.Lifetimes.Lifetime
	}
	par := r.Config.analysisParallelism()
	if opt.Parallelism == 0 {
		opt.Parallelism = par
	}
	cases, stats := uid.Identify(r.Candidates, opt)
	var src analysis.WalkSource = r.Dataset
	if r.Dataset == nil {
		src = r.Analysis.Source() // store-backed run: replay from the store
	}
	agg, _ := analysis.NewFromSource(context.Background(), src, r.Paths, cases, par, nil)
	return cases, stats, agg
}

// Attributor builds the paper's two-stage organisation attribution: the
// (partial) Disconnect-style entity list, backed by the manual research
// map (complete in the synthetic world).
func (r *Run) Attributor() *entity.Attributor {
	return entity.NewAttributor(
		entity.NewList(r.World.EntityListDomains()),
		entity.NewList(r.World.Organizations()),
	)
}

// Taxonomy builds the Webshrinker-style category lookup.
func (r *Run) Taxonomy() *category.Taxonomy {
	return category.New(r.World.Categories())
}

// DisconnectDomains builds the Disconnect-style tracker list.
func (r *Run) DisconnectDomains() *filterlist.DomainList {
	return filterlist.NewDomainList(r.World.DisconnectList())
}

// EasyList builds the EasyList-style filter list.
func (r *Run) EasyList() *filterlist.List {
	return filterlist.Parse(r.World.EasyListRules())
}

// TruthEval scores the pipeline against the generator's ground truth.
type TruthEval struct {
	// Cases is the number of confirmed UID cases.
	Cases int
	// TruePositive cases have parameter names the world registered as
	// UID-carrying.
	TruePositive int
	// FalsePositive cases carry any other parameter.
	FalsePositive int
}

// Precision returns TP / (TP + FP). With no cases at all it returns 1.0
// (vacuous truth): an empty run made no false claims, and dashboards
// should not read it as 0% precision.
func (e TruthEval) Precision() float64 {
	if e.Cases == 0 {
		return 1
	}
	return float64(e.TruePositive) / float64(e.Cases)
}

// EvaluateTruth compares confirmed cases against ground truth. Only
// evaluation code may consult the world's Truth registry; the pipeline
// itself never does.
func (r *Run) EvaluateTruth() TruthEval {
	var e TruthEval
	truth := r.World.Truth()
	for _, c := range r.Cases {
		e.Cases++
		if truth.IsUIDParam(c.Group.Name) {
			e.TruePositive++
		} else {
			e.FalsePositive++
		}
	}
	return e
}

// MissedRefererTransfers counts UID transfers that rode the Referer
// header across a first-party boundary instead of the navigation URL —
// the §6 limitation: CrumbCruncher "only look[s] for UIDs that are
// transferred in the query parameters of URLs", so these are invisible to
// the pipeline. Ground truth identifies the UID parameters; this is
// evaluation-only code.
func (r *Run) MissedRefererTransfers() int {
	truth := r.World.Truth()
	if r.Dataset != nil {
		return CountRefererTransfers(r.Dataset, truth.IsUIDParam)
	}
	// A store-backed run (AnalyzeStore) has no resident dataset: replay
	// the walks through the analysis source instead. The per-walk count
	// dedups on keys embedding the walk index, so replay order cannot
	// change the total.
	seen := map[string]bool{}
	count := 0
	r.Analysis.Source().ForEachWalk(func(w *crawler.Walk) error {
		count += countWalkRefererTransfers(w, truth.IsUIDParam, seen)
		return nil
	})
	return count
}

// CountRefererTransfers counts cross-site navigations whose Referer query
// string carried a UID parameter (per isUID) that the navigation URL
// itself did not. Every distinct value of a repeated parameter counts,
// deduplicated per (walk, step, crawler, param, value).
func CountRefererTransfers(ds *crawler.Dataset, isUID func(param string) bool) int {
	seen := map[string]bool{}
	count := 0
	for _, w := range ds.Walks {
		count += countWalkRefererTransfers(w, isUID, seen)
	}
	return count
}

// countWalkRefererTransfers folds one walk into the referer-transfer
// count. The dedup keys embed the walk index, so the tally is the same
// whether walks arrive from a dataset slice or a store cursor.
func countWalkRefererTransfers(w *crawler.Walk, isUID func(param string) bool, seen map[string]bool) int {
	count := 0
	for _, s := range w.Steps {
		for name, rec := range s.Records {
			for _, req := range rec.Requests {
				if req.Kind != "navigation" || req.Referer == "" {
					continue
				}
				ref, err := url.Parse(req.Referer)
				if err != nil {
					continue
				}
				target, err := url.Parse(req.URL)
				if err != nil {
					continue
				}
				if publicsuffix.SameSite(ref.Hostname(), target.Hostname()) {
					continue
				}
				targetQ := target.Query()
				for param, vs := range ref.Query() {
					if !isUID(param) {
						continue
					}
					if targetQ.Get(param) != "" {
						continue // also in the URL: the pipeline sees it
					}
					// Count every value of a repeated parameter, not
					// just the first.
					for _, v := range vs {
						key := fmt.Sprintf("%d/%d/%s/%s/%s", w.Index, s.Index, name, param, v)
						if !seen[key] {
							seen[key] = true
							count++
						}
					}
				}
			}
		}
	}
	return count
}
