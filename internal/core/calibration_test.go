package core

import (
	"os"
	"sort"
	"testing"

	"crumbcruncher/internal/uid"
)

// TestCalibrationReport runs the paper-scale pipeline and prints every
// headline metric next to its paper target. It is the tool used to tune
// web.DefaultConfig's base rates; enable with CRUMB_CALIBRATE=1.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("CRUMB_CALIBRATE") == "" {
		t.Skip("set CRUMB_CALIBRATE=1 to run the paper-scale calibration")
	}
	r, err := Execute(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Analysis.Summarize()
	fr := r.Analysis.FailureRates()
	lt := uid.ComputeLifetimeStats(r.Cases, r.Lifetimes)
	buckets := uid.BucketCounts(r.Cases)
	eval := r.EvaluateTruth()

	t.Logf("steps=%d walks=%d", r.Dataset.StepCount(), len(r.Dataset.Walks))
	t.Logf("candidates=%d groups=%d", r.Stats.Candidates, r.Stats.Groups)
	t.Logf("TABLE2: urlPaths=%d (paper 10814) smugglingPaths=%d (850) domainPaths=%d (321) redirectors=%d (214) dedicated=%d (27) multi=%d (187) originators=%d (265) destinations=%d (224)",
		s.UniqueURLPaths, s.UniqueURLPathsSmuggling, s.UniqueDomainPathsSmuggling,
		s.UniqueRedirectors, s.DedicatedSmugglers, s.MultiPurposeSmugglers,
		s.UniqueOriginators, s.UniqueDestinations)
	t.Logf("HEADLINE: smuggling=%.2f%% (paper 8.11%%) bounce=%.2f%% (2.7%%)",
		100*r.Analysis.SmugglingRate(), 100*r.Analysis.BounceRate())
	t.Logf("FAILURES: noMatch=%.1f%% (7.6%%) divergent=%.1f%% (1.8%%) connect=%.1f%% (3.3%%)",
		100*fr.NoCommonElement, 100*fr.Divergent, 100*fr.ConnectError)
	t.Logf("TABLE1: pairPlus=%d (325) diffOnly=%d (171) pairOnly=%d (20) single=%d (445)",
		buckets[uid.BucketPairPlus], buckets[uid.BucketDifferentOnly],
		buckets[uid.BucketPairOnly], buckets[uid.BucketSingle])
	t.Logf("MANUAL: afterProgrammatic=%d (1581) manuallyRemoved=%d (577) final=%d (~1004)",
		r.Stats.AfterProgrammatic, r.Stats.ManuallyRemoved, r.Stats.Final)
	t.Logf("LIFETIME: under90=%.1f%% (16%%) under30=%.1f%% (9%%) withCookie=%d",
		100*lt.Under90Fraction(), 100*lt.Under30Fraction(), lt.WithCookie)
	t.Logf("PRECISION: %.3f (%d FP / %d cases)", eval.Precision(), eval.FalsePositive, eval.Cases)

	if exp, err := r.Analysis.FingerprintingExperiment(r.World.Fingerprinters()); err == nil {
		t.Logf("FP-EXP: onFP=%.1f%% (13%%) fpMulti=%.1f%% (44%%) nonFPMulti=%.1f%% (52%%) z=%.2f p=%.3f",
			100*exp.OnFingerprinters, 100*exp.FPMulti.Value(), 100*exp.NonFPMulti.Value(),
			exp.Z.Z, exp.Z.PValue)
	} else {
		t.Logf("FP-EXP: %v", err)
	}

	gap := r.DisconnectDomains().MissingFraction(r.Analysis.DedicatedSmugglers())
	blocked := r.EasyList().BlockedFraction(r.Analysis.SmugglingURLs())
	t.Logf("LISTS: disconnectGap=%.1f%% (41%%) easylistBlocked=%.1f%% (6%%)", 100*gap, 100*blocked)

	// Diagnostics: false-positive parameter names.
	fpNames := map[string]int{}
	for _, c := range r.Cases {
		if !r.World.Truth().IsUIDParam(c.Group.Name) {
			v := ""
			for _, val := range c.Values {
				v = val
				break
			}
			fpNames[c.Group.Name+"="+v]++
		}
	}
	for k, n := range fpNames {
		t.Logf("FPCASE %d %s", n, k)
	}

	// Diagnostics: which tracker sources feed each bucket.
	paramSource := map[string]string{}
	for _, tr := range r.World.Trackers() {
		if tr.Param != "" {
			paramSource[tr.Param] = tr.Kind.String()
		}
		if tr.MidParam != "" {
			paramSource[tr.MidParam] = tr.Kind.String() + "-mid"
		}
	}
	paramSource["atok"] = "sso"
	srcCount := map[string]int{}
	for _, c := range r.Cases {
		src := paramSource[c.Group.Name]
		if src == "" {
			src = "other:" + r.World.Truth().ParamKindOf(c.Group.Name).String()
		}
		srcCount[string(c.Bucket)+" | "+src]++
	}
	srcKeys := make([]string, 0, len(srcCount))
	for k := range srcCount {
		srcKeys = append(srcKeys, k)
	}
	sort.Strings(srcKeys)
	for _, k := range srcKeys {
		if srcCount[k] > 5 {
			t.Logf("SRC %4d %s", srcCount[k], k)
		}
	}

	// Diagnostics: which crawler combinations and parameter kinds make up
	// each bucket.
	combo := map[string]int{}
	for _, c := range r.Cases {
		key := string(c.Bucket) + " |"
		for _, name := range []string{"Safari-1", "Safari-1R", "Safari-2", "Chrome-3"} {
			if _, ok := c.Values[name]; ok {
				key += " " + name
			}
		}
		key += " | " + r.World.Truth().ParamKindOf(c.Group.Name).String()
		combo[key]++
	}
	keys := make([]string, 0, len(combo))
	for k := range combo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if combo[k] > 10 {
			t.Logf("COMBO %4d %s", combo[k], k)
		}
	}

	top := r.Analysis.TopRedirectors(5)
	for i, row := range top {
		t.Logf("TABLE3[%d]: %s count=%d pct=%.1f%% multi=%v", i, row.Host, row.Count, row.PctDomainPaths, row.MultiPurpose)
	}
	portions := r.Analysis.PathPortions()
	t.Logf("FIG8: %+v", portions)
	hist := r.Analysis.RedirectorHistogram()
	for _, b := range hist {
		t.Logf("FIG7[%d redirectors]: no=%d one=%d two+=%d", b.Redirectors, b.NoDedicated, b.OneDedicated, b.TwoPlusDedicated)
	}
}
