package core

import (
	"context"
	"encoding/json"
	"testing"

	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// TestConfigHashIgnoresSchedulingKnobs pins the world-cache contract:
// two configurations differing only in Parallelism or in attached
// runtime wiring (Telemetry, Checkpoint, OnProgress) produce
// byte-identical runs, so they must hash identically — a scheduling
// knob must never fragment the serve layer's world cache.
func TestConfigHashIgnoresSchedulingKnobs(t *testing.T) {
	base := SmallConfig()
	want := base.Hash()
	if want == "" || want == "unserializable" {
		t.Fatalf("base.Hash() = %q", want)
	}

	par := base
	par.Parallelism = 16
	if got := par.Hash(); got != want {
		t.Errorf("Parallelism fragments the hash: %s != %s", got, want)
	}

	tel := base
	tel.Telemetry = telemetry.New(nil, 16)
	tel.OnProgress = func(Progress) {}
	if got := tel.Hash(); got != want {
		t.Errorf("runtime wiring fragments the hash: %s != %s", got, want)
	}

	seed := base
	seed.World.Seed = base.World.Seed + 1
	if got := seed.Hash(); got == want {
		t.Errorf("seed change did not change the hash: %s", got)
	}
	walks := base
	walks.Walks = base.Walks + 1
	if got := walks.Hash(); got == want {
		t.Errorf("walk-count change did not change the hash: %s", got)
	}
}

// TestProvenanceUsesConfigHash pins that run provenance routes through
// the same canonical hash as the world cache (via telemetry.Hasher), so
// a saved run and the server agree on a configuration's identity.
func TestProvenanceUsesConfigHash(t *testing.T) {
	cfg := SmallConfig()
	if got, want := telemetry.ConfigHash(cfg), cfg.Hash(); got != want {
		t.Errorf("telemetry.ConfigHash(cfg) = %s, want cfg.Hash() = %s", got, want)
	}
}

// TestExecuteInWorldForkMatchesFresh proves a forked world is a perfect
// stand-in for a freshly built one: the full pipeline over a fork of a
// never-crawled template produces the same results as ExecuteContext
// building its own world — and the template stays reusable afterwards.
// Parallelism 1 makes the comparison maximally strict: at 1 the whole
// dataset (virtual timestamps included) is byte-reproducible, so any
// state leaking through a fork would surface here. The serve tests
// cover the parallel/multi-tenant case at the metrics level.
func TestExecuteInWorldForkMatchesFresh(t *testing.T) {
	cfg := SmallConfig()
	cfg.Walks = 10
	cfg.Parallelism = 1
	ref, err := ExecuteContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	template := web.BuildWorld(cfg.World)
	for i := 0; i < 2; i++ {
		run, err := ExecuteInWorld(context.Background(), cfg, template.Fork())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := jsonBytes(t, run.Stats), jsonBytes(t, ref.Stats); string(got) != string(want) {
			t.Fatalf("fork %d: stats diverge from fresh build:\n%s\n%s", i, got, want)
		}
		if got, want := jsonBytes(t, run.Dataset), jsonBytes(t, ref.Dataset); string(got) != string(want) {
			t.Fatalf("fork %d: dataset diverges from fresh build", i)
		}
	}
}

// TestExecuteInWorldRejectsMismatchedWorld pins the guard: handing the
// pipeline a world built from a different configuration is an error,
// not a silently wrong run.
func TestExecuteInWorldRejectsMismatchedWorld(t *testing.T) {
	cfg := SmallConfig()
	other := cfg.World
	other.Seed++
	if _, err := ExecuteInWorld(context.Background(), cfg, web.BuildWorld(other)); err == nil {
		t.Fatal("ExecuteInWorld accepted a world built from a different configuration")
	}
}

func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
