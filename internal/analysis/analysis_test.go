package analysis

import (
	"net/url"
	"testing"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/category"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/entity"
	"crumbcruncher/internal/filterlist"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
)

// path builds a tokens.Path from URLs.
func path(t *testing.T, crawlerName string, walk, step int, urls ...string) *tokens.Path {
	t.Helper()
	p := &tokens.Path{Walk: walk, Step: step, Crawler: crawlerName, Profile: crawler.ProfileOf(crawlerName)}
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		node := tokens.PathNode{URL: raw, Host: u.Hostname(), Domain: regOf(raw)}
		for name, vs := range u.Query() {
			for _, v := range vs {
				node.Tokens = append(node.Tokens, tokens.Pair{Name: name, Value: v})
			}
		}
		p.Nodes = append(p.Nodes, node)
	}
	return p
}

// caseOn builds a uid.Case whose single candidate traverses p.
func caseOn(p *tokens.Path, name string, firstIdx, lastIdx int, bucket uid.Bucket) *uid.Case {
	cand := &tokens.Candidate{
		Name: name, Value: "val-" + name,
		Walk: p.Walk, Step: p.Step, Crawler: p.Crawler, Profile: p.Profile,
		Path: p, FirstIdx: firstIdx, LastIdx: lastIdx, Crossings: 1,
	}
	return &uid.Case{
		Group: &uid.Group{Walk: p.Walk, Step: p.Step, Name: name,
			Observations: map[string][]*tokens.Candidate{p.Crawler: {cand}}},
		Bucket:     bucket,
		Values:     map[string]string{p.Crawler: cand.Value},
		Candidates: []*tokens.Candidate{cand},
	}
}

// fixture: two smuggling paths (one via a dedicated-style redirector, one
// direct), one bounce path, one plain path.
func testAnalysis(t *testing.T) (*Analysis, []*tokens.Path, []*uid.Case) {
	t.Helper()
	// Dedicated-style redirector r.track.net: two originators, two dests,
	// never an endpoint.
	p1 := path(t, crawler.Safari1, 0, 1,
		"http://news-a.com/", "http://r.track.net/c?x=u1", "http://shop-a.com/land?x=u1")
	p2 := path(t, crawler.Safari1, 1, 1,
		"http://news-b.com/", "http://r.track.net/c?x=u2", "http://shop-b.com/land?x=u2")
	// Multi-purpose: signin.news-a.com is also observed as a destination
	// (p4).
	p3 := path(t, crawler.Safari1, 2, 1,
		"http://news-a.com/", "http://signin.portal.com/login?atok=t1", "http://shop-a.com/account?atok=t1")
	p4 := path(t, crawler.Safari1, 2, 2,
		"http://news-b.com/", "http://signin.portal.com/login")
	// Direct smuggling, no redirector.
	p5 := path(t, crawler.Safari1, 3, 1,
		"http://news-a.com/", "http://shop-b.com/land?y=u3")
	// Bounce path: redirector, no UID case attached.
	p6 := path(t, crawler.Safari1, 4, 1,
		"http://news-b.com/", "http://b.bounce.net/b", "http://shop-a.com/")
	// Plain path.
	p7 := path(t, crawler.Safari1, 5, 1,
		"http://news-a.com/", "http://news-b.com/")

	// Another originator/destination pair for the dedicated rule.
	p8 := path(t, crawler.Safari1, 6, 1,
		"http://blog-c.com/", "http://signin.portal.com/login?atok=t2", "http://shop-b.com/account?atok=t2")

	paths := []*tokens.Path{p1, p2, p3, p4, p5, p6, p7, p8}
	cases := []*uid.Case{
		caseOn(p1, "x", 1, 2, uid.BucketPairPlus),
		caseOn(p2, "x", 1, 2, uid.BucketSingle),
		caseOn(p3, "atok", 1, 2, uid.BucketPairPlus),
		caseOn(p5, "y", 1, 1, uid.BucketSingle),
		caseOn(p8, "atok", 1, 2, uid.BucketSingle),
	}
	ds := &crawler.Dataset{} // figures under test here don't need records
	return New(ds, paths, cases), paths, cases
}

func TestSummarize(t *testing.T) {
	a, paths, _ := testAnalysis(t)
	s := a.Summarize()
	if s.UniqueURLPaths != len(paths) {
		t.Fatalf("unique paths = %d, want %d", s.UniqueURLPaths, len(paths))
	}
	if s.UniqueURLPathsSmuggling != 5 {
		t.Fatalf("smuggling paths = %d, want 5", s.UniqueURLPathsSmuggling)
	}
	if s.UniqueRedirectors != 2 {
		t.Fatalf("redirectors = %d, want 2 (r.track.net, signin.portal.com)", s.UniqueRedirectors)
	}
	if s.DedicatedSmugglers != 1 || s.MultiPurposeSmugglers != 1 {
		t.Fatalf("dedicated=%d multi=%d, want 1/1", s.DedicatedSmugglers, s.MultiPurposeSmugglers)
	}
	if s.UniqueOriginators != 3 {
		t.Fatalf("originators = %d, want 3", s.UniqueOriginators)
	}
}

func TestDedicatedClassification(t *testing.T) {
	a, _, _ := testAnalysis(t)
	if !a.IsDedicated("r.track.net") {
		t.Fatal("r.track.net: two originators, two destinations, never an endpoint — must be dedicated")
	}
	if a.IsDedicated("signin.portal.com") {
		t.Fatal("signin.portal.com is observed as a destination — must be multi-purpose")
	}
	got := a.DedicatedSmugglers()
	if len(got) != 1 || got[0] != "r.track.net" {
		t.Fatalf("DedicatedSmugglers = %v", got)
	}
}

func TestSmugglingAndBounceRates(t *testing.T) {
	a, paths, _ := testAnalysis(t)
	wantSmuggle := 5.0 / float64(len(paths))
	if got := a.SmugglingRate(); got != wantSmuggle {
		t.Fatalf("smuggling rate = %f, want %f", got, wantSmuggle)
	}
	// Only p6 has a redirector without smuggling (p4 ends AT the sign-in
	// host, which makes it a destination, not a redirector).
	wantBounce := 1.0 / float64(len(paths))
	if got := a.BounceRate(); got != wantBounce {
		t.Fatalf("bounce rate = %f, want %f", got, wantBounce)
	}
}

func TestTopRedirectors(t *testing.T) {
	a, _, _ := testAnalysis(t)
	rows := a.TopRedirectors(0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// signin.portal.com appears in 2 smuggling domain paths; r.track.net
	// in 2 as well — tie broken by name.
	for _, row := range rows {
		if row.Host == "r.track.net" && row.MultiPurpose {
			t.Fatal("r.track.net marked multi-purpose")
		}
		if row.Host == "signin.portal.com" && !row.MultiPurpose {
			t.Fatal("signin.portal.com not marked multi-purpose")
		}
		if row.PctDomainPaths <= 0 {
			t.Fatal("percentage missing")
		}
	}
}

func TestRedirectorHistogram(t *testing.T) {
	a, _, _ := testAnalysis(t)
	hist := a.RedirectorHistogram()
	if len(hist) != 2 {
		t.Fatalf("hist buckets = %d (max redirectors should be 1)", len(hist))
	}
	if hist[0].Total() != 1 { // p5 only (direct smuggling)
		t.Fatalf("0-redirector paths = %d, want 1", hist[0].Total())
	}
	if hist[1].Total() != 4 {
		t.Fatalf("1-redirector paths = %d, want 4", hist[1].Total())
	}
	// p1/p2 pass through the dedicated r.track.net.
	if hist[1].OneDedicated != 2 {
		t.Fatalf("one-dedicated = %d, want 2", hist[1].OneDedicated)
	}
}

func TestPathPortions(t *testing.T) {
	a, _, cases := testAnalysis(t)
	portions := a.PathPortions()
	total := 0
	for _, pc := range portions {
		total += pc.Total()
	}
	if total != len(cases) {
		t.Fatalf("portion total = %d, want %d", total, len(cases))
	}
	if portions[PortionFull].Total() != 4 {
		t.Fatalf("full-path UIDs = %d, want 4", portions[PortionFull].Total())
	}
	if portions[PortionOriginDest].Total() != 1 {
		t.Fatalf("origin→dest UIDs = %d, want 1", portions[PortionOriginDest].Total())
	}
	if portions[PortionFull].WithDedicated != 2 {
		t.Fatalf("full-path with dedicated = %d, want 2", portions[PortionFull].WithDedicated)
	}
}

func TestClassifyPortionEdges(t *testing.T) {
	p := path(t, crawler.Safari1, 9, 1,
		"http://a.com/", "http://r1.net/c?m=v", "http://r2.net/c?m=v", "http://d.com/")
	// Token on hops 1..2 only: redirector-to-redirector.
	cand := &tokens.Candidate{Path: p, FirstIdx: 2, LastIdx: 2}
	if got := classifyPortion(cand); got != PortionRedirRedir {
		t.Fatalf("got %q", got)
	}
	cand = &tokens.Candidate{Path: p, FirstIdx: 1, LastIdx: 2}
	if got := classifyPortion(cand); got != PortionOriginRed {
		t.Fatalf("got %q", got)
	}
	cand = &tokens.Candidate{Path: p, FirstIdx: 2, LastIdx: 3}
	if got := classifyPortion(cand); got != PortionRedirDest {
		t.Fatalf("got %q", got)
	}
}

func TestTopOrganizations(t *testing.T) {
	a, _, _ := testAnalysis(t)
	at := entity.NewAttributor(nil, entity.NewList(map[string]string{
		"news-a.com": "News Corp A",
		"news-b.com": "News Corp B",
		"blog-c.com": "Blog C",
		"shop-a.com": "Shop A",
		"shop-b.com": "Shop B",
	}))
	origs, dests := a.TopOrganizations(at, 10)
	if len(origs) == 0 || len(dests) == 0 {
		t.Fatal("empty organizations")
	}
	if origs[0].Key != "News Corp A" {
		t.Fatalf("top originator = %q", origs[0].Key)
	}
}

func TestCategoryBreakdown(t *testing.T) {
	a, _, _ := testAnalysis(t)
	tax := category.New(map[string]string{
		"news-a.com": "News", "news-b.com": "News", "blog-c.com": "Hobbies",
		"shop-a.com": "Shopping", "shop-b.com": "Shopping",
	})
	co, cd := a.CategoryBreakdown(tax)
	if co["News"] != 2 {
		t.Fatalf("news originators = %d, want 2 (unique domains)", co["News"])
	}
	if cd["Shopping"] != 2 {
		t.Fatalf("shopping destinations = %d, want 2", cd["Shopping"])
	}
}

func TestSmugglingURLsAndParams(t *testing.T) {
	a, _, _ := testAnalysis(t)
	urls := a.SmugglingURLs()
	if len(urls) == 0 {
		t.Fatal("no smuggling URLs")
	}
	fl := filterlist.Parse([]string{"||r.track.net^"})
	if fl.BlockedFraction(urls) <= 0 {
		t.Fatal("rule should block some smuggling URLs")
	}
	params := a.SmugglerParamNames()
	if len(params) != 3 { // x, y, atok
		t.Fatalf("params = %v", params)
	}
}

func TestFingerprintingExperimentGrouping(t *testing.T) {
	a, _, cases := testAnalysis(t)
	exp, err := a.FingerprintingExperiment([]string{"news-a.com"})
	if err != nil {
		t.Fatal(err)
	}
	if exp.FPMulti.Trials+exp.NonFPMulti.Trials != len(cases) {
		t.Fatal("groups don't partition the cases")
	}
	// Cases originating on news-a.com: p1 (x), p3 (atok), p5 (y) = 3.
	if exp.FPMulti.Trials != 3 {
		t.Fatalf("fp trials = %d, want 3", exp.FPMulti.Trials)
	}
}

// dsWithRecords builds a small dataset with records for the
// request/snapshot-driven analyses.
func dsWithRecords(t *testing.T) (*Analysis, []*uid.Case) {
	t.Helper()
	p1 := path(t, crawler.Safari1, 0, 1,
		"http://news-a.com/", "http://shop-a.com/land?x=val-x")
	c1 := caseOn(p1, "x", 1, 1, uid.BucketSingle)
	c1.Candidates[0].Value = "val-x"
	c1.Values[crawler.Safari1] = "val-x"

	ds := &crawler.Dataset{
		Walks: []*crawler.Walk{{
			Index: 0,
			Steps: []*crawler.Step{{
				Walk: 0, Index: 1, Outcome: crawler.OutcomeOK,
				Records: map[string]*crawler.CrawlerStep{
					crawler.Safari1: {
						Crawler:   crawler.Safari1,
						StartURL:  "http://news-a.com/",
						LandedURL: "http://shop-a.com/land?x=val-x",
						Before: crawler.Snapshot{Cookies: []crawler.CookieRecord{
							{Name: "_trk", Value: "val-x", Domain: "news-a.com"},
						}},
						Requests: []browser.RequestRecord{
							{
								URL:     "http://analytics.net/collect?url=" + url.QueryEscape("http://shop-a.com/land?x=val-x"),
								Kind:    browser.KindBeacon,
								Referer: "http://shop-a.com/land?x=val-x",
							},
							{
								URL:     "http://cleanbeacon.net/g?page=home",
								Kind:    browser.KindBeacon,
								Referer: "http://shop-a.com/land?x=val-x",
							},
						},
					},
				},
			}},
		}},
	}
	return New(ds, []*tokens.Path{p1}, []*uid.Case{c1}), []*uid.Case{c1}
}

func TestThirdPartyReceivers(t *testing.T) {
	a, _ := dsWithRecords(t)
	got := a.ThirdPartyReceivers(10)
	if len(got) != 1 || got[0].Key != "analytics.net" || got[0].Count != 1 {
		t.Fatalf("receivers = %v", got)
	}
}

func TestStorageSourceBreakdownUnit(t *testing.T) {
	a, cases := dsWithRecords(t)
	got := a.StorageSourceBreakdown()
	if got[SourceCookie] != len(cases) {
		t.Fatalf("breakdown = %v", got)
	}
	if a.Cases()[0] != cases[0] {
		t.Fatal("Cases accessor broken")
	}
}

func TestFailureRatesAndByStep(t *testing.T) {
	a, _ := dsWithRecords(t)
	fr := a.FailureRates()
	if fr.Steps != 1 || fr.SitesAttempted == 0 {
		t.Fatalf("failure rates = %+v", fr)
	}
	rows := a.FailuresByStep()
	if len(rows) != 1 || rows[0].Attempts != 1 || rows[0].NoCommonElement != 0 {
		t.Fatalf("by step = %+v", rows)
	}
}

func TestRequestCarriesUIDEmbedded(t *testing.T) {
	uids := map[string]bool{"deadbeef01deadbeef": true}
	embedded := "http://a.net/g?url=" + url.QueryEscape("http://shop.com/?z=deadbeef01deadbeef")
	if !requestCarriesUID(embedded, uids) {
		t.Fatal("embedded UID not detected")
	}
	if requestCarriesUID("http://a.net/g?x=1", uids) {
		t.Fatal("false positive")
	}
}
