package analysis

import (
	"strings"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/tokens"
)

// TokenSource classifies where a confirmed UID was sitting on the
// originator before it crossed contexts (§3.6: tokens are extracted from
// cookies, local storage, and query parameters; they are "not required to
// appear as cookies or local storage values").
type TokenSource string

// The §3.6 token sources.
const (
	// SourceCookie: the value sat in the originator's first-party
	// cookies (the decorator-script pattern).
	SourceCookie TokenSource = "originator cookie"
	// SourceLocalStorage: the value sat in the originator's first-party
	// localStorage.
	SourceLocalStorage TokenSource = "originator localStorage"
	// SourceQueryOnly: the value appeared only in navigation URLs (e.g.
	// ad-exchange partition IDs injected server-side).
	SourceQueryOnly TokenSource = "query parameters only"
)

// StorageSourceBreakdown classifies each confirmed UID by originator-side
// provenance, cross-referencing the crawl's pre-click storage snapshots.
func (a *Analysis) StorageSourceBreakdown() map[TokenSource]int {
	out := map[TokenSource]int{}
	for _, c := range a.cases {
		out[a.sourceOfCase(c.Candidates[0])]++
	}
	return out
}

func (a *Analysis) sourceOfCase(cand *tokens.Candidate) TokenSource {
	rec := a.recordFor(cand)
	if rec == nil {
		return SourceQueryOnly
	}
	for _, ck := range rec.Before.Cookies {
		if valueContains(ck.Value, cand.Value) {
			return SourceCookie
		}
	}
	for _, v := range rec.Before.Local {
		if valueContains(v, cand.Value) {
			return SourceLocalStorage
		}
	}
	return SourceQueryOnly
}

// recordFor finds the crawler record behind a candidate.
func (a *Analysis) recordFor(cand *tokens.Candidate) *crawler.CrawlerStep {
	w := a.src.Walk(cand.Walk)
	if w == nil {
		return nil
	}
	if cand.Step < 1 || cand.Step > len(w.Steps) {
		return nil
	}
	return w.Steps[cand.Step-1].Records[cand.Crawler]
}

func valueContains(stored, token string) bool {
	return stored == token || strings.Contains(stored, token)
}

// StepFailureRow is one row of the §3.3 independence check: failure rates
// at a given step index of the walk.
type StepFailureRow struct {
	Step            int
	Attempts        int
	NoCommonElement float64
	Divergent       float64
	ConnectError    float64
}

// FailuresByStep tallies failure rates per walk-step index. The paper
// expects these "to be independent of the step of the random walk"
// (§3.3); the calibration harness and tests verify no strong trend.
func (a *Analysis) FailuresByStep() []StepFailureRow {
	maxStep := 0
	counts := map[int]map[crawler.StepOutcome]int{}
	a.src.ForEachWalk(func(w *crawler.Walk) error {
		for _, s := range w.Steps {
			if s.Index > maxStep {
				maxStep = s.Index
			}
			m := counts[s.Index]
			if m == nil {
				m = map[crawler.StepOutcome]int{}
				counts[s.Index] = m
			}
			m[s.Outcome]++
		}
		return nil
	})
	out := make([]StepFailureRow, 0, maxStep)
	for i := 1; i <= maxStep; i++ {
		m := counts[i]
		total := 0
		for _, n := range m {
			total += n
		}
		row := StepFailureRow{Step: i, Attempts: total}
		if total > 0 {
			row.NoCommonElement = float64(m[crawler.OutcomeNoCommonElement]) / float64(total)
			row.Divergent = float64(m[crawler.OutcomeDivergent]) / float64(total)
			row.ConnectError = float64(m[crawler.OutcomeConnectError]) / float64(total)
		}
		out = append(out, row)
	}
	return out
}
