package analysis

import (
	"net/url"
	"sort"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/category"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/entity"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
)

// --- Figure 4: organisations ------------------------------------------------

// TopOrganizations attributes the originators and destinations of unique
// smuggling domain paths to organisations and returns the most frequent,
// counting each organisation once per unique domain path (§5.2).
func (a *Analysis) TopOrganizations(at *entity.Attributor, n int) (originators, destinations []stats.Entry) {
	origCount := stats.NewCounter()
	destCount := stats.NewCounter()
	seenOrig := map[string]bool{}
	seenDest := map[string]bool{}
	for _, agg := range a.smugglingAggs() {
		dk := agg.rep.DomainKey()
		if org := at.OrgOf(agg.rep.Originator().Domain); org != entity.Unattributed {
			if !seenOrig[dk+"|"+org] {
				seenOrig[dk+"|"+org] = true
				origCount.Inc(org)
			}
		}
		if org := at.OrgOf(agg.rep.Destination().Domain); org != entity.Unattributed {
			if !seenDest[dk+"|"+org] {
				seenDest[dk+"|"+org] = true
				destCount.Inc(org)
			}
		}
	}
	return origCount.Top(n), destCount.Top(n)
}

// --- Figure 5: categories ----------------------------------------------------

// CategoryBreakdown counts the unique registered domains participating in
// smuggling as originators and destinations per content category.
func (a *Analysis) CategoryBreakdown(tax *category.Taxonomy) (originators, destinations map[string]int) {
	var origs, dests []string
	for _, agg := range a.smugglingAggs() {
		origs = append(origs, agg.rep.Originator().Domain)
		dests = append(dests, agg.rep.Destination().Domain)
	}
	return tax.CountByCategory(origs), tax.CountByCategory(dests)
}

// --- Figure 6: third parties -------------------------------------------------

// ThirdPartyReceivers finds the registered domains of third-party web
// requests sent from destination pages that included a confirmed UID —
// whether deliberately or leaked inside a full-URL parameter (§5.2.2).
func (a *Analysis) ThirdPartyReceivers(n int) []stats.Entry {
	uidValues := map[string]bool{}
	for _, c := range a.cases {
		for _, v := range c.Values {
			uidValues[v] = true
		}
	}
	counter := stats.NewCounter()
	a.src.ForEachWalk(func(w *crawler.Walk) error {
		for _, s := range w.Steps {
			for _, rec := range s.Records {
				if rec.LandedURL == "" {
					continue
				}
				destDomain := regOf(rec.LandedURL)
				for _, r := range rec.Requests {
					if r.Kind != browser.KindBeacon {
						continue
					}
					// Sent from the destination page.
					if r.Referer != rec.LandedURL {
						continue
					}
					target := regOf(r.URL)
					if target == "" || target == destDomain {
						continue
					}
					if requestCarriesUID(r.URL, uidValues) {
						counter.Inc(target)
					}
				}
			}
		}
		return nil
	})
	return counter.Top(n)
}

func regOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	if rd := publicsuffix.RegisteredDomain(u.Hostname()); rd != "" {
		return rd
	}
	return u.Hostname()
}

// requestCarriesUID reports whether any confirmed UID value appears in
// the request URL (as a parameter value, or embedded in a leaked full
// URL).
func requestCarriesUID(raw string, uidValues map[string]bool) bool {
	u, err := url.Parse(raw)
	if err != nil {
		return false
	}
	for _, vs := range u.Query() {
		for _, v := range vs {
			if uidValues[v] {
				return true
			}
			// Leak inside an embedded URL: check its parameters too.
			for _, p := range tokens.Extract("", v) {
				if uidValues[p.Value] {
					return true
				}
			}
		}
	}
	return false
}

// --- Figure 7: redirectors per path -------------------------------------------

// RedirectorBucket is one bar group of Figure 7.
type RedirectorBucket struct {
	Redirectors int
	// NoDedicated / OneDedicated / TwoPlusDedicated split the unique
	// URL-path count by how many dedicated smugglers the path contains.
	NoDedicated      int
	OneDedicated     int
	TwoPlusDedicated int
}

// Total returns the bucket's path count.
func (b RedirectorBucket) Total() int {
	return b.NoDedicated + b.OneDedicated + b.TwoPlusDedicated
}

// RedirectorHistogram computes Figure 7 over unique smuggling URL paths.
func (a *Analysis) RedirectorHistogram() []RedirectorBucket {
	byCount := map[int]*RedirectorBucket{}
	maxN := 0
	for _, agg := range a.smugglingAggs() {
		reds := agg.rep.Redirectors()
		n := len(reds)
		if n > maxN {
			maxN = n
		}
		b := byCount[n]
		if b == nil {
			b = &RedirectorBucket{Redirectors: n}
			byCount[n] = b
		}
		dedicated := 0
		for _, r := range reds {
			if a.dedicated[r.Host] {
				dedicated++
			}
		}
		switch {
		case dedicated >= 2:
			b.TwoPlusDedicated++
		case dedicated == 1:
			b.OneDedicated++
		default:
			b.NoDedicated++
		}
	}
	out := make([]RedirectorBucket, maxN+1)
	for i := range out {
		out[i].Redirectors = i
		if b := byCount[i]; b != nil {
			out[i] = *b
		}
	}
	return out
}

// --- Figure 8: path portions ---------------------------------------------------

// Portion names the traversed segment of a navigation path.
type Portion string

// The Figure 8 portions.
const (
	PortionFull       Portion = "Originator to Redirector to Destination"
	PortionOriginDest Portion = "Originator to Destination"
	PortionRedirDest  Portion = "Redirector to Destination"
	PortionOriginRed  Portion = "Originator to Redirector"
	PortionRedirRedir Portion = "Redirector to Redirector"
)

// Portions lists the Figure 8 rows in presentation order.
var Portions = []Portion{PortionFull, PortionOriginDest, PortionRedirDest, PortionOriginRed, PortionRedirRedir}

// PortionCount splits a portion's UID count by dedicated-smuggler
// involvement.
type PortionCount struct {
	WithDedicated    int
	WithoutDedicated int
}

// Total returns the row total.
func (p PortionCount) Total() int { return p.WithDedicated + p.WithoutDedicated }

// PathPortions computes Figure 8: for every confirmed UID, which portion
// of its navigation path it traversed, split by whether the path contains
// a dedicated smuggler.
func (a *Analysis) PathPortions() map[Portion]PortionCount {
	out := map[Portion]PortionCount{}
	for _, c := range a.cases {
		cand := c.Candidates[0]
		portion := classifyPortion(cand)
		hasDedicated := false
		for _, r := range cand.Path.Redirectors() {
			if a.dedicated[r.Host] {
				hasDedicated = true
				break
			}
		}
		pc := out[portion]
		if hasDedicated {
			pc.WithDedicated++
		} else {
			pc.WithoutDedicated++
		}
		out[portion] = pc
	}
	return out
}

// classifyPortion maps a candidate's first/last appearance to a Figure 8
// portion. A token first seen on the node after the originator was
// decorated onto the originator's link, so it "begins at the originator".
func classifyPortion(c *tokens.Candidate) Portion {
	last := len(c.Path.Nodes) - 1
	startsAtOrigin := c.FirstIdx <= 1
	endsAtDest := c.LastIdx == last
	noRedirectors := len(c.Path.Nodes) == 2
	switch {
	case noRedirectors:
		return PortionOriginDest
	case startsAtOrigin && endsAtDest:
		return PortionFull
	case startsAtOrigin:
		return PortionOriginRed
	case endsAtDest:
		return PortionRedirDest
	default:
		return PortionRedirRedir
	}
}

// --- §3.5: fingerprinting experiment -------------------------------------------

// FPExperiment is the fingerprinting comparison of §3.5.
type FPExperiment struct {
	// OnFingerprinters is the share of smuggling cases originating on
	// fingerprinting sites (paper: 13%).
	OnFingerprinters float64
	// FPMulti / NonFPMulti are the multi-crawler proportions in each
	// group (paper: 44% vs 52%).
	FPMulti    stats.Proportion
	NonFPMulti stats.Proportion
	// Z is the two-proportion Z test over the groups.
	Z stats.ZTestResult
}

// FingerprintingExperiment reproduces §3.5: split cases by whether the
// originator hosts fingerprinting code, compare the single- vs
// multi-crawler proportions, and test the difference.
func (a *Analysis) FingerprintingExperiment(fingerprinters []string) (FPExperiment, error) {
	fp := map[string]bool{}
	for _, d := range fingerprinters {
		fp[d] = true
	}
	var exp FPExperiment
	total := 0
	for _, c := range a.cases {
		orig := c.Candidates[0].Path.Originator().Domain
		multi := c.Bucket != uid.BucketSingle
		total++
		if fp[orig] {
			exp.FPMulti.Trials++
			if multi {
				exp.FPMulti.Successes++
			}
		} else {
			exp.NonFPMulti.Trials++
			if multi {
				exp.NonFPMulti.Successes++
			}
		}
	}
	if total > 0 {
		exp.OnFingerprinters = float64(exp.FPMulti.Trials) / float64(total)
	}
	z, err := stats.TwoProportionZTest(exp.NonFPMulti, exp.FPMulti)
	if err != nil {
		return exp, err
	}
	exp.Z = z
	return exp, nil
}

// --- §3.3: failure rates ----------------------------------------------------------

// FailureRates are the crawl failure fractions of §3.3. NoCommonElement
// and Divergent are fractions of crawl steps; ConnectError follows the
// paper's accounting — the fraction of distinct sites attempted whose
// connection failed ("3.3% of the sites it attempted to visit").
type FailureRates struct {
	Steps           int
	SitesAttempted  int
	NoCommonElement float64 // paper: 7.6%
	Divergent       float64 // paper: 1.8%
	ConnectError    float64 // paper: 3.3%
}

// FailureRates computes the §3.3 failure fractions.
func (a *Analysis) FailureRates() FailureRates {
	counts := a.src.OutcomeCounts()
	total := a.src.StepCount()
	if total == 0 {
		return FailureRates{}
	}
	f := FailureRates{Steps: total}
	f.NoCommonElement = float64(counts[crawler.OutcomeNoCommonElement]) / float64(total)
	f.Divergent = float64(counts[crawler.OutcomeDivergent]) / float64(total)

	// Distinct sites attempted vs. failed. A site either always fails or
	// never does (per-domain faults), so the two sets cannot overlap.
	attempted := map[string]bool{}
	failed := map[string]bool{}
	visit := func(raw string, fail bool) {
		d := regOf(raw)
		if d == "" {
			return
		}
		attempted[d] = true
		if fail {
			failed[d] = true
		}
	}
	a.src.ForEachWalk(func(w *crawler.Walk) error {
		if rec := w.SeedLoad[crawler.Safari1]; rec != nil {
			visit(rec.StartURL, isConnectFail(rec.Fail))
		}
		for _, s := range w.Steps {
			rec := s.Records[crawler.Safari1]
			if rec == nil {
				continue
			}
			if rec.LandedURL != "" {
				visit(rec.LandedURL, false)
			} else if isConnectFail(rec.Fail) && len(rec.NavChain) > 0 {
				visit(rec.NavChain[len(rec.NavChain)-1].URL, true)
			}
		}
		return nil
	})
	f.SitesAttempted = len(attempted)
	if len(attempted) > 0 {
		f.ConnectError = float64(len(failed)) / float64(len(attempted))
	}
	return f
}

func isConnectFail(fail string) bool {
	return len(fail) >= 8 && fail[:8] == "connect:"
}

// ResilienceStats splits the crawl's observed connection failures into
// transient-recovered and permanently-unreachable populations, from the
// per-request records (every retry attempt is recorded). The paper's
// 3.3% counts all of them as losses; with retries enabled the recovered
// share is measurement the crawl kept instead.
type ResilienceStats struct {
	// RetriedRequests is the number of recorded requests beyond a first
	// attempt.
	RetriedRequests int
	// SitesRecovered is the number of distinct registered domains that
	// failed at least one request but later answered successfully.
	SitesRecovered int
	// SitesUnreachable is the number of distinct registered domains
	// whose requests never succeeded.
	SitesUnreachable int
	// RecoveredRate and UnreachableRate are the two populations as
	// fractions of all distinct domains the crawl sent requests to.
	RecoveredRate   float64
	UnreachableRate float64
}

// requestFailed classifies a recorded request as failed: a transport
// error, or a degraded HTTP answer (5xx / 429).
func requestFailed(errStr string, status int) bool {
	return errStr != "" || status >= 500 || status == 429
}

// Resilience computes the transient-recovered vs permanently-unreachable
// split across every crawler's request log.
func (a *Analysis) Resilience() ResilienceStats {
	var rs ResilienceStats
	failed := map[string]bool{}
	ok := map[string]bool{}
	scan := func(rec *crawler.CrawlerStep) {
		if rec == nil {
			return
		}
		for _, req := range rec.Requests {
			d := regOf(req.URL)
			if d == "" {
				continue
			}
			if req.Attempt > 0 {
				rs.RetriedRequests++
			}
			if requestFailed(req.Err, req.Status) {
				failed[d] = true
			} else if req.Status > 0 {
				ok[d] = true
			}
		}
	}
	a.src.ForEachWalk(func(w *crawler.Walk) error {
		for _, rec := range w.SeedLoad {
			scan(rec)
		}
		for _, s := range w.Steps {
			for _, rec := range s.Records {
				scan(rec)
			}
		}
		return nil
	})
	attempted := len(ok)
	for d := range failed {
		if ok[d] {
			rs.SitesRecovered++
		} else {
			rs.SitesUnreachable++
			attempted++
		}
	}
	if attempted > 0 {
		rs.RecoveredRate = float64(rs.SitesRecovered) / float64(attempted)
		rs.UnreachableRate = float64(rs.SitesUnreachable) / float64(attempted)
	}
	return rs
}

// --- §5.1 / §7.1: blocklist coverage -------------------------------------------------

// SmugglingURLs returns every unique URL participating in smuggling paths
// (originators, redirectors and destinations), sorted.
func (a *Analysis) SmugglingURLs() []string {
	set := map[string]bool{}
	for _, agg := range a.smugglingAggs() {
		for _, n := range agg.rep.Nodes {
			set[n.URL] = true
		}
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// SmugglerParamNames returns the query-parameter names confirmed to carry
// UIDs — the blocklist contribution of §7.2.
func (a *Analysis) SmugglerParamNames() []string {
	set := map[string]bool{}
	for _, c := range a.cases {
		set[c.Group.Name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
