// Package analysis computes every table and figure in the paper's
// evaluation (§5): the navigation-path summary (Table 2), the redirector
// ranking with dedicated/multi-purpose classification (Table 3, §5.1),
// originator/destination organisations (Figure 4) and categories
// (Figure 5), third-party UID leakage (Figure 6), redirector-count and
// path-portion distributions (Figures 7 and 8), the headline smuggling
// rate, bounce tracking (§8), the fingerprinting experiment (§3.5), crawl
// failure rates (§3.3), and blocklist coverage gaps (§5.1, §7.1).
package analysis

import (
	"context"
	"sort"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/parallel"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
)

// WalkSource abstracts where walk records come from: an in-memory
// crawler.Dataset or a store cursor replaying them from disk. Every
// figure that scans walks goes through this interface, so a
// store-backed analysis produces byte-identical output to an in-memory
// one by construction. ForEachWalk must deliver walks in ascending
// index order; Walk returns nil for an unknown index.
type WalkSource interface {
	WalkCount() int
	StepCount() int
	OutcomeCounts() map[crawler.StepOutcome]int
	ForEachWalk(fn func(*crawler.Walk) error) error
	Walk(idx int) *crawler.Walk
}

// Analysis holds the crawl products and the indexes derived from them.
type Analysis struct {
	src   WalkSource
	paths []*tokens.Path
	cases []*uid.Case

	// urlPaths indexes unique URL paths.
	urlPaths map[string]*pathAgg
	// smugglingPaths maps the identity of paths that carried a confirmed
	// UID.
	smugglingPaths map[*tokens.Path]bool
	// casesByPath groups cases by the paths their candidates traversed.
	casesByPath map[*tokens.Path][]*uid.Case
	// endFQDNs is every FQDN observed as an originator or destination
	// anywhere in the crawl — input to the dedicated-smuggler rule.
	endFQDNs map[string]bool
	// redirectors indexes every redirector FQDN seen in smuggling paths.
	redirectors map[string]*redirectorAgg
	// dedicated caches the classification.
	dedicated map[string]bool
}

// pathAgg aggregates one unique URL path.
type pathAgg struct {
	rep       *tokens.Path // representative instance
	smuggling bool
	uidCount  int
}

// redirectorAgg aggregates one redirector FQDN across smuggling paths.
type redirectorAgg struct {
	originDomains map[string]bool
	destDomains   map[string]bool
	domainPaths   map[string]bool
}

// New builds the analysis indexes sequentially.
func New(ds *crawler.Dataset, paths []*tokens.Path, cases []*uid.Case) *Analysis {
	return NewParallel(ds, paths, cases, 1)
}

// pathPartial is one chunk's contribution to the unique-URL-path index:
// per-key aggregates plus the chunk's first-occurrence key order, so the
// ordered reduce can keep the globally-first path as each key's
// representative — exactly what a sequential pass produces.
type pathPartial struct {
	order    []string
	aggs     map[string]*pathAgg
	endFQDNs map[string]bool
}

// redirPartial is one chunk's contribution to the redirector index.
type redirPartial struct {
	order []string
	aggs  map[string]*redirectorAgg
}

// NewParallel builds the analysis indexes with the path and redirector
// aggregations sharded across a bounded worker pool. Chunks are mapped
// concurrently and reduced in chunk order; the result is bit-identical
// to New for any parallelism.
func NewParallel(ds *crawler.Dataset, paths []*tokens.Path, cases []*uid.Case, parallelism int) *Analysis {
	return NewInstrumented(ds, paths, cases, parallelism, nil)
}

// NewInstrumented is NewParallel with optional telemetry: per-chunk wall
// times of the two aggregation stages land in the
// analysis.path_shard_us and analysis.redirector_shard_us histograms,
// and index sizes in analysis.* counters. A nil Telemetry records
// nothing and skips per-shard timing entirely.
func NewInstrumented(ds *crawler.Dataset, paths []*tokens.Path, cases []*uid.Case, parallelism int, tel *telemetry.Telemetry) *Analysis {
	a, _ := NewContext(context.Background(), ds, paths, cases, parallelism, tel)
	return a
}

// NewContext is NewInstrumented bounded by ctx: cancellation stops the
// aggregation pools from taking new chunks and returns ctx's error with
// a nil Analysis.
func NewContext(ctx context.Context, ds *crawler.Dataset, paths []*tokens.Path, cases []*uid.Case, parallelism int, tel *telemetry.Telemetry) (*Analysis, error) {
	return NewFromSource(ctx, ds, paths, cases, parallelism, tel)
}

// NewFromSource builds the analysis over any WalkSource — an in-memory
// dataset or a run store replayed by cursor — so 100k-walk runs can be
// analysed without the decoded dataset ever being resident at once.
// Output is byte-identical to the dataset path for the same walks.
func NewFromSource(ctx context.Context, src WalkSource, paths []*tokens.Path, cases []*uid.Case, parallelism int, tel *telemetry.Telemetry) (*Analysis, error) {
	reg := tel.Registry()
	a := &Analysis{
		src:            src,
		paths:          paths,
		cases:          cases,
		urlPaths:       map[string]*pathAgg{},
		smugglingPaths: map[*tokens.Path]bool{},
		casesByPath:    map[*tokens.Path][]*uid.Case{},
		endFQDNs:       map[string]bool{},
		redirectors:    map[string]*redirectorAgg{},
		dedicated:      map[string]bool{},
	}
	for _, c := range cases {
		for _, cand := range c.Candidates {
			a.smugglingPaths[cand.Path] = true
			a.casesByPath[cand.Path] = append(a.casesByPath[cand.Path], c)
		}
	}

	// Map: aggregate unique URL paths per contiguous chunk.
	chunks := parallel.Chunks(len(paths), parallelism)
	pathParts := make([]*pathPartial, len(chunks))
	err := parallel.ForEachTimedCtx(ctx, len(chunks), parallelism, func(ci int) {
		ch := chunks[ci]
		part := &pathPartial{aggs: map[string]*pathAgg{}, endFQDNs: map[string]bool{}}
		for _, p := range paths[ch.Lo:ch.Hi] {
			key := p.URLKey()
			agg := part.aggs[key]
			if agg == nil {
				agg = &pathAgg{rep: p}
				part.aggs[key] = agg
				part.order = append(part.order, key)
			}
			if a.smugglingPaths[p] {
				agg.smuggling = true
				agg.uidCount += len(a.casesByPath[p])
			}
			part.endFQDNs[p.Originator().Host] = true
			part.endFQDNs[p.Destination().Host] = true
		}
		pathParts[ci] = part
	}, reg.Histogram("analysis.path_shard_us").Microseconds())
	if err != nil {
		return nil, err
	}
	// Reduce in chunk order: the first chunk to see a key contributes
	// its representative; later chunks only fold in their counts.
	for _, part := range pathParts {
		for _, key := range part.order {
			pagg := part.aggs[key]
			agg := a.urlPaths[key]
			if agg == nil {
				a.urlPaths[key] = pagg
				continue
			}
			agg.smuggling = agg.smuggling || pagg.smuggling
			agg.uidCount += pagg.uidCount
		}
		for h := range part.endFQDNs {
			a.endFQDNs[h] = true
		}
	}

	// Redirector aggregation over smuggling paths (§5.1). Iterating the
	// path slice (filtered to smuggling paths) instead of the smuggling
	// set keeps the shards deterministic; the aggregates are set unions,
	// so the merged result matches the sequential pass.
	var smuggling []*tokens.Path
	for _, p := range paths {
		if a.smugglingPaths[p] {
			smuggling = append(smuggling, p)
		}
	}
	rchunks := parallel.Chunks(len(smuggling), parallelism)
	redirParts := make([]*redirPartial, len(rchunks))
	err = parallel.ForEachTimedCtx(ctx, len(rchunks), parallelism, func(ci int) {
		ch := rchunks[ci]
		part := &redirPartial{aggs: map[string]*redirectorAgg{}}
		for _, p := range smuggling[ch.Lo:ch.Hi] {
			for _, r := range p.Redirectors() {
				agg := part.aggs[r.Host]
				if agg == nil {
					agg = &redirectorAgg{
						originDomains: map[string]bool{},
						destDomains:   map[string]bool{},
						domainPaths:   map[string]bool{},
					}
					part.aggs[r.Host] = agg
					part.order = append(part.order, r.Host)
				}
				agg.originDomains[p.Originator().Domain] = true
				agg.destDomains[p.Destination().Domain] = true
				agg.domainPaths[p.DomainKey()] = true
			}
		}
		redirParts[ci] = part
	}, reg.Histogram("analysis.redirector_shard_us").Microseconds())
	if err != nil {
		return nil, err
	}
	for _, part := range redirParts {
		for _, host := range part.order {
			pagg := part.aggs[host]
			agg := a.redirectors[host]
			if agg == nil {
				a.redirectors[host] = pagg
				continue
			}
			for d := range pagg.originDomains {
				agg.originDomains[d] = true
			}
			for d := range pagg.destDomains {
				agg.destDomains[d] = true
			}
			for d := range pagg.domainPaths {
				agg.domainPaths[d] = true
			}
		}
	}

	// Dedicated-smuggler classification (§5.1): multiple originator
	// registered domains, multiple destination registered domains, and
	// the FQDN never observed as an originator or destination.
	for host, agg := range a.redirectors {
		a.dedicated[host] = len(agg.originDomains) >= 2 &&
			len(agg.destDomains) >= 2 &&
			!a.endFQDNs[host]
	}
	reg.Counter("analysis.unique_url_paths").Add(int64(len(a.urlPaths)))
	reg.Counter("analysis.smuggling_paths").Add(int64(len(a.smugglingPaths)))
	reg.Counter("analysis.redirectors").Add(int64(len(a.redirectors)))
	return a, nil
}

// Cases returns the confirmed UID cases.
func (a *Analysis) Cases() []*uid.Case { return a.cases }

// Source returns the walk source the analysis was built over.
func (a *Analysis) Source() WalkSource { return a.src }

// WalkCount returns the number of walks in the analysed crawl.
func (a *Analysis) WalkCount() int { return a.src.WalkCount() }

// StepCount returns the number of attempted steps in the analysed
// crawl.
func (a *Analysis) StepCount() int { return a.src.StepCount() }

// Summary is the paper's Table 2.
type Summary struct {
	UniqueURLPaths             int
	UniqueURLPathsSmuggling    int
	UniqueDomainPathsSmuggling int
	UniqueRedirectors          int
	DedicatedSmugglers         int
	MultiPurposeSmugglers      int
	UniqueOriginators          int
	UniqueDestinations         int
}

// Summarize computes Table 2.
func (a *Analysis) Summarize() Summary {
	var s Summary
	s.UniqueURLPaths = len(a.urlPaths)
	domainPaths := map[string]bool{}
	origins := map[string]bool{}
	dests := map[string]bool{}
	for _, agg := range a.urlPaths {
		if !agg.smuggling {
			continue
		}
		s.UniqueURLPathsSmuggling++
		domainPaths[agg.rep.DomainKey()] = true
		origins[agg.rep.Originator().Domain] = true
		dests[agg.rep.Destination().Domain] = true
	}
	s.UniqueDomainPathsSmuggling = len(domainPaths)
	s.UniqueRedirectors = len(a.redirectors)
	for _, d := range a.dedicated {
		if d {
			s.DedicatedSmugglers++
		} else {
			s.MultiPurposeSmugglers++
		}
	}
	s.UniqueOriginators = len(origins)
	s.UniqueDestinations = len(dests)
	return s
}

// SmugglingRate is the headline result: the fraction of unique URL paths
// carrying UID smuggling (paper: 8.11%).
func (a *Analysis) SmugglingRate() float64 {
	if len(a.urlPaths) == 0 {
		return 0
	}
	n := 0
	for _, agg := range a.urlPaths {
		if agg.smuggling {
			n++
		}
	}
	return float64(n) / float64(len(a.urlPaths))
}

// BounceRate is the fraction of unique URL paths that pass through at
// least one redirector without transferring a UID — bounce tracking
// without smuggling (paper §8: 2.7%).
func (a *Analysis) BounceRate() float64 {
	if len(a.urlPaths) == 0 {
		return 0
	}
	n := 0
	for _, agg := range a.urlPaths {
		if !agg.smuggling && len(agg.rep.Redirectors()) > 0 {
			n++
		}
	}
	return float64(n) / float64(len(a.urlPaths))
}

// IsDedicated reports the dedicated-smuggler classification of a
// redirector FQDN.
func (a *Analysis) IsDedicated(host string) bool { return a.dedicated[host] }

// DedicatedSmugglers returns the classified dedicated-smuggler FQDNs,
// sorted.
func (a *Analysis) DedicatedSmugglers() []string {
	var out []string
	for host, d := range a.dedicated {
		if d {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}

// RedirectorRow is one row of Table 3.
type RedirectorRow struct {
	Host string
	// Count is the number of unique domain paths the redirector appears
	// in.
	Count int
	// PctDomainPaths is Count as a percentage of all smuggling domain
	// paths.
	PctDomainPaths float64
	// MultiPurpose marks non-dedicated smugglers (the asterisk in
	// Table 3).
	MultiPurpose bool
}

// TopRedirectors computes Table 3: the most common redirectors in unique
// smuggling domain paths. n <= 0 returns all.
func (a *Analysis) TopRedirectors(n int) []RedirectorRow {
	totalDomainPaths := a.Summarize().UniqueDomainPathsSmuggling
	rows := make([]RedirectorRow, 0, len(a.redirectors))
	for host, agg := range a.redirectors {
		row := RedirectorRow{
			Host:         host,
			Count:        len(agg.domainPaths),
			MultiPurpose: !a.dedicated[host],
		}
		if totalDomainPaths > 0 {
			row.PctDomainPaths = 100 * float64(row.Count) / float64(totalDomainPaths)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Host < rows[j].Host
	})
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// smugglingAggs returns the unique smuggling path aggregates in
// deterministic order.
func (a *Analysis) smugglingAggs() []*pathAgg {
	keys := make([]string, 0, len(a.urlPaths))
	for k, agg := range a.urlPaths {
		if agg.smuggling {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*pathAgg, len(keys))
	for i, k := range keys {
		out[i] = a.urlPaths[k]
	}
	return out
}
