package netsim

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"crumbcruncher/internal/telemetry"
)

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
}

func TestDispatchByHost(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("site-a"))
	n.Handle("b.com", okHandler("site-b"))

	resp, err := n.Client().Get("http://b.com/page")
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	if body != "site-b" {
		t.Fatalf("body = %q", body)
	}
}

func TestUnknownHost(t *testing.T) {
	n := New()
	_, err := n.Client().Get("http://nowhere.invalid/")
	if err == nil {
		t.Fatal("expected error")
	}
	var unknown *ErrUnknownHost
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v is not ErrUnknownHost", err)
	}
	if unknown.Host != "nowhere.invalid" {
		t.Fatalf("host = %q", unknown.Host)
	}
	if n.FailureCount() != 1 {
		t.Fatalf("FailureCount = %d", n.FailureCount())
	}
}

func TestRedirectsNotFollowed(t *testing.T) {
	n := New()
	n.HandleFunc("r.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://d.com/land", http.StatusFound)
	})
	n.Handle("d.com", okHandler("dest"))

	resp, err := n.Client().Get("http://r.com/go")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302 (redirect must surface to caller)", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://d.com/land" {
		t.Fatalf("Location = %q", loc)
	}
}

func TestRequestHeadersReachHandler(t *testing.T) {
	n := New()
	var gotUA, gotCookie string
	n.HandleFunc("x.com", func(w http.ResponseWriter, r *http.Request) {
		gotUA = r.Header.Get("User-Agent")
		gotCookie = r.Header.Get("Cookie")
	})
	req, _ := http.NewRequest("GET", "http://x.com/", nil)
	req.Header.Set("User-Agent", "FakeSafari/1.0")
	req.Header.Set("Cookie", "uid=abc123")
	if _, err := n.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	if gotUA != "FakeSafari/1.0" || gotCookie != "uid=abc123" {
		t.Fatalf("headers lost: ua=%q cookie=%q", gotUA, gotCookie)
	}
}

func TestFaultInjectorDeterminism(t *testing.T) {
	f1 := NewFaultInjector(42, 0.5)
	f2 := NewFaultInjector(42, 0.5)
	for i := 0; i < 200; i++ {
		host := fmt.Sprintf("site%d.com", i)
		if f1.Unreachable(host) != f2.Unreachable(host) {
			t.Fatalf("injector not deterministic for %s", host)
		}
	}
}

func TestFaultInjectorRate(t *testing.T) {
	f := NewFaultInjector(7, 0.033)
	const n = 20000
	failed := 0
	for i := 0; i < n; i++ {
		if f.Unreachable(fmt.Sprintf("host%d.com", i)) {
			failed++
		}
	}
	rate := float64(failed) / n
	if rate < 0.025 || rate > 0.042 {
		t.Fatalf("failure rate = %.4f, want ~0.033", rate)
	}
}

func TestFaultInjectorSameDomainSameFate(t *testing.T) {
	f := NewFaultInjector(1, 0.5)
	for i := 0; i < 100; i++ {
		d := fmt.Sprintf("dom%d.com", i)
		if f.Unreachable("www."+d) != f.Unreachable("shop."+d) {
			t.Fatalf("subdomains of %s disagree", d)
		}
	}
}

func TestFaultInjectorErrorFlavours(t *testing.T) {
	f := NewFaultInjector(3, 1.0) // everything fails
	flavours := map[string]bool{}
	for i := 0; i < 60; i++ {
		err := f.Check(fmt.Sprintf("h%d.com", i))
		if err == nil {
			t.Fatal("rate 1.0 must fail")
		}
		var op *net.OpError
		if !errors.As(err, &op) {
			t.Fatalf("error %v is not *net.OpError", err)
		}
		switch {
		case errors.Is(err, syscall.ECONNREFUSED):
			flavours["refused"] = true
		case errors.Is(err, syscall.ECONNRESET):
			flavours["reset"] = true
		default:
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				flavours["timeout"] = true
			} else {
				t.Fatalf("unexpected flavour: %v", err)
			}
		}
	}
	if len(flavours) != 3 {
		t.Fatalf("expected all three error flavours, got %v", flavours)
	}
}

func TestFaultInjectorZeroRate(t *testing.T) {
	f := NewFaultInjector(3, 0)
	if f.Unreachable("any.com") || f.Check("any.com") != nil {
		t.Fatal("zero rate must never fail")
	}
}

func TestNetworkFaultIntegration(t *testing.T) {
	n := New()
	n.SetFaults(NewFaultInjector(9, 1.0))
	n.Handle("up.com", okHandler("ok"))
	_, err := n.Client().Get("http://up.com/")
	if err == nil {
		t.Fatal("expected injected failure")
	}
	if n.FailureCount() != 1 || n.RequestCount() != 1 {
		t.Fatalf("counters: failures=%d requests=%d", n.FailureCount(), n.RequestCount())
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	if !t0.Equal(Epoch) {
		t.Fatalf("start = %v, want %v", t0, Epoch)
	}
	c.Advance(5 * time.Second)
	c.Advance(-time.Hour) // ignored
	if got := c.Now().Sub(t0); got != 5*time.Second {
		t.Fatalf("advanced %v, want 5s", got)
	}
}

func TestLatencyAdvancesClock(t *testing.T) {
	n := New()
	n.SetLatency(NewLatencyModel(1, 3.5, 0.5)) // ~33ms median
	n.Handle("a.com", okHandler("x"))
	before := n.Clock().Now()
	for i := 0; i < 10; i++ {
		resp, err := n.Client().Get("http://a.com/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if !n.Clock().Now().After(before) {
		t.Fatal("virtual clock did not advance")
	}
}

func TestObserverSeesRequests(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("x"))
	var mu sync.Mutex
	var seen []string
	n.Observe(func(r *http.Request) {
		mu.Lock()
		seen = append(seen, r.URL.String())
		mu.Unlock()
	})
	resp, err := n.Client().Get("http://a.com/p?q=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(seen) != 1 || seen[0] != "http://a.com/p?q=1" {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestConcurrentClients(t *testing.T) {
	n := New()
	for i := 0; i < 10; i++ {
		n.Handle(fmt.Sprintf("s%d.com", i), okHandler("ok"))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := n.Client()
			for i := 0; i < 10; i++ {
				resp, err := c.Get(fmt.Sprintf("http://s%d.com/", i))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n.RequestCount() != 40 {
		t.Fatalf("RequestCount = %d, want 40", n.RequestCount())
	}
}

func TestHostsSorted(t *testing.T) {
	n := New()
	n.Handle("z.com", okHandler(""))
	n.Handle("a.com", okHandler(""))
	hosts := n.Hosts()
	if len(hosts) != 2 || hosts[0] != "a.com" || hosts[1] != "z.com" {
		t.Fatalf("Hosts = %v", hosts)
	}
}

func TestHostPortStripped(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("ok"))
	resp, err := n.Client().Get("http://a.com:8080/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ReadBody(resp)
	if body != "ok" {
		t.Fatalf("body = %q", body)
	}
}

func TestFaultExemption(t *testing.T) {
	f := NewFaultInjector(1, 1.0) // everything fails...
	f.Exempt("cdn.tracker.net", "bare-host")
	if f.Unreachable("tracker.net") || f.Unreachable("x.tracker.net") {
		t.Fatal("exempted registered domain still failing")
	}
	if f.Unreachable("bare-host") {
		t.Fatal("exempted bare host still failing")
	}
	if !f.Unreachable("other.com") {
		t.Fatal("non-exempt domain should fail at rate 1.0")
	}
}

func TestUnobserveStopsDelivery(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("ok"))
	var calls1, calls2 int
	sub1 := n.Observe(func(r *http.Request) { calls1++ })
	sub2 := n.Observe(func(r *http.Request) { calls2++ })

	if _, err := n.Client().Get("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if calls1 != 1 || calls2 != 1 {
		t.Fatalf("calls = %d/%d, want 1/1", calls1, calls2)
	}

	n.Unobserve(sub1)
	if _, err := n.Client().Get("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if calls1 != 1 {
		t.Fatalf("unobserved fn still called: %d", calls1)
	}
	if calls2 != 2 {
		t.Fatalf("remaining observer missed dispatch: %d", calls2)
	}

	// Cancel is idempotent and works via the handle too.
	sub2.Cancel()
	sub2.Cancel()
	n.Unobserve(sub1) // already removed: ignored
	var nilSub *Subscription
	nilSub.Cancel() // nil-safe
	if _, err := n.Client().Get("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if calls2 != 2 {
		t.Fatalf("cancelled observer still called: %d", calls2)
	}
}

// TestObserverConcurrentRegisterDispatch hammers Observe/Unobserve from
// many goroutines while requests dispatch concurrently. Run under
// -race (make check does) it proves registration is safe against
// in-flight dispatches.
func TestObserverConcurrentRegisterDispatch(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("ok"))
	client := n.Client()

	var hits atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://a.com/")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sub := n.Observe(func(r *http.Request) { hits.Add(1) })
				sub.Cancel()
			}
		}()
	}
	// Let the churn and the request stream overlap, then stop.
	for i := 0; i < 50; i++ {
		resp, err := client.Get("http://a.com/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
}

func TestTelemetryCountersAndSpans(t *testing.T) {
	n := New()
	n.Handle("a.com", okHandler("ok"))
	tel := telemetry.New(nil, 64)
	n.SetTelemetry(tel)

	if _, err := n.Client().Get("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Client().Get("http://missing.example/"); err == nil {
		t.Fatal("unknown host should fail")
	}

	if n.RequestCount() != 2 || n.FailureCount() != 1 {
		t.Fatalf("requests=%d failures=%d", n.RequestCount(), n.FailureCount())
	}
	reg := tel.Registry()
	if reg.Counter("netsim.requests").Value() != 2 {
		t.Fatalf("registry requests = %d", reg.Counter("netsim.requests").Value())
	}
	if reg.Counter("netsim.unknown_hosts").Value() != 1 {
		t.Fatal("unknown host not counted")
	}

	spans := tel.Tracer().Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Layer != "netsim" || spans[0].Attrs["status"] != "200" {
		t.Fatalf("ok span = %+v", spans[0])
	}
	if spans[1].Err == "" || spans[1].Attrs["fault"] != "unknown-host" {
		t.Fatalf("fault span = %+v", spans[1])
	}
	// Spans are stamped from the network's virtual clock.
	if spans[0].Start.Before(Epoch) {
		t.Fatalf("span start %v predates the virtual epoch", spans[0].Start)
	}

	// Detaching telemetry keeps counting in a fresh private registry.
	n.SetTelemetry(nil)
	if n.RequestCount() != 0 {
		t.Fatal("detach should rebind to an empty private registry")
	}
	if _, err := n.Client().Get("http://a.com/"); err != nil {
		t.Fatal(err)
	}
	if n.RequestCount() != 1 || tel.Tracer().Total() != 2 {
		t.Fatalf("post-detach: requests=%d spans=%d", n.RequestCount(), tel.Tracer().Total())
	}
}

func TestInjectedFaultCountedAndTraced(t *testing.T) {
	n := New()
	n.Handle("fail.com", okHandler("never"))
	// Rate 1.0 with no exemptions: every host is unreachable.
	n.SetFaults(NewFaultInjector(7, 1.0))
	tel := telemetry.New(nil, 8)
	n.SetTelemetry(tel)

	if _, err := n.Client().Get("http://fail.com/"); err == nil {
		t.Fatal("expected injected fault")
	}
	if got := tel.Registry().Counter("netsim.faults_injected").Value(); got != 1 {
		t.Fatalf("faults_injected = %d", got)
	}
	spans := tel.Tracer().Spans()
	if len(spans) != 1 || spans[0].Attrs["fault"] != "injected" || spans[0].Err == "" {
		t.Fatalf("fault span = %+v", spans)
	}
}
