// Package netsim provides the virtual network the synthetic web is served
// over. It implements http.RoundTripper: requests carry real
// *http.Request/*http.Response values end to end, and the browser, crawler
// and tracker code is written exactly as it would be against live sockets —
// the transport is the only substitution for the paper's real Internet.
//
// The simulator models the two network behaviours the paper measures or
// depends on:
//
//   - Connection failures. 3.3% of the sites CrumbCruncher attempted to
//     visit failed with errors like ECONNREFUSED or ECONNRESET (§3.3). The
//     fault injector reproduces those as genuine *net.OpError values
//     wrapping syscall errnos, decided deterministically per registered
//     domain so that synchronized crawlers observe identical failures.
//
//   - Latency. Requests are assigned log-normally distributed latencies on
//     a virtual clock (no real sleeping), so timing-derived statistics are
//     reproducible and fast.
package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/telemetry"
)

// HeaderAttempt carries the retry layer's 0-based attempt index on each
// request. Transient fault episodes are a pure function of (registered
// domain, attempt) — not of virtual time — so outcomes are independent
// of goroutine interleaving and identical at any Parallelism.
const HeaderAttempt = "X-Crumb-Attempt"

// Network is a virtual Internet: a host registry plus fault and latency
// models. It is safe for concurrent use by multiple crawlers.
type Network struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler

	// resolver, when set, is consulted on a miss in the host registry:
	// it may register handlers for the host (lazy worlds materialise the
	// owning site here), after which the lookup is retried once. It must
	// be deterministic: resolution happens on first visit, whenever that
	// is.
	resolver func(host string)

	faults   *FaultInjector
	latency  *LatencyModel
	clock    *VirtualClock
	breakers *resilience.BreakerSet
	deadline time.Duration

	// Request accounting lives in a telemetry registry: a private one
	// by default, the run's shared registry after SetTelemetry. The
	// instrument handles are cached so the hot path never takes the
	// registry lock.
	tel              *telemetry.Telemetry
	requests         *telemetry.Counter
	failures         *telemetry.Counter
	faultsInjected   *telemetry.Counter
	unknownHosts     *telemetry.Counter
	latencyHist      *telemetry.Histogram
	breakerOpen      *telemetry.Counter
	deadlineExceeded *telemetry.Counter
	degradedResps    *telemetry.Counter

	// observers are notified of every request before dispatch. Used by
	// tests; the browser layer records its own requests.
	obsMu     sync.RWMutex
	observers []*Subscription
}

// New returns an empty Network with no faults and zero latency.
func New() *Network {
	n := &Network{
		hosts:   make(map[string]http.Handler),
		faults:  NewFaultInjector(0, 0),
		latency: NewLatencyModel(0, 0, 0),
		clock:   NewVirtualClock(),
	}
	n.bindInstruments(telemetry.NewRegistry())
	return n
}

// bindInstruments caches the network's instrument handles out of reg.
func (n *Network) bindInstruments(reg *telemetry.Registry) {
	n.requests = reg.Counter("netsim.requests")
	n.failures = reg.Counter("netsim.failures")
	n.faultsInjected = reg.Counter("netsim.faults_injected")
	n.unknownHosts = reg.Counter("netsim.unknown_hosts")
	n.latencyHist = reg.Histogram("netsim.latency_us")
	n.breakerOpen = reg.Counter("netsim.breaker_open")
	n.deadlineExceeded = reg.Counter("netsim.deadline_exceeded")
	n.degradedResps = reg.Counter("netsim.degraded_responses")
}

// SetTelemetry attaches the run's telemetry: per-request spans stamped
// from the network's virtual clock, and the request/failure counters
// rebound into the shared registry. Must be called before the network
// is shared with concurrent users; passing nil reverts to a private
// registry (counting continues, spans stop).
func (n *Network) SetTelemetry(t *telemetry.Telemetry) {
	n.tel = t
	if t == nil {
		n.bindInstruments(telemetry.NewRegistry())
		return
	}
	t.SetClock(n.clock)
	n.bindInstruments(t.Registry())
}

// SetFaults installs a fault injector. Passing nil disables fault
// injection.
func (n *Network) SetFaults(f *FaultInjector) {
	if f == nil {
		f = NewFaultInjector(0, 0)
	}
	n.faults = f
}

// Faults returns the active fault injector.
func (n *Network) Faults() *FaultInjector { return n.faults }

// SetLatency installs a latency model. Passing nil disables latency.
func (n *Network) SetLatency(l *LatencyModel) {
	if l == nil {
		l = NewLatencyModel(0, 0, 0)
	}
	n.latency = l
}

// SetBreakers installs the crawl's circuit-breaker table; RoundTrip
// fails fast (without dispatching) on hosts whose breaker is open.
// Passing nil disables breaker checks. Must be called before the
// network is shared with concurrent users.
func (n *Network) SetBreakers(b *resilience.BreakerSet) { n.breakers = b }

// Breakers returns the installed breaker table (nil when disabled).
func (n *Network) Breakers() *resilience.BreakerSet { return n.breakers }

// SetRequestDeadline enforces a per-request deadline: any request whose
// sampled latency (including injected spikes) would exceed d instead
// consumes exactly d of virtual time and fails with a timeout. Zero
// disables deadlines. Must be called before the network is shared.
func (n *Network) SetRequestDeadline(d time.Duration) { n.deadline = d }

// Clock returns the network's virtual clock.
func (n *Network) Clock() *VirtualClock { return n.clock }

// SetResolver installs a lazy host resolver, called (outside the
// registry lock) when a request targets an unregistered host. The
// resolver registers any handlers it can for the host via Handle; the
// lookup is then retried once, and still-unknown hosts fail with
// ErrUnknownHost as usual. Must be set before the network is shared
// with concurrent users; passing nil removes it.
func (n *Network) SetResolver(fn func(host string)) {
	n.resolver = fn
}

// Handle registers handler for the exact host (no port). Registering the
// same host twice replaces the handler.
func (n *Network) Handle(host string, handler http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[host] = handler
}

// HandleFunc registers a handler function for host.
func (n *Network) HandleFunc(host string, fn func(http.ResponseWriter, *http.Request)) {
	n.Handle(host, http.HandlerFunc(fn))
}

// Hosts returns the registered hosts in sorted order.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	hosts := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Subscription is a handle to a registered request observer; cancel it
// with Unobserve (or Subscription.Cancel).
type Subscription struct {
	n  *Network
	fn func(*http.Request)
}

// Cancel removes the subscription from its network. Safe to call more
// than once and on nil.
func (s *Subscription) Cancel() {
	if s == nil || s.n == nil {
		return
	}
	s.n.Unobserve(s)
}

// Observe registers fn to be called for every request entering the
// network and returns a handle that Unobserve accepts.
func (n *Network) Observe(fn func(*http.Request)) *Subscription {
	s := &Subscription{n: n, fn: fn}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	// Copy-on-write: dispatch snapshots the slice outside the lock, so
	// registration must never mutate a slice a dispatcher may hold.
	next := make([]*Subscription, 0, len(n.observers)+1)
	next = append(next, n.observers...)
	n.observers = append(next, s)
	return s
}

// Unobserve removes a previously registered observer. Unknown or
// already-removed handles are ignored.
func (n *Network) Unobserve(s *Subscription) {
	if s == nil {
		return
	}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	next := make([]*Subscription, 0, len(n.observers))
	for _, o := range n.observers {
		if o != s {
			next = append(next, o)
		}
	}
	n.observers = next
}

// RequestCount returns the number of requests dispatched (including
// failed ones).
func (n *Network) RequestCount() int64 { return n.requests.Value() }

// FailureCount returns the number of failed dispatches (injected faults
// and unknown hosts).
func (n *Network) FailureCount() int64 { return n.failures.Value() }

// ErrUnknownHost is the error flavour for hosts with no registered
// handler; it mirrors a DNS NXDOMAIN failure.
type ErrUnknownHost struct{ Host string }

func (e *ErrUnknownHost) Error() string {
	return fmt.Sprintf("netsim: lookup %s: no such host", e.Host)
}

// Permanent marks NXDOMAIN non-retryable: a host that does not resolve
// now never will inside one simulated crawl.
func (e *ErrUnknownHost) Permanent() bool { return true }

// RoundTrip implements http.RoundTripper.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	n.requests.Inc()
	host := hostOnly(req.URL.Host)
	sp := n.tel.StartSpan("netsim", "roundtrip").Attr("host", host)

	n.obsMu.RLock()
	obs := n.observers
	n.obsMu.RUnlock()
	for _, s := range obs {
		s.fn(req)
	}

	// Fail fast before fault injection or latency: an open breaker
	// models the client refusing to dial at all.
	if err, ok := n.breakers.Allow(host); !ok {
		n.failures.Inc()
		n.breakerOpen.Inc()
		sp.Attr("fault", "breaker-open").EndErr(err)
		return nil, err
	}

	attempt := 0
	if v := req.Header.Get(HeaderAttempt); v != "" {
		attempt, _ = strconv.Atoi(v)
	}

	ft := n.faults.At(host, attempt)
	if ft.Err != nil {
		n.failures.Inc()
		n.faultsInjected.Inc()
		sp.Attr("fault", "injected").EndErr(ft.Err)
		return nil, ft.Err
	}

	n.mu.RLock()
	handler, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok && n.resolver != nil {
		// Lazy registration: let the resolver materialise the host's
		// handlers, then retry the lookup once.
		n.resolver(host)
		n.mu.RLock()
		handler, ok = n.hosts[host]
		n.mu.RUnlock()
	}
	if !ok {
		n.failures.Inc()
		n.unknownHosts.Inc()
		err := &net.OpError{Op: "dial", Net: "tcp", Err: &ErrUnknownHost{Host: host}}
		sp.Attr("fault", "unknown-host").EndErr(err)
		return nil, err
	}

	lat := n.latency.Sample(host) + ft.ExtraLatency
	if n.deadline > 0 && lat > n.deadline {
		// The client hangs up at the deadline: the request consumes
		// exactly the deadline of virtual time, then times out.
		n.clock.Advance(n.deadline)
		n.latencyHist.Observe(n.deadline.Microseconds())
		n.failures.Inc()
		n.deadlineExceeded.Inc()
		err := &net.OpError{Op: "read", Net: "tcp", Err: &timeoutError{}}
		sp.Attr("fault", "deadline").EndErr(err)
		return nil, err
	}
	n.clock.Advance(lat)
	n.latencyHist.Observe(lat.Microseconds())

	if ft.Status != 0 {
		// HTTP-level degradation: the origin answers, but with an
		// injected 502/503 carrying a Retry-After hint and a truncated
		// body — the handler is never consulted.
		n.degradedResps.Inc()
		rec := recorderPool.Get().(*recorder)
		if ft.RetryAfter > 0 {
			rec.Header().Set("Retry-After", strconv.Itoa(int(ft.RetryAfter/time.Second)))
		}
		rec.WriteHeader(ft.Status)
		io.WriteString(rec, http.StatusText(ft.Status))
		resp := rec.response(req)
		sp.Attr("fault", "degraded").Attr("status", strconv.Itoa(ft.Status)).End()
		return resp, nil
	}

	rec := recorderPool.Get().(*recorder)
	handler.ServeHTTP(rec, req)
	resp := rec.response(req)
	sp.Attr("status", strconv.Itoa(resp.StatusCode)).End()
	return resp, nil
}

// recorderPool recycles the per-request response recorders. The body
// buffer is the valuable part: handlers render multi-kilobyte pages into
// it, and a recycled buffer reaches its high-water capacity once and
// then serves every later request without growing. The reset contract
// (DESIGN.md §10): response() copies the body out and detaches the
// header map before the recorder returns to the pool, so a pooled
// recorder is indistinguishable from a fresh one.
var recorderPool = sync.Pool{New: func() any { return new(recorder) }}

// recorder is a minimal in-process http.ResponseWriter. It replaces
// httptest.NewRecorder on the round-trip hot path: the httptest version
// allocates a fresh recorder and body buffer per request and its
// Result() clones the header map; this one recycles through
// recorderPool and hands the handler-built header to the response
// as-is.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header, 4)
	}
	return r.header
}

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.Write(p)
}

func (r *recorder) WriteString(s string) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.WriteString(s)
}

// response snapshots the recorded state into an *http.Response and
// returns the recorder to the pool. The body is copied exactly once
// (the pooled buffer must not escape); the header map moves to the
// response uncloned, so the recorder forgets it.
func (r *recorder) response(req *http.Request) *http.Response {
	code := r.code
	if code == 0 {
		code = http.StatusOK
	}
	h := r.header
	if h == nil {
		h = make(http.Header)
	}
	body := append([]byte(nil), r.body.Bytes()...)
	r.code, r.header = 0, nil
	r.body.Reset()
	recorderPool.Put(r)
	return &http.Response{
		Status:        strconv.Itoa(code) + " " + http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Client returns an *http.Client backed by this network that does NOT
// follow redirects: the browser layer walks redirect chains itself so that
// every hop — every potential UID smuggler — is observed and recorded.
func (n *Network) Client() *http.Client {
	return &http.Client{
		Transport: n,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// hostOnly strips a port from a host:port string.
func hostOnly(hostport string) string {
	if host, _, err := net.SplitHostPort(hostport); err == nil {
		return host
	}
	return hostport
}

// ReadBody fully reads and closes a response body. It is tolerant of nil
// responses for use in error paths. Bodies from this network are
// bytes.Readers, whose WriteTo hands io.Copy the whole payload in one
// call — the builder allocates exactly once instead of io.ReadAll's
// doubling chain plus a final string copy.
func ReadBody(resp *http.Response) (string, error) {
	if resp == nil || resp.Body == nil {
		return "", nil
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if resp.ContentLength > 0 {
		sb.Grow(int(resp.ContentLength))
	}
	_, err := io.Copy(&sb, resp.Body)
	return sb.String(), err
}

// FaultConfig describes the full fault model. The zero value injects
// nothing; a bare connect-fail rate reproduces the original
// permanent-outage-only injector.
type FaultConfig struct {
	// ConnectFailRate is the fraction of registered domains that are
	// permanently unreachable (the paper's 3.3%).
	ConnectFailRate float64 `json:"connect_fail_rate,omitempty"`
	// TransientRate is the fraction of domains that are flaky: their
	// first k connection attempts of any retry sequence fail with a
	// transport error, then they recover (k is seed-derived per domain
	// in [1, TransientMaxFails]).
	TransientRate float64 `json:"transient_rate,omitempty"`
	// TransientMaxFails bounds k for transient domains (0: 2).
	TransientMaxFails int `json:"transient_max_fails,omitempty"`
	// DegradeRate is the fraction of domains whose first k attempts are
	// answered with an injected 502/503 (Retry-After set, truncated
	// body) before serving real content.
	DegradeRate float64 `json:"degrade_rate,omitempty"`
	// DegradeMaxFails bounds k for degraded domains (0: 2).
	DegradeMaxFails int `json:"degrade_max_fails,omitempty"`
	// SpikeRate is the fraction of domains whose first attempt carries
	// SpikeLatency of extra latency — enough to blow a request deadline
	// when one is set.
	SpikeRate float64 `json:"spike_rate,omitempty"`
	// SpikeLatency is the extra first-attempt latency for spiky domains
	// (0: 30s).
	SpikeLatency time.Duration `json:"spike_latency,omitempty"`
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.TransientMaxFails <= 0 {
		c.TransientMaxFails = 2
	}
	if c.DegradeMaxFails <= 0 {
		c.DegradeMaxFails = 2
	}
	if c.SpikeLatency <= 0 {
		c.SpikeLatency = 30 * time.Second
	}
	return c
}

// Fault is the injected behaviour for one request: a transport error, a
// degraded HTTP response, extra latency, or (the zero value) nothing.
type Fault struct {
	// Err, when non-nil, fails the request at the transport level.
	Err error
	// Status, when non-zero, synthesizes a degraded HTTP response.
	Status int
	// RetryAfter is the degraded response's Retry-After hint.
	RetryAfter time.Duration
	// ExtraLatency is added to the request's sampled latency.
	ExtraLatency time.Duration
}

// Hash salts: each class of decision draws from an independent stream,
// so enabling a new fault class never perturbs an existing one.
const (
	saltPermanent      = 0 // permanent-outage membership
	saltFlavour        = 1 // transport-error flavour
	saltTransient      = 2 // transient-episode membership
	saltTransientFails = 3 // transient episode length k
	saltDegrade        = 4 // degraded-domain membership
	saltDegradeFails   = 5 // degrade episode length k
	saltDegradeStatus  = 6 // 502 vs 503
	saltRetryAfter     = 7 // Retry-After hint seconds
	saltSpike          = 8 // latency-spike membership
)

// FaultInjector decides, deterministically per registered domain, whether
// connections to a host fail and with which behaviour. Permanent-outage
// decisions match the paper's observation model: a site is either
// reachable for the whole crawl or not, so all four synchronized crawlers
// see the same failure at step 1 of a walk. Transient decisions are keyed
// by (domain, attempt) — never by clock readings — so outcomes do not
// depend on goroutine scheduling.
type FaultInjector struct {
	seed   uint64
	cfg    FaultConfig
	psl    *publicsuffix.List
	exempt map[string]bool
}

// NewFaultInjector returns an injector failing connections to a fraction
// rate of registered domains permanently, derived from seed.
func NewFaultInjector(seed int64, rate float64) *FaultInjector {
	return NewFaultInjectorConfig(seed, FaultConfig{ConnectFailRate: rate})
}

// NewFaultInjectorConfig returns an injector implementing the full fault
// model in cfg, derived from seed.
func NewFaultInjectorConfig(seed int64, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{
		seed:   uint64(stats.DeriveSeed(seed, "netsim/faults")),
		cfg:    cfg.withDefaults(),
		psl:    publicsuffix.Default(),
		exempt: make(map[string]bool),
	}
}

// Rate returns the configured permanent failure rate.
func (f *FaultInjector) Rate() float64 { return f.cfg.ConnectFailRate }

// Config returns the injector's full fault model.
func (f *FaultInjector) Config() FaultConfig { return f.cfg }

// Exempt excludes the registered domains of the given hosts from fault
// injection. The synthetic web exempts tracker infrastructure so that the
// connect-failure rate applies to content sites, matching the paper's
// accounting ("3.3% of the sites it attempted to visit"). Exempt must be
// called before the injector is shared with concurrent users.
func (f *FaultInjector) Exempt(hosts ...string) {
	for _, h := range hosts {
		d := f.psl.RegisteredDomain(h)
		if d == "" {
			d = h
		}
		f.exempt[d] = true
	}
}

// domainOf maps a host to its fault-decision key: the registered domain,
// or the host itself when no registrable suffix matches.
func (f *FaultInjector) domainOf(host string) string {
	if d := f.psl.RegisteredDomain(host); d != "" {
		return d
	}
	return host
}

// in reports whether domain falls in the fraction rate of the population
// selected by the salt's hash stream.
func (f *FaultInjector) in(domain string, salt uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return f.hash(domain, salt)%10000 < uint64(rate*10000)
}

// Unreachable reports whether the registered domain of host is
// permanently failed by this injector.
func (f *FaultInjector) Unreachable(host string) bool {
	domain := f.domainOf(host)
	if f.exempt[domain] {
		return false
	}
	return f.in(domain, saltPermanent, f.cfg.ConnectFailRate)
}

// flavour is the deterministic per-domain transport error (refused,
// reset, timeout), mirroring the paper's "ECONNREFUSED, ECONNRESET,
// etc.". Permanent and transient failures of one domain share a flavour:
// a flaky host looks exactly like a dead one until a retry gets through.
func (f *FaultInjector) flavour(domain string) error {
	switch f.hash(domain, saltFlavour) % 3 {
	case 0:
		return &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case 1:
		return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	default:
		return &net.OpError{Op: "dial", Net: "tcp", Err: &timeoutError{}}
	}
}

// Check returns the injected permanent error for host, or nil if the
// host is reachable. Transient behaviour is attempt-dependent; use At.
func (f *FaultInjector) Check(host string) error {
	if !f.Unreachable(host) {
		return nil
	}
	return f.flavour(f.domainOf(host))
}

// TransientFails returns how many leading attempts of a retry sequence
// fail for host's domain (0: the domain is not transient).
func (f *FaultInjector) TransientFails(host string) int {
	return f.transientFails(f.domainOf(host))
}

func (f *FaultInjector) transientFails(domain string) int {
	if f.exempt[domain] || !f.in(domain, saltTransient, f.cfg.TransientRate) {
		return 0
	}
	return 1 + int(f.hash(domain, saltTransientFails)%uint64(f.cfg.TransientMaxFails))
}

// DegradeFails returns how many leading attempts are answered with an
// injected 502/503 for host's domain (0: never degraded).
func (f *FaultInjector) DegradeFails(host string) int {
	return f.degradeFails(f.domainOf(host))
}

func (f *FaultInjector) degradeFails(domain string) int {
	if f.exempt[domain] || !f.in(domain, saltDegrade, f.cfg.DegradeRate) {
		return 0
	}
	return 1 + int(f.hash(domain, saltDegradeFails)%uint64(f.cfg.DegradeMaxFails))
}

// Spiky reports whether host's domain suffers a first-attempt latency
// spike.
func (f *FaultInjector) Spiky(host string) bool {
	domain := f.domainOf(host)
	return !f.exempt[domain] && f.in(domain, saltSpike, f.cfg.SpikeRate)
}

// At returns the injected fault for the given attempt (0-based) against
// host. Classes are checked in severity order — permanent outage, then
// transient transport error, then HTTP degradation, then latency spike —
// and the decision is a pure function of (registered domain, attempt).
// The registered domain is resolved exactly once per call; it previously
// was recomputed by every per-class helper, up to four times per request.
func (f *FaultInjector) At(host string, attempt int) Fault {
	domain := f.domainOf(host)
	if f.exempt[domain] {
		return Fault{}
	}
	if f.in(domain, saltPermanent, f.cfg.ConnectFailRate) {
		return Fault{Err: f.flavour(domain)}
	}
	if k := f.transientFails(domain); attempt < k {
		return Fault{Err: f.flavour(domain)}
	}
	if k := f.degradeFails(domain); attempt < k {
		status := http.StatusBadGateway
		if f.hash(domain, saltDegradeStatus)%2 == 1 {
			status = http.StatusServiceUnavailable
		}
		retryAfter := time.Duration(1+f.hash(domain, saltRetryAfter)%3) * time.Second
		return Fault{Status: status, RetryAfter: retryAfter}
	}
	if attempt == 0 && f.in(domain, saltSpike, f.cfg.SpikeRate) {
		return Fault{ExtraLatency: f.cfg.SpikeLatency}
	}
	return Fault{}
}

// hash is FNV-1a over (seed, salt, domain), computed inline: the
// hash/fnv object allocated per call in a path hit once per request.
// The byte order matches the previous fnv.New64a implementation, so
// fault populations are unchanged.
func (f *FaultInjector) hash(domain string, salt uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(f.seed >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(salt >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= prime64
	}
	return h
}

// timeoutError mimics a dial timeout; it satisfies net.Error.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// LatencyModel assigns log-normal latencies per host on the virtual
// clock.
type LatencyModel struct {
	mu    sync.Mutex
	rng   *stats.RNG
	mu_   float64
	sigma float64
}

// NewLatencyModel returns a model drawing latencies (in milliseconds) from
// LogNormal(mu, sigma). A sigma of 0 with mu of 0 disables latency.
func NewLatencyModel(seed int64, mu, sigma float64) *LatencyModel {
	return &LatencyModel{
		rng:   stats.NewRNG(stats.DeriveSeed(seed, "netsim/latency")),
		mu_:   mu,
		sigma: sigma,
	}
}

// Sample draws the latency for a request to host.
func (l *LatencyModel) Sample(host string) time.Duration {
	if l.mu_ == 0 && l.sigma == 0 {
		return 0
	}
	l.mu.Lock()
	ms := l.rng.LogNormal(l.mu_, l.sigma)
	l.mu.Unlock()
	return time.Duration(ms * float64(time.Millisecond))
}

// VirtualClock is a monotonically advancing simulated clock. Crawl
// timestamps (cookie creation, expiry horizons) come from here, so runs are
// instant in wall time yet produce realistic-looking time data.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the virtual time origin: a fixed instant so datasets are
// reproducible byte for byte.
var Epoch = time.Date(2022, time.March, 1, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a clock starting at Epoch.
func NewVirtualClock() *VirtualClock { return &VirtualClock{now: Epoch} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (ignoring non-positive values) and
// returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the future (the
// clock never goes backwards) and returns the current time. Checkpoint
// resume uses it to restore the instant an interrupted crawl reached.
func (c *VirtualClock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}
