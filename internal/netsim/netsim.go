// Package netsim provides the virtual network the synthetic web is served
// over. It implements http.RoundTripper: requests carry real
// *http.Request/*http.Response values end to end, and the browser, crawler
// and tracker code is written exactly as it would be against live sockets —
// the transport is the only substitution for the paper's real Internet.
//
// The simulator models the two network behaviours the paper measures or
// depends on:
//
//   - Connection failures. 3.3% of the sites CrumbCruncher attempted to
//     visit failed with errors like ECONNREFUSED or ECONNRESET (§3.3). The
//     fault injector reproduces those as genuine *net.OpError values
//     wrapping syscall errnos, decided deterministically per registered
//     domain so that synchronized crawlers observe identical failures.
//
//   - Latency. Requests are assigned log-normally distributed latencies on
//     a virtual clock (no real sleeping), so timing-derived statistics are
//     reproducible and fast.
package netsim

import (
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/telemetry"
)

// Network is a virtual Internet: a host registry plus fault and latency
// models. It is safe for concurrent use by multiple crawlers.
type Network struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler

	faults  *FaultInjector
	latency *LatencyModel
	clock   *VirtualClock

	// Request accounting lives in a telemetry registry: a private one
	// by default, the run's shared registry after SetTelemetry. The
	// instrument handles are cached so the hot path never takes the
	// registry lock.
	tel            *telemetry.Telemetry
	requests       *telemetry.Counter
	failures       *telemetry.Counter
	faultsInjected *telemetry.Counter
	unknownHosts   *telemetry.Counter
	latencyHist    *telemetry.Histogram

	// observers are notified of every request before dispatch. Used by
	// tests; the browser layer records its own requests.
	obsMu     sync.RWMutex
	observers []*Subscription
}

// New returns an empty Network with no faults and zero latency.
func New() *Network {
	n := &Network{
		hosts:   make(map[string]http.Handler),
		faults:  NewFaultInjector(0, 0),
		latency: NewLatencyModel(0, 0, 0),
		clock:   NewVirtualClock(),
	}
	n.bindInstruments(telemetry.NewRegistry())
	return n
}

// bindInstruments caches the network's instrument handles out of reg.
func (n *Network) bindInstruments(reg *telemetry.Registry) {
	n.requests = reg.Counter("netsim.requests")
	n.failures = reg.Counter("netsim.failures")
	n.faultsInjected = reg.Counter("netsim.faults_injected")
	n.unknownHosts = reg.Counter("netsim.unknown_hosts")
	n.latencyHist = reg.Histogram("netsim.latency_us")
}

// SetTelemetry attaches the run's telemetry: per-request spans stamped
// from the network's virtual clock, and the request/failure counters
// rebound into the shared registry. Must be called before the network
// is shared with concurrent users; passing nil reverts to a private
// registry (counting continues, spans stop).
func (n *Network) SetTelemetry(t *telemetry.Telemetry) {
	n.tel = t
	if t == nil {
		n.bindInstruments(telemetry.NewRegistry())
		return
	}
	t.SetClock(n.clock)
	n.bindInstruments(t.Registry())
}

// SetFaults installs a fault injector. Passing nil disables fault
// injection.
func (n *Network) SetFaults(f *FaultInjector) {
	if f == nil {
		f = NewFaultInjector(0, 0)
	}
	n.faults = f
}

// Faults returns the active fault injector.
func (n *Network) Faults() *FaultInjector { return n.faults }

// SetLatency installs a latency model. Passing nil disables latency.
func (n *Network) SetLatency(l *LatencyModel) {
	if l == nil {
		l = NewLatencyModel(0, 0, 0)
	}
	n.latency = l
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *VirtualClock { return n.clock }

// Handle registers handler for the exact host (no port). Registering the
// same host twice replaces the handler.
func (n *Network) Handle(host string, handler http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[host] = handler
}

// HandleFunc registers a handler function for host.
func (n *Network) HandleFunc(host string, fn func(http.ResponseWriter, *http.Request)) {
	n.Handle(host, http.HandlerFunc(fn))
}

// Hosts returns the registered hosts in sorted order.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	hosts := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Subscription is a handle to a registered request observer; cancel it
// with Unobserve (or Subscription.Cancel).
type Subscription struct {
	n  *Network
	fn func(*http.Request)
}

// Cancel removes the subscription from its network. Safe to call more
// than once and on nil.
func (s *Subscription) Cancel() {
	if s == nil || s.n == nil {
		return
	}
	s.n.Unobserve(s)
}

// Observe registers fn to be called for every request entering the
// network and returns a handle that Unobserve accepts.
func (n *Network) Observe(fn func(*http.Request)) *Subscription {
	s := &Subscription{n: n, fn: fn}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	// Copy-on-write: dispatch snapshots the slice outside the lock, so
	// registration must never mutate a slice a dispatcher may hold.
	next := make([]*Subscription, 0, len(n.observers)+1)
	next = append(next, n.observers...)
	n.observers = append(next, s)
	return s
}

// Unobserve removes a previously registered observer. Unknown or
// already-removed handles are ignored.
func (n *Network) Unobserve(s *Subscription) {
	if s == nil {
		return
	}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	next := make([]*Subscription, 0, len(n.observers))
	for _, o := range n.observers {
		if o != s {
			next = append(next, o)
		}
	}
	n.observers = next
}

// RequestCount returns the number of requests dispatched (including
// failed ones).
func (n *Network) RequestCount() int64 { return n.requests.Value() }

// FailureCount returns the number of failed dispatches (injected faults
// and unknown hosts).
func (n *Network) FailureCount() int64 { return n.failures.Value() }

// ErrUnknownHost is the error flavour for hosts with no registered
// handler; it mirrors a DNS NXDOMAIN failure.
type ErrUnknownHost struct{ Host string }

func (e *ErrUnknownHost) Error() string {
	return fmt.Sprintf("netsim: lookup %s: no such host", e.Host)
}

// RoundTrip implements http.RoundTripper.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	n.requests.Inc()
	host := hostOnly(req.URL.Host)
	sp := n.tel.StartSpan("netsim", "roundtrip").Attr("host", host)

	n.obsMu.RLock()
	obs := n.observers
	n.obsMu.RUnlock()
	for _, s := range obs {
		s.fn(req)
	}

	if err := n.faults.Check(host); err != nil {
		n.failures.Inc()
		n.faultsInjected.Inc()
		sp.Attr("fault", "injected").EndErr(err)
		return nil, err
	}

	n.mu.RLock()
	handler, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		n.failures.Inc()
		n.unknownHosts.Inc()
		err := &net.OpError{Op: "dial", Net: "tcp", Err: &ErrUnknownHost{Host: host}}
		sp.Attr("fault", "unknown-host").EndErr(err)
		return nil, err
	}

	lat := n.latency.Sample(host)
	n.clock.Advance(lat)
	n.latencyHist.Observe(lat.Microseconds())

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	sp.Attr("status", strconv.Itoa(resp.StatusCode)).End()
	return resp, nil
}

// Client returns an *http.Client backed by this network that does NOT
// follow redirects: the browser layer walks redirect chains itself so that
// every hop — every potential UID smuggler — is observed and recorded.
func (n *Network) Client() *http.Client {
	return &http.Client{
		Transport: n,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// hostOnly strips a port from a host:port string.
func hostOnly(hostport string) string {
	if host, _, err := net.SplitHostPort(hostport); err == nil {
		return host
	}
	return hostport
}

// ReadBody fully reads and closes a response body. It is tolerant of nil
// responses for use in error paths.
func ReadBody(resp *http.Response) (string, error) {
	if resp == nil || resp.Body == nil {
		return "", nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// FaultInjector decides, deterministically per registered domain, whether
// connections to a host fail and with which error. The per-domain decision
// matches the paper's observation model: a site is either reachable for the
// whole crawl or not, so all four synchronized crawlers see the same
// failure at step 1 of a walk.
type FaultInjector struct {
	seed   uint64
	rate   float64
	psl    *publicsuffix.List
	exempt map[string]bool
}

// NewFaultInjector returns an injector failing connections to a fraction
// rate of registered domains, derived from seed.
func NewFaultInjector(seed int64, rate float64) *FaultInjector {
	return &FaultInjector{
		seed:   uint64(stats.DeriveSeed(seed, "netsim/faults")),
		rate:   rate,
		psl:    publicsuffix.Default(),
		exempt: make(map[string]bool),
	}
}

// Rate returns the configured failure rate.
func (f *FaultInjector) Rate() float64 { return f.rate }

// Exempt excludes the registered domains of the given hosts from fault
// injection. The synthetic web exempts tracker infrastructure so that the
// connect-failure rate applies to content sites, matching the paper's
// accounting ("3.3% of the sites it attempted to visit"). Exempt must be
// called before the injector is shared with concurrent users.
func (f *FaultInjector) Exempt(hosts ...string) {
	for _, h := range hosts {
		d := f.psl.RegisteredDomain(h)
		if d == "" {
			d = h
		}
		f.exempt[d] = true
	}
}

// Unreachable reports whether the registered domain of host is failed by
// this injector.
func (f *FaultInjector) Unreachable(host string) bool {
	if f.rate <= 0 {
		return false
	}
	domain := f.psl.RegisteredDomain(host)
	if domain == "" {
		domain = host
	}
	if f.exempt[domain] {
		return false
	}
	return f.hash(domain, 0)%10000 < uint64(f.rate*10000)
}

// Check returns the injected error for host, or nil if the host is
// reachable. The error flavour (refused, reset, timeout) is itself a
// deterministic function of the domain, mirroring the paper's
// "ECONNREFUSED, ECONNRESET, etc.".
func (f *FaultInjector) Check(host string) error {
	if !f.Unreachable(host) {
		return nil
	}
	domain := f.psl.RegisteredDomain(host)
	if domain == "" {
		domain = host
	}
	switch f.hash(domain, 1) % 3 {
	case 0:
		return &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case 1:
		return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	default:
		return &net.OpError{Op: "dial", Net: "tcp", Err: &timeoutError{}}
	}
}

func (f *FaultInjector) hash(domain string, salt uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(f.seed >> (8 * i))
	}
	h.Write(b[:])
	for i := range b {
		b[i] = byte(salt >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(domain))
	return h.Sum64()
}

// timeoutError mimics a dial timeout; it satisfies net.Error.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// LatencyModel assigns log-normal latencies per host on the virtual
// clock.
type LatencyModel struct {
	mu    sync.Mutex
	rng   *stats.RNG
	mu_   float64
	sigma float64
}

// NewLatencyModel returns a model drawing latencies (in milliseconds) from
// LogNormal(mu, sigma). A sigma of 0 with mu of 0 disables latency.
func NewLatencyModel(seed int64, mu, sigma float64) *LatencyModel {
	return &LatencyModel{
		rng:   stats.NewRNG(stats.DeriveSeed(seed, "netsim/latency")),
		mu_:   mu,
		sigma: sigma,
	}
}

// Sample draws the latency for a request to host.
func (l *LatencyModel) Sample(host string) time.Duration {
	if l.mu_ == 0 && l.sigma == 0 {
		return 0
	}
	l.mu.Lock()
	ms := l.rng.LogNormal(l.mu_, l.sigma)
	l.mu.Unlock()
	return time.Duration(ms * float64(time.Millisecond))
}

// VirtualClock is a monotonically advancing simulated clock. Crawl
// timestamps (cookie creation, expiry horizons) come from here, so runs are
// instant in wall time yet produce realistic-looking time data.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the virtual time origin: a fixed instant so datasets are
// reproducible byte for byte.
var Epoch = time.Date(2022, time.March, 1, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a clock starting at Epoch.
func NewVirtualClock() *VirtualClock { return &VirtualClock{now: Epoch} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (ignoring non-positive values) and
// returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}
