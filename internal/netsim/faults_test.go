package netsim

import (
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/telemetry"
)

// TestFlavourStableAcrossCalls locks in that a failed domain's error
// flavour is a pure function of the domain: repeated Check (and At)
// calls return the identical transport error, so all four synchronized
// crawlers record the same failure.
func TestFlavourStableAcrossCalls(t *testing.T) {
	f := NewFaultInjector(11, 1.0)
	for i := 0; i < 50; i++ {
		host := fmt.Sprintf("site%d.com", i)
		first := f.Check(host)
		if first == nil {
			t.Fatalf("%s: rate 1.0 must fail", host)
		}
		for call := 0; call < 5; call++ {
			if got := f.Check(host); got.Error() != first.Error() {
				t.Fatalf("%s: flavour changed between calls: %v vs %v", host, first, got)
			}
			if got := f.At(host, 0).Err; got == nil || got.Error() != first.Error() {
				t.Fatalf("%s: At flavour %v disagrees with Check %v", host, got, first)
			}
		}
		// Subdomains share the registered domain's flavour.
		if got := f.Check("www." + host); got.Error() != first.Error() {
			t.Fatalf("%s: subdomain flavour %v disagrees with %v", host, got, first)
		}
	}
}

// TestExemptCoversRegisteredDomain is the satellite regression: exempting
// one deep subdomain must exempt every sibling under the same registered
// domain, across every fault class.
func TestExemptCoversRegisteredDomain(t *testing.T) {
	f := NewFaultInjectorConfig(1, FaultConfig{
		ConnectFailRate: 1, TransientRate: 1, DegradeRate: 1, SpikeRate: 1,
	})
	f.Exempt("a.cdn.example.com")
	for _, h := range []string{"a.cdn.example.com", "b.cdn.example.com", "example.com", "www.example.com"} {
		if f.Unreachable(h) {
			t.Errorf("%s unreachable despite sibling exemption", h)
		}
		if k := f.TransientFails(h); k != 0 {
			t.Errorf("%s transient (k=%d) despite exemption", h, k)
		}
		if k := f.DegradeFails(h); k != 0 {
			t.Errorf("%s degraded (k=%d) despite exemption", h, k)
		}
		if f.Spiky(h) {
			t.Errorf("%s spiky despite exemption", h)
		}
		if ft := f.At(h, 0); ft != (Fault{}) {
			t.Errorf("At(%s, 0) = %+v, want zero fault", h, ft)
		}
	}
	if !f.Unreachable("other.com") {
		t.Error("exemption leaked to an unrelated domain")
	}
}

// TestFaultRateEdges pins the rate-0 and rate-1 boundaries for every
// fault class.
func TestFaultRateEdges(t *testing.T) {
	zero := NewFaultInjectorConfig(5, FaultConfig{})
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("h%d.com", i)
		if zero.Unreachable(h) || zero.TransientFails(h) != 0 || zero.DegradeFails(h) != 0 || zero.Spiky(h) {
			t.Fatalf("zero config injected a fault for %s", h)
		}
		for attempt := 0; attempt < 4; attempt++ {
			if ft := zero.At(h, attempt); ft != (Fault{}) {
				t.Fatalf("zero config At(%s, %d) = %+v", h, attempt, ft)
			}
		}
	}

	all := NewFaultInjectorConfig(5, FaultConfig{TransientRate: 1})
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("h%d.com", i)
		if k := all.TransientFails(h); k < 1 || k > 2 {
			t.Fatalf("TransientFails(%s) = %d, want in [1, 2]", h, k)
		}
	}
}

// TestTransientRecoveryByAttempt proves transient episodes are
// attempt-indexed: the first k attempts fail with the domain's flavour,
// attempt k succeeds — regardless of call order or repetition.
func TestTransientRecoveryByAttempt(t *testing.T) {
	f := NewFaultInjectorConfig(3, FaultConfig{TransientRate: 1, TransientMaxFails: 3})
	for i := 0; i < 50; i++ {
		h := fmt.Sprintf("flaky%d.com", i)
		k := f.TransientFails(h)
		if k < 1 || k > 3 {
			t.Fatalf("TransientFails(%s) = %d, want in [1, 3]", h, k)
		}
		// Query attempts out of order to prove there is no hidden state.
		for _, attempt := range []int{k, k - 1, 0, k + 5, k - 1, k} {
			ft := f.At(h, attempt)
			if attempt < k && ft.Err == nil {
				t.Fatalf("At(%s, %d) recovered before episode end k=%d", h, attempt, k)
			}
			if attempt >= k && ft.Err != nil {
				t.Fatalf("At(%s, %d) still failing after episode end k=%d: %v", h, attempt, k, ft.Err)
			}
		}
	}
}

// TestDegradedResponsesEndToEnd drives an HTTP-degraded domain through
// the network: early attempts get an injected 502/503 with a Retry-After
// hint and a truncated body, a later attempt reaches the real handler.
func TestDegradedResponsesEndToEnd(t *testing.T) {
	n := New()
	n.SetFaults(NewFaultInjectorConfig(2, FaultConfig{DegradeRate: 1, DegradeMaxFails: 1}))
	n.Handle("slow.com", okHandler("real content"))

	get := func(attempt int) *http.Response {
		req, _ := http.NewRequest("GET", "http://slow.com/", nil)
		if attempt > 0 {
			req.Header.Set(HeaderAttempt, strconv.Itoa(attempt))
		}
		resp, err := n.Client().Do(req)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		return resp
	}

	resp := get(0)
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("attempt 0 status = %d, want 502 or 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("Retry-After = %q, want 1..3 seconds", resp.Header.Get("Retry-After"))
	}
	if body, _ := ReadBody(resp); body != http.StatusText(resp.StatusCode) {
		t.Fatalf("degraded body = %q, want truncated status text", body)
	}

	resp = get(1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attempt 1 status = %d, want 200 after episode", resp.StatusCode)
	}
	if body, _ := ReadBody(resp); body != "real content" {
		t.Fatalf("attempt 1 body = %q, handler not reached", body)
	}
	if got := n.Clock().Now(); got.Before(Epoch) {
		t.Fatalf("clock went backwards: %v", got)
	}
}

// TestDeadlineExceeded proves a latency spike beyond the request
// deadline consumes exactly the deadline of virtual time and fails with
// a retryable timeout.
func TestDeadlineExceeded(t *testing.T) {
	n := New()
	tel := telemetry.New(nil, 8)
	n.SetTelemetry(tel)
	n.SetFaults(NewFaultInjectorConfig(4, FaultConfig{SpikeRate: 1, SpikeLatency: 30 * time.Second}))
	n.SetRequestDeadline(5 * time.Second)
	n.Handle("spiky.com", okHandler("ok"))

	before := n.Clock().Now()
	_, err := n.Client().Get("http://spiky.com/")
	if err == nil {
		t.Fatal("expected deadline timeout")
	}
	if !resilience.Retryable(err) {
		t.Errorf("deadline timeout %v should be retryable", err)
	}
	if got := n.Clock().Now().Sub(before); got != 5*time.Second {
		t.Errorf("request consumed %v of virtual time, want exactly the 5s deadline", got)
	}
	if v := tel.Registry().Counter("netsim.deadline_exceeded").Value(); v != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", v)
	}

	// The retry (attempt 1) misses the spike and completes under the
	// deadline.
	req, _ := http.NewRequest("GET", "http://spiky.com/", nil)
	req.Header.Set(HeaderAttempt, "1")
	resp, err := n.Client().Do(req)
	if err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	resp.Body.Close()
}

// TestBreakerFailFast wires a breaker set into the network and proves an
// open breaker rejects requests before fault injection or latency.
func TestBreakerFailFast(t *testing.T) {
	n := New()
	tel := telemetry.New(nil, 8)
	n.SetTelemetry(tel)
	n.Handle("dead.com", okHandler("ok"))
	set := resilience.NewBreakerSet(resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour}, n.Clock(), nil, tel.Registry())
	n.SetBreakers(set)

	set.ReportHost("dead.com", fmt.Errorf("sequence failed"))
	before := n.Clock().Now()
	_, err := n.Client().Get("http://dead.com/")
	if err == nil {
		t.Fatal("open breaker admitted a request")
	}
	if !resilience.IsBreakerOpen(err) {
		t.Fatalf("error %v is not a breaker rejection", err)
	}
	if !n.Clock().Now().Equal(before) {
		t.Error("breaker rejection consumed virtual time; fail-fast must not")
	}
	if v := tel.Registry().Counter("netsim.breaker_open").Value(); v != 1 {
		t.Errorf("breaker_open = %d, want 1", v)
	}
}

// TestVirtualClockAdvanceTo covers the checkpoint-resume primitive: the
// clock jumps forward to a recorded instant and never backwards.
func TestVirtualClockAdvanceTo(t *testing.T) {
	c := NewVirtualClock()
	target := Epoch.Add(42 * time.Minute)
	if got := c.AdvanceTo(target); !got.Equal(target) {
		t.Fatalf("AdvanceTo = %v, want %v", got, target)
	}
	if got := c.AdvanceTo(Epoch); !got.Equal(target) {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", got)
	}
	if !c.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", c.Now(), target)
	}
}
