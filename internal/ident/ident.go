// Package ident derives the deterministic identifiers that flow through
// the synthetic web: user IDs, session IDs, and partition-scoped ad-network
// IDs. Both the browser's script engine (client-side tracker code) and the
// web package's HTTP handlers (server-side tracker code) derive IDs through
// this package, so a given (seed, inputs) pair always yields the same token
// — which is what makes whole crawls reproducible.
//
// Real trackers generate these values randomly and persist them; because a
// synthetic user's first contact with a tracker is itself deterministic,
// deriving the value from the (user, tracker) pair is observationally
// identical while keeping parallel crawlers off shared RNG state.
package ident

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// Simulation identity headers. Browsers send them on every request; the
// synthetic web's handlers use them solely to seed deterministic
// identifier derivation, standing in for the signal a real server gets
// from a fresh cookieless visitor (mint a random ID) or from a
// fingerprintable surface.
const (
	// HeaderProfile carries the simulated user identity (one "user data
	// directory").
	HeaderProfile = "X-Crumb-Profile"
	// HeaderClient carries the crawler instance identity; two crawlers
	// may share a profile (Safari-1 and Safari-1R) yet receive distinct
	// session IDs.
	HeaderClient = "X-Crumb-Client"
	// HeaderMachine carries the machine fingerprint surface.
	HeaderMachine = "X-Crumb-Machine"
)

// digest hashes the seed and parts into 32 bytes.
func digest(seed int64, kind string, parts []string) [32]byte {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(kind))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// UID returns a 24-hex-character user identifier bound to the given parts
// (typically tracker domain, profile ID, and — under partitioning — the
// top-level site).
func UID(seed int64, parts ...string) string {
	d := digest(seed, "uid", parts)
	return hex.EncodeToString(d[:12])
}

// SessionID returns a 20-hex-character identifier that differs on every
// visit: callers include a per-client visit counter in parts.
func SessionID(seed int64, parts ...string) string {
	d := digest(seed, "session", parts)
	return hex.EncodeToString(d[:10])
}

// Fingerprint returns a 16-hex-character machine fingerprint token. All
// profiles on one simulated machine share it, reproducing the paper's
// §3.5 concern that fingerprint-derived UIDs defeat multi-profile user
// simulation.
func Fingerprint(seed int64, machine string) string {
	d := digest(seed, "fingerprint", []string{machine})
	return hex.EncodeToString(d[:8])
}

// OpaqueToken returns an n-hex-character value for miscellaneous
// deterministic needs (ad ids, cache busters). n is clamped to [8, 64].
func OpaqueToken(seed int64, n int, parts ...string) string {
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	d := digest(seed, "opaque", parts)
	return hex.EncodeToString(d[:])[:n]
}

// ShortHash returns a small non-negative integer in [0, mod) derived from
// the parts; handlers use it for stable pseudo-random choices (e.g. which
// error page flavour a domain serves).
func ShortHash(seed int64, mod int, parts ...string) int {
	if mod <= 0 {
		return 0
	}
	d := digest(seed, "shorthash", parts)
	v := binary.LittleEndian.Uint64(d[:8])
	return int(v % uint64(mod))
}

// Join canonicalizes parts into a single stable string key (used for map
// keys that mirror derivations).
func Join(parts ...string) string { return strings.Join(parts, "\x00") }
