package ident

import (
	"testing"
	"testing/quick"
)

func TestUIDDeterministic(t *testing.T) {
	a := UID(1, "tracker.com", "profile-1")
	b := UID(1, "tracker.com", "profile-1")
	if a != b {
		t.Fatal("UID not deterministic")
	}
	if len(a) != 24 {
		t.Fatalf("UID length = %d, want 24", len(a))
	}
}

func TestUIDDistinguishesUsers(t *testing.T) {
	if UID(1, "t.com", "p1") == UID(1, "t.com", "p2") {
		t.Fatal("different profiles must get different UIDs")
	}
	if UID(1, "t.com", "p1") == UID(2, "t.com", "p1") {
		t.Fatal("different seeds must get different UIDs")
	}
	if UID(1, "t.com", "p1") == UID(1, "u.com", "p1") {
		t.Fatal("different trackers must get different UIDs")
	}
}

func TestUIDPartSeparation(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc"): parts are delimited.
	if UID(1, "ab", "c") == UID(1, "a", "bc") {
		t.Fatal("part boundaries not preserved")
	}
}

func TestKindSeparation(t *testing.T) {
	if UID(1, "x")[:16] == SessionID(1, "x")[:16] {
		t.Fatal("UID and SessionID derivations must be independent")
	}
}

func TestSessionIDLength(t *testing.T) {
	if got := SessionID(1, "d.com", "client", "3"); len(got) != 20 {
		t.Fatalf("SessionID length = %d, want 20", len(got))
	}
}

func TestFingerprintSharedAcrossProfiles(t *testing.T) {
	// Fingerprint depends only on the machine, not the profile — the very
	// property that worried the paper's authors.
	m := Fingerprint(5, "crawler-host-1")
	if m != Fingerprint(5, "crawler-host-1") {
		t.Fatal("fingerprint not stable")
	}
	if m == Fingerprint(5, "crawler-host-2") {
		t.Fatal("different machines must differ")
	}
	if len(m) != 16 {
		t.Fatalf("len = %d, want 16", len(m))
	}
}

func TestOpaqueTokenClamping(t *testing.T) {
	if got := OpaqueToken(1, 0, "x"); len(got) != 8 {
		t.Fatalf("clamp low: %d", len(got))
	}
	if got := OpaqueToken(1, 100, "x"); len(got) != 64 {
		t.Fatalf("clamp high: %d", len(got))
	}
	if got := OpaqueToken(1, 16, "x"); len(got) != 16 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestShortHashRange(t *testing.T) {
	f := func(seed int64, part string) bool {
		v := ShortHash(seed, 7, part)
		return v >= 0 && v < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ShortHash(1, 0, "x") != 0 {
		t.Fatal("mod<=0 should return 0")
	}
}

func TestShortHashStable(t *testing.T) {
	if ShortHash(3, 100, "a.com") != ShortHash(3, 100, "a.com") {
		t.Fatal("ShortHash not deterministic")
	}
}

func TestJoin(t *testing.T) {
	if Join("a", "b") == Join("ab") {
		t.Fatal("Join must delimit parts")
	}
}

// Property: all hex, lowercase.
func TestUIDHexProperty(t *testing.T) {
	f := func(seed int64, p string) bool {
		for _, c := range UID(seed, p) {
			if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
