// Package publicsuffix computes registered domains (eTLD+1), the unit of
// "first-party context" throughout the paper: a token has been smuggled
// when it crosses registered-domain boundaries, and partitioned storage is
// keyed by registered domain.
//
// The rule engine implements the subset of the Public Suffix List algorithm
// that the measurement needs: normal rules, wildcard rules (*.ck) and
// exception rules (!www.ck), with longest-match-wins semantics. The
// built-in rule set covers the suffixes used by the synthetic web plus the
// common real-world ones, and callers can supply their own list.
package publicsuffix

import (
	"strings"
)

// List is a compiled set of public-suffix rules.
type List struct {
	rules      map[string]bool // exact suffix rules
	wildcards  map[string]bool // "*.<suffix>" rules, keyed by <suffix>
	exceptions map[string]bool // "!<domain>" rules, keyed by <domain>
}

// defaultRules covers the TLDs and multi-label suffixes that appear in the
// synthetic web and in the paper's redirector tables (e.g.
// kuwosm.world.tmall.com is under .com; secure.jbs.elsevierhealth.com too).
var defaultRules = []string{
	"com", "net", "org", "io", "co", "info", "biz", "dev", "app",
	"edu", "gov", "mil", "int",
	"ru", "de", "fr", "uk", "jp", "cn", "br", "in", "ca", "au", "link",
	"world", "shop", "store", "news", "media", "blog", "site", "online",
	"ads", "cloud", "tech", "ai", "tv", "me",
	// Multi-label suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk",
	"com.au", "net.au", "org.au",
	"co.jp", "ne.jp", "or.jp",
	"com.br", "com.cn", "com.ru",
	// Wildcard and exception examples per the PSL algorithm.
	"*.ck", "!www.ck",
}

var defaultList = MustCompile(defaultRules)

// Default returns the built-in list.
func Default() *List { return defaultList }

// MustCompile compiles rules, panicking on a malformed rule. Rules use PSL
// syntax: "suffix", "*.suffix" or "!domain".
func MustCompile(rules []string) *List {
	l, err := Compile(rules)
	if err != nil {
		panic(err)
	}
	return l
}

// Compile compiles rules into a List.
func Compile(rules []string) (*List, error) {
	l := &List{
		rules:      make(map[string]bool),
		wildcards:  make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(r, "!"):
			l.exceptions[r[1:]] = true
		case strings.HasPrefix(r, "*."):
			l.wildcards[r[2:]] = true
		default:
			l.rules[r] = true
		}
	}
	return l, nil
}

// PublicSuffix returns the public suffix of host. Per the PSL algorithm, a
// host that matches no rule has its last label as its public suffix.
//
// Every candidate suffix is a substring of the (normalized) host, so the
// scan allocates nothing — this sits under every registered-domain and
// same-site check in the pipeline, where the previous Split/Join pass was
// a top allocation site.
func (l *List) PublicSuffix(host string) string {
	host = normalize(host)
	if host == "" {
		return ""
	}
	// Find the longest matching rule, scanning label-boundary suffixes
	// from longest (whole host) to shortest so the first hit wins.
	for i := 0; ; {
		candidate := host[i:]
		if l.exceptions[candidate] {
			// Exception rules mark the candidate itself as registrable:
			// its public suffix is one label shorter.
			if j := strings.IndexByte(candidate, '.'); j >= 0 {
				return candidate[j+1:]
			}
			return ""
		}
		if l.rules[candidate] {
			return candidate
		}
		j := strings.IndexByte(candidate, '.')
		if j < 0 {
			// Last label, no rule matched: the default PSL "*" rule.
			return candidate
		}
		// Wildcard *.<base> matches <label>.<base>.
		if l.wildcards[candidate[j+1:]] {
			return candidate
		}
		i += j + 1
	}
}

// RegisteredDomain returns the eTLD+1 for host: the public suffix plus one
// label. It returns "" if host is itself a public suffix (nothing is
// registrable) or empty. The result is a substring of the normalized
// host — no allocation.
func (l *List) RegisteredDomain(host string) string {
	host = normalize(host)
	if host == "" {
		return ""
	}
	suffix := l.PublicSuffix(host)
	if suffix == "" || len(suffix) >= len(host) {
		return ""
	}
	// PublicSuffix returns a suffix substring of host, so everything
	// before it (minus the joining dot) is the registrable part.
	rest := host[:len(host)-len(suffix)-1]
	if j := strings.LastIndexByte(rest, '.'); j >= 0 {
		return host[j+1:]
	}
	return host
}

// SameSite reports whether two hosts share a registered domain — the
// paper's definition of staying inside one first-party context. Hosts that
// have no registrable domain are only same-site if identical.
func (l *List) SameSite(a, b string) bool {
	ra, rb := l.RegisteredDomain(a), l.RegisteredDomain(b)
	if ra == "" || rb == "" {
		return normalize(a) == normalize(b)
	}
	return ra == rb
}

// RegisteredDomain applies the default list.
func RegisteredDomain(host string) string { return defaultList.RegisteredDomain(host) }

// SameSite applies the default list.
func SameSite(a, b string) bool { return defaultList.SameSite(a, b) }

// normalize lowercases, strips a trailing dot and any port.
func normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i+1:], ".") {
		// Only strip when the tail looks like a port, not an IPv6 segment
		// (the synthetic web never uses IPv6 hosts, but be safe).
		allDigits := len(host[i+1:]) > 0
		for _, c := range host[i+1:] {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			host = host[:i]
		}
	}
	return strings.TrimSuffix(host, ".")
}
