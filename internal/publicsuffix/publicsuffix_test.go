package publicsuffix

import (
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "com"},
		{"a.b.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"www.example.co.uk", "co.uk"},
		{"kuwosm.world.tmall.com", "com"},
		{"btds.zog.link", "link"},
		{"com", "com"},
		{"unknown-tld-host.zz", "zz"}, // no rule: last label
		{"foo.bar.ck", "bar.ck"},      // wildcard *.ck
		{"www.ck", "ck"},              // exception !www.ck
	}
	for _, c := range cases {
		if got := Default().PublicSuffix(c.host); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "example.com"},
		{"a.b.example.com", "example.com"},
		{"adclick.g.doubleclick.net", "doubleclick.net"},
		{"www.example.co.uk", "example.co.uk"},
		{"com", ""}, // bare public suffix: nothing registrable
		{"", ""},
		{"foo.bar.ck", "foo.bar.ck"}, // *.ck: bar.ck is the suffix... foo.bar.ck registrable
		{"a.foo.bar.ck", "foo.bar.ck"},
		{"www.ck", "www.ck"}, // exception: www.ck itself is registrable
		{"sub.www.ck", "www.ck"},
		{"Example.COM.", "example.com"},     // normalization
		{"example.com:8080", "example.com"}, // port stripping
	}
	for _, c := range cases {
		if got := RegisteredDomain(c.host); got != c.want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestSameSite(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a.example.com", "b.example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "example.net", false},
		{"foo.co.uk", "bar.co.uk", false},
		{"com", "com", true}, // degenerate: identical non-registrable
		{"com", "net", false},
	}
	for _, c := range cases {
		if got := SameSite(c.a, c.b); got != c.want {
			t.Errorf("SameSite(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCustomList(t *testing.T) {
	l := MustCompile([]string{"internal", "corp.internal"})
	if got := l.RegisteredDomain("svc.team.corp.internal"); got != "team.corp.internal" {
		t.Fatalf("got %q", got)
	}
}

func TestCompileSkipsCommentsAndBlanks(t *testing.T) {
	l, err := Compile([]string{"// comment", "", "  com  "})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.RegisteredDomain("x.com"); got != "x.com" {
		t.Fatalf("got %q", got)
	}
}

// Property: the registered domain of a host is always a suffix of the host
// and never empty for hosts with >= 2 labels ending in a known TLD.
func TestRegisteredDomainSuffixProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		labels := []string{"aa", "bb", "cc", "dd"}
		host := labels[a%4] + "." + labels[b%4] + ".example.com"
		rd := RegisteredDomain(host)
		return rd == "example.com"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SameSite is symmetric and reflexive.
func TestSameSiteSymmetric(t *testing.T) {
	hosts := []string{"a.x.com", "b.x.com", "x.com", "y.net", "z.co.uk", "com"}
	for _, a := range hosts {
		if !SameSite(a, a) {
			t.Errorf("SameSite(%q, %q) not reflexive", a, a)
		}
		for _, b := range hosts {
			if SameSite(a, b) != SameSite(b, a) {
				t.Errorf("SameSite(%q, %q) not symmetric", a, b)
			}
		}
	}
}
