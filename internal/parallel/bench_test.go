package parallel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// cheapItem is deliberately tiny: a few arithmetic ops, no allocation.
// At this item cost the pool's own per-item overhead (counter RMW,
// context poll, stopwatch reads) dominates — exactly the regime where
// the fine-grained post-crawl stages (per-path candidate scans) run.
func cheapItem(i int, sink *atomic.Int64) {
	v := int64(i)
	v ^= v << 13
	v ^= v >> 7
	sink.Add(v & 0xff)
}

// BenchmarkForEachCheap measures pool overhead on 100k near-free items.
func BenchmarkForEachCheap(b *testing.B) {
	const n = 100_000
	for _, par := range []int{1, 4} {
		b.Run(map[int]string{1: "parallelism-1", 4: "parallelism-4"}[par], func(b *testing.B) {
			var sink atomic.Int64
			b.ResetTimer()
			for range b.N {
				ForEach(n, par, func(i int) { cheapItem(i, &sink) })
			}
		})
	}
}

// BenchmarkForEachTimedCtxCheap is the worst historical case: cheap
// items under both a cancellable context and a timing hook — the shape
// every instrumented pipeline stage runs when telemetry is enabled.
func BenchmarkForEachTimedCtxCheap(b *testing.B) {
	const n = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var observed atomic.Int64
	observe := func(d time.Duration) { observed.Add(int64(d)) }
	for _, par := range []int{1, 4} {
		b.Run(map[int]string{1: "parallelism-1", 4: "parallelism-4"}[par], func(b *testing.B) {
			var sink atomic.Int64
			b.ResetTimer()
			for range b.N {
				if err := ForEachTimedCtx(ctx, n, par, func(i int) { cheapItem(i, &sink) }, observe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
