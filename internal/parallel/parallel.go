// Package parallel provides the bounded worker pool the post-crawl
// pipeline stages share. The contract every caller follows: workers write
// results into pre-sized, index-addressed slots (never append to shared
// state), and the caller reduces those slots in index order afterwards —
// so the merged output is bit-identical to a sequential pass regardless
// of GOMAXPROCS or scheduling.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"crumbcruncher/internal/telemetry"
)

// Workers clamps a parallelism knob to [1, n] for n work items. Zero and
// negative values mean "sequential".
func Workers(p, n int) int {
	if p < 1 {
		return 1
	}
	if n >= 1 && p > n {
		return n
	}
	return p
}

// ForEach invokes fn(i) for every i in [0, n) using at most p concurrent
// workers. Items are handed out in index order from a shared counter, so
// the pool stays busy even when item costs are skewed. With p <= 1 it
// degenerates to a plain loop on the calling goroutine.
func ForEach(n, p int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p = Workers(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach bounded by ctx: once ctx is cancelled the pool
// stops handing out new items (in-flight items finish) and ctx's error
// is returned. A completed run returns nil and is bit-identical to
// ForEach; a context that can never be cancelled adds no per-item cost.
// Callers must treat any non-nil error as "slots are partially filled"
// and abandon the reduce.
func ForEachCtx(ctx context.Context, n, p int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		ForEach(n, p, fn)
		return nil
	}
	if n <= 0 {
		return ctx.Err()
	}
	p = Workers(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachTimedCtx is ForEachCtx with the per-item duration hook of
// ForEachTimed.
func ForEachTimedCtx(ctx context.Context, n, p int, fn func(i int), observe func(d time.Duration)) error {
	if observe == nil {
		return ForEachCtx(ctx, n, p, fn)
	}
	return ForEachCtx(ctx, n, p, func(i int) {
		sw := telemetry.StartStopwatch()
		fn(i)
		observe(sw.Elapsed())
	})
}

// ForEachTimed is ForEach with a per-item wall-duration hook: observe is
// called once per completed item, possibly concurrently from several
// workers (telemetry histograms are atomic, so they are valid sinks).
// A nil observe degrades to plain ForEach — timing costs nothing when
// nobody is watching.
func ForEachTimed(n, p int, fn func(i int), observe func(d time.Duration)) {
	if observe == nil {
		ForEach(n, p, fn)
		return
	}
	ForEach(n, p, func(i int) {
		sw := telemetry.StartStopwatch()
		fn(i)
		observe(sw.Elapsed())
	})
}

// Chunk is a half-open index range [Lo, Hi) of the input slice.
type Chunk struct {
	Lo, Hi int
}

// Chunks splits n items into at most p contiguous ranges of near-equal
// size, in index order. Map-side aggregation runs one worker per chunk;
// the reduce walks the chunks in this order, which keeps first-occurrence
// semantics (e.g. a representative path per unique key) identical to a
// sequential pass.
func Chunks(n, p int) []Chunk {
	p = Workers(p, n)
	if n <= 0 {
		return nil
	}
	out := make([]Chunk, 0, p)
	size := n / p
	rem := n % p
	lo := 0
	for i := 0; i < p; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		if hi > lo {
			out = append(out, Chunk{Lo: lo, Hi: hi})
		}
		lo = hi
	}
	return out
}
