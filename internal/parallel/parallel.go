// Package parallel provides the bounded worker pool the post-crawl
// pipeline stages share. The contract every caller follows: workers write
// results into pre-sized, index-addressed slots (never append to shared
// state), and the caller reduces those slots in index order afterwards —
// so the merged output is bit-identical to a sequential pass regardless
// of GOMAXPROCS or scheduling.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"crumbcruncher/internal/telemetry"
)

// Workers clamps a parallelism knob to [1, n] for n work items. Zero and
// negative values mean "sequential".
func Workers(p, n int) int {
	if p < 1 {
		return 1
	}
	if n >= 1 && p > n {
		return n
	}
	return p
}

// blockFor returns the handout granularity: workers claim contiguous
// blocks of this many items per shared-counter fetch. Aiming for ~16
// blocks per worker keeps skewed item costs balanced while cutting the
// per-item costs that made fine-grained stages slower in parallel than
// sequential — one atomic RMW, one context-error check and (when timed)
// two clock reads per *item* became the dominant cost once items were
// cheap (e.g. per-path candidate scans).
func blockFor(n, p int) int {
	b := n / (p * 16)
	if b < 1 {
		return 1
	}
	if b > 1024 {
		return 1024
	}
	return b
}

// run is the shared implementation: fn(i) for every i in [0, n) over at
// most p workers, items handed out in contiguous index blocks. observe,
// when non-nil, receives one wall-clock duration per completed block
// (the pipeline's "shard" timing histograms). A cancellable ctx is
// polled once per block, never per item.
func run(ctx context.Context, n, p int, fn func(i int), observe func(d time.Duration)) error {
	cancellable := ctx != nil && ctx.Done() != nil
	ctxErr := func() error {
		if cancellable {
			return ctx.Err()
		}
		return nil
	}
	if n <= 0 {
		return ctxErr()
	}
	p = Workers(p, n)
	block := blockFor(n, p)
	runBlock := func(lo, hi int) {
		if observe == nil {
			for i := lo; i < hi; i++ {
				fn(i)
			}
			return
		}
		sw := telemetry.StartStopwatch()
		for i := lo; i < hi; i++ {
			fn(i)
		}
		observe(sw.Elapsed())
	}

	if p == 1 {
		for lo := 0; lo < n; lo += block {
			if err := ctxErr(); err != nil {
				return err
			}
			hi := lo + block
			if hi > n {
				hi = n
			}
			runBlock(lo, hi)
		}
		return ctxErr()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for ctxErr() == nil {
				hi := int(next.Add(int64(block)))
				lo := hi - block
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				runBlock(lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctxErr()
}

// ForEach invokes fn(i) for every i in [0, n) using at most p concurrent
// workers. Items are handed out in index order, in contiguous blocks,
// from a shared counter, so the pool stays busy even when item costs are
// skewed. With p <= 1 it degenerates to a plain loop on the calling
// goroutine.
func ForEach(n, p int, fn func(i int)) {
	run(nil, n, p, fn, nil) //nolint:errcheck // nil ctx never errors
}

// ForEachCtx is ForEach bounded by ctx: once ctx is cancelled the pool
// stops handing out new blocks (in-flight blocks finish) and ctx's error
// is returned. A completed run returns nil and is bit-identical to
// ForEach; a context that can never be cancelled adds no per-item cost.
// Callers must treat any non-nil error as "slots are partially filled"
// and abandon the reduce.
func ForEachCtx(ctx context.Context, n, p int, fn func(i int)) error {
	return run(ctx, n, p, fn, nil)
}

// ForEachTimedCtx is ForEachCtx with the per-block duration hook of
// ForEachTimed.
func ForEachTimedCtx(ctx context.Context, n, p int, fn func(i int), observe func(d time.Duration)) error {
	return run(ctx, n, p, fn, observe)
}

// ForEachTimed is ForEach with a wall-duration hook: observe is called
// once per completed handout block (the unit a worker claims — a shard),
// possibly concurrently from several workers (telemetry histograms are
// atomic, so they are valid sinks). Per-block rather than per-item
// timing keeps the two clock reads off the hot path when items are
// cheap. A nil observe degrades to plain ForEach — timing costs nothing
// when nobody is watching.
func ForEachTimed(n, p int, fn func(i int), observe func(d time.Duration)) {
	run(nil, n, p, fn, observe) //nolint:errcheck // nil ctx never errors
}

// Chunk is a half-open index range [Lo, Hi) of the input slice.
type Chunk struct {
	Lo, Hi int
}

// Chunks splits n items into at most p contiguous ranges of near-equal
// size, in index order. Map-side aggregation runs one worker per chunk;
// the reduce walks the chunks in this order, which keeps first-occurrence
// semantics (e.g. a representative path per unique key) identical to a
// sequential pass.
func Chunks(n, p int) []Chunk {
	p = Workers(p, n)
	if n <= 0 {
		return nil
	}
	out := make([]Chunk, 0, p)
	size := n / p
	rem := n % p
	lo := 0
	for i := 0; i < p; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		if hi > lo {
			out = append(out, Chunk{Lo: lo, Hi: hi})
		}
		lo = hi
	}
	return out
}
