package parallel

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct{ p, n, want int }{
		{0, 10, 1}, {-3, 10, 1}, {1, 10, 1}, {4, 10, 4}, {16, 4, 4}, {4, 0, 4},
	}
	for _, c := range cases {
		if got := Workers(c.p, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 4, 16, 100} {
		const n = 500
		var hits [n]atomic.Int32
		ForEach(n, p, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, got)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestChunksPartition(t *testing.T) {
	for _, c := range []struct{ n, p int }{{10, 3}, {10, 1}, {3, 10}, {0, 4}, {7, 7}, {1000, 12}} {
		chunks := Chunks(c.n, c.p)
		next := 0
		for _, ch := range chunks {
			if ch.Lo != next || ch.Hi <= ch.Lo {
				t.Fatalf("n=%d p=%d: bad chunk %+v (expected Lo=%d)", c.n, c.p, ch, next)
			}
			next = ch.Hi
		}
		if next != c.n {
			t.Fatalf("n=%d p=%d: chunks cover %d items", c.n, c.p, next)
		}
		if c.n > 0 && len(chunks) > Workers(c.p, c.n) {
			t.Fatalf("n=%d p=%d: %d chunks exceed worker count", c.n, c.p, len(chunks))
		}
	}
}
