package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var now = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

func firstParty(host string) Context { return Context{FrameHost: host, TopHost: host} }

func TestFirstPartyAlwaysAccessible(t *testing.T) {
	for _, p := range []Policy{Flat, Partitioned, Blocked} {
		s := New(p)
		s.SetCookie(firstParty("shop.example.com"), Cookie{Name: "uid", Value: "u1", Created: now})
		got := s.Cookies(firstParty("www.example.com"), now)
		if len(got) != 1 || got[0].Value != "u1" {
			t.Fatalf("policy %v: first-party cookie not visible across subdomains: %v", p, got)
		}
	}
}

func TestFlatThirdPartySharedAcrossSites(t *testing.T) {
	s := New(Flat)
	// tracker.com embedded on a.com writes; read back on b.com.
	s.SetCookie(Context{FrameHost: "tracker.com", TopHost: "a.com"}, Cookie{Name: "uid", Value: "x", Created: now})
	got := s.Cookies(Context{FrameHost: "tracker.com", TopHost: "b.com"}, now)
	if len(got) != 1 || got[0].Value != "x" {
		t.Fatalf("flat storage must share across top-level sites: %v", got)
	}
}

func TestPartitionedThirdPartyIsolatedPerSite(t *testing.T) {
	s := New(Partitioned)
	s.SetCookie(Context{FrameHost: "tracker.com", TopHost: "a.com"}, Cookie{Name: "uid", Value: "x", Created: now})
	if got := s.Cookies(Context{FrameHost: "tracker.com", TopHost: "b.com"}, now); len(got) != 0 {
		t.Fatalf("partitioned storage leaked across sites: %v", got)
	}
	// Same partition still works.
	if got := s.Cookies(Context{FrameHost: "tracker.com", TopHost: "a.com"}, now); len(got) != 1 {
		t.Fatalf("partitioned storage lost its own bucket: %v", got)
	}
}

func TestBlockedThirdPartyCookiesDropped(t *testing.T) {
	s := New(Blocked)
	ctx := Context{FrameHost: "tracker.com", TopHost: "a.com"}
	s.SetCookie(ctx, Cookie{Name: "uid", Value: "x", Created: now})
	if got := s.Cookies(ctx, now); got != nil {
		t.Fatalf("blocked third-party cookies must be dropped: %v", got)
	}
	// localStorage is partitioned, not blocked.
	s.SetLocal(ctx, "k", "v")
	if v, ok := s.GetLocal(ctx, "k"); !ok || v != "v" {
		t.Fatal("blocked policy should still allow partitioned localStorage")
	}
	if _, ok := s.GetLocal(Context{FrameHost: "tracker.com", TopHost: "b.com"}, "k"); ok {
		t.Fatal("localStorage leaked across partitions under Blocked")
	}
}

func TestRedirectorFirstPartyExploit(t *testing.T) {
	// The core mechanism of UID smuggling: a redirector visited as the
	// top-level page stores first-party cookies even under partitioning,
	// and sees the SAME bucket no matter which site the user came from.
	s := New(Partitioned)
	s.SetCookie(firstParty("smuggler.net"), Cookie{Name: "aggr", Value: "uid-from-a", Created: now})
	got := s.Cookies(firstParty("smuggler.net"), now)
	if len(got) != 1 || got[0].Value != "uid-from-a" {
		t.Fatal("redirector must keep one first-party bucket across navigations")
	}
}

func TestCookieExpiry(t *testing.T) {
	s := New(Partitioned)
	ctx := firstParty("a.com")
	s.SetCookie(ctx, Cookie{Name: "short", Value: "v", Created: now, Expires: now.Add(time.Hour)})
	s.SetCookie(ctx, Cookie{Name: "session", Value: "v", Created: now})
	if got := s.Cookies(ctx, now.Add(30*time.Minute)); len(got) != 2 {
		t.Fatalf("before expiry: %d cookies", len(got))
	}
	got := s.Cookies(ctx, now.Add(2*time.Hour))
	if len(got) != 1 || got[0].Name != "session" {
		t.Fatalf("after expiry: %v", got)
	}
}

func TestCookieLifetime(t *testing.T) {
	c := Cookie{Created: now, Expires: now.Add(90 * 24 * time.Hour)}
	if got := c.Lifetime(); got != 90*24*time.Hour {
		t.Fatalf("lifetime = %v", got)
	}
	if (Cookie{Created: now}).Lifetime() != 0 {
		t.Fatal("session cookie lifetime should be 0")
	}
}

func TestCookieOverwrite(t *testing.T) {
	s := New(Flat)
	ctx := firstParty("a.com")
	s.SetCookie(ctx, Cookie{Name: "uid", Value: "old", Created: now})
	s.SetCookie(ctx, Cookie{Name: "uid", Value: "new", Created: now})
	got := s.Cookies(ctx, now)
	if len(got) != 1 || got[0].Value != "new" {
		t.Fatalf("overwrite failed: %v", got)
	}
}

func TestCookiesSortedByName(t *testing.T) {
	s := New(Flat)
	ctx := firstParty("a.com")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		s.SetCookie(ctx, Cookie{Name: name, Value: "v", Created: now})
	}
	got := s.Cookies(ctx, now)
	if got[0].Name != "alpha" || got[1].Name != "mid" || got[2].Name != "zeta" {
		t.Fatalf("not sorted: %v", got)
	}
}

func TestCookieLookup(t *testing.T) {
	s := New(Partitioned)
	ctx := firstParty("a.com")
	s.SetCookie(ctx, Cookie{Name: "uid", Value: "u", Created: now})
	if c, ok := s.Cookie(ctx, "uid", now); !ok || c.Value != "u" {
		t.Fatal("Cookie lookup failed")
	}
	if _, ok := s.Cookie(ctx, "missing", now); ok {
		t.Fatal("missing cookie reported present")
	}
}

func TestLocalStoragePolicies(t *testing.T) {
	flat := New(Flat)
	flat.SetLocal(Context{FrameHost: "t.com", TopHost: "a.com"}, "k", "v")
	if _, ok := flat.GetLocal(Context{FrameHost: "t.com", TopHost: "b.com"}, "k"); !ok {
		t.Fatal("flat localStorage should be shared")
	}
	part := New(Partitioned)
	part.SetLocal(Context{FrameHost: "t.com", TopHost: "a.com"}, "k", "v")
	if _, ok := part.GetLocal(Context{FrameHost: "t.com", TopHost: "b.com"}, "k"); ok {
		t.Fatal("partitioned localStorage leaked")
	}
}

func TestLocalReturnsCopy(t *testing.T) {
	s := New(Flat)
	ctx := firstParty("a.com")
	s.SetLocal(ctx, "k", "v")
	m := s.Local(ctx)
	m["k"] = "tampered"
	if v, _ := s.GetLocal(ctx, "k"); v != "v" {
		t.Fatal("Local must return a copy")
	}
}

func TestFirstPartySnapshotHelpers(t *testing.T) {
	s := New(Partitioned)
	s.SetCookie(firstParty("a.com"), Cookie{Name: "uid", Value: "u", Created: now})
	s.SetLocal(firstParty("a.com"), "ls", "lv")
	// Third-party bucket must not appear in the first-party snapshot.
	s.SetCookie(Context{FrameHost: "t.com", TopHost: "a.com"}, Cookie{Name: "tp", Value: "x", Created: now})
	cookies := s.FirstPartyCookies("www.a.com", now)
	if len(cookies) != 1 || cookies[0].Name != "uid" {
		t.Fatalf("snapshot cookies = %v", cookies)
	}
	local := s.FirstPartyLocal("a.com")
	if len(local) != 1 || local["ls"] != "lv" {
		t.Fatalf("snapshot local = %v", local)
	}
}

func TestClearDomain(t *testing.T) {
	s := New(Partitioned)
	s.SetCookie(firstParty("smuggler.net"), Cookie{Name: "uid", Value: "u", Created: now})
	s.SetCookie(Context{FrameHost: "smuggler.net", TopHost: "a.com"}, Cookie{Name: "p", Value: "x", Created: now})
	s.SetLocal(firstParty("smuggler.net"), "k", "v")
	s.SetCookie(firstParty("innocent.com"), Cookie{Name: "keep", Value: "k", Created: now})

	s.ClearDomain("www.smuggler.net")
	if len(s.Cookies(firstParty("smuggler.net"), now)) != 0 {
		t.Fatal("first-party cookies survived ClearDomain")
	}
	if len(s.Local(firstParty("smuggler.net"))) != 0 {
		t.Fatal("localStorage survived ClearDomain")
	}
	if len(s.Cookies(firstParty("innocent.com"), now)) != 1 {
		t.Fatal("ClearDomain removed an unrelated domain")
	}
}

func TestDomainsAndCount(t *testing.T) {
	s := New(Flat)
	s.SetCookie(firstParty("b.com"), Cookie{Name: "x", Created: now})
	s.SetCookie(firstParty("a.com"), Cookie{Name: "y", Created: now})
	s.SetLocal(firstParty("c.com"), "k", "v")
	if got := s.Domains(); len(got) != 3 || got[0] != "a.com" || got[2] != "c.com" {
		t.Fatalf("Domains = %v", got)
	}
	if s.CookieCount() != 2 {
		t.Fatalf("CookieCount = %d", s.CookieCount())
	}
}

func TestPolicyString(t *testing.T) {
	if Flat.String() != "flat" || Partitioned.String() != "partitioned" || Blocked.String() != "blocked" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy name")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(Partitioned)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := firstParty(fmt.Sprintf("site%d.com", w%4))
			for i := 0; i < 100; i++ {
				s.SetCookie(ctx, Cookie{Name: fmt.Sprintf("c%d", i), Value: "v", Created: now})
				s.Cookies(ctx, now)
				s.SetLocal(ctx, "k", "v")
				s.Local(ctx)
			}
		}(w)
	}
	wg.Wait()
	if s.CookieCount() != 400 {
		t.Fatalf("CookieCount = %d, want 400", s.CookieCount())
	}
}
