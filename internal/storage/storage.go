// Package storage implements browser storage — cookies and localStorage —
// under the three third-party policies the paper contrasts (Figure 1 and
// §2):
//
//   - Flat: a third party reads and writes one shared bucket regardless of
//     which top-level site embeds it. This is the historical behaviour that
//     made cookie-based cross-site tracking trivial.
//   - Partitioned: third-party storage is keyed by (embedded domain,
//     top-level domain), the Safari/Firefox/Brave defence UID smuggling is
//     designed to evade.
//   - Blocked: third-party cookie writes are dropped entirely (Chrome with
//     third-party cookies disabled, as configured on the paper's Chrome-3
//     crawler); localStorage remains partitioned.
//
// First-party storage (the frame domain equals the top-level domain) is
// never partitioned or blocked: that is precisely the property redirectors
// exploit, because a redirector is momentarily the top-level site.
//
// All domains are registered domains (eTLD+1); the package converts hosts
// itself.
package storage

import (
	"sort"
	"sync"
	"time"

	"crumbcruncher/internal/publicsuffix"
)

// Policy selects the third-party storage behaviour.
type Policy int

const (
	// Flat shares third-party storage across all top-level sites.
	Flat Policy = iota
	// Partitioned keys third-party storage by top-level site.
	Partitioned
	// Blocked drops third-party cookies; localStorage is partitioned.
	Blocked
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Flat:
		return "flat"
	case Partitioned:
		return "partitioned"
	case Blocked:
		return "blocked"
	default:
		return "unknown"
	}
}

// Context identifies who is accessing storage: the domain of the frame the
// code runs in (or the response being processed) and the top-level page's
// domain. Hosts are accepted; they are reduced to registered domains.
type Context struct {
	FrameHost string
	TopHost   string
}

// Cookie is a stored cookie. Expires is the absolute expiry; the zero time
// means a session cookie.
type Cookie struct {
	Name    string
	Value   string
	Domain  string // registered domain that owns the cookie
	Expires time.Time
	Created time.Time
}

// Expired reports whether the cookie is expired at now. Session cookies
// never expire within a run (the profile is discarded between walks, which
// is how session cookies die).
func (c Cookie) Expired(now time.Time) bool {
	return !c.Expires.IsZero() && !now.Before(c.Expires)
}

// Lifetime returns the configured lifetime, or 0 for session cookies. The
// paper's prior-work baselines classify tokens by this value (< 30 or < 90
// days ⇒ "session ID").
func (c Cookie) Lifetime() time.Duration {
	if c.Expires.IsZero() {
		return 0
	}
	return c.Expires.Sub(c.Created)
}

// partitionKey identifies one storage bucket.
type partitionKey struct {
	domain string // registered domain of the storing party
	top    string // "" for first-party and flat third-party buckets
}

// Store is one user profile's storage — the equivalent of a Chrome "user
// data directory" (§3.5). A new user is simulated by a new Store. Store is
// safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	policy  Policy
	psl     *publicsuffix.List
	cookies map[partitionKey]map[string]Cookie
	local   map[partitionKey]map[string]string
}

// New returns an empty Store with the given third-party policy.
func New(policy Policy) *Store {
	return &Store{
		policy:  policy,
		psl:     publicsuffix.Default(),
		cookies: make(map[partitionKey]map[string]Cookie),
		local:   make(map[partitionKey]map[string]string),
	}
}

// Policy returns the store's third-party policy.
func (s *Store) Policy() Policy {
	return s.policy
}

// key resolves the storage bucket for ctx, applying the policy. The second
// return is false when access is denied outright (Blocked third-party
// cookies); callers pass cookieAccess=true for cookie operations.
func (s *Store) key(ctx Context, cookieAccess bool) (partitionKey, bool) {
	frame := s.registered(ctx.FrameHost)
	top := s.registered(ctx.TopHost)
	if top == "" {
		top = frame
	}
	if frame == top {
		// First party: one bucket per site, regardless of policy.
		return partitionKey{domain: frame}, true
	}
	switch s.policy {
	case Flat:
		return partitionKey{domain: frame}, true
	case Partitioned:
		return partitionKey{domain: frame, top: top}, true
	case Blocked:
		if cookieAccess {
			return partitionKey{}, false
		}
		return partitionKey{domain: frame, top: top}, true
	default:
		return partitionKey{domain: frame, top: top}, true
	}
}

func (s *Store) registered(host string) string {
	if host == "" {
		return ""
	}
	if rd := s.psl.RegisteredDomain(host); rd != "" {
		return rd
	}
	return host
}

// SetCookie stores a cookie in the bucket selected by ctx. Third-party
// cookie writes under the Blocked policy are silently dropped, as a real
// browser drops them.
func (s *Store) SetCookie(ctx Context, c Cookie) {
	k, ok := s.key(ctx, true)
	if !ok {
		return
	}
	c.Domain = k.domain
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.cookies[k]
	if m == nil {
		m = make(map[string]Cookie)
		s.cookies[k] = m
	}
	m[c.Name] = c
}

// Cookies returns the unexpired cookies visible to ctx at time now, sorted
// by name for determinism.
func (s *Store) Cookies(ctx Context, now time.Time) []Cookie {
	k, ok := s.key(ctx, true)
	if !ok {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.cookies[k]
	out := make([]Cookie, 0, len(m))
	for _, c := range m {
		if !c.Expired(now) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Cookie returns the named cookie visible to ctx, if present and
// unexpired.
func (s *Store) Cookie(ctx Context, name string, now time.Time) (Cookie, bool) {
	k, ok := s.key(ctx, true)
	if !ok {
		return Cookie{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cookies[k][name]
	if !ok || c.Expired(now) {
		return Cookie{}, false
	}
	return c, true
}

// SetLocal stores a localStorage value.
func (s *Store) SetLocal(ctx Context, key, value string) {
	k, ok := s.key(ctx, false)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.local[k]
	if m == nil {
		m = make(map[string]string)
		s.local[k] = m
	}
	m[key] = value
}

// Local returns a copy of the localStorage area visible to ctx.
func (s *Store) Local(ctx Context) map[string]string {
	k, ok := s.key(ctx, false)
	if !ok {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.local[k]
	out := make(map[string]string, len(m))
	for key, v := range m {
		out[key] = v
	}
	return out
}

// GetLocal returns one localStorage value.
func (s *Store) GetLocal(ctx Context, key string) (string, bool) {
	k, ok := s.key(ctx, false)
	if !ok {
		return "", false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.local[k][key]
	return v, ok
}

// FirstPartyCookies returns the first-party cookies of the top-level host,
// which is what CrumbCruncher records at each crawl step ("all first-party
// cookies, local storage values" — §3.1).
func (s *Store) FirstPartyCookies(topHost string, now time.Time) []Cookie {
	return s.Cookies(Context{FrameHost: topHost, TopHost: topHost}, now)
}

// FirstPartyLocal returns the first-party localStorage of the top-level
// host.
func (s *Store) FirstPartyLocal(topHost string) map[string]string {
	return s.Local(Context{FrameHost: topHost, TopHost: topHost})
}

// ClearDomain removes every bucket owned by the registered domain of host
// — the primitive behind Firefox's 24-hour purge of blocklisted trackers
// and Brave's ephemeral storage for smugglers (§7.1).
func (s *Store) ClearDomain(host string) {
	d := s.registered(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.cookies {
		if k.domain == d {
			delete(s.cookies, k)
		}
	}
	for k := range s.local {
		if k.domain == d {
			delete(s.local, k)
		}
	}
}

// CookieCount returns the total number of stored cookies across all
// buckets (diagnostics and tests).
func (s *Store) CookieCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.cookies {
		n += len(m)
	}
	return n
}

// Domains returns the sorted set of registered domains that own at least
// one bucket.
func (s *Store) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for k := range s.cookies {
		set[k.domain] = true
	}
	for k := range s.local {
		set[k.domain] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
