// Package entity implements Disconnect-style entity lists: mappings from
// registered domains to owning organisations. The paper starts from the
// Disconnect entity list (which covered only 45 of its 436 originator/
// destination domains) and fills the rest in manually (§5.2); Attributor
// mirrors that two-stage process.
package entity

import "sort"

// List maps registered domains to organisations.
type List struct {
	byDomain map[string]string
}

// NewList builds a list from a domain → organisation map.
func NewList(m map[string]string) *List {
	l := &List{byDomain: make(map[string]string, len(m))}
	for d, o := range m {
		l.byDomain[d] = o
	}
	return l
}

// OrgOf returns the organisation owning domain.
func (l *List) OrgOf(domain string) (string, bool) {
	o, ok := l.byDomain[domain]
	return o, ok
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.byDomain) }

// Domains returns the covered domains, sorted.
func (l *List) Domains() []string {
	out := make([]string, 0, len(l.byDomain))
	for d := range l.byDomain {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Attributor resolves domain ownership the way the paper did: first the
// entity list, then a manual-research map, else unattributed.
type Attributor struct {
	list   *List
	manual *List
}

// NewAttributor combines an entity list with manual research results.
// Either may be nil.
func NewAttributor(list, manual *List) *Attributor {
	if list == nil {
		list = NewList(nil)
	}
	if manual == nil {
		manual = NewList(nil)
	}
	return &Attributor{list: list, manual: manual}
}

// Unattributed is returned for domains no source covers.
const Unattributed = "(unattributed)"

// OrgOf resolves a domain to an organisation.
func (a *Attributor) OrgOf(domain string) string {
	if o, ok := a.list.OrgOf(domain); ok {
		return o
	}
	if o, ok := a.manual.OrgOf(domain); ok {
		return o
	}
	return Unattributed
}

// ListCoverage reports how many of the given domains the entity list
// alone covers — the paper's 45-of-436 observation.
func (a *Attributor) ListCoverage(domains []string) (covered, total int) {
	for _, d := range domains {
		if _, ok := a.list.OrgOf(d); ok {
			covered++
		}
	}
	return covered, len(domains)
}
