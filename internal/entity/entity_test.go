package entity

import "testing"

func TestListLookup(t *testing.T) {
	l := NewList(map[string]string{"facebook.com": "Facebook", "instagram.com": "Facebook"})
	if o, ok := l.OrgOf("facebook.com"); !ok || o != "Facebook" {
		t.Fatalf("got %q ok=%v", o, ok)
	}
	if _, ok := l.OrgOf("unknown.com"); ok {
		t.Fatal("unknown domain resolved")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	ds := l.Domains()
	if len(ds) != 2 || ds[0] != "facebook.com" {
		t.Fatalf("domains = %v", ds)
	}
}

func TestAttributorPrecedence(t *testing.T) {
	list := NewList(map[string]string{"a.com": "ListOrg"})
	manual := NewList(map[string]string{"a.com": "ManualOrg", "b.com": "ManualOrg"})
	at := NewAttributor(list, manual)
	if got := at.OrgOf("a.com"); got != "ListOrg" {
		t.Fatalf("entity list should win: %q", got)
	}
	if got := at.OrgOf("b.com"); got != "ManualOrg" {
		t.Fatalf("manual fallback: %q", got)
	}
	if got := at.OrgOf("c.com"); got != Unattributed {
		t.Fatalf("unattributed: %q", got)
	}
}

func TestAttributorNilSources(t *testing.T) {
	at := NewAttributor(nil, nil)
	if got := at.OrgOf("x.com"); got != Unattributed {
		t.Fatalf("got %q", got)
	}
}

func TestListCoverage(t *testing.T) {
	at := NewAttributor(NewList(map[string]string{"a.com": "A"}), nil)
	covered, total := at.ListCoverage([]string{"a.com", "b.com", "c.com"})
	if covered != 1 || total != 3 {
		t.Fatalf("coverage = %d/%d", covered, total)
	}
}
