package tokens

import (
	"encoding/json"
	"fmt"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/intern"
	"crumbcruncher/internal/telemetry"
)

// WalkTokens is one walk's contribution to the token pipeline: the
// walk's reconstructed navigation paths and the candidates found on
// them. It is the unit the streaming engine computes as each walk
// finishes, persists to the analysis-state sidecar, and merges at drain
// time. Candidates reference Paths by pointer; the JSON form encodes
// that reference as an index so decoding restores pointer identity.
type WalkTokens struct {
	Paths      []*Path
	Candidates []*Candidate
}

// walkTokensJSON is the persisted layout of WalkTokens.
type walkTokensJSON struct {
	Paths      []*Path           `json:"paths"`
	Candidates []candidateRecord `json:"candidates"`
}

// candidateRecord is a Candidate with its Path pointer flattened to an
// index into the walk's path list.
type candidateRecord struct {
	Name      string `json:"name"`
	Value     string `json:"value"`
	Walk      int    `json:"walk"`
	Step      int    `json:"step"`
	Crawler   string `json:"crawler"`
	Profile   string `json:"profile"`
	PathIdx   int    `json:"path_idx"`
	FirstIdx  int    `json:"first_idx"`
	LastIdx   int    `json:"last_idx"`
	Crossings int    `json:"crossings"`
}

// MarshalJSON encodes the walk's paths and candidates with candidate →
// path references as indices.
func (wt WalkTokens) MarshalJSON() ([]byte, error) {
	pos := make(map[*Path]int, len(wt.Paths))
	for i, p := range wt.Paths {
		pos[p] = i
	}
	recs := make([]candidateRecord, len(wt.Candidates))
	for i, c := range wt.Candidates {
		idx, ok := pos[c.Path]
		if !ok {
			return nil, fmt.Errorf("tokens: candidate %s references a path outside its walk", c.Name)
		}
		recs[i] = candidateRecord{
			Name: c.Name, Value: c.Value,
			Walk: c.Walk, Step: c.Step, Crawler: c.Crawler, Profile: c.Profile,
			PathIdx: idx, FirstIdx: c.FirstIdx, LastIdx: c.LastIdx, Crossings: c.Crossings,
		}
	}
	return json.Marshal(walkTokensJSON{Paths: wt.Paths, Candidates: recs})
}

// UnmarshalJSON decodes the persisted layout, restoring candidate →
// path pointer identity.
func (wt *WalkTokens) UnmarshalJSON(data []byte) error {
	var enc walkTokensJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	wt.Paths = enc.Paths
	wt.Candidates = make([]*Candidate, len(enc.Candidates))
	for i, r := range enc.Candidates {
		if r.PathIdx < 0 || r.PathIdx >= len(enc.Paths) {
			return fmt.Errorf("tokens: candidate %s: path index %d out of range", r.Name, r.PathIdx)
		}
		wt.Candidates[i] = &Candidate{
			Name: r.Name, Value: r.Value,
			Walk: r.Walk, Step: r.Step, Crawler: r.Crawler, Profile: r.Profile,
			Path: enc.Paths[r.PathIdx], FirstIdx: r.FirstIdx, LastIdx: r.LastIdx,
			Crossings: r.Crossings,
		}
	}
	return nil
}

// Accumulator collects per-walk token extraction incrementally for the
// streaming engine. Each walk is processed independently (AddWalk on
// distinct indices may run concurrently from several workers) and Drain
// merges the per-walk results in walk-index order — the same order the
// batch entry points (PathsFromDataset*, AllCandidates*) produce, so
// the merged output is bit-identical to the batch pass.
type Accumulator struct {
	names       []string
	tel         *telemetry.Telemetry
	in          *intern.Interner
	pathHist    *telemetry.Histogram
	candHist    *telemetry.Histogram
	perPathHist *telemetry.Histogram
	perWalk     []WalkTokens
}

// NewAccumulator sizes an accumulator for the given walk count.
// crawlers defaults to all four. seed salts the accumulator's private
// string interner (shared by this accumulator's walks, never across
// runs); it does not influence results.
func NewAccumulator(seed int64, walks int, crawlers []string, tel *telemetry.Telemetry) *Accumulator {
	names := crawlers
	if len(names) == 0 {
		names = crawler.AllCrawlers
	}
	reg := tel.Registry()
	return &Accumulator{
		names:       names,
		tel:         tel,
		in:          intern.New(seed),
		pathHist:    reg.Histogram("tokens.path_shard_us"),
		candHist:    reg.Histogram("tokens.candidate_shard_us"),
		perPathHist: reg.Histogram("tokens.candidates_per_path"),
		perWalk:     make([]WalkTokens, walks),
	}
}

// AddWalk reconstructs walk w's navigation paths, finds their
// candidates, stores the result at w.Index and returns it. The per-walk
// computation is exactly the batch pipeline's per-walk/per-path work.
func (a *Accumulator) AddWalk(w *crawler.Walk) WalkTokens {
	var sw telemetry.Stopwatch
	if a.tel != nil {
		sw = telemetry.StartStopwatch()
	}
	wt := WalkTokens{Paths: pathsFromWalk(w, a.names, a.in)}
	if a.tel != nil {
		a.pathHist.Observe(sw.ElapsedMicros())
		sw = telemetry.StartStopwatch()
	}
	for _, p := range wt.Paths {
		cs := FindCandidates(p)
		a.perPathHist.Observe(int64(len(cs)))
		wt.Candidates = append(wt.Candidates, cs...)
	}
	if a.tel != nil {
		a.candHist.Observe(sw.ElapsedMicros())
	}
	a.perWalk[w.Index] = wt
	return wt
}

// Restore adopts a previously-persisted walk's extraction (the
// checkpoint-resume path) instead of recomputing it.
func (a *Accumulator) Restore(index int, wt WalkTokens) {
	a.perWalk[index] = wt
}

// Drain concatenates the per-walk paths and candidates in walk-index
// order and bumps the same tokens.* totals the batch entry points
// report.
func (a *Accumulator) Drain() ([]*Path, []*Candidate) {
	totalPaths, totalCands := 0, 0
	for _, wt := range a.perWalk {
		totalPaths += len(wt.Paths)
		totalCands += len(wt.Candidates)
	}
	paths := make([]*Path, 0, totalPaths)
	cands := make([]*Candidate, 0, totalCands)
	for _, wt := range a.perWalk {
		paths = append(paths, wt.Paths...)
		cands = append(cands, wt.Candidates...)
	}
	reg := a.tel.Registry()
	reg.Counter("tokens.paths").Add(int64(totalPaths))
	reg.Counter("tokens.candidates").Add(int64(totalCands))
	return paths, cands
}
