package tokens

import (
	"context"
	"net/url"
	"sort"
	"sync"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/intern"
	"crumbcruncher/internal/parallel"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/telemetry"
)

// PathNode is one hop of a navigation path.
type PathNode struct {
	URL    string
	Host   string // FQDN
	Domain string // registered domain
	// Tokens are the leaf tokens extracted from the hop URL's query
	// parameters.
	Tokens []Pair
}

// Path is one crawler's navigation path for one step: the originator,
// every redirector hop and the destination.
type Path struct {
	Walk    int
	Step    int
	Crawler string
	Profile string
	Nodes   []PathNode
}

// Originator returns the path's first node.
func (p *Path) Originator() PathNode { return p.Nodes[0] }

// Destination returns the path's last node.
func (p *Path) Destination() PathNode { return p.Nodes[len(p.Nodes)-1] }

// Redirectors returns the middle nodes.
func (p *Path) Redirectors() []PathNode {
	if len(p.Nodes) <= 2 {
		return nil
	}
	return p.Nodes[1 : len(p.Nodes)-1]
}

// URLKey returns the path's identity as a full-URL sequence (the paper's
// "URL path").
func (p *Path) URLKey() string {
	key := ""
	for _, n := range p.Nodes {
		key += n.URL + " → "
	}
	return key
}

// DomainKey returns the path's identity as a registered-domain sequence
// (the paper's "domain path").
func (p *Path) DomainKey() string {
	key := ""
	for _, n := range p.Nodes {
		key += n.Domain + " → "
	}
	return key
}

// nodeFrom parses a URL into a PathNode with extracted query tokens.
// Hosts, registered domains and token names repeat across nearly every
// hop, so they are routed through the run's interner: Host and Domain
// would otherwise be substrings pinning the full URL string, and each
// token name its own small allocation.
func nodeFrom(raw string, in *intern.Interner) (PathNode, bool) {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return PathNode{}, false
	}
	host := in.Intern(u.Hostname())
	n := PathNode{URL: raw, Host: host, Domain: in.Intern(regDomain(host))}
	for name, vs := range u.Query() {
		for _, v := range vs {
			start := len(n.Tokens)
			n.Tokens = append(n.Tokens, Extract(name, v)...)
			for i := start; i < len(n.Tokens); i++ {
				n.Tokens[i].Name = in.Intern(n.Tokens[i].Name)
			}
		}
	}
	sort.Slice(n.Tokens, func(i, j int) bool {
		if n.Tokens[i].Name != n.Tokens[j].Name {
			return n.Tokens[i].Name < n.Tokens[j].Name
		}
		return n.Tokens[i].Value < n.Tokens[j].Value
	})
	return n, true
}

func regDomain(host string) string {
	if rd := publicsuffix.RegisteredDomain(host); rd != "" {
		return rd
	}
	return host
}

// PathsFromDataset reconstructs every navigation path in the crawl: one
// per (walk, step, crawler) whose click produced at least one hop. Data
// from unsynchronized (divergent) steps is included, as in the paper
// (§3.3: "We still include data from this unsynchronized step in our
// analyses").
func PathsFromDataset(ds *crawler.Dataset) []*Path {
	return PathsFromDatasetParallel(ds, 1)
}

// PathsFromDatasetParallel is PathsFromDataset sharded across walks over
// a bounded worker pool. Each walk's paths are reconstructed
// independently and concatenated in walk-slice order, so the output is
// identical to the sequential pass for any parallelism.
func PathsFromDatasetParallel(ds *crawler.Dataset, parallelism int) []*Path {
	return PathsFromDatasetInstrumented(ds, parallelism, nil)
}

// PathsFromDatasetInstrumented is PathsFromDatasetParallel with optional
// telemetry: per-walk shard wall times land in the
// tokens.path_shard_us histogram and the path total in the tokens.paths
// counter. A nil Telemetry records nothing and skips per-shard timing
// entirely.
func PathsFromDatasetInstrumented(ds *crawler.Dataset, parallelism int, tel *telemetry.Telemetry) []*Path {
	out, _ := PathsFromDatasetCtx(context.Background(), ds, parallelism, tel)
	return out
}

// PathsFromDatasetCtx is PathsFromDatasetInstrumented bounded by ctx:
// cancellation stops the shard pool from taking new walks and returns
// ctx's error with a partial (unusable) result.
func PathsFromDatasetCtx(ctx context.Context, ds *crawler.Dataset, parallelism int, tel *telemetry.Telemetry) ([]*Path, error) {
	names := ds.Crawlers
	if len(names) == 0 {
		names = crawler.AllCrawlers
	}
	reg := tel.Registry()
	// One interner per entry-point call: canonical strings are shared
	// across this dataset's walks but never across runs.
	in := intern.New(ds.Seed)
	perWalk := make([][]*Path, len(ds.Walks))
	err := parallel.ForEachTimedCtx(ctx, len(ds.Walks), parallelism, func(i int) {
		perWalk[i] = pathsFromWalk(ds.Walks[i], names, in)
	}, reg.Histogram("tokens.path_shard_us").Microseconds())
	if err != nil {
		return nil, err
	}
	total := 0
	for _, ps := range perWalk {
		total += len(ps)
	}
	out := make([]*Path, 0, total)
	for _, ps := range perWalk {
		out = append(out, ps...)
	}
	reg.Counter("tokens.paths").Add(int64(total))
	return out, nil
}

// pathsFromWalk reconstructs one walk's navigation paths in (step,
// crawler) order.
func pathsFromWalk(w *crawler.Walk, names []string, in *intern.Interner) []*Path {
	var out []*Path
	if w == nil {
		return nil
	}
	for _, s := range w.Steps {
		for _, name := range names {
			rec := s.Records[name]
			if rec == nil || rec.StartURL == "" || len(rec.NavChain) == 0 {
				continue
			}
			p := &Path{Walk: w.Index, Step: s.Index, Crawler: name, Profile: rec.Profile}
			if n, ok := nodeFrom(rec.StartURL, in); ok {
				p.Nodes = make([]PathNode, 0, 1+len(rec.NavChain))
				p.Nodes = append(p.Nodes, n)
			} else {
				continue
			}
			bad := false
			for _, hop := range rec.NavChain {
				n, ok := nodeFrom(hop.URL, in)
				if !ok {
					bad = true
					break
				}
				p.Nodes = append(p.Nodes, n)
			}
			if bad || len(p.Nodes) < 2 {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// Candidate is a token observed crossing at least one first-party
// boundary as a query parameter inside one navigation path — a potential
// UID smuggling instance before UID identification.
type Candidate struct {
	Name    string
	Value   string
	Walk    int
	Step    int
	Crawler string
	Profile string
	Path    *Path
	// FirstIdx/LastIdx are the node indices of the token's first and
	// last appearance in the path's query parameters (node 0 is the
	// originator, which has no incoming navigation, so FirstIdx >= 1
	// unless the token already sat on the originator URL).
	FirstIdx int
	LastIdx  int
	// Crossings is the number of registered-domain boundaries the token
	// crossed while present.
	Crossings int
}

// candMapPool recycles FindCandidates' per-path scratch map. The reset
// contract (see DESIGN.md §10): a map returned to the pool is cleared
// first, so a pooled map is indistinguishable from a fresh one and
// pooling can only change allocation counts, never output.
var candMapPool = sync.Pool{
	New: func() any { return make(map[Pair]*Candidate, 16) },
}

// FindCandidates scans a path for tokens transferred across first-party
// contexts: a token counts when it appears in the query parameters of a
// hop whose registered domain differs from the previous hop's (§3.6). A
// token that appears on consecutive same-domain hops only is discarded,
// as are tokens never passed as query parameters at all.
func FindCandidates(p *Path) []*Candidate {
	found := candMapPool.Get().(map[Pair]*Candidate)
	defer func() {
		clear(found)
		candMapPool.Put(found)
	}()
	for i, node := range p.Nodes {
		for _, tok := range node.Tokens {
			c := found[tok]
			if c == nil {
				c = &Candidate{
					Name: tok.Name, Value: tok.Value,
					Walk: p.Walk, Step: p.Step, Crawler: p.Crawler, Profile: p.Profile,
					Path: p, FirstIdx: i, LastIdx: i,
				}
				found[tok] = c
			}
			c.LastIdx = i
			if i > 0 && p.Nodes[i].Domain != p.Nodes[i-1].Domain {
				c.Crossings++
			}
		}
	}
	out := make([]*Candidate, 0, len(found))
	for _, c := range found {
		if c.Crossings > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// AllCandidates runs FindCandidates over every path.
func AllCandidates(paths []*Path) []*Candidate {
	return AllCandidatesParallel(paths, 1)
}

// AllCandidatesParallel runs FindCandidates over every path with a
// bounded worker pool, merging per-path results in path order — the
// output is identical to AllCandidates for any parallelism.
func AllCandidatesParallel(paths []*Path, parallelism int) []*Candidate {
	return AllCandidatesInstrumented(paths, parallelism, nil)
}

// AllCandidatesInstrumented is AllCandidatesParallel with optional
// telemetry: per-path candidate counts land in the
// tokens.candidates_per_path histogram (a deterministic distribution),
// shard wall times in tokens.candidate_shard_us, and the candidate total
// in the tokens.candidates counter.
func AllCandidatesInstrumented(paths []*Path, parallelism int, tel *telemetry.Telemetry) []*Candidate {
	out, _ := AllCandidatesCtx(context.Background(), paths, parallelism, tel)
	return out
}

// AllCandidatesCtx is AllCandidatesInstrumented bounded by ctx:
// cancellation stops the shard pool from taking new paths and returns
// ctx's error with a partial (unusable) result.
func AllCandidatesCtx(ctx context.Context, paths []*Path, parallelism int, tel *telemetry.Telemetry) ([]*Candidate, error) {
	reg := tel.Registry()
	perPathHist := reg.Histogram("tokens.candidates_per_path")
	perPath := make([][]*Candidate, len(paths))
	err := parallel.ForEachTimedCtx(ctx, len(paths), parallelism, func(i int) {
		perPath[i] = FindCandidates(paths[i])
		perPathHist.Observe(int64(len(perPath[i])))
	}, reg.Histogram("tokens.candidate_shard_us").Microseconds())
	if err != nil {
		return nil, err
	}
	total := 0
	for _, cs := range perPath {
		total += len(cs)
	}
	out := make([]*Candidate, 0, total)
	for _, cs := range perPath {
		out = append(out, cs...)
	}
	reg.Counter("tokens.candidates").Add(int64(total))
	return out, nil
}
