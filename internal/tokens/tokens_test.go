package tokens

import (
	"net/url"
	"sort"
	"testing"
	"testing/quick"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/crawler"
)

func pairsMap(ps []Pair) map[string]string {
	m := map[string]string{}
	for _, p := range ps {
		m[p.Name] = p.Value
	}
	return m
}

func TestExtractPlainValue(t *testing.T) {
	got := Extract("uid", "4f2a9c1b7d8e")
	if len(got) != 1 || got[0] != (Pair{Name: "uid", Value: "4f2a9c1b7d8e"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractJSONObject(t *testing.T) {
	got := Extract("blob", `{"uid":"abc12345","meta":{"lang":"en-US"},"n":7}`)
	m := pairsMap(got)
	if m["blob.uid"] != "abc12345" {
		t.Fatalf("nested uid missing: %v", got)
	}
	if m["blob.meta.lang"] != "en-US" {
		t.Fatalf("deep nested missing: %v", got)
	}
	if m["blob.n"] != "7" {
		t.Fatalf("number missing: %v", got)
	}
}

func TestExtractJSONArray(t *testing.T) {
	got := Extract("a", `["x1y2z3q4","w9v8u7t6"]`)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestExtractURLValue(t *testing.T) {
	got := Extract("d", "http://shop.com/land?zclid=deadbeef01&lang=en")
	m := pairsMap(got)
	if m["zclid"] != "deadbeef01" {
		t.Fatalf("query param inside URL value not extracted: %v", got)
	}
	// The URL itself remains a token (to be removed by the URL filter).
	if m["d"] == "" {
		t.Fatalf("URL token itself missing: %v", got)
	}
}

func TestExtractPercentEncodedURL(t *testing.T) {
	enc := url.QueryEscape("http://shop.com/land?zclid=deadbeef01")
	got := Extract("d", enc)
	if pairsMap(got)["zclid"] != "deadbeef01" {
		t.Fatalf("percent-encoded URL not descended: %v", got)
	}
}

func TestExtractJSONWithEncodedURLInside(t *testing.T) {
	// The paper's example: JSON containing URL-encoded tokens.
	inner := url.QueryEscape("http://t.com/c?xuid=feedface99")
	got := Extract("payload", `{"redirect":"`+inner+`"}`)
	if pairsMap(got)["xuid"] != "feedface99" {
		t.Fatalf("nested encoded token not extracted: %v", got)
	}
}

func TestExtractQueryShapedValue(t *testing.T) {
	got := Extract("state", "a=tok1head8&b=tok2head8")
	m := pairsMap(got)
	if m["a"] != "tok1head8" || m["b"] != "tok2head8" {
		t.Fatalf("query-shaped value not split: %v", got)
	}
}

func TestExtractDepthBounded(t *testing.T) {
	// Deeply nested percent-encoding must terminate.
	v := "x"
	for i := 0; i < 20; i++ {
		v = url.QueryEscape("k=" + v)
	}
	got := Extract("deep", v)
	if len(got) == 0 {
		t.Fatal("deep value vanished")
	}
}

func TestProgrammaticFilter(t *testing.T) {
	cases := []struct {
		value string
		want  FilterReason
	}{
		{"short", TooShort},
		{"en-US", TooShort},
		{"1646092800", LooksLikeDate},    // unix seconds
		{"1646092800123", LooksLikeDate}, // unix millis
		{"2022-03-01", LooksLikeDate},
		{"2022-03-01T10:00:00", LooksLikeDate},
		{"03/15/2022", LooksLikeDate},
		{"http://shop.com/land", LooksLikeURL},
		{"www.shop.com", LooksLikeURL},
		{"shopexample.com/land", LooksLikeURL},
		{"http%3A%2F%2Fa.com%2F", LooksLikeURL},
		{"4f2a9c1b7d8e0011", KeepToken},
		{"sweetmagnolias", KeepToken}, // passes programmatic, caught by manual
		{"Dental_internal_whitepaper_topic", KeepToken},
	}
	for _, c := range cases {
		if got := ProgrammaticFilter(c.value); got != c.want {
			t.Errorf("ProgrammaticFilter(%q) = %q, want %q", c.value, got, c.want)
		}
	}
}

func TestManualReview(t *testing.T) {
	removed := []string{
		"Dental_internal_whitepaper_topic", // delimited natural language
		"share_button",
		"sweetmagnolias",   // concatenated words
		"navimail",         // semi-abbreviated brandish words
		"40.7128,-74.0060", // coordinates
		"en-US",            // locale acronym
		"sweet-magnolia-sale",
	}
	for _, v := range removed {
		if !ManualReview(v) {
			t.Errorf("ManualReview(%q) = false, want removal", v)
		}
	}
	kept := []string{
		"4f2a9c1b7d8e0011aabbccdd", // hex UID
		"a1b2c3d4e5f6",
		"xk9qj2m4nn81",
		"user_4f2a9c1b7d8e", // word + opaque part
	}
	for _, v := range kept {
		if ManualReview(v) {
			t.Errorf("ManualReview(%q) = true, want keep (conservative rule)", v)
		}
	}
}

func samplePath(t *testing.T) *Path {
	t.Helper()
	mk := func(raw string) PathNode {
		n, ok := nodeFrom(raw, nil)
		if !ok {
			t.Fatalf("bad node %q", raw)
		}
		return n
	}
	return &Path{
		Walk: 1, Step: 2, Crawler: "Safari-1", Profile: "Safari-1",
		Nodes: []PathNode{
			mk("http://news.com/?sid=sess12345"),
			mk("http://track.t.net/c?d=http%3A%2F%2Fshop.com%2Fland&zclid=deadbeef01&lang=en-US"),
			mk("http://shop.com/land?zclid=deadbeef01"),
		},
	}
}

func TestPathAccessors(t *testing.T) {
	p := samplePath(t)
	if p.Originator().Domain != "news.com" {
		t.Fatalf("originator = %q", p.Originator().Domain)
	}
	if p.Destination().Domain != "shop.com" {
		t.Fatalf("destination = %q", p.Destination().Domain)
	}
	reds := p.Redirectors()
	if len(reds) != 1 || reds[0].Host != "track.t.net" {
		t.Fatalf("redirectors = %v", reds)
	}
	if p.URLKey() == p.DomainKey() {
		t.Fatal("URL and domain keys should differ")
	}
}

func TestFindCandidatesCrossContext(t *testing.T) {
	p := samplePath(t)
	cands := FindCandidates(p)
	byName := map[string]*Candidate{}
	for _, c := range cands {
		byName[c.Name] = c
	}
	zc := byName["zclid"]
	if zc == nil {
		t.Fatalf("zclid not a candidate: %v", cands)
	}
	if zc.FirstIdx != 1 || zc.LastIdx != 2 {
		t.Fatalf("zclid portion = [%d,%d], want [1,2]", zc.FirstIdx, zc.LastIdx)
	}
	if zc.Crossings != 2 {
		t.Fatalf("zclid crossings = %d, want 2", zc.Crossings)
	}
	// The sid token never left news.com as a query param on a
	// cross-domain hop (it only sat on the originator URL).
	if byName["sid"] != nil {
		t.Fatal("sid should not be a candidate (never crossed)")
	}
	// lang crossed (it's on the redirector hop) — a false positive the
	// filters remove later. Its presence here is correct behaviour.
	if byName["lang"] == nil {
		t.Fatal("lang should be a candidate at this stage")
	}
	// The dest URL inside d= also crossed.
	if byName["d"] == nil {
		t.Fatal("d (URL token) should be a candidate at this stage")
	}
}

func TestFindCandidatesSameSiteOnly(t *testing.T) {
	mk := func(raw string) PathNode {
		n, _ := nodeFrom(raw, nil)
		return n
	}
	p := &Path{Nodes: []PathNode{
		mk("http://a.com/?x=longvalue123"),
		mk("http://sub.a.com/p?x=longvalue123"), // same registered domain
	}}
	if got := FindCandidates(p); len(got) != 0 {
		t.Fatalf("same-site transfer must not produce candidates: %v", got)
	}
}

// Property: extraction never loses a plain alphanumeric token.
func TestExtractPreservesOpaqueProperty(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				clean += string(r)
			}
			if len(clean) > 24 {
				break
			}
		}
		if clean == "" {
			return true
		}
		got := Extract("k", clean)
		return len(got) == 1 && got[0].Value == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: candidates are deterministically ordered.
func TestCandidatesSorted(t *testing.T) {
	p := samplePath(t)
	cands := FindCandidates(p)
	if !sort.SliceIsSorted(cands, func(i, j int) bool {
		if cands[i].Name != cands[j].Name {
			return cands[i].Name < cands[j].Name
		}
		return cands[i].Value < cands[j].Value
	}) {
		t.Fatal("candidates not sorted")
	}
}

func TestPathsFromDatasetRespectsCrawlerList(t *testing.T) {
	mkRec := func(name string) *crawler.CrawlerStep {
		return &crawler.CrawlerStep{
			Crawler:  name,
			Profile:  name,
			StartURL: "http://origin.com/",
			NavChain: []browser.Hop{{URL: "http://dest.com/?q=abcdefgh", Status: 200}},
		}
	}
	ds := &crawler.Dataset{
		Crawlers: []string{"Seq-1", "Seq-2"},
		Walks: []*crawler.Walk{{
			Steps: []*crawler.Step{{
				Records: map[string]*crawler.CrawlerStep{
					"Seq-1": mkRec("Seq-1"),
					"Seq-2": mkRec("Seq-2"),
				},
			}},
		}},
	}
	paths := PathsFromDataset(ds)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (custom crawler names)", len(paths))
	}
	cands := AllCandidates(paths)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Records without a navigation chain are skipped.
	ds.Walks[0].Steps[0].Records["Seq-1"].NavChain = nil
	if got := PathsFromDataset(ds); len(got) != 1 {
		t.Fatalf("paths after chain removal = %d", len(got))
	}
}
