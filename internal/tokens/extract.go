// Package tokens implements CrumbCruncher's token pipeline (§3.6–3.7):
// extracting potential UID tokens from cookies, localStorage and query
// parameters (recursively parsing JSON and URL-encoded values), detecting
// tokens that crossed first-party contexts inside navigation URLs, and the
// programmatic and lexicon ("manual") filters that separate UIDs from
// harmless values.
package tokens

import (
	"encoding/json"
	"fmt"
	"net/url"
	"regexp"
	"strconv"
	"strings"

	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/words"
)

// Pair is a name/value pair extracted from a token source.
type Pair struct {
	Name  string
	Value string
}

// Extract recursively decomposes a value into leaf tokens. JSON objects
// and arrays are descended into; URL-encoded strings (full URLs,
// query-string fragments, percent-encoded blobs) are decoded and
// descended into. The paper's example: a query parameter holding a JSON
// string that itself contains URL-encoded tokens yields each token
// individually.
func Extract(name, value string) []Pair {
	var out []Pair
	extractInto(name, value, 0, &out)
	return out
}

const maxDepth = 6

func extractInto(name, value string, depth int, out *[]Pair) {
	value = strings.TrimSpace(value)
	if value == "" {
		return
	}
	if depth >= maxDepth {
		*out = append(*out, Pair{Name: name, Value: value})
		return
	}

	// JSON object/array.
	if strings.HasPrefix(value, "{") || strings.HasPrefix(value, "[") {
		var v interface{}
		if err := json.Unmarshal([]byte(value), &v); err == nil {
			extractJSON(name, v, depth+1, out)
			return
		}
	}

	// Full URL: the URL itself is a token (the URL filter will remove
	// it), and its query parameters are tokens of their own.
	if u, err := url.Parse(value); err == nil && (u.Scheme == "http" || u.Scheme == "https") && u.Host != "" {
		*out = append(*out, Pair{Name: name, Value: value})
		for k, vs := range u.Query() {
			for _, v := range vs {
				extractInto(k, v, depth+1, out)
			}
		}
		return
	}

	// Query-string-shaped value: a=1&b=2.
	if strings.Contains(value, "=") && (strings.Contains(value, "&") || strings.Count(value, "=") == 1) {
		if vals, err := url.ParseQuery(value); err == nil && plausibleQuery(vals) {
			for k, vs := range vals {
				for _, v := range vs {
					extractInto(k, v, depth+1, out)
				}
			}
			return
		}
	}

	// Percent-encoded payload: unescape once and retry.
	if strings.Contains(value, "%") {
		if dec, err := url.QueryUnescape(value); err == nil && dec != value {
			extractInto(name, dec, depth+1, out)
			return
		}
	}

	*out = append(*out, Pair{Name: name, Value: value})
}

// plausibleQuery rejects degenerate ParseQuery successes (e.g. "a=b=c"
// style strings that are not really query strings).
func plausibleQuery(vals url.Values) bool {
	if len(vals) == 0 {
		return false
	}
	for k := range vals {
		if k == "" {
			return false
		}
	}
	return true
}

func extractJSON(name string, v interface{}, depth int, out *[]Pair) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, sub := range t {
			extractJSON(name+"."+k, sub, depth+1, out)
		}
	case []interface{}:
		for i, sub := range t {
			extractJSON(fmt.Sprintf("%s[%d]", name, i), sub, depth+1, out)
		}
	case string:
		extractInto(name, t, depth, out)
	case float64:
		*out = append(*out, Pair{Name: name, Value: strconv.FormatFloat(t, 'f', -1, 64)})
	case bool:
		*out = append(*out, Pair{Name: name, Value: strconv.FormatBool(t)})
	case nil:
		// skip
	}
}

// --- Programmatic filters (§3.7.2) ----------------------------------------

// FilterReason explains why a token was removed.
type FilterReason string

const (
	// KeepToken marks tokens that survive all programmatic filters.
	KeepToken FilterReason = ""
	// TooShort removes tokens under eight characters.
	TooShort FilterReason = "too_short"
	// LooksLikeDate removes dates and timestamps.
	LooksLikeDate FilterReason = "date_or_timestamp"
	// LooksLikeURL removes URLs and domains.
	LooksLikeURL FilterReason = "url_or_domain"
)

var isoDateRe = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}([T ]\d{2}:\d{2}(:\d{2})?)?`)
var slashDateRe = regexp.MustCompile(`^\d{1,2}/\d{1,2}/\d{2,4}$`)

// ProgrammaticFilter applies the paper's programmatic heuristics: remove
// tokens that appear to be dates or timestamps, tokens that appear to be
// URLs, and tokens shorter than eight characters. No restriction is
// placed on cookie expirations.
func ProgrammaticFilter(value string) FilterReason {
	if len(value) < 8 {
		return TooShort
	}
	if looksLikeTimestamp(value) || isoDateRe.MatchString(value) || slashDateRe.MatchString(value) {
		return LooksLikeDate
	}
	if looksLikeURL(value) {
		return LooksLikeURL
	}
	return KeepToken
}

// looksLikeTimestamp recognises Unix epoch seconds/milliseconds.
func looksLikeTimestamp(v string) bool {
	if n, err := strconv.ParseInt(v, 10, 64); err == nil {
		// Seconds: 2001..2096. Milliseconds: same range scaled.
		if (n > 1_000_000_000 && n < 4_000_000_000) ||
			(n > 1_000_000_000_000 && n < 4_000_000_000_000) {
			return true
		}
	}
	return false
}

// looksLikeURL recognises URLs, encoded URLs and bare domains.
func looksLikeURL(v string) bool {
	lower := strings.ToLower(v)
	if strings.Contains(lower, "://") || strings.HasPrefix(lower, "www.") ||
		strings.Contains(lower, "%3a%2f%2f") {
		return true
	}
	// Bare registrable domain (possibly with a path).
	host := lower
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	if strings.Count(host, ".") >= 1 && !strings.ContainsAny(host, " _,&=") {
		if rd := publicsuffix.RegisteredDomain(host); rd != "" && strings.HasSuffix(host, topLabel(rd)) {
			// Require a known TLD: "a.b" with an unknown TLD is not a
			// domain (RegisteredDomain falls back to the last label, so
			// verify the suffix is a real rule by checking it's not the
			// whole host-minus-one-label heuristically).
			return knownTLD(rd)
		}
	}
	return false
}

func topLabel(domain string) string {
	if i := strings.LastIndexByte(domain, '.'); i >= 0 {
		return domain[i:]
	}
	return domain
}

// knownTLD reports whether the registered domain ends in a suffix the PSL
// actually knows (rather than the fallback last-label rule).
func knownTLD(rd string) bool {
	suffix := publicsuffix.Default().PublicSuffix(rd)
	switch suffix {
	case "com", "net", "org", "io", "co", "ru", "de", "link", "world", "info",
		"co.uk", "com.au", "dev", "app", "edu", "gov":
		return true
	}
	return false
}

// --- Lexicon ("manual") review (§3.7.2) ------------------------------------

// ManualReview implements the paper's final conservative hand rule as a
// lexicon recogniser: remove tokens composed of any combination of
// natural-language words, coordinates, domains, or obvious acronyms like
// "en-US". It returns true when the token should be REMOVED as a non-UID.
func ManualReview(value string) bool {
	if coordinateRe.MatchString(value) {
		return true
	}
	lower := strings.ToLower(value)
	for _, l := range words.Locales {
		if lower == strings.ToLower(l) {
			return true
		}
	}
	for _, a := range words.Acronyms {
		if lower == strings.ToLower(a) {
			return true
		}
	}
	if localeShapeRe.MatchString(value) {
		return true
	}
	if looksLikeURL(value) {
		return true
	}
	// Natural-language check: split on delimiters; every part must be
	// vocabulary (directly, or as a delimiter-free concatenation).
	parts := strings.FieldsFunc(lower, func(r rune) bool {
		return r == '_' || r == '-' || r == '+' || r == ' ' || r == '.' || r == ','
	})
	if len(parts) == 0 {
		return false
	}
	for _, p := range parts {
		if p == "" {
			continue
		}
		if !isWordLike(p) {
			return false
		}
	}
	return true
}

var coordinateRe = regexp.MustCompile(`^-?\d{1,3}\.\d+,\s*-?\d{1,3}\.\d+$`)
var localeShapeRe = regexp.MustCompile(`^[a-z]{2}-[A-Z]{2}$`)

// isWordLike accepts vocabulary words, their concatenations, and small
// numbers (issue counters and the like).
func isWordLike(p string) bool {
	if words.IsCommon(p) || words.IsBrandish(p) {
		return true
	}
	if _, err := strconv.Atoi(p); err == nil && len(p) <= 4 {
		return true
	}
	if _, ok := words.SegmentWords(p); ok {
		return true
	}
	return false
}
