package runio

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"crumbcruncher/internal/telemetry"
)

// LineFile is an append-only JSONL artifact whose first line is a
// validated Header. New files are written framed (format v2: every
// record CRC32-checksummed and length-prefixed); files created before
// the framing remain readable and are appended to in their own legacy
// format. Opening an existing file replays its entry lines, recovering
// from a torn tail (truncate back to the last complete record) and
// quarantining mid-file corruption. Append is safe for concurrent use.
type LineFile struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	format string
	framed bool
	policy SyncPolicy

	seq      uint64 // records written through this handle (header = 0)
	syncSeq  uint64 // fsyncs attempted through this handle
	recsAcc  int    // records since the last fsync (SyncInterval)
	bytesAcc int    // bytes since the last fsync (SyncInterval)

	syncErr  error // sticky: first fsync failure, surfaced by Close
	crashed  error // sticky: the fault hook abandoned this writer
	closed   bool
	recovery Recovery
}

// Recovery describes what opening an existing artifact had to repair.
// The zero value means the file was intact.
type Recovery struct {
	// DroppedTail reports that a torn final record was dropped and the
	// file truncated back to its last complete record.
	DroppedTail bool
	// TornBytes is how many bytes of partial record the truncation
	// removed.
	TornBytes int64
	// Records is how many complete records survived the recovery
	// (counted only when there was damage to recover from).
	Records int
}

// OpenOptions carries the optional wiring for OpenLineFileOpts.
type OpenOptions struct {
	// Sync selects the fsync policy (SyncDefault: the process default).
	Sync SyncPolicy
	// Tel, when non-nil, counts recoveries and quarantines on the
	// runio.recovered_records / runio.quarantined_files counters.
	Tel *telemetry.Telemetry
}

// OpenLineFile opens (or creates) the JSONL artifact at path with
// default options. See OpenLineFileOpts.
func OpenLineFile(path string, want Header) (*LineFile, [][]byte, error) {
	return OpenLineFileOpts(path, want, OpenOptions{})
}

// OpenLineFileOpts opens (or creates) the JSONL artifact at path. An
// existing file's header must pass Check against want; its entry lines
// are returned raw, in file order, for the caller to decode.
//
// Damage handling: a torn tail — a final record a crash left
// incomplete — is dropped and the file truncated back to its last
// complete record, so later appends continue from a clean boundary
// (LineFile.Recovery reports what happened). Mid-file corruption — a
// record whose checksum or structure is wrong even though all its
// bytes are present — quarantines the whole file to "<path>.corrupt"
// and returns a *DamageError wrapping ErrCorrupt; the caller decides
// whether to start fresh or salvage (SalvageLineFile). A fresh — or
// entry-less — file is truncated and given the want header.
func OpenLineFileOpts(path string, want Header, opts OpenOptions) (*LineFile, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runio: open %s: %w", want.Format, err)
	}
	fail := func(err error) (*LineFile, [][]byte, error) {
		f.Close()
		return nil, nil, err
	}

	data, err := io.ReadAll(f)
	if err != nil {
		return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
	}
	sc := scanLines(data, want)
	if sc.damage != nil {
		sc.damage.Path = path
		if sc.damage.check != nil {
			// Intact bytes, wrong artifact (format/version/seed): the
			// caller's mistake, never quarantine material.
			return fail(sc.damage.check)
		}
		if errors.Is(sc.damage, ErrCorrupt) {
			// Quarantine: move the damaged file aside so nothing ever
			// reads past the corruption, and surface where it went.
			f.Close()
			q := path + ".corrupt"
			if rerr := os.Rename(path, q); rerr != nil {
				return nil, nil, fmt.Errorf("runio: quarantine %s: %v (damage: %w)", path, rerr, sc.damage)
			}
			sc.damage.Quarantined = q
			opts.Tel.Counter("runio.quarantined_files").Inc()
			return nil, nil, sc.damage
		}
		// Torn tail: recover by truncating back to the last complete
		// record; everything before it is intact and kept.
		if err := f.Truncate(sc.goodEnd); err != nil {
			return fail(fmt.Errorf("runio: %s %s: truncate torn tail: %w", want.Format, path, err))
		}
		opts.Tel.Counter("runio.recovered_records").Add(int64(len(sc.entries)))
	}

	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
	}
	lf := &LineFile{
		f:      f,
		path:   path,
		format: want.Format,
		framed: sc.framed,
		policy: opts.Sync.resolve(),
	}
	if sc.damage != nil {
		lf.recovery = Recovery{DroppedTail: true, TornBytes: int64(len(data)) - sc.goodEnd, Records: len(sc.entries)}
	}
	if len(sc.entries) == 0 {
		// Fresh (or header-only) file: (re)write the header, framed.
		if err := f.Truncate(0); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
		lf.framed = true
		if err := lf.appendValue(want); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
	} else {
		lf.seq = uint64(len(sc.entries)) + 1 // header + replayed entries
	}
	return lf, sc.entries, nil
}

// scanResult is one pass over a line file's bytes.
type scanResult struct {
	entries [][]byte
	framed  bool
	goodEnd int64 // byte offset just past the last intact record
	damage  *DamageError
}

// scanLines walks the file's lines, validating each record against the
// framing (v2) or plain-JSON (legacy) rules and classifying the first
// damage it meets: torn (only possible at the tail) or corrupt.
func scanLines(data []byte, want Header) scanResult {
	res := scanResult{framed: true}
	off := int64(0)
	rec := 0
	for int(off) < len(data) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		var line []byte
		var end int64
		if nl < 0 {
			line, end = rest, int64(len(data))
		} else {
			line, end = rest[:nl], off+int64(nl)+1
		}
		last := int(end) == len(data)

		if rec == 0 {
			res.framed = len(line) > 0 && line[0] == frameMark
		}
		payload, kind := line, frameOK
		if res.framed {
			payload, kind = parseFrame(line)
		} else if !json.Valid(line) {
			kind = frameShort // legacy files cannot tell a tear from a flip
		}
		if kind == frameOK && nl < 0 {
			// A record without its trailing newline parsed whole, but
			// the terminator a complete append always writes is gone:
			// the write was cut exactly at the payload boundary. Torn.
			kind = frameShort
		}
		if kind != frameOK {
			res.damage = &DamageError{Format: want.Format, Offset: off, Record: rec, kind: ErrTorn}
			if !last || kind == frameBad {
				res.damage.kind = ErrCorrupt
			}
			return res
		}
		if rec == 0 {
			var h Header
			if err := json.Unmarshal(payload, &h); err != nil {
				res.damage = &DamageError{Format: want.Format, Offset: off, Record: 0, kind: ErrCorrupt}
				return res
			}
			if err := h.Check(want); err != nil {
				// A well-formed header for the wrong artifact is not
				// damage — it is the caller's mistake. Report it as a
				// plain error by reusing the corrupt path with no
				// quarantine: the scan loop's caller maps this.
				res.damage = &DamageError{Format: want.Format, Offset: off, Record: 0, kind: ErrCorrupt}
				res.damage.check = err
				return res
			}
		} else {
			res.entries = append(res.entries, append([]byte(nil), payload...))
		}
		res.goodEnd = end
		off = end
		rec++
	}
	return res
}

// Path returns the file's path.
func (lf *LineFile) Path() string {
	if lf == nil {
		return ""
	}
	return lf.path
}

// Recovery reports what opening the file had to repair (the zero value
// when it was intact). Safe on a nil receiver.
func (lf *LineFile) Recovery() Recovery {
	if lf == nil {
		return Recovery{}
	}
	return lf.recovery
}

// Append encodes v as one record line — framed with a CRC32 checksum
// and length prefix on v2 files. Depending on the sync policy the
// append may fsync before returning. Safe for concurrent use and on a
// nil receiver.
func (lf *LineFile) Append(v any) error {
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.closed || lf.f == nil {
		return errors.New("runio: append to closed line file")
	}
	return lf.appendValue(v)
}

// appendValue writes one record; callers hold mu (or own lf
// exclusively during open).
func (lf *LineFile) appendValue(v any) error {
	if lf.crashed != nil {
		return lf.crashed
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runio: %s: encode record: %w", lf.format, err)
	}
	var line []byte
	if lf.framed {
		line = buildFrame(payload)
	} else {
		line = append(payload, '\n')
	}

	var crash error
	if fault := currentFault(); fault != nil {
		line, crash = fault.BeforeAppend(lf.format, lf.seq, line)
	}
	lf.seq++
	if len(line) > 0 {
		if _, werr := lf.f.Write(line); werr != nil && crash == nil {
			return fmt.Errorf("runio: %s: write record: %w", lf.format, werr)
		}
	}
	if crash != nil {
		lf.crashed = crash
		return crash
	}

	switch lf.policy {
	case SyncEveryRecord:
		return lf.syncLocked()
	case SyncInterval:
		lf.recsAcc++
		lf.bytesAcc += len(line)
		if lf.recsAcc >= syncIntervalRecords || lf.bytesAcc >= syncIntervalBytes {
			return lf.syncLocked()
		}
	}
	return nil
}

// Sync forces an fsync now, regardless of policy. Failures are also
// remembered and surfaced by Close, so callers that only check Close
// still observe them. Safe on a nil receiver.
func (lf *LineFile) Sync() error {
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.closed || lf.f == nil {
		return errors.New("runio: sync of closed line file")
	}
	return lf.syncLocked()
}

func (lf *LineFile) syncLocked() error {
	if lf.crashed != nil {
		return lf.crashed
	}
	if fault := currentFault(); fault != nil {
		if err := fault.BeforeSync(lf.format, lf.syncSeq); err != nil {
			lf.syncSeq++
			lf.crashed = err
			return err
		}
	}
	lf.syncSeq++
	lf.recsAcc, lf.bytesAcc = 0, 0
	if err := lf.f.Sync(); err != nil {
		if lf.syncErr == nil {
			lf.syncErr = err
		}
		return fmt.Errorf("runio: %s: sync: %w", lf.format, err)
	}
	return nil
}

// Close syncs and closes the file. Any fsync failure during the file's
// lifetime — not just the final one — is surfaced here, so a caller
// that only checks Close still learns its acknowledged records may not
// have hit the disk. Close is idempotent: the second and later calls
// return nil without touching the (already released) descriptor. Safe
// on a nil receiver.
func (lf *LineFile) Close() error {
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.closed || lf.f == nil {
		return nil
	}
	lf.closed = true
	var err error
	if lf.crashed == nil {
		if serr := lf.syncLocked(); serr != nil {
			err = serr
		}
	}
	if cerr := lf.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err == nil && lf.syncErr != nil {
		err = fmt.Errorf("runio: %s: earlier sync failed: %w", lf.format, lf.syncErr)
	}
	lf.f = nil
	return err
}

// Records parses an in-memory line-file image — a header line followed
// by entry records, framed or legacy — validating every frame and the
// header against want, and returns the raw entry payloads in order.
// Unlike OpenLineFile there is no file to repair, so any damage —
// including a torn tail — surfaces as a *DamageError; callers holding
// a sealed artifact (e.g. a compressed run segment) treat every kind as
// corruption.
func Records(data []byte, want Header) ([][]byte, error) {
	sc := scanLines(data, want)
	if sc.damage != nil {
		if sc.damage.check != nil {
			return nil, sc.damage.check
		}
		return nil, sc.damage
	}
	return sc.entries, nil
}

// AppendRecord frames one raw JSON payload exactly as LineFile.Append
// would and appends it to buf — the writer-side counterpart of Records
// for building sealed artifacts in memory.
func AppendRecord(buf []byte, payload []byte) []byte {
	return append(buf, buildFrame(payload)...)
}

// HeaderRecord frames a header line for a sealed artifact image.
func HeaderRecord(h Header) ([]byte, error) {
	payload, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return buildFrame(payload), nil
}

// SalvageLineFile reads as many intact records as possible out of a
// damaged (typically quarantined) line file: records that fail their
// checksum or framing are skipped — counted, never silently — and
// every record that still verifies is returned in file order. The
// header must verify and pass Check, or nothing is salvageable.
func SalvageLineFile(path string, want Header) (entries [][]byte, dropped int, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, 0, fmt.Errorf("runio: salvage %s: %w", path, rerr)
	}
	off := 0
	rec := 0
	framed := len(data) > 0 && data[0] == frameMark
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		if nl < 0 {
			line, off = data[off:], len(data)
		} else {
			line, off = data[off:off+nl], off+nl+1
		}
		payload, kind := line, frameOK
		if framed {
			payload, kind = parseFrame(line)
		} else if !json.Valid(line) {
			kind = frameBad
		}
		if rec == 0 {
			rec++
			if kind != frameOK {
				return nil, 0, fmt.Errorf("runio: salvage %s: header unreadable: %w", path, ErrCorrupt)
			}
			var h Header
			if json.Unmarshal(payload, &h) != nil {
				return nil, 0, fmt.Errorf("runio: salvage %s: header unreadable: %w", path, ErrCorrupt)
			}
			if cerr := h.Check(want); cerr != nil {
				return nil, 0, fmt.Errorf("runio: salvage %s: %w", path, cerr)
			}
			continue
		}
		rec++
		if kind != frameOK {
			dropped++
			continue
		}
		entries = append(entries, append([]byte(nil), payload...))
	}
	return entries, dropped, nil
}

// ReplaceLineFile atomically rewrites the artifact at path — header
// plus the given raw JSON entries, framed — and reopens it for append.
// Used to persist a repaired artifact (e.g. the serve run-index after
// a boot-time scan) without any window where a crash leaves a partial
// rewrite visible.
func ReplaceLineFile(path string, want Header, entries [][]byte, opts OpenOptions) (*LineFile, error) {
	err := WriteFileAtomic(path, func(w io.Writer) error {
		hdr, err := json.Marshal(want)
		if err != nil {
			return err
		}
		if _, err := w.Write(buildFrame(hdr)); err != nil {
			return err
		}
		for _, e := range entries {
			if _, err := w.Write(buildFrame(e)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	lf, replayed, err := OpenLineFileOpts(path, want, opts)
	if err != nil {
		return nil, err
	}
	if len(replayed) != len(entries) {
		lf.Close()
		return nil, fmt.Errorf("runio: replace %s: wrote %d entries, read back %d", path, len(entries), len(replayed))
	}
	return lf, nil
}
