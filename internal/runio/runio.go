// Package runio is the shared on-disk codec for every artifact
// CrumbCruncher persists: saved runs (single JSON documents), walk
// checkpoints and streaming analysis sidecars (append-only JSONL line
// files), and the serve layer's run-store index. All artifacts open
// with the same versioned Header, so format, version and seed
// validation live in exactly one place. The package depends only on
// the standard library plus telemetry; any layer — including the
// crawler — may import it without creating cycles.
//
// Durability (format version 2, DESIGN.md §12): every record is
// written as a CRC32-checksummed, length-prefixed frame, so readers
// can tell a *torn tail* (a write interrupted by a crash — the partial
// final record is dropped and the file truncated back to its last
// complete record) from *mid-file corruption* (bit rot or an overwrite
// — the file is quarantined to "<path>.corrupt" and a typed error
// carrying the damaged offset and record index is surfaced; damage is
// never silently skipped). Files written before the framing existed
// (v1: plain JSONL) remain fully readable and appendable. Writers
// carry an fsync policy (SyncNever / SyncInterval / SyncEveryRecord),
// and finalized documents land via temp-file + atomic rename
// (WriteFileAtomic), so a saved run is either completely present or
// absent — never half-written.
package runio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Artifact format identifiers.
const (
	// RunFormat is a saved crawl (SaveRun / EncodeRun).
	RunFormat = "crumbcruncher/run"
	// CheckpointFormat is an incremental walk checkpoint.
	CheckpointFormat = "crumbcruncher/checkpoint"
	// AnalysisFormat is the streaming engine's per-walk analysis-state
	// sidecar, persisted next to the walk checkpoint.
	AnalysisFormat = "crumbcruncher/analysis-state"
	// IndexFormat is the serve layer's run-store index: one line per
	// persisted run, appended as jobs complete.
	IndexFormat = "crumbcruncher/run-index"
	// WalksFormat is a runstore line-file backend: a manifest record
	// followed by one framed record per walk.
	WalksFormat = "crumbcruncher/run-walks"
	// SegmentFormat is one walk segment of a runstore segment backend.
	SegmentFormat = "crumbcruncher/run-segment"
	// SegmentIndexFormat is the segment backend's sidecar index: one
	// record per sealed segment, mapping walk indices to segment files.
	SegmentIndexFormat = "crumbcruncher/run-segment-index"
)

// RunVersion is bumped when the saved-run document layout changes.
const RunVersion = 1

// Header is the versioned identity every persisted artifact starts
// with: the first line of a line file, or top-level fields of a JSON
// document. The seed ties an artifact to the exact deterministic world
// it was recorded in.
type Header struct {
	Format  string `json:"format,omitempty"`
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
}

// legacy reports whether h predates versioned headers entirely (a file
// written before this package existed: no format, no version).
func (h Header) legacy() bool { return h.Format == "" && h.Version == 0 }

// Check validates h against the expected header. Artifacts written
// before the format field existed (empty Format) are tolerated, as are
// fully pre-versioning documents (no header fields at all). A zero
// want.Seed skips the seed comparison — used when the seed is not known
// until the document is decoded.
func (h Header) Check(want Header) error {
	if h.legacy() {
		return nil
	}
	if h.Format != "" && h.Format != want.Format {
		return fmt.Errorf("runio: format %q, want %q", h.Format, want.Format)
	}
	if h.Version != want.Version {
		return fmt.Errorf("runio: %s version %d, want %d", want.Format, h.Version, want.Version)
	}
	if want.Seed != 0 && h.Seed != want.Seed {
		return fmt.Errorf("runio: %s recorded for seed %d, want seed %d", want.Format, h.Seed, want.Seed)
	}
	return nil
}

// --- Damage classification ---------------------------------------------------

// ErrTorn marks a record that was truncated by an interrupted write: a
// crash landed mid-append and only a prefix of the record reached the
// disk. Line files recover from torn tails automatically (the partial
// record is dropped and the file truncated); the sentinel only surfaces
// for single-document artifacts, which have nothing left to recover.
var ErrTorn = errors.New("runio: torn write")

// ErrCorrupt marks damage that truncation cannot explain — a bit flip,
// an overwrite, a record mangled in the middle of the file. Corrupt
// artifacts are never silently skipped: line files are quarantined to
// "<path>.corrupt" and the error carries the damaged location.
var ErrCorrupt = errors.New("runio: corrupt record")

// DamageError is the typed error for a damaged artifact. It wraps
// ErrTorn or ErrCorrupt (test with errors.Is) and pins the damage to a
// byte offset and record index. For quarantined line files, Quarantined
// is the path the damaged file was moved to.
type DamageError struct {
	Format string // artifact format identifier
	Path   string // original path ("" when reading a stream)
	// Offset is the byte offset of the damaged frame within the file.
	Offset int64
	// Record is the damaged record's index; the header line is record 0,
	// entries count from 1.
	Record int
	// Quarantined is where the damaged file was moved ("" if it was not).
	Quarantined string
	kind        error // ErrTorn or ErrCorrupt
	// check, when non-nil, means the bytes were intact but the header
	// identified a different artifact — a caller mistake, not damage.
	check error
}

func (e *DamageError) Error() string {
	what := "torn"
	if e.kind == ErrCorrupt {
		what = "corrupt"
	}
	msg := fmt.Sprintf("runio: %s: %s record %d at byte offset %d", e.Format, what, e.Record, e.Offset)
	if e.Path != "" {
		msg += " in " + e.Path
	}
	if e.Quarantined != "" {
		msg += " (quarantined to " + e.Quarantined + ")"
	}
	return msg
}

// Unwrap exposes the ErrTorn / ErrCorrupt sentinel for errors.Is.
func (e *DamageError) Unwrap() error { return e.kind }

// NewCorruptError builds a DamageError wrapping ErrCorrupt for damage
// detected outside this package's own readers — e.g. a compressed run
// segment whose bytes fail verification after decompression.
func NewCorruptError(format, path, quarantined string) *DamageError {
	return &DamageError{Format: format, Path: path, Quarantined: quarantined, Offset: -1, Record: -1, kind: ErrCorrupt}
}

// --- Documents ---------------------------------------------------------------

// WriteDocument writes v as a single framed JSON document: one frame
// line whose payload is the document. v is expected to carry (embed) a
// Header so ReadDocument can validate it later.
func WriteDocument(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runio: encode document: %w", err)
	}
	_, err = w.Write(buildFrame(payload))
	return err
}

// ReadDocument reads one whole JSON document from r, validates its
// framing (when present) and its top-level header fields against want,
// and unmarshals the document into v. Unframed documents (written
// before format v2) and pre-versioning documents (no header fields)
// pass validation. A truncated framed document returns a DamageError
// wrapping ErrTorn; a checksum mismatch one wrapping ErrCorrupt.
func ReadDocument(r io.Reader, want Header, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("runio: read %s: %w", want.Format, err)
	}
	payload, err := DocumentPayload(data, want.Format)
	if err != nil {
		return err
	}
	var h Header
	if err := json.Unmarshal(payload, &h); err != nil {
		return fmt.Errorf("runio: decode %s: %w", want.Format, err)
	}
	if err := h.Check(want); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("runio: decode %s: %w", want.Format, err)
	}
	return nil
}

// DocumentPayload unwraps a document's frame, verifying length and
// checksum, and returns the raw JSON payload. Unframed (pre-v2)
// documents pass through unchanged. The format names the artifact in
// damage errors.
func DocumentPayload(data []byte, format string) ([]byte, error) {
	if len(data) == 0 || data[0] != frameMark {
		return data, nil // pre-framing document: raw JSON
	}
	line := data
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	payload, kind := parseFrame(line)
	switch kind {
	case frameOK:
		return payload, nil
	case frameShort:
		return nil, &DamageError{Format: format, Offset: 0, Record: 0, kind: ErrTorn}
	default:
		return nil, &DamageError{Format: format, Offset: 0, Record: 0, kind: ErrCorrupt}
	}
}

// WriteFileAtomic writes a file through a temp-file + rename so the
// path never holds a half-written artifact: either the complete, synced
// content is visible under path, or the previous content (or absence)
// is. write receives the temp file's writer.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("runio: atomic write %s: %w", path, err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("runio: atomic write %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("runio: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("runio: atomic write %s: %w", path, err)
	}
	return nil
}

// splitPath is filepath.Split without pulling the import into the hot
// path signature; it keeps the temp file in the target's directory so
// the final rename never crosses filesystems.
func splitPath(path string) (dir, base string) {
	i := len(path) - 1
	for i >= 0 && !os.IsPathSeparator(path[i]) {
		i--
	}
	if i < 0 {
		return ".", path
	}
	return path[:i+1], path[i+1:]
}
