// Package runio is the shared on-disk codec for every artifact
// CrumbCruncher persists: saved runs (single JSON documents), walk
// checkpoints and streaming analysis sidecars (append-only JSONL line
// files). All artifacts open with the same versioned Header, so format,
// version and seed validation live in exactly one place. The package
// depends only on the standard library; any layer — including the
// crawler — may import it without creating cycles.
package runio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Artifact format identifiers.
const (
	// RunFormat is a saved crawl (SaveRun / EncodeRun).
	RunFormat = "crumbcruncher/run"
	// CheckpointFormat is an incremental walk checkpoint.
	CheckpointFormat = "crumbcruncher/checkpoint"
	// AnalysisFormat is the streaming engine's per-walk analysis-state
	// sidecar, persisted next to the walk checkpoint.
	AnalysisFormat = "crumbcruncher/analysis-state"
	// IndexFormat is the serve layer's run-store index: one line per
	// persisted run, appended as jobs complete.
	IndexFormat = "crumbcruncher/run-index"
)

// RunVersion is bumped when the saved-run document layout changes.
const RunVersion = 1

// Header is the versioned identity every persisted artifact starts
// with: the first line of a line file, or top-level fields of a JSON
// document. The seed ties an artifact to the exact deterministic world
// it was recorded in.
type Header struct {
	Format  string `json:"format,omitempty"`
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
}

// legacy reports whether h predates versioned headers entirely (a file
// written before this package existed: no format, no version).
func (h Header) legacy() bool { return h.Format == "" && h.Version == 0 }

// Check validates h against the expected header. Artifacts written
// before the format field existed (empty Format) are tolerated, as are
// fully pre-versioning documents (no header fields at all). A zero
// want.Seed skips the seed comparison — used when the seed is not known
// until the document is decoded.
func (h Header) Check(want Header) error {
	if h.legacy() {
		return nil
	}
	if h.Format != "" && h.Format != want.Format {
		return fmt.Errorf("runio: format %q, want %q", h.Format, want.Format)
	}
	if h.Version != want.Version {
		return fmt.Errorf("runio: %s version %d, want %d", want.Format, h.Version, want.Version)
	}
	if want.Seed != 0 && h.Seed != want.Seed {
		return fmt.Errorf("runio: %s recorded for seed %d, want seed %d", want.Format, h.Seed, want.Seed)
	}
	return nil
}

// WriteDocument writes v as a single JSON document. v is expected to
// carry (embed) a Header so ReadDocument can validate it later.
func WriteDocument(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// ReadDocument reads one whole JSON document from r, validates its
// top-level header fields against want, and unmarshals the document
// into v. Pre-versioning documents (no header fields) pass validation.
func ReadDocument(r io.Reader, want Header, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("runio: read %s: %w", want.Format, err)
	}
	var h Header
	if err := json.Unmarshal(data, &h); err != nil {
		return fmt.Errorf("runio: decode %s: %w", want.Format, err)
	}
	if err := h.Check(want); err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("runio: decode %s: %w", want.Format, err)
	}
	return nil
}

// LineFile is an append-only JSONL artifact whose first line is a
// validated Header. Opening an existing file replays its entry lines; a
// truncated final line (a write interrupted mid-crash) is dropped.
// Append is safe for concurrent use.
type LineFile struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	path string
}

// OpenLineFile opens (or creates) the JSONL artifact at path. An
// existing file's header must pass Check against want; its entry lines
// are returned raw, in file order, for the caller to decode. Trailing
// lines that are not complete JSON values are dropped as torn writes. A
// fresh — or entry-less — file is truncated and given the want header.
func OpenLineFile(path string, want Header) (*LineFile, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runio: open %s: %w", want.Format, err)
	}
	fail := func(err error) (*LineFile, [][]byte, error) {
		f.Close()
		return nil, nil, err
	}

	var entries [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // entries (e.g. walks) serialize large
	if sc.Scan() {
		var h Header
		if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
			return fail(fmt.Errorf("runio: %s %s: bad header: %w", want.Format, path, err))
		}
		if err := h.Check(want); err != nil {
			return fail(fmt.Errorf("runio: %s: %w", path, err))
		}
		for sc.Scan() {
			if !json.Valid(sc.Bytes()) {
				break // interrupted mid-write: drop the partial tail
			}
			entries = append(entries, append([]byte(nil), sc.Bytes()...))
		}
	}
	if err := sc.Err(); err != nil {
		return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
	}

	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
	}
	lf := &LineFile{f: f, enc: json.NewEncoder(f), path: path}
	if len(entries) == 0 {
		// Fresh (or header-only) file: (re)write the header.
		if err := f.Truncate(0); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
		if err := lf.enc.Encode(want); err != nil {
			return fail(fmt.Errorf("runio: %s %s: %w", want.Format, path, err))
		}
	}
	return lf, entries, nil
}

// Path returns the file's path.
func (lf *LineFile) Path() string {
	if lf == nil {
		return ""
	}
	return lf.path
}

// Append encodes v as one JSONL entry line. Safe for concurrent use and
// on a nil receiver.
func (lf *LineFile) Append(v any) error {
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.f == nil {
		return errors.New("runio: append to closed line file")
	}
	return lf.enc.Encode(v)
}

// Close syncs and closes the file. Safe on a nil receiver and after a
// prior Close.
func (lf *LineFile) Close() error {
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.f == nil {
		return nil
	}
	err := lf.f.Sync()
	if cerr := lf.f.Close(); err == nil {
		err = cerr
	}
	lf.f = nil
	return err
}
