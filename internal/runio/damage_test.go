package runio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"crumbcruncher/internal/telemetry"
)

// seedFile writes a framed line file with a header and n small entries,
// returning its path and the byte offsets where each record's frame
// starts (offsets[0] is the header).
func seedFile(t *testing.T, dir, format string, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(dir, "artifact.jsonl")
	hdr := Header{Format: format, Version: 1, Seed: 42}
	lf, _, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := lf.Append(map[string]int{"index": i, "value": i * 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0}
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		off += nl + 1
		if off < len(data) {
			offsets = append(offsets, int64(off))
		}
	}
	if len(offsets) != n+1 {
		t.Fatalf("seeded %d records, found %d offsets", n+1, len(offsets))
	}
	return path, offsets
}

// TestDamageMatrix drives the torn-vs-corrupt classification across
// every artifact format and every frame boundary: truncations inside
// the final record recover (torn tail), truncations that amputate whole
// records plus a partial one recover to the last whole record, and bit
// flips anywhere quarantine (corrupt) with the damaged record pinned.
func TestDamageMatrix(t *testing.T) {
	formats := []string{RunFormat, CheckpointFormat, AnalysisFormat, IndexFormat}
	const entries = 4

	type outcome struct {
		name string
		// damage mutates the intact file bytes.
		damage func(data []byte, offsets []int64) []byte
		// wantEntries is how many entries survive a recovering open
		// (-1: the open must quarantine instead).
		wantEntries int
		// wantRecord is the damaged record index a quarantine reports.
		wantRecord int
	}
	cases := []outcome{
		{
			name:        "truncate mid final frame prefix",
			damage:      func(d []byte, off []int64) []byte { return d[:off[entries]+3] },
			wantEntries: entries - 1,
		},
		{
			name:        "truncate mid final payload",
			damage:      func(d []byte, off []int64) []byte { return d[:off[entries]+framePrefixLen+4] },
			wantEntries: entries - 1,
		},
		{
			name:        "truncate exactly before final newline",
			damage:      func(d []byte, off []int64) []byte { return d[:len(d)-1] },
			wantEntries: entries - 1,
		},
		{
			name:        "truncate mid second entry",
			damage:      func(d []byte, off []int64) []byte { return d[:off[2]+5] },
			wantEntries: 1,
		},
		{
			name:        "truncate into header",
			damage:      func(d []byte, off []int64) []byte { return d[:7] },
			wantEntries: 0,
		},
		{
			name: "flip payload bit of entry 2",
			damage: func(d []byte, off []int64) []byte {
				out := append([]byte(nil), d...)
				out[off[2]+framePrefixLen+2] ^= 0x10
				return out
			},
			wantEntries: -1,
			wantRecord:  2,
		},
		{
			name: "flip checksum hex digit of entry 1",
			damage: func(d []byte, off []int64) []byte {
				out := append([]byte(nil), d...)
				out[off[1]+3] = 'x' // not a hex digit: frame structure broken
				return out
			},
			wantEntries: -1,
			wantRecord:  1,
		},
		{
			name: "flip header payload bit",
			damage: func(d []byte, off []int64) []byte {
				out := append([]byte(nil), d...)
				out[framePrefixLen+1] ^= 0x02
				return out
			},
			wantEntries: -1,
			wantRecord:  0,
		},
		{
			name: "overwrite mid-file frame mark",
			damage: func(d []byte, off []int64) []byte {
				out := append([]byte(nil), d...)
				out[off[3]] = '{' // record 3 no longer opens with the mark
				return out
			},
			wantEntries: -1,
			wantRecord:  3,
		},
	}

	for _, format := range formats {
		for _, tc := range cases {
			t.Run(format+"/"+tc.name, func(t *testing.T) {
				dir := t.TempDir()
				path, offsets := seedFile(t, dir, format, entries)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.damage(data, offsets), 0o644); err != nil {
					t.Fatal(err)
				}

				tel := telemetry.New(nil, 1)
				hdr := Header{Format: format, Version: 1, Seed: 42}
				lf, got, err := OpenLineFileOpts(path, hdr, OpenOptions{Tel: tel})

				if tc.wantEntries >= 0 {
					if err != nil {
						t.Fatalf("torn damage did not recover: %v", err)
					}
					defer lf.Close()
					if len(got) != tc.wantEntries {
						t.Fatalf("recovered %d entries, want %d", len(got), tc.wantEntries)
					}
					if tc.wantEntries > 0 {
						if n := tel.Registry().Counter("runio.recovered_records").Value(); n != int64(tc.wantEntries) {
							t.Fatalf("runio.recovered_records = %d, want %d", n, tc.wantEntries)
						}
					}
					return
				}

				var dmg *DamageError
				if !errors.As(err, &dmg) || !errors.Is(err, ErrCorrupt) {
					t.Fatalf("corruption not classified: %v", err)
				}
				if dmg.Record != tc.wantRecord {
					t.Fatalf("damage pinned to record %d, want %d", dmg.Record, tc.wantRecord)
				}
				if dmg.Offset != offsets[tc.wantRecord] {
					t.Fatalf("damage pinned to offset %d, want %d", dmg.Offset, offsets[tc.wantRecord])
				}
				if _, err := os.Stat(dmg.Quarantined); err != nil {
					t.Fatalf("quarantine file: %v", err)
				}
				if _, err := os.Stat(path); !os.IsNotExist(err) {
					t.Fatal("damaged file left in place")
				}
				if n := tel.Registry().Counter("runio.quarantined_files").Value(); n != 1 {
					t.Fatalf("runio.quarantined_files = %d, want 1", n)
				}
			})
		}
	}
}

// TestDocumentDamage covers the single-document artifact (a saved run):
// truncation is torn, a flipped byte is corrupt, both typed.
func TestDocumentDamage(t *testing.T) {
	var buf bytes.Buffer
	doc := struct {
		Header
		Value int `json:"value"`
	}{Header{Format: RunFormat, Version: RunVersion, Seed: 5}, 99}
	if err := WriteDocument(&buf, doc); err != nil {
		t.Fatal(err)
	}
	intact := buf.Bytes()
	want := Header{Format: RunFormat, Version: RunVersion}

	var out struct{ Value int }
	if err := ReadDocument(bytes.NewReader(intact), want, &out); err != nil || out.Value != 99 {
		t.Fatalf("intact document: %v (value %d)", err, out.Value)
	}

	torn := intact[:len(intact)/2]
	err := ReadDocument(bytes.NewReader(torn), want, &out)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("truncated document: %v, want ErrTorn", err)
	}

	flipped := append([]byte(nil), intact...)
	flipped[framePrefixLen+5] ^= 0x40
	err = ReadDocument(bytes.NewReader(flipped), want, &out)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped document: %v, want ErrCorrupt", err)
	}
}

// TestSalvageLineFile recovers the records around a corrupt one.
func TestSalvageLineFile(t *testing.T) {
	dir := t.TempDir()
	path, offsets := seedFile(t, dir, CheckpointFormat, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[3]+framePrefixLen+1] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	hdr := Header{Format: CheckpointFormat, Version: 1, Seed: 42}
	entries, dropped, err := SalvageLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || dropped != 1 {
		t.Fatalf("salvaged %d dropped %d, want 4/1", len(entries), dropped)
	}

	// ReplaceLineFile persists the repair atomically and reopens.
	repaired := filepath.Join(dir, "repaired.jsonl")
	lf, err := ReplaceLineFile(repaired, hdr, entries, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenLineFile(repaired, hdr)
	if err != nil || len(got) != 4 {
		t.Fatalf("reopen repaired: %v (%d entries)", err, len(got))
	}
}

// TestCloseIdempotentAndSurfacesSync: double Close is a no-op; Close
// reports earlier Sync errors even when the final sync succeeds.
func TestCloseIdempotentAndSurfacesSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.jsonl")
	hdr := Header{Format: CheckpointFormat, Version: 1, Seed: 1}
	lf, _, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
	if err := lf.Append(1); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
