package runio

import (
	"sync"
	"sync/atomic"
)

// --- Fsync policy ------------------------------------------------------------

// SyncPolicy chooses when a line file fsyncs its appends. The policy
// bounds how much acknowledged-but-unsynced data a crash can lose; the
// framed format guarantees that whatever the crash does lose is
// detected and classified on the next open rather than silently read.
type SyncPolicy int

const (
	// SyncDefault resolves to the package-level default
	// (SetDefaultSyncPolicy; SyncInterval out of the box).
	SyncDefault SyncPolicy = iota
	// SyncNever leaves flushing entirely to the OS. Fastest; a crash
	// can lose every record since the last kernel writeback.
	SyncNever
	// SyncInterval fsyncs every syncIntervalRecords appends or
	// syncIntervalBytes bytes, whichever comes first. The default: a
	// crash loses at most one interval of records.
	SyncInterval
	// SyncEveryRecord fsyncs after each append. Slowest; a crash loses
	// at most the record being written (a torn tail).
	SyncEveryRecord
)

const (
	syncIntervalRecords = 32
	syncIntervalBytes   = 1 << 20
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncInterval:
		return "interval"
	case SyncEveryRecord:
		return "every-record"
	default:
		return "default"
	}
}

// ParseSyncPolicy parses the CLI spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, bool) {
	switch s {
	case "never":
		return SyncNever, true
	case "", "interval", "default":
		return SyncInterval, true
	case "every-record", "always":
		return SyncEveryRecord, true
	}
	return SyncDefault, false
}

// defaultSyncPolicy is the process-wide policy SyncDefault resolves to,
// set once at CLI startup (-fsync) and read at every append decision.
var defaultSyncPolicy atomic.Int32

// SetDefaultSyncPolicy sets the process-wide policy that SyncDefault
// resolves to. SyncDefault itself is replaced by SyncInterval.
func SetDefaultSyncPolicy(p SyncPolicy) {
	if p == SyncDefault {
		p = SyncInterval
	}
	defaultSyncPolicy.Store(int32(p))
}

// resolve maps SyncDefault to the process-wide default.
func (p SyncPolicy) resolve() SyncPolicy {
	if p != SyncDefault {
		return p
	}
	if d := SyncPolicy(defaultSyncPolicy.Load()); d != SyncDefault {
		return d
	}
	return SyncInterval
}

// --- Fault injection ---------------------------------------------------------

// Fault is the chaos hook installed at the write boundary: every line
// file consults it before writing a record and before fsyncing. The
// production value is nil (zero cost beyond an atomic load); tests
// install internal/chaos's deterministic Injector to simulate torn
// writes, bit flips and crash points. See DESIGN.md §12.
type Fault interface {
	// BeforeAppend sees the exact frame bytes about to be written as
	// record seq (header = 0, entries from 1) of a file with the given
	// artifact format. It may return different bytes to write instead
	// (torn or flipped), and/or an error: a non-nil error abandons the
	// writer after the returned bytes land — the in-process equivalent
	// of the process dying mid-write.
	BeforeAppend(format string, seq uint64, frame []byte) ([]byte, error)
	// BeforeSync runs before each fsync; a non-nil error abandons the
	// writer without syncing (a crash at the fsync point).
	BeforeSync(format string, syncSeq uint64) error
}

var (
	faultMu        sync.Mutex
	installedFault atomic.Value // of faultBox
)

// faultBox lets atomic.Value swap between nil and non-nil interfaces.
type faultBox struct{ f Fault }

// SetFault installs (or, with nil, clears) the process-wide fault
// hook. Tests only; never leave a fault installed across tests.
func SetFault(f Fault) {
	faultMu.Lock()
	defer faultMu.Unlock()
	installedFault.Store(faultBox{f: f})
}

func currentFault() Fault {
	v, _ := installedFault.Load().(faultBox)
	return v.f
}
