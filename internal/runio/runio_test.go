package runio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHeaderCheck(t *testing.T) {
	want := Header{Format: CheckpointFormat, Version: 1, Seed: 7}
	cases := []struct {
		name string
		h    Header
		ok   bool
	}{
		{"exact", Header{Format: CheckpointFormat, Version: 1, Seed: 7}, true},
		{"pre-format", Header{Version: 1, Seed: 7}, true},
		{"pre-versioning", Header{}, true},
		{"wrong format", Header{Format: RunFormat, Version: 1, Seed: 7}, false},
		{"wrong version", Header{Format: CheckpointFormat, Version: 2, Seed: 7}, false},
		{"wrong seed", Header{Format: CheckpointFormat, Version: 1, Seed: 8}, false},
	}
	for _, tc := range cases {
		if err := tc.h.Check(want); (err == nil) != tc.ok {
			t.Errorf("%s: Check = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// A zero want.Seed skips the seed comparison.
	h := Header{Format: RunFormat, Version: RunVersion, Seed: 42}
	if err := h.Check(Header{Format: RunFormat, Version: RunVersion}); err != nil {
		t.Errorf("zero want.Seed should skip the seed check: %v", err)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	type doc struct {
		Header
		Payload string `json:"payload"`
	}
	var buf bytes.Buffer
	in := doc{Header: Header{Format: RunFormat, Version: RunVersion, Seed: 3}, Payload: "hello"}
	if err := WriteDocument(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out doc
	if err := ReadDocument(&buf, Header{Format: RunFormat, Version: RunVersion}, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}

	// Version mismatch is rejected.
	buf.Reset()
	if err := WriteDocument(&buf, in); err != nil {
		t.Fatal(err)
	}
	if err := ReadDocument(&buf, Header{Format: RunFormat, Version: RunVersion + 1}, &out); err == nil {
		t.Fatal("version mismatch not rejected")
	}

	// A pre-versioning document (no header fields) still decodes.
	legacy := strings.NewReader(`{"payload":"old"}`)
	out = doc{}
	if err := ReadDocument(legacy, Header{Format: RunFormat, Version: RunVersion}, &out); err != nil {
		t.Fatalf("legacy document rejected: %v", err)
	}
	if out.Payload != "old" {
		t.Fatalf("legacy payload = %q", out.Payload)
	}
}

func TestLineFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entries.jsonl")
	hdr := Header{Format: CheckpointFormat, Version: 1, Seed: 5}

	lf, entries, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh file has %d entries", len(entries))
	}
	type entry struct {
		N int `json:"n"`
	}
	for i := 0; i < 3; i++ {
		if err := lf.Append(entry{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all three entries come back; seed must match.
	lf2, entries, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	if len(entries) != 3 {
		t.Fatalf("reopened file has %d entries, want 3", len(entries))
	}
	if _, _, err := OpenLineFile(path, Header{Format: CheckpointFormat, Version: 1, Seed: 6}); err == nil {
		t.Fatal("wrong seed not rejected")
	}
}

func TestLineFileDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	hdr := Header{Format: AnalysisFormat, Version: 1, Seed: 9}
	lf, _, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	lf.Append(map[string]int{"n": 1})
	lf.Append(map[string]int{"n": 2})
	lf.Close()
	// Simulate a crash mid-write: chop the tail off the final record so
	// only part of its frame reached the disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	lf2, entries, err := OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	if len(entries) != 1 {
		t.Fatalf("torn tail not dropped: %d entries", len(entries))
	}
	rec := lf2.Recovery()
	if !rec.DroppedTail || rec.TornBytes == 0 {
		t.Fatalf("recovery not reported: %+v", rec)
	}
	// The truncation must leave a clean boundary: appends after recovery
	// read back whole.
	if err := lf2.Append(map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	if err := lf2.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err = OpenLineFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("after recovery+append: %d entries, want 2", len(entries))
	}
}
