package runio

import "hash/crc32"

// Frame layout (format v2). Every record — the header line included —
// is one line of the shape
//
//	'!' crc32 '!' length '!' payload '\n'
//	     8 hex    8 hex     JSON, no raw newlines
//
// where crc32 is the IEEE checksum of the payload bytes and length is
// the payload's byte count. The '!' marker cannot open a JSON value, so
// a reader distinguishes framed (v2) from legacy (v1, plain JSONL)
// files by the first byte alone. The length prefix tells a truncated
// payload (torn write: the line is shorter than the frame declares)
// from a complete-but-mangled one (corruption: the declared length is
// all there, but the checksum disagrees); DESIGN.md §12 records the
// resulting classification matrix.
const (
	frameMark      = '!'
	framePrefixLen = 19 // '!' + 8 + '!' + 8 + '!'
)

// frameKind classifies one scanned line.
type frameKind int

const (
	frameOK frameKind = iota
	// frameShort: the line holds less than the frame declares — the
	// shape truncation leaves. Torn tail at the end of a file, corrupt
	// anywhere else.
	frameShort
	// frameBad: the frame structure or checksum is wrong even though
	// the declared length is satisfied — the shape bit flips leave.
	// Corrupt wherever it appears.
	frameBad
)

// buildFrame wraps a JSON payload in a v2 frame line.
func buildFrame(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+framePrefixLen+1)
	buf = append(buf, frameMark)
	buf = appendHex32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, frameMark)
	buf = appendHex32(buf, uint32(len(payload)))
	buf = append(buf, frameMark)
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	return buf
}

// parseFrame validates one line (without its trailing newline) against
// the frame layout and returns the payload.
func parseFrame(line []byte) ([]byte, frameKind) {
	if len(line) < framePrefixLen {
		// A tear leaves a strict prefix of a valid frame; anything else
		// this short was never a frame at all.
		if isFramePrefix(line) {
			return nil, frameShort
		}
		return nil, frameBad
	}
	if line[0] != frameMark || line[9] != frameMark || line[18] != frameMark {
		return nil, frameBad
	}
	sum, ok := parseHex32(line[1:9])
	if !ok {
		return nil, frameBad
	}
	length, ok := parseHex32(line[10:18])
	if !ok {
		return nil, frameBad
	}
	payload := line[framePrefixLen:]
	switch {
	case uint32(len(payload)) < length:
		return nil, frameShort
	case uint32(len(payload)) > length:
		return nil, frameBad
	case crc32.ChecksumIEEE(payload) != sum:
		return nil, frameBad
	}
	return payload, frameOK
}

// isFramePrefix reports whether b could be the leading bytes of a
// valid frame line — what a torn write leaves when it cuts inside the
// frame prefix itself.
func isFramePrefix(b []byte) bool {
	for i, c := range b {
		switch i {
		case 0, 9, 18:
			if c != frameMark {
				return false
			}
		default:
			if !(('0' <= c && c <= '9') || ('a' <= c && c <= 'f')) {
				return false
			}
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

func appendHex32(buf []byte, v uint32) []byte {
	for shift := 28; shift >= 0; shift -= 4 {
		buf = append(buf, hexDigits[(v>>shift)&0xf])
	}
	return buf
}

func parseHex32(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case '0' <= c && c <= '9':
			d = uint32(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
