package crawler

import (
	"net/url"
	"testing"

	"crumbcruncher/internal/dom"
)

func anchor(href string, box dom.Rect, xpath string) Element {
	return Element{Kind: "a", Href: href, AttrNames: []string{"href"}, Box: box, XPath: xpath}
}

func iframe(attrs []string, box dom.Rect, xpath string) Element {
	return Element{Kind: "iframe", AttrNames: attrs, Box: box, XPath: xpath}
}

func TestHeuristic1HrefIgnoresQuery(t *testing.T) {
	a := anchor("http://x.com/p?uid=alice", dom.Rect{X: 0, Y: 10, W: 100, H: 20}, "/a[1]")
	b := anchor("http://x.com/p?uid=bob", dom.Rect{X: 5, Y: 99, W: 50, H: 10}, "/div[1]/a[1]")
	if !SameElement(a, b) {
		t.Fatal("same href modulo query must match (decorated UIDs differ per crawler)")
	}
	c := anchor("http://y.com/p", dom.Rect{}, "/a[2]")
	if SameElement(a, c) {
		t.Fatal("different href, box and x-path must not match")
	}
}

func TestHeuristic2BoxIgnoresY(t *testing.T) {
	attrs := []string{"src", "width", "height"}
	a := iframe(attrs, dom.Rect{X: 10, Y: 100, W: 300, H: 250}, "/div[1]/iframe[1]")
	b := iframe(attrs, dom.Rect{X: 10, Y: 400, W: 300, H: 250}, "/div[2]/iframe[1]")
	if !SameElement(a, b) {
		t.Fatal("same attrs + box modulo y must match")
	}
	c := iframe(attrs, dom.Rect{X: 10, Y: 100, W: 728, H: 90}, "/div[1]/iframe[1]")
	// Different size — but same xpath, so heuristic 3 fires. Mask it.
	if sameElementWith(a, c, Heuristics{Box: true}) {
		t.Fatal("different width/height must not match via heuristic 2")
	}
	d := iframe([]string{"src", "class"}, dom.Rect{X: 10, Y: 100, W: 300, H: 250}, "/div[9]/iframe[1]")
	if SameElement(a, d) {
		t.Fatal("different attribute names must not match")
	}
}

func TestHeuristic3XPath(t *testing.T) {
	attrs := []string{"src"}
	a := iframe(attrs, dom.Rect{X: 0, Y: 0, W: 100, H: 50}, "/body[1]/iframe[2]")
	b := iframe(attrs, dom.Rect{X: 999, Y: 999, W: 1, H: 1}, "/body[1]/iframe[2]")
	if !SameElement(a, b) {
		t.Fatal("same attrs + xpath must match")
	}
	c := iframe(attrs, dom.Rect{}, "/body[1]/iframe[3]")
	if sameElementWith(a, c, Heuristics{XPath: true}) {
		t.Fatal("different xpath must not match via heuristic 3")
	}
}

func TestKindMismatchNeverMatches(t *testing.T) {
	a := Element{Kind: "a", Href: "http://x.com/", AttrNames: []string{"href"}}
	f := Element{Kind: "iframe", AttrNames: []string{"href"}}
	if SameElement(a, f) {
		t.Fatal("anchor and iframe must never match")
	}
}

func TestMatchElementsTripleGreedy(t *testing.T) {
	// Each logical element carries a distinct attribute-name set so only
	// heuristic 1 (href) can match, making cross-index matching
	// observable.
	mk := func(hrefs ...string) []Element {
		var out []Element
		for i, h := range hrefs {
			u, _ := url.Parse(h)
			e := anchor(h, dom.Rect{X: i * 10, W: 100, H: 20}, "/a[1]")
			e.AttrNames = []string{"href", "data-" + u.Hostname()}
			e.Index = i
			out = append(out, e)
		}
		return out
	}
	lists := map[string][]Element{
		Safari1: mk("http://a.com/x", "http://b.com/y?u=1", "http://only1.com/"),
		Safari2: mk("http://b.com/y?u=2", "http://a.com/x"),
		Chrome3: mk("http://c.com/z", "http://a.com/x", "http://b.com/y?u=3"),
	}
	got := MatchElements(lists, AllHeuristics)
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2", len(got))
	}
	// First match is a.com/x (document order of Safari-1).
	if got[0].Indices[Safari1] != 0 || got[0].Indices[Safari2] != 1 || got[0].Indices[Chrome3] != 1 {
		t.Fatalf("match 0 indices wrong: %+v", got[0].Indices)
	}
	if got[1].Indices[Safari1] != 1 || got[1].Indices[Safari2] != 0 || got[1].Indices[Chrome3] != 2 {
		t.Fatalf("match 1 indices wrong: %+v", got[1].Indices)
	}
}

func TestMatchElementsNoDoubleUse(t *testing.T) {
	// Two identical elements in list 1 must not both claim the single
	// instance in lists 2/3.
	dup := anchor("http://a.com/x", dom.Rect{W: 100, H: 20}, "/a[1]")
	l1 := []Element{dup, dup}
	l1[1].Index = 1
	lists := map[string][]Element{
		Safari1: l1,
		Safari2: {anchor("http://a.com/x", dom.Rect{W: 100, H: 20}, "/a[1]")},
		Chrome3: {anchor("http://a.com/x", dom.Rect{W: 100, H: 20}, "/a[1]")},
	}
	if got := MatchElements(lists, AllHeuristics); len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
}

func TestHrefSansQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://x.com/p?a=1&b=2", "http://x.com/p"},
		{"http://x.com/p#frag", "http://x.com/p"},
		{"/rel/path?q=1", "/rel/path"},
		{"", ""},
	}
	for _, c := range cases {
		if got := hrefSansQuery(c.in); got != c.want {
			t.Errorf("hrefSansQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
