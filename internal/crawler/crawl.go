package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/publicsuffix"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/telemetry"
)

// Config configures a crawl.
type Config struct {
	// Seed drives the controller's choices and must match the world's
	// seed so client-side scripts derive the same identifiers as the
	// servers.
	Seed int64
	// Network is the (synthetic) web to crawl.
	Network *netsim.Network
	// Seeders are the walk starting domains, most popular first (the
	// Tranco list of §3.1).
	Seeders []string
	// Walks is the number of random walks; walk i starts at
	// Seeders[i mod len].
	Walks int
	// StepsPerWalk is the walk length (paper: 10).
	StepsPerWalk int
	// Parallelism is the number of walks crawled concurrently (the
	// paper's twelve EC2 instances). Results are deterministic
	// regardless.
	Parallelism int
	// DwellSeconds is the virtual time spent on each landing page
	// (paper: 10 seconds of request recording).
	DwellSeconds int
	// IframeBias is the controller's preference for iframes over
	// cross-domain anchors (0: the 0.3 default; set NoIframes for a true
	// zero).
	IframeBias float64
	// NoIframes forces a zero iframe preference. The IframeBias zero
	// value selects the default bias, so an ablation explicitly
	// requesting no iframe preference must set this instead.
	NoIframes bool
	// Heuristics selects the element-matching heuristics (ablations).
	Heuristics Heuristics
	// DirectController bypasses the HTTP transport and calls the
	// controller in-process (used by ablation benchmarks; the default
	// crawl uses a real loopback HTTP server, like the paper).
	DirectController bool
	// Machine is the fingerprint surface shared by all four crawlers
	// (they run "on one machine", §3.5).
	Machine string
	// Machines, when > 1, spreads walks across that many crawl machines
	// (the paper's twelve EC2 instances, §3.8). All four crawlers of a
	// walk share one machine — the §3.5 condition — but fingerprint
	// surfaces differ across instances.
	Machines int
	// Telemetry, when non-nil, receives walk/step spans and crawl
	// counters and is handed down to every browser. Observation only;
	// nil costs nothing.
	Telemetry *telemetry.Telemetry
	// Retry is the navigation retry policy. The zero value performs no
	// retries (the pre-resilience behaviour); backoff is slept on the
	// virtual clock, so retries cost no wall time.
	Retry resilience.Policy
	// Breaker configures per-registered-domain circuit breakers; the
	// zero value disables them. Breaker short-circuiting is
	// schedule-dependent at Parallelism > 1 (like the real crawl);
	// dataset byte-determinism with breakers on holds at Parallelism 1.
	Breaker resilience.BreakerConfig
	// Checkpoint, when non-nil, records each completed walk and skips
	// walks it already holds, so interrupted crawls resume without
	// redoing finished work.
	Checkpoint *Checkpoint `json:"-"`
	// BackoffSleep, when non-nil, is additionally invoked with every
	// backoff delay — a wall-clock hook tests use to prove that
	// schedules perturbed only in real time leave results identical.
	BackoffSleep func(time.Duration) `json:"-"`
	// OnWalkComplete, when non-nil, is invoked after each walk is
	// recorded (tests use it to cancel crawls at precise points).
	OnWalkComplete func(*Walk) `json:"-"`
	// WalkSink, when non-nil, receives every walk the crawl produces —
	// freshly completed, restored from the checkpoint, and skipped alike
	// — as soon as it enters the dataset, instead of the caller waiting
	// for the monolithic dataset. Completed walks are delivered from
	// their walk goroutines after checkpointing and OnWalkComplete; the
	// call may block, which is how the streaming engine's bounded
	// channel applies backpressure to the crawl. Runtime wiring.
	WalkSink func(*Walk) `json:"-"`
}

// withDefaults fills zero values.
func (cfg Config) withDefaults() Config {
	if cfg.StepsPerWalk <= 0 {
		cfg.StepsPerWalk = 10
	}
	if cfg.Walks <= 0 {
		cfg.Walks = len(cfg.Seeders)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.DwellSeconds <= 0 {
		cfg.DwellSeconds = 10
	}
	if cfg.NoIframes {
		cfg.IframeBias = 0
	} else if cfg.IframeBias == 0 {
		cfg.IframeBias = 0.3
	}
	if cfg.Heuristics == (Heuristics{}) {
		cfg.Heuristics = AllHeuristics
	}
	if cfg.Machine == "" {
		cfg.Machine = "crawl-machine-1"
	}
	return cfg
}

// crawlMetrics caches the crawl-layer instruments so hot paths skip the
// registry map. All fields are nil (and every method a no-op) when the
// crawl runs without telemetry.
type crawlMetrics struct {
	tel           *telemetry.Telemetry
	walksDone     *telemetry.Counter
	walksDegraded *telemetry.Counter
	walksResumed  *telemetry.Counter
	walksSkipped  *telemetry.Counter
	steps         *telemetry.Counter
	stepFailures  *telemetry.Counter
	clicks        *telemetry.Counter
	iframeClicks  *telemetry.Counter
	renavigations *telemetry.Counter
}

func newCrawlMetrics(t *telemetry.Telemetry) *crawlMetrics {
	reg := t.Registry()
	return &crawlMetrics{
		tel:           t,
		walksDone:     reg.Counter("crawler.walks_done"),
		walksDegraded: reg.Counter("crawler.walks_degraded"),
		walksResumed:  reg.Counter("crawler.walks_resumed"),
		walksSkipped:  reg.Counter("crawler.walks_skipped"),
		steps:         reg.Counter("crawler.steps"),
		stepFailures:  reg.Counter("crawler.step_failures"),
		clicks:        reg.Counter("crawler.clicks"),
		iframeClicks:  reg.Counter("crawler.iframe_clicks"),
		renavigations: reg.Counter("crawler.renavigations"),
	}
}

// finishStep closes a step span and bumps the step counters from the
// record's outcome.
func (cm *crawlMetrics) finishStep(sp *telemetry.Active, rec *CrawlerStep) {
	cm.steps.Inc()
	if rec.Fail != "" {
		cm.stepFailures.Inc()
		sp.EndErr(errors.New(rec.Fail))
		return
	}
	sp.End()
}

// Crawl runs the full measurement crawl and returns the dataset.
func Crawl(cfg Config) (*Dataset, error) {
	return CrawlContext(context.Background(), cfg)
}

// CrawlContext runs the crawl under ctx. Cancellation is graceful: no
// new walks launch, in-flight walks drain to completion (and are
// checkpointed), unstarted walks are marked Skipped, and the partial
// dataset is returned alongside ctx's error.
func CrawlContext(ctx context.Context, cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("crawler: Config.Network is required")
	}
	if len(cfg.Seeders) == 0 {
		return nil, errors.New("crawler: Config.Seeders is empty")
	}

	ctrl := NewController(cfg.Seed, cfg.Heuristics, cfg.IframeBias)
	var api API = ctrl
	if !cfg.DirectController {
		base, shutdown, err := ctrl.Serve()
		if err != nil {
			return nil, err
		}
		defer shutdown()
		api = NewHTTPClient(base)
	}

	cm := newCrawlMetrics(cfg.Telemetry)
	cfg.Telemetry.Registry().Gauge("crawler.walks_total").Set(int64(cfg.Walks))

	ledger := newClockLedger(cfg.Network.Clock(), cfg.Walks)
	ctrl.afterBarrier = ledger.drain

	rt := &retrier{
		seed:     cfg.Seed,
		policy:   cfg.Retry,
		clock:    cfg.Network.Clock(),
		ledger:   ledger,
		sleep:    cfg.BackoffSleep,
		m:        resilience.NewMetrics(cfg.Telemetry.Registry()),
		breakers: cfg.Network.Breakers(),
	}
	if cfg.Breaker.Enabled() && rt.breakers == nil {
		psl := publicsuffix.Default()
		rt.breakers = resilience.NewBreakerSet(cfg.Breaker, cfg.Network.Clock(), func(host string) string {
			if d := psl.RegisteredDomain(host); d != "" {
				return d
			}
			return host
		}, cfg.Telemetry.Registry())
		cfg.Network.SetBreakers(rt.breakers)
	}

	// Resume: restore the virtual clock to the furthest instant the
	// interrupted crawl reached, so continued walks replay the
	// uninterrupted schedule (exactly, at Parallelism 1).
	if t := cfg.Checkpoint.MaxClock(); !t.IsZero() {
		cfg.Network.Clock().AdvanceTo(t)
	}

	// Work-stealing dispatch: a fixed pool of Parallelism workers claims
	// walk indices from a shared atomic counter. Compared with the old
	// goroutine-per-walk + semaphore scheme this spawns min(P, walks)
	// goroutines instead of one per walk, never blocks a dispatcher
	// goroutine on a semaphore, and lets a worker that finishes (or hits
	// a checkpoint-resumed walk) immediately steal the next index.
	// Determinism is untouched: every walk still lands in its pre-sized
	// ds.Walks[idx] slot, and all intra-walk virtual time flows through
	// the clockLedger's rendezvous barriers exactly as before.
	ds := &Dataset{Seed: cfg.Seed, Crawlers: AllCrawlers, Walks: make([]*Walk, cfg.Walks)}
	workers := cfg.Parallelism
	if workers > cfg.Walks {
		workers = cfg.Walks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= cfg.Walks {
					return
				}
				seeder := cfg.Seeders[idx%len(cfg.Seeders)]
				if w := cfg.Checkpoint.Completed(idx); w != nil {
					ds.Walks[idx] = w
					cm.walksResumed.Inc()
					cm.walksDone.Inc()
					if cfg.WalkSink != nil {
						cfg.WalkSink(w)
					}
					continue
				}
				if ctx.Err() != nil {
					w := &Walk{Index: idx, Seeder: seeder, Skipped: true}
					ds.Walks[idx] = w
					cm.walksSkipped.Inc()
					if cfg.WalkSink != nil {
						cfg.WalkSink(w)
					}
					continue
				}
				wcfg := cfg
				if cfg.Machines > 1 {
					wcfg.Machine = fmt.Sprintf("%s-inst%d", cfg.Machine, idx%cfg.Machines)
				}
				sp := cm.tel.StartSpan("crawler", "walk").
					Attr("walk", strconv.Itoa(idx)).Attr("seeder", seeder)
				w := runWalk(wcfg, api, idx, seeder, cm, rt)
				ds.Walks[idx] = w
				if w.Ended != "" {
					sp.Attr("ended", string(w.Ended))
				}
				sp.Attr("steps", strconv.Itoa(len(w.Steps))).End()
				cm.walksDone.Inc()
				if err := cfg.Checkpoint.Record(idx, cfg.Network.Clock().Now(), w); err != nil {
					w.Degraded = appendReason(w.Degraded, "checkpoint: "+err.Error())
				}
				if cfg.OnWalkComplete != nil {
					cfg.OnWalkComplete(w)
				}
				if cfg.WalkSink != nil {
					cfg.WalkSink(w)
				}
			}
		}()
	}
	wg.Wait()
	return ds, ctx.Err()
}

// clockLedger makes intra-walk virtual time schedule-independent. The
// three crawlers of a walk run concurrently and each owes the clock
// time — dwell after every landing, backoff between retry attempts. If
// each goroutine advanced the shared clock directly, the timestamps its
// peers stamp on in-flight requests would depend on goroutine
// interleaving and no two runs would produce byte-identical datasets.
// Instead, advances are deposited into a per-walk pending account and
// applied ("drained") only at points where no crawler of the walk is
// mid-request: inside the controller's rendezvous (the completing
// arrival drains while its peers are still blocked in their Submit
// calls) and at end of walk. The total time applied is the sum of
// deposits — commutative, hence identical under any schedule.
type clockLedger struct {
	clock   resilience.Clock
	pending []atomic.Int64
}

func newClockLedger(clock resilience.Clock, walks int) *clockLedger {
	return &clockLedger{clock: clock, pending: make([]atomic.Int64, walks)}
}

// drain applies a walk's pending time to the real clock.
func (l *clockLedger) drain(walk int) {
	if l == nil || walk < 0 || walk >= len(l.pending) {
		return
	}
	if d := l.pending[walk].Swap(0); d > 0 {
		l.clock.Advance(time.Duration(d))
	}
}

// walkClock is the resilience.Clock handed to one walk's crawlers:
// Advance defers into the walk's ledger account instead of moving the
// shared clock.
type walkClock struct {
	l    *clockLedger
	walk int
}

func (c walkClock) Now() time.Time { return c.l.clock.Now() }

func (c walkClock) Advance(d time.Duration) time.Time {
	if d > 0 {
		c.l.pending[c.walk].Add(int64(d))
	}
	return c.l.clock.Now()
}

// appendReason joins quarantine notes.
func appendReason(existing, add string) string {
	if existing == "" {
		return add
	}
	return existing + "; " + add
}

// retrier runs navigations under the crawl's retry policy and reports
// whole-sequence outcomes to the circuit breakers. Breaker state thus
// advances only on sequence boundaries — a transient domain that
// recovers within its sequence can never trip a breaker, keeping breaker
// decisions independent of how concurrent walks interleave.
type retrier struct {
	seed     int64
	policy   resilience.Policy
	clock    resilience.Clock
	ledger   *clockLedger
	sleep    func(time.Duration)
	m        *resilience.Metrics
	breakers *resilience.BreakerSet
}

// forWalk returns a copy whose clock defers advances into the walk's
// ledger account, so backoff sleeps never race against peer crawlers'
// request timestamps.
func (rt *retrier) forWalk(walk int) *retrier {
	if rt.ledger == nil {
		return rt
	}
	cp := *rt
	cp.clock = walkClock{l: rt.ledger, walk: walk}
	return &cp
}

// do runs op (which must return the page it produced) under the retry
// policy, stamping the attempt index on the browser for the fault
// injector, and reports the sequence outcome to the breakers.
func (rt *retrier) do(b *browser.Browser, key string, op func() (*browser.Page, error)) (*browser.Page, error) {
	var page *browser.Page
	err := resilience.Do(nil, rt.clock, rt.seed, key, rt.policy, rt.sleep, rt.m, func(attempt int) error {
		b.SetAttempt(attempt)
		defer b.SetAttempt(0)
		p, err := op()
		if err == nil {
			page = p
		}
		return err
	})
	rt.report(page, err)
	return page, err
}

// navigate is Browser.Navigate under policy.
func (rt *retrier) navigate(b *browser.Browser, key, rawURL, referer string) (*browser.Page, error) {
	return rt.do(b, key, func() (*browser.Page, error) { return b.Navigate(rawURL, referer) })
}

// click is Browser.Click under policy.
func (rt *retrier) click(b *browser.Browser, key string, page *browser.Page, index int) (*browser.Page, error) {
	return rt.do(b, key, func() (*browser.Page, error) { return b.Click(page, index) })
}

// report feeds one sequence outcome to the breakers: the landed host on
// success, the unreachable host on transport failure. Click-logic
// failures say nothing about a domain's health, and breaker rejections
// must not re-count the failure that opened the breaker.
func (rt *retrier) report(page *browser.Page, err error) {
	if rt.breakers == nil {
		return
	}
	if err == nil {
		if page != nil {
			rt.breakers.ReportHost(page.URL.Hostname(), nil)
		}
		return
	}
	if resilience.IsBreakerOpen(err) || !isConnectError(err) {
		return
	}
	var nav *browser.NavError
	if errors.As(err, &nav) && nav.URL != "" {
		if u, perr := url.Parse(nav.URL); perr == nil && u.Hostname() != "" {
			rt.breakers.ReportHost(u.Hostname(), err)
		}
	}
}

// uaFor returns the spoofed User-Agent for a crawler (§3.4).
func uaFor(name string) string {
	if name == Chrome3 {
		return browser.DefaultChromeUA
	}
	return browser.DefaultSafariUA
}

// policyFor returns the storage policy: the Safari crawlers simulate
// partitioned storage; Chrome-3 runs with third-party cookies disabled
// (§3.4, §3.5).
func policyFor(name string) storage.Policy {
	if name == Chrome3 {
		return storage.Blocked
	}
	return storage.Partitioned
}

// walkState is the shared per-walk collector.
type walkState struct {
	mu   sync.Mutex
	walk *Walk
}

func (ws *walkState) putSeed(name string, rec *CrawlerStep) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.walk.SeedLoad[name] = rec
}

func (ws *walkState) putStep(stepIdx int, name string, rec *CrawlerStep) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for len(ws.walk.Steps) < stepIdx {
		ws.walk.Steps = append(ws.walk.Steps, &Step{
			Walk:    ws.walk.Index,
			Index:   len(ws.walk.Steps) + 1,
			Records: make(map[string]*CrawlerStep),
		})
	}
	ws.walk.Steps[stepIdx-1].Records[name] = rec
}

// degrade quarantines the walk with a reason instead of letting it
// abort silently.
func (ws *walkState) degrade(reason string) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.walk.Degraded = appendReason(ws.walk.Degraded, reason)
}

// runWalk executes one walk: three synchronized crawler goroutines, with
// Safari-1R trailing Safari-1 inside its goroutine.
func runWalk(cfg Config, api API, idx int, seeder string, cm *crawlMetrics, rt *retrier) *Walk {
	w := &Walk{Index: idx, Seeder: seeder, SeedLoad: make(map[string]*CrawlerStep)}
	ws := &walkState{walk: w}
	rt = rt.forWalk(idx)

	newBrowser := func(name string) *browser.Browser {
		return browser.New(browser.Config{
			Seed:      cfg.Seed,
			ProfileID: fmt.Sprintf("w%d-%s", idx, ProfileOf(name)),
			ClientID:  fmt.Sprintf("w%d-%s", idx, name),
			Machine:   cfg.Machine,
			UserAgent: uaFor(name),
			Policy:    policyFor(name),
			Network:   cfg.Network,
			Telemetry: cfg.Telemetry,
		})
	}

	var wg sync.WaitGroup
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			// Quarantine, don't crash: a panicking crawler degrades its
			// walk; its peers drain via the controller's barrier timeout.
			defer func() {
				if p := recover(); p != nil {
					ws.degrade(fmt.Sprintf("panic in %s: %v", name, p))
				}
			}()
			r := &walkRunner{
				cfg:  cfg,
				api:  api,
				ws:   ws,
				walk: idx,
				name: name,
				b:    newBrowser(name),
				cm:   cm,
				rt:   rt,
			}
			if name == Safari1 {
				r.trailer = &trailRunner{
					cfg:  cfg,
					ws:   ws,
					walk: idx,
					b:    newBrowser(Safari1R),
					cm:   cm,
					rt:   rt,
				}
			}
			r.run(seeder)
		}(name)
	}
	wg.Wait()
	// Apply any virtual time still owed (e.g. the last step's dwell, or
	// backoff from a crawler that exited after the final rendezvous)
	// before the walk is checkpointed.
	rt.ledger.drain(idx)

	// Derive step outcomes and the walk's end reason.
	for _, s := range w.Steps {
		s.Outcome = deriveOutcome(s)
	}
	if n := len(w.Steps); n > 0 {
		if last := w.Steps[n-1]; last.Outcome != OutcomeOK {
			w.Ended = last.Outcome
		}
	}
	// A walk cut short by exhausted transport failures is quarantined
	// with the failing crawler's reason rather than ending silently.
	if w.Ended == OutcomeConnectError {
		last := w.Steps[len(w.Steps)-1]
		for _, name := range ParallelCrawlers {
			if rec := last.Records[name]; rec != nil && strings.HasPrefix(rec.Fail, "connect:") {
				w.Degraded = appendReason(w.Degraded, fmt.Sprintf("step %d %s: %s", last.Index, name, rec.Fail))
				break
			}
		}
	}
	if w.Degraded != "" {
		cm.walksDegraded.Inc()
	}
	return w
}

// deriveOutcome classifies a merged step from the parallel crawlers'
// records.
func deriveOutcome(s *Step) StepOutcome {
	connect, clickFail, noMatch, landed := 0, 0, 0, 0
	hosts := map[string]bool{}
	for _, name := range ParallelCrawlers {
		rec := s.Records[name]
		if rec == nil {
			continue
		}
		switch {
		case strings.HasPrefix(rec.Fail, "connect:"):
			connect++
		case rec.Fail == "no common element":
			noMatch++
		case rec.Fail != "":
			clickFail++
		default:
			landed++
			if u, err := url.Parse(rec.LandedURL); err == nil {
				hosts[u.Hostname()] = true
			}
		}
	}
	switch {
	case connect > 0:
		return OutcomeConnectError
	case noMatch > 0:
		return OutcomeNoCommonElement
	case clickFail > 0:
		return OutcomeClickFailed
	case landed == len(ParallelCrawlers) && len(hosts) == 1:
		return OutcomeOK
	default:
		return OutcomeDivergent
	}
}

// walkRunner is one parallel crawler's walk execution.
type walkRunner struct {
	cfg     Config
	api     API
	ws      *walkState
	walk    int
	name    string
	b       *browser.Browser
	trailer *trailRunner
	cm      *crawlMetrics
	rt      *retrier
}

// snapshot records the first-party storage of a page.
func (r *walkRunner) snapshot(b *browser.Browser, pageURL string) Snapshot {
	return takeSnapshot(b, pageURL)
}

func takeSnapshot(b *browser.Browser, pageURL string) Snapshot {
	u, err := url.Parse(pageURL)
	if err != nil {
		return Snapshot{URL: pageURL}
	}
	host := u.Hostname()
	snap := Snapshot{URL: pageURL, Local: b.Store().FirstPartyLocal(host)}
	// Snapshot at the virtual epoch so no cookie is hidden by expiry; the
	// records carry real creation/expiry times for lifetime analysis.
	for _, c := range b.Store().FirstPartyCookies(host, netsim.Epoch) {
		snap.Cookies = append(snap.Cookies, CookieRecord{
			Name: c.Name, Value: c.Value, Domain: c.Domain,
			Created: c.Created, Expires: c.Expires,
		})
	}
	return snap
}

// run executes the walk for this crawler.
func (r *walkRunner) run(seeder string) {
	seedURL := "http://" + seeder + "/"
	page, err := r.rt.navigate(r.b, fmt.Sprintf("seed/%d/%s", r.walk, r.name), seedURL, "")
	seedRec := &CrawlerStep{
		Crawler:  r.name,
		Profile:  ProfileOf(r.name),
		StartURL: seedURL,
		Requests: r.b.Requests(),
	}
	// lastNavErr is the navigation failure that most recently left this
	// crawler without a live page; steps that start with page == nil
	// derive their failure from it (their own state, not a variable
	// captured from the seed navigation steps earlier).
	var lastNavErr error
	if err != nil {
		seedRec.Fail = "connect: " + err.Error()
		lastNavErr = err
	} else {
		seedRec.LandedURL = page.URL.String()
		seedRec.After = r.snapshot(r.b, page.URL.String())
	}
	r.ws.putSeed(r.name, seedRec)
	if r.trailer != nil {
		r.trailer.repeatSeed(seedURL)
	}

	for step := 1; step <= r.cfg.StepsPerWalk; step++ {
		sp := r.cm.tel.StartSpan("crawler", "step").
			Attr("crawler", r.name).
			Attr("walk", strconv.Itoa(r.walk)).
			Attr("step", strconv.Itoa(step))
		rec := &CrawlerStep{
			Crawler:    r.name,
			Profile:    ProfileOf(r.name),
			ClickIndex: -1,
		}
		var els []Element
		var clickables []browser.Clickable
		if page != nil {
			rec.StartURL = page.URL.String()
			rec.Before = r.snapshot(r.b, page.URL.String())
			clickables = r.b.Clickables(page)
			els = make([]Element, 0, len(clickables))
			for _, c := range clickables {
				els = append(els, elementFrom(c, r.b.CrossDomain(page, c)))
			}
		} else if lastNavErr != nil {
			rec.Fail = "connect: " + lastNavErr.Error()
		} else {
			rec.Fail = "connect: no live page"
		}

		dec, derr := r.api.SubmitElements(r.walk, step, r.name, els)
		if derr != nil {
			rec.Fail = "controller: " + derr.Error()
			r.ws.putStep(step, r.name, rec)
			r.cm.finishStep(sp, rec)
			return
		}
		if !dec.Found {
			// A crawler with no page submitted an empty list, which
			// guarantees no match for everyone — so all three crawlers
			// take this branch together and nobody waits at the landing
			// rendezvous.
			if page != nil {
				rec.Fail = "no common element"
			}
			r.ws.putStep(step, r.name, rec)
			r.cm.finishStep(sp, rec)
			// Safari-1R records the trailing failure in both branches:
			// "no common element" when Safari-1 had a page, the connect
			// failure when it did not — so the repeat-crawler dataset
			// has no holes.
			if r.trailer != nil {
				if page != nil {
					r.trailer.recordFail(step, "no common element")
				} else {
					r.trailer.recordFail(step, rec.Fail)
				}
			}
			return
		}

		rec.ClickIndex = dec.Index
		if dec.Index >= 0 && dec.Index < len(els) {
			e := els[dec.Index]
			rec.Clicked = &e
		}
		r.cm.clicks.Inc()
		if rec.Clicked != nil && rec.Clicked.Kind == "iframe" {
			r.cm.iframeClicks.Inc()
		}
		r.b.ResetRequests()
		next, cerr := r.rt.click(r.b, fmt.Sprintf("click/%d/%d/%s", r.walk, step, r.name), page, dec.Index)
		fqdn := ""
		if cerr != nil {
			if isConnectError(cerr) {
				rec.Fail = "connect: " + cerr.Error()
				lastNavErr = cerr
			} else {
				rec.Fail = "click: " + cerr.Error()
			}
			var nav *browser.NavError
			if errors.As(cerr, &nav) {
				rec.NavChain = nav.Chain
			}
			rec.Requests = r.b.Requests()
		} else {
			// Dwell is deferred into the walk ledger; the landing
			// rendezvous applies it once no peer is mid-request.
			r.rt.clock.Advance(time.Duration(r.cfg.DwellSeconds) * time.Second)
			rec.NavChain = next.Chain
			rec.LandedURL = next.URL.String()
			rec.Requests = r.b.Requests()
			rec.After = r.snapshot(r.b, next.URL.String())
			fqdn = next.URL.Hostname()
		}

		land, lerr := r.api.SubmitLanding(r.walk, step, r.name, fqdn)
		if fqdn != "" {
			sp.Attr("host", fqdn)
		}
		r.ws.putStep(step, r.name, rec)
		r.cm.finishStep(sp, rec)

		// Safari-1R repeats the step right after Safari-1 finishes it
		// (§3.2).
		if r.trailer != nil && rec.Clicked != nil {
			r.trailer.repeatStep(step, rec.StartURL, els, dec.Index)
		}

		if lerr != nil || cerr != nil || !land.Synchronized {
			return
		}
		page = next
	}
}

// sameURLSansQuery compares two URLs by host and path, ignoring query
// strings: the repeat crawler's landing URL legitimately differs from
// Safari-1's by its own UID values.
func sameURLSansQuery(a, b string) bool {
	ua, erra := url.Parse(a)
	ub, errb := url.Parse(b)
	if erra != nil || errb != nil {
		return a == b
	}
	return ua.Host == ub.Host && ua.Path == ub.Path
}

// isConnectError distinguishes transport failures from click logic
// failures.
func isConnectError(err error) bool {
	var nav *browser.NavError
	if errors.As(err, &nav) {
		var nt *browser.ErrNoTarget
		return !errors.As(err, &nt)
	}
	return false
}

// trailRunner is Safari-1R: it repeats each of Safari-1's steps with the
// same user profile, providing the repeat observations that separate
// session IDs from UIDs (§3.7.1).
type trailRunner struct {
	cfg  Config
	ws   *walkState
	walk int
	b    *browser.Browser
	page *browser.Page
	cm   *crawlMetrics
	rt   *retrier
}

func (t *trailRunner) repeatSeed(seedURL string) {
	page, err := t.rt.navigate(t.b, fmt.Sprintf("seed/%d/%s", t.walk, Safari1R), seedURL, "")
	rec := &CrawlerStep{
		Crawler:  Safari1R,
		Profile:  ProfileOf(Safari1R),
		StartURL: seedURL,
		Requests: t.b.Requests(),
	}
	if err != nil {
		rec.Fail = "connect: " + err.Error()
	} else {
		rec.LandedURL = page.URL.String()
		rec.After = takeSnapshot(t.b, page.URL.String())
		t.page = page
	}
	t.ws.putSeed(Safari1R, rec)
}

func (t *trailRunner) recordFail(step int, reason string) {
	rec := &CrawlerStep{Crawler: Safari1R, Profile: ProfileOf(Safari1R), ClickIndex: -1, Fail: reason}
	if t.page != nil {
		rec.StartURL = t.page.URL.String()
	}
	t.ws.putStep(step, Safari1R, rec)
}

// repeatStep finds Safari-1's clicked element on the repeat crawler's own
// page instance and clicks it. The two element lists are aligned in
// document order with the same matching heuristics the controller uses —
// matching the single clicked element in isolation would confuse
// same-sized anchors, since heuristic 2 ignores the y-coordinate. The
// repeat crawler repeats Safari-1's step, not its own history: if it
// drifted — say its previous ad click landed on a different site — it
// first re-navigates to Safari-1's start URL (its profile storage
// persists, so the revisit observations stay valid).
func (t *trailRunner) repeatStep(step int, startURL string, s1Elements []Element, clickedIdx int) {
	rec := &CrawlerStep{Crawler: Safari1R, Profile: ProfileOf(Safari1R), ClickIndex: -1}
	if t.page == nil || (startURL != "" && !sameURLSansQuery(t.page.URL.String(), startURL)) {
		t.cm.renavigations.Inc()
		page, err := t.rt.navigate(t.b, fmt.Sprintf("renav/%d/%d/%s", t.walk, step, Safari1R), startURL, "")
		if err != nil {
			rec.Fail = "connect: " + err.Error()
			rec.StartURL = startURL
			t.ws.putStep(step, Safari1R, rec)
			t.page = nil
			return
		}
		t.page = page
	}
	rec.StartURL = t.page.URL.String()
	rec.Before = takeSnapshot(t.b, t.page.URL.String())

	cs := t.b.Clickables(t.page)
	own := make([]Element, 0, len(cs))
	for _, c := range cs {
		own = append(own, elementFrom(c, false))
	}
	match := -1
	if aligned := MatchPair(s1Elements, own, AllHeuristics); clickedIdx >= 0 && clickedIdx < len(aligned) {
		match = aligned[clickedIdx]
	}
	if match < 0 {
		rec.Fail = "repeat: element not found"
		t.ws.putStep(step, Safari1R, rec)
		t.page = nil
		return
	}
	rec.ClickIndex = match
	t.b.ResetRequests()
	next, err := t.rt.click(t.b, fmt.Sprintf("click/%d/%d/%s", t.walk, step, Safari1R), t.page, match)
	if err != nil {
		rec.Fail = "click: " + err.Error()
		rec.Requests = t.b.Requests()
		t.ws.putStep(step, Safari1R, rec)
		t.page = nil
		return
	}
	t.rt.clock.Advance(time.Duration(t.cfg.DwellSeconds) * time.Second)
	rec.NavChain = next.Chain
	rec.LandedURL = next.URL.String()
	rec.Requests = t.b.Requests()
	rec.After = takeSnapshot(t.b, next.URL.String())
	t.ws.putStep(step, Safari1R, rec)
	t.page = next
}
