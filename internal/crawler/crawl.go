package crawler

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/telemetry"
)

// Config configures a crawl.
type Config struct {
	// Seed drives the controller's choices and must match the world's
	// seed so client-side scripts derive the same identifiers as the
	// servers.
	Seed int64
	// Network is the (synthetic) web to crawl.
	Network *netsim.Network
	// Seeders are the walk starting domains, most popular first (the
	// Tranco list of §3.1).
	Seeders []string
	// Walks is the number of random walks; walk i starts at
	// Seeders[i mod len].
	Walks int
	// StepsPerWalk is the walk length (paper: 10).
	StepsPerWalk int
	// Parallelism is the number of walks crawled concurrently (the
	// paper's twelve EC2 instances). Results are deterministic
	// regardless.
	Parallelism int
	// DwellSeconds is the virtual time spent on each landing page
	// (paper: 10 seconds of request recording).
	DwellSeconds int
	// IframeBias is the controller's preference for iframes over
	// cross-domain anchors (0: the 0.3 default; set NoIframes for a true
	// zero).
	IframeBias float64
	// NoIframes forces a zero iframe preference. The IframeBias zero
	// value selects the default bias, so an ablation explicitly
	// requesting no iframe preference must set this instead.
	NoIframes bool
	// Heuristics selects the element-matching heuristics (ablations).
	Heuristics Heuristics
	// DirectController bypasses the HTTP transport and calls the
	// controller in-process (used by ablation benchmarks; the default
	// crawl uses a real loopback HTTP server, like the paper).
	DirectController bool
	// Machine is the fingerprint surface shared by all four crawlers
	// (they run "on one machine", §3.5).
	Machine string
	// Machines, when > 1, spreads walks across that many crawl machines
	// (the paper's twelve EC2 instances, §3.8). All four crawlers of a
	// walk share one machine — the §3.5 condition — but fingerprint
	// surfaces differ across instances.
	Machines int
	// Telemetry, when non-nil, receives walk/step spans and crawl
	// counters and is handed down to every browser. Observation only;
	// nil costs nothing.
	Telemetry *telemetry.Telemetry
}

// withDefaults fills zero values.
func (cfg Config) withDefaults() Config {
	if cfg.StepsPerWalk <= 0 {
		cfg.StepsPerWalk = 10
	}
	if cfg.Walks <= 0 {
		cfg.Walks = len(cfg.Seeders)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.DwellSeconds <= 0 {
		cfg.DwellSeconds = 10
	}
	if cfg.NoIframes {
		cfg.IframeBias = 0
	} else if cfg.IframeBias == 0 {
		cfg.IframeBias = 0.3
	}
	if cfg.Heuristics == (Heuristics{}) {
		cfg.Heuristics = AllHeuristics
	}
	if cfg.Machine == "" {
		cfg.Machine = "crawl-machine-1"
	}
	return cfg
}

// crawlMetrics caches the crawl-layer instruments so hot paths skip the
// registry map. All fields are nil (and every method a no-op) when the
// crawl runs without telemetry.
type crawlMetrics struct {
	tel           *telemetry.Telemetry
	walksDone     *telemetry.Counter
	steps         *telemetry.Counter
	stepFailures  *telemetry.Counter
	clicks        *telemetry.Counter
	iframeClicks  *telemetry.Counter
	renavigations *telemetry.Counter
}

func newCrawlMetrics(t *telemetry.Telemetry) *crawlMetrics {
	reg := t.Registry()
	return &crawlMetrics{
		tel:           t,
		walksDone:     reg.Counter("crawler.walks_done"),
		steps:         reg.Counter("crawler.steps"),
		stepFailures:  reg.Counter("crawler.step_failures"),
		clicks:        reg.Counter("crawler.clicks"),
		iframeClicks:  reg.Counter("crawler.iframe_clicks"),
		renavigations: reg.Counter("crawler.renavigations"),
	}
}

// finishStep closes a step span and bumps the step counters from the
// record's outcome.
func (cm *crawlMetrics) finishStep(sp *telemetry.Active, rec *CrawlerStep) {
	cm.steps.Inc()
	if rec.Fail != "" {
		cm.stepFailures.Inc()
		sp.EndErr(errors.New(rec.Fail))
		return
	}
	sp.End()
}

// Crawl runs the full measurement crawl and returns the dataset.
func Crawl(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("crawler: Config.Network is required")
	}
	if len(cfg.Seeders) == 0 {
		return nil, errors.New("crawler: Config.Seeders is empty")
	}

	ctrl := NewController(cfg.Seed, cfg.Heuristics, cfg.IframeBias)
	var api API = ctrl
	if !cfg.DirectController {
		base, shutdown, err := ctrl.Serve()
		if err != nil {
			return nil, err
		}
		defer shutdown()
		api = NewHTTPClient(base)
	}

	cm := newCrawlMetrics(cfg.Telemetry)
	cfg.Telemetry.Registry().Gauge("crawler.walks_total").Set(int64(cfg.Walks))

	ds := &Dataset{Seed: cfg.Seed, Crawlers: AllCrawlers, Walks: make([]*Walk, cfg.Walks)}
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Walks; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			seeder := cfg.Seeders[idx%len(cfg.Seeders)]
			wcfg := cfg
			if cfg.Machines > 1 {
				wcfg.Machine = fmt.Sprintf("%s-inst%d", cfg.Machine, idx%cfg.Machines)
			}
			sp := cm.tel.StartSpan("crawler", "walk").
				Attr("walk", strconv.Itoa(idx)).Attr("seeder", seeder)
			w := runWalk(wcfg, api, idx, seeder, cm)
			ds.Walks[idx] = w
			if w.Ended != "" {
				sp.Attr("ended", string(w.Ended))
			}
			sp.Attr("steps", strconv.Itoa(len(w.Steps))).End()
			cm.walksDone.Inc()
		}(i)
	}
	wg.Wait()
	return ds, nil
}

// uaFor returns the spoofed User-Agent for a crawler (§3.4).
func uaFor(name string) string {
	if name == Chrome3 {
		return browser.DefaultChromeUA
	}
	return browser.DefaultSafariUA
}

// policyFor returns the storage policy: the Safari crawlers simulate
// partitioned storage; Chrome-3 runs with third-party cookies disabled
// (§3.4, §3.5).
func policyFor(name string) storage.Policy {
	if name == Chrome3 {
		return storage.Blocked
	}
	return storage.Partitioned
}

// walkState is the shared per-walk collector.
type walkState struct {
	mu   sync.Mutex
	walk *Walk
}

func (ws *walkState) putSeed(name string, rec *CrawlerStep) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.walk.SeedLoad[name] = rec
}

func (ws *walkState) putStep(stepIdx int, name string, rec *CrawlerStep) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for len(ws.walk.Steps) < stepIdx {
		ws.walk.Steps = append(ws.walk.Steps, &Step{
			Walk:    ws.walk.Index,
			Index:   len(ws.walk.Steps) + 1,
			Records: make(map[string]*CrawlerStep),
		})
	}
	ws.walk.Steps[stepIdx-1].Records[name] = rec
}

// runWalk executes one walk: three synchronized crawler goroutines, with
// Safari-1R trailing Safari-1 inside its goroutine.
func runWalk(cfg Config, api API, idx int, seeder string, cm *crawlMetrics) *Walk {
	w := &Walk{Index: idx, Seeder: seeder, SeedLoad: make(map[string]*CrawlerStep)}
	ws := &walkState{walk: w}

	newBrowser := func(name string) *browser.Browser {
		return browser.New(browser.Config{
			Seed:      cfg.Seed,
			ProfileID: fmt.Sprintf("w%d-%s", idx, ProfileOf(name)),
			ClientID:  fmt.Sprintf("w%d-%s", idx, name),
			Machine:   cfg.Machine,
			UserAgent: uaFor(name),
			Policy:    policyFor(name),
			Network:   cfg.Network,
			Telemetry: cfg.Telemetry,
		})
	}

	var wg sync.WaitGroup
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r := &walkRunner{
				cfg:  cfg,
				api:  api,
				ws:   ws,
				walk: idx,
				name: name,
				b:    newBrowser(name),
				cm:   cm,
			}
			if name == Safari1 {
				r.trailer = &trailRunner{
					cfg:  cfg,
					ws:   ws,
					walk: idx,
					b:    newBrowser(Safari1R),
					cm:   cm,
				}
			}
			r.run(seeder)
		}(name)
	}
	wg.Wait()

	// Derive step outcomes and the walk's end reason.
	for _, s := range w.Steps {
		s.Outcome = deriveOutcome(s)
	}
	if n := len(w.Steps); n > 0 {
		if last := w.Steps[n-1]; last.Outcome != OutcomeOK {
			w.Ended = last.Outcome
		}
	}
	return w
}

// deriveOutcome classifies a merged step from the parallel crawlers'
// records.
func deriveOutcome(s *Step) StepOutcome {
	connect, clickFail, noMatch, landed := 0, 0, 0, 0
	hosts := map[string]bool{}
	for _, name := range ParallelCrawlers {
		rec := s.Records[name]
		if rec == nil {
			continue
		}
		switch {
		case strings.HasPrefix(rec.Fail, "connect:"):
			connect++
		case rec.Fail == "no common element":
			noMatch++
		case rec.Fail != "":
			clickFail++
		default:
			landed++
			if u, err := url.Parse(rec.LandedURL); err == nil {
				hosts[u.Hostname()] = true
			}
		}
	}
	switch {
	case connect > 0:
		return OutcomeConnectError
	case noMatch > 0:
		return OutcomeNoCommonElement
	case clickFail > 0:
		return OutcomeClickFailed
	case landed == len(ParallelCrawlers) && len(hosts) == 1:
		return OutcomeOK
	default:
		return OutcomeDivergent
	}
}

// walkRunner is one parallel crawler's walk execution.
type walkRunner struct {
	cfg     Config
	api     API
	ws      *walkState
	walk    int
	name    string
	b       *browser.Browser
	trailer *trailRunner
	cm      *crawlMetrics
}

// snapshot records the first-party storage of a page.
func (r *walkRunner) snapshot(b *browser.Browser, pageURL string) Snapshot {
	return takeSnapshot(b, pageURL)
}

func takeSnapshot(b *browser.Browser, pageURL string) Snapshot {
	u, err := url.Parse(pageURL)
	if err != nil {
		return Snapshot{URL: pageURL}
	}
	host := u.Hostname()
	snap := Snapshot{URL: pageURL, Local: b.Store().FirstPartyLocal(host)}
	// Snapshot at the virtual epoch so no cookie is hidden by expiry; the
	// records carry real creation/expiry times for lifetime analysis.
	for _, c := range b.Store().FirstPartyCookies(host, netsim.Epoch) {
		snap.Cookies = append(snap.Cookies, CookieRecord{
			Name: c.Name, Value: c.Value, Domain: c.Domain,
			Created: c.Created, Expires: c.Expires,
		})
	}
	return snap
}

// run executes the walk for this crawler.
func (r *walkRunner) run(seeder string) {
	seedURL := "http://" + seeder + "/"
	page, err := r.b.Navigate(seedURL, "")
	seedRec := &CrawlerStep{
		Crawler:  r.name,
		Profile:  ProfileOf(r.name),
		StartURL: seedURL,
		Requests: r.b.Requests(),
	}
	if err != nil {
		seedRec.Fail = "connect: " + err.Error()
	} else {
		seedRec.LandedURL = page.URL.String()
		seedRec.After = r.snapshot(r.b, page.URL.String())
	}
	r.ws.putSeed(r.name, seedRec)
	if r.trailer != nil {
		r.trailer.repeatSeed(seedURL)
	}

	for step := 1; step <= r.cfg.StepsPerWalk; step++ {
		sp := r.cm.tel.StartSpan("crawler", "step").
			Attr("crawler", r.name).
			Attr("walk", strconv.Itoa(r.walk)).
			Attr("step", strconv.Itoa(step))
		rec := &CrawlerStep{
			Crawler:    r.name,
			Profile:    ProfileOf(r.name),
			ClickIndex: -1,
		}
		var els []Element
		var clickables []browser.Clickable
		if page != nil {
			rec.StartURL = page.URL.String()
			rec.Before = r.snapshot(r.b, page.URL.String())
			clickables = r.b.Clickables(page)
			for _, c := range clickables {
				els = append(els, elementFrom(c, r.b.CrossDomain(page, c)))
			}
		} else {
			rec.Fail = "connect: " + err.Error()
		}

		dec, derr := r.api.SubmitElements(r.walk, step, r.name, els)
		if derr != nil {
			rec.Fail = "controller: " + derr.Error()
			r.ws.putStep(step, r.name, rec)
			r.cm.finishStep(sp, rec)
			return
		}
		if !dec.Found {
			// A crawler with no page submitted an empty list, which
			// guarantees no match for everyone — so all three crawlers
			// take this branch together and nobody waits at the landing
			// rendezvous.
			if page != nil {
				rec.Fail = "no common element"
			}
			r.ws.putStep(step, r.name, rec)
			r.cm.finishStep(sp, rec)
			if r.trailer != nil && page != nil {
				r.trailer.recordFail(step, "no common element")
			}
			return
		}

		rec.ClickIndex = dec.Index
		if dec.Index >= 0 && dec.Index < len(els) {
			e := els[dec.Index]
			rec.Clicked = &e
		}
		r.cm.clicks.Inc()
		if rec.Clicked != nil && rec.Clicked.Kind == "iframe" {
			r.cm.iframeClicks.Inc()
		}
		r.b.ResetRequests()
		next, cerr := r.b.Click(page, dec.Index)
		fqdn := ""
		if cerr != nil {
			if isConnectError(cerr) {
				rec.Fail = "connect: " + cerr.Error()
			} else {
				rec.Fail = "click: " + cerr.Error()
			}
			var nav *browser.NavError
			if errors.As(cerr, &nav) {
				rec.NavChain = nav.Chain
			}
			rec.Requests = r.b.Requests()
		} else {
			r.cfg.Network.Clock().Advance(time.Duration(r.cfg.DwellSeconds) * time.Second)
			rec.NavChain = next.Chain
			rec.LandedURL = next.URL.String()
			rec.Requests = r.b.Requests()
			rec.After = r.snapshot(r.b, next.URL.String())
			fqdn = next.URL.Hostname()
		}

		land, lerr := r.api.SubmitLanding(r.walk, step, r.name, fqdn)
		if fqdn != "" {
			sp.Attr("host", fqdn)
		}
		r.ws.putStep(step, r.name, rec)
		r.cm.finishStep(sp, rec)

		// Safari-1R repeats the step right after Safari-1 finishes it
		// (§3.2).
		if r.trailer != nil && rec.Clicked != nil {
			r.trailer.repeatStep(step, rec.StartURL, els, dec.Index)
		}

		if lerr != nil || cerr != nil || !land.Synchronized {
			return
		}
		page = next
	}
}

// sameURLSansQuery compares two URLs by host and path, ignoring query
// strings: the repeat crawler's landing URL legitimately differs from
// Safari-1's by its own UID values.
func sameURLSansQuery(a, b string) bool {
	ua, erra := url.Parse(a)
	ub, errb := url.Parse(b)
	if erra != nil || errb != nil {
		return a == b
	}
	return ua.Host == ub.Host && ua.Path == ub.Path
}

// isConnectError distinguishes transport failures from click logic
// failures.
func isConnectError(err error) bool {
	var nav *browser.NavError
	if errors.As(err, &nav) {
		var nt *browser.ErrNoTarget
		return !errors.As(err, &nt)
	}
	return false
}

// trailRunner is Safari-1R: it repeats each of Safari-1's steps with the
// same user profile, providing the repeat observations that separate
// session IDs from UIDs (§3.7.1).
type trailRunner struct {
	cfg  Config
	ws   *walkState
	walk int
	b    *browser.Browser
	page *browser.Page
	cm   *crawlMetrics
}

func (t *trailRunner) repeatSeed(seedURL string) {
	page, err := t.b.Navigate(seedURL, "")
	rec := &CrawlerStep{
		Crawler:  Safari1R,
		Profile:  ProfileOf(Safari1R),
		StartURL: seedURL,
		Requests: t.b.Requests(),
	}
	if err != nil {
		rec.Fail = "connect: " + err.Error()
	} else {
		rec.LandedURL = page.URL.String()
		rec.After = takeSnapshot(t.b, page.URL.String())
		t.page = page
	}
	t.ws.putSeed(Safari1R, rec)
}

func (t *trailRunner) recordFail(step int, reason string) {
	rec := &CrawlerStep{Crawler: Safari1R, Profile: ProfileOf(Safari1R), ClickIndex: -1, Fail: reason}
	if t.page != nil {
		rec.StartURL = t.page.URL.String()
	}
	t.ws.putStep(step, Safari1R, rec)
}

// repeatStep finds Safari-1's clicked element on the repeat crawler's own
// page instance and clicks it. The two element lists are aligned in
// document order with the same matching heuristics the controller uses —
// matching the single clicked element in isolation would confuse
// same-sized anchors, since heuristic 2 ignores the y-coordinate. The
// repeat crawler repeats Safari-1's step, not its own history: if it
// drifted — say its previous ad click landed on a different site — it
// first re-navigates to Safari-1's start URL (its profile storage
// persists, so the revisit observations stay valid).
func (t *trailRunner) repeatStep(step int, startURL string, s1Elements []Element, clickedIdx int) {
	rec := &CrawlerStep{Crawler: Safari1R, Profile: ProfileOf(Safari1R), ClickIndex: -1}
	if t.page == nil || (startURL != "" && !sameURLSansQuery(t.page.URL.String(), startURL)) {
		t.cm.renavigations.Inc()
		page, err := t.b.Navigate(startURL, "")
		if err != nil {
			rec.Fail = "connect: " + err.Error()
			rec.StartURL = startURL
			t.ws.putStep(step, Safari1R, rec)
			t.page = nil
			return
		}
		t.page = page
	}
	rec.StartURL = t.page.URL.String()
	rec.Before = takeSnapshot(t.b, t.page.URL.String())

	var own []Element
	for _, c := range t.b.Clickables(t.page) {
		own = append(own, elementFrom(c, false))
	}
	match := -1
	if aligned := MatchPair(s1Elements, own, AllHeuristics); clickedIdx >= 0 && clickedIdx < len(aligned) {
		match = aligned[clickedIdx]
	}
	if match < 0 {
		rec.Fail = "repeat: element not found"
		t.ws.putStep(step, Safari1R, rec)
		t.page = nil
		return
	}
	rec.ClickIndex = match
	t.b.ResetRequests()
	next, err := t.b.Click(t.page, match)
	if err != nil {
		rec.Fail = "click: " + err.Error()
		rec.Requests = t.b.Requests()
		t.ws.putStep(step, Safari1R, rec)
		t.page = nil
		return
	}
	t.cfg.Network.Clock().Advance(time.Duration(t.cfg.DwellSeconds) * time.Second)
	rec.NavChain = next.Chain
	rec.LandedURL = next.URL.String()
	rec.Requests = t.b.Requests()
	rec.After = takeSnapshot(t.b, next.URL.String())
	t.ws.putStep(step, Safari1R, rec)
	t.page = next
}
