package crawler

import (
	"net/url"
	"testing"

	"crumbcruncher/internal/web"
)

// smallCrawl runs a small world crawl once per test binary.
func smallCrawl(t *testing.T) (*web.World, *Dataset) {
	t.Helper()
	cfg := web.SmallConfig()
	w := web.BuildWorld(cfg)
	ds, err := Crawl(Config{
		Seed:    cfg.Seed,
		Network: w.Network(),
		Seeders: w.Seeders(),
		Walks:   12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, ds
}

func TestCrawlProducesData(t *testing.T) {
	_, ds := smallCrawl(t)
	if len(ds.Walks) != 12 {
		t.Fatalf("walks = %d", len(ds.Walks))
	}
	steps := ds.StepCount()
	if steps == 0 {
		t.Fatal("no steps recorded")
	}
	okSteps := ds.OutcomeCounts()[OutcomeOK]
	if okSteps == 0 {
		t.Fatal("no successful steps — world or crawler broken")
	}
}

func TestCrawlAllFourCrawlersRecorded(t *testing.T) {
	_, ds := smallCrawl(t)
	for _, w := range ds.Walks {
		for _, s := range w.Steps {
			if s.Outcome != OutcomeOK {
				continue
			}
			for _, name := range ParallelCrawlers {
				if s.Records[name] == nil {
					t.Fatalf("walk %d step %d missing %s", w.Index, s.Index, name)
				}
			}
			// Safari-1R repeats successful steps (it may individually
			// fail, but a record must exist).
			if s.Records[Safari1R] == nil {
				t.Fatalf("walk %d step %d missing Safari-1R", w.Index, s.Index)
			}
		}
	}
}

func TestCrawlOKStepsSynchronized(t *testing.T) {
	_, ds := smallCrawl(t)
	for _, s := range ds.Steps() {
		if s.Outcome != OutcomeOK {
			continue
		}
		host := ""
		for _, name := range ParallelCrawlers {
			rec := s.Records[name]
			if rec.LandedURL == "" {
				t.Fatalf("ok step without landing for %s", name)
			}
			u, err := url.Parse(rec.LandedURL)
			if err != nil {
				t.Fatal(err)
			}
			if host == "" {
				host = u.Hostname()
			} else if host != u.Hostname() {
				t.Fatalf("ok step landed on %s and %s", host, u.Hostname())
			}
		}
	}
}

func TestCrawlRecordsNavigationChains(t *testing.T) {
	_, ds := smallCrawl(t)
	foundChain := false
	for _, s := range ds.Steps() {
		rec := s.Records[Safari1]
		if rec == nil {
			continue
		}
		if len(rec.NavChain) > 1 {
			foundChain = true
			// Every hop before the last must be a redirect.
			for _, hop := range rec.NavChain[:len(rec.NavChain)-1] {
				if hop.Status < 300 || hop.Status >= 400 {
					t.Fatalf("mid-chain hop not a redirect: %+v", hop)
				}
			}
		}
	}
	if !foundChain {
		t.Fatal("no multi-hop navigation observed — redirect chains broken")
	}
}

func TestCrawlProfilesCorrect(t *testing.T) {
	_, ds := smallCrawl(t)
	for _, s := range ds.Steps() {
		if r1, r1r := s.Records[Safari1], s.Records[Safari1R]; r1 != nil && r1r != nil {
			if r1.Profile != r1r.Profile {
				t.Fatal("Safari-1 and Safari-1R must share a profile")
			}
		}
		if r1, r2 := s.Records[Safari1], s.Records[Safari2]; r1 != nil && r2 != nil {
			if r1.Profile == r2.Profile {
				t.Fatal("Safari-1 and Safari-2 must have different profiles")
			}
		}
	}
}

func TestCrawlDeterministic(t *testing.T) {
	cfg := web.SmallConfig()
	run := func() []StepOutcome {
		w := web.BuildWorld(cfg)
		ds, err := Crawl(Config{
			Seed:    cfg.Seed,
			Network: w.Network(),
			Seeders: w.Seeders(),
			Walks:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []StepOutcome
		for _, walk := range ds.Walks {
			for _, s := range walk.Steps {
				out = append(out, s.Outcome)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("step counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestCrawlParallelWalksMatchSequential(t *testing.T) {
	cfg := web.SmallConfig()
	run := func(parallelism int) map[StepOutcome]int {
		w := web.BuildWorld(cfg)
		ds, err := Crawl(Config{
			Seed:        cfg.Seed,
			Network:     w.Network(),
			Seeders:     w.Seeders(),
			Walks:       8,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds.OutcomeCounts()
	}
	seq, par := run(1), run(4)
	for k, v := range seq {
		if par[k] != v {
			t.Fatalf("outcome %s differs: seq=%d par=%d", k, v, par[k])
		}
	}
}

func TestCrawlConnectFailures(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0.5
	w := web.BuildWorld(cfg)
	ds, err := Crawl(Config{
		Seed:    cfg.Seed,
		Network: w.Network(),
		Seeders: w.Seeders(),
		Walks:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.OutcomeCounts()[OutcomeConnectError] == 0 {
		t.Fatal("expected connect errors at 50% fault rate")
	}
}

func TestCrawlSmugglingObservable(t *testing.T) {
	w, ds := smallCrawl(t)
	// At least one recorded navigation URL must carry a ground-truth UID
	// parameter: the raw material of the whole study.
	found := false
	for _, s := range ds.Steps() {
		for _, rec := range s.Records {
			for _, hop := range rec.NavChain {
				u, err := url.Parse(hop.URL)
				if err != nil {
					continue
				}
				for name := range u.Query() {
					if w.Truth().IsUIDParam(name) {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no UID parameter observed in any navigation — smuggling pipeline has nothing to find")
	}
}

func TestCrawlStorageSnapshots(t *testing.T) {
	_, ds := smallCrawl(t)
	cookies := 0
	for _, s := range ds.Steps() {
		for _, rec := range s.Records {
			cookies += len(rec.After.Cookies)
		}
	}
	if cookies == 0 {
		t.Fatal("no cookies recorded in any snapshot")
	}
}

func TestDatasetHelpers(t *testing.T) {
	_, ds := smallCrawl(t)
	if got := len(ds.Steps()); got != ds.StepCount() {
		t.Fatalf("Steps()=%d StepCount()=%d", got, ds.StepCount())
	}
	total := 0
	for _, n := range ds.OutcomeCounts() {
		total += n
	}
	if total != ds.StepCount() {
		t.Fatalf("outcome total %d != steps %d", total, ds.StepCount())
	}
}

func TestSequentialCrawl(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0
	w := web.BuildWorld(cfg)
	ds, err := SequentialCrawl(Config{
		Seed:    cfg.Seed,
		Network: w.Network(),
		Seeders: w.Seeders(),
		Walks:   10,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Crawlers) != 3 || ds.Crawlers[0] != "Seq-1" {
		t.Fatalf("crawlers = %v", ds.Crawlers)
	}
	if ds.StepCount() == 0 {
		t.Fatal("no steps")
	}
	// Users have distinct profiles per walk.
	for _, walk := range ds.Walks {
		for _, s := range walk.Steps {
			profiles := map[string]bool{}
			for _, rec := range s.Records {
				profiles[rec.Profile] = true
			}
			if len(s.Records) > 1 && len(profiles) != len(s.Records) {
				t.Fatalf("sequential users share a profile: %v", profiles)
			}
		}
	}
	// Divergence: at some step, users should be on different URLs
	// (dynamic content, no synchronization).
	diverged := false
	for _, walk := range ds.Walks {
		for _, s := range walk.Steps {
			urls := map[string]bool{}
			for _, rec := range s.Records {
				if rec.StartURL != "" {
					urls[rec.StartURL] = true
				}
			}
			if len(urls) > 1 {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Log("sequential users never diverged (possible at tiny scale)")
	}
}

func TestWalksSpreadAcrossMachines(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0
	w := web.BuildWorld(cfg)
	ds, err := Crawl(Config{
		Seed:             cfg.Seed,
		Network:          w.Network(),
		Seeders:          w.Seeders(),
		Walks:            6,
		StepsPerWalk:     1,
		Machines:         3,
		DirectController: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Machines only influence fingerprint derivation, which is not
	// recorded directly — but the crawl must succeed and stay
	// deterministic.
	if len(ds.Walks) != 6 {
		t.Fatalf("walks = %d", len(ds.Walks))
	}
}

func TestConfigIframeBiasDefaults(t *testing.T) {
	// Zero value takes the default bias.
	if got := (Config{}).withDefaults().IframeBias; got != 0.3 {
		t.Fatalf("default IframeBias = %v, want 0.3", got)
	}
	// An explicit bias survives.
	if got := (Config{IframeBias: 0.7}).withDefaults().IframeBias; got != 0.7 {
		t.Fatalf("explicit IframeBias = %v, want 0.7", got)
	}
	// NoIframes expresses a true zero, which IframeBias == 0 cannot
	// (regression: it used to be silently rewritten to 0.3).
	if got := (Config{NoIframes: true}).withDefaults().IframeBias; got != 0 {
		t.Fatalf("NoIframes IframeBias = %v, want 0", got)
	}
	// NoIframes overrides a contradictory explicit bias too.
	if got := (Config{NoIframes: true, IframeBias: 0.9}).withDefaults().IframeBias; got != 0 {
		t.Fatalf("NoIframes with explicit bias = %v, want 0", got)
	}
}

func TestCrawlNoIframesReducesIframeClicks(t *testing.T) {
	// IframeBias is the probability of preferring an iframe when
	// cross-domain anchors are also available, so a zero bias still
	// clicks iframes when they are the only choice — but must click
	// strictly fewer than the 0.3 default over enough walks.
	iframeClicks := func(seed int64, noIframes bool) int {
		cfg := web.SmallConfig()
		cfg.Seed = seed
		cfg.ConnectFailRate = 0
		w := web.BuildWorld(cfg)
		ds, err := Crawl(Config{
			Seed:             cfg.Seed,
			Network:          w.Network(),
			Seeders:          w.Seeders(),
			Walks:            40,
			NoIframes:        noIframes,
			DirectController: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, walk := range ds.Walks {
			for _, s := range walk.Steps {
				if rec := s.Records[Safari1]; rec != nil && rec.Clicked != nil && rec.Clicked.Kind == "iframe" {
					n++
				}
			}
		}
		return n
	}
	// The crawl is deterministic per seed, so this comparison is stable;
	// summing over seeds averages out trajectory divergence.
	withBias, without := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		withBias += iframeClicks(seed, false)
		without += iframeClicks(seed, true)
	}
	if without >= withBias {
		t.Fatalf("iframe clicks: NoIframes=%d, default bias=%d — zero preference had no effect", without, withBias)
	}
}

func TestPutStepOutOfOrderInsertion(t *testing.T) {
	// Crawlers report steps concurrently, so putStep must be able to
	// materialise a later step before earlier ones have records — and
	// keep indices consistent when the stragglers arrive.
	ws := &walkState{walk: &Walk{Index: 7}}
	ws.putStep(3, Safari1, &CrawlerStep{Crawler: Safari1, StartURL: "http://a.com/3"})
	ws.putStep(1, Chrome3, &CrawlerStep{Crawler: Chrome3, StartURL: "http://a.com/1"})
	ws.putStep(2, Safari2, &CrawlerStep{Crawler: Safari2, StartURL: "http://a.com/2"})
	ws.putStep(1, Safari1, &CrawlerStep{Crawler: Safari1, StartURL: "http://a.com/1"})

	if len(ws.walk.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(ws.walk.Steps))
	}
	for i, s := range ws.walk.Steps {
		if s.Index != i+1 {
			t.Fatalf("step %d has Index %d", i, s.Index)
		}
		if s.Walk != 7 {
			t.Fatalf("step %d has Walk %d, want 7", i, s.Walk)
		}
		if s.Records == nil {
			t.Fatalf("step %d has nil Records", i)
		}
	}
	if rec := ws.walk.Steps[2].Records[Safari1]; rec == nil || rec.StartURL != "http://a.com/3" {
		t.Fatalf("step 3 record misplaced: %+v", rec)
	}
	if rec := ws.walk.Steps[0].Records[Chrome3]; rec == nil || rec.StartURL != "http://a.com/1" {
		t.Fatalf("step 1 Chrome-3 record misplaced: %+v", rec)
	}
	if rec := ws.walk.Steps[0].Records[Safari1]; rec == nil || rec.StartURL != "http://a.com/1" {
		t.Fatalf("step 1 Safari-1 straggler misplaced: %+v", rec)
	}
	if rec := ws.walk.Steps[1].Records[Safari2]; rec == nil || rec.StartURL != "http://a.com/2" {
		t.Fatalf("step 2 record misplaced: %+v", rec)
	}
}
