package crawler

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crumbcruncher/internal/netsim"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// TestDeriveOutcomePrecedence pins the outcome precedence order:
// connect > no-common-element > click-failed > divergent > OK — including
// padded steps where some crawlers have no record at all.
func TestDeriveOutcomePrecedence(t *testing.T) {
	land := func(host string) *CrawlerStep {
		return &CrawlerStep{LandedURL: "http://" + host + "/p"}
	}
	connect := &CrawlerStep{Fail: "connect: dial tcp: connection refused"}
	noMatch := &CrawlerStep{Fail: "no common element"}
	clickFail := &CrawlerStep{Fail: "click: no such element"}

	cases := []struct {
		name    string
		records map[string]*CrawlerStep
		want    StepOutcome
	}{
		{
			"all land same host",
			map[string]*CrawlerStep{Safari1: land("a.com"), Safari2: land("a.com"), Chrome3: land("a.com")},
			OutcomeOK,
		},
		{
			"divergent landings",
			map[string]*CrawlerStep{Safari1: land("a.com"), Safari2: land("b.com"), Chrome3: land("a.com")},
			OutcomeDivergent,
		},
		{
			"partial records never OK",
			map[string]*CrawlerStep{Safari1: land("a.com"), Safari2: land("a.com")},
			OutcomeDivergent,
		},
		{
			"no records at all",
			map[string]*CrawlerStep{},
			OutcomeDivergent,
		},
		{
			"connect beats everything",
			map[string]*CrawlerStep{Safari1: connect, Safari2: noMatch, Chrome3: clickFail},
			OutcomeConnectError,
		},
		{
			"connect beats landings",
			map[string]*CrawlerStep{Safari1: land("a.com"), Safari2: land("a.com"), Chrome3: connect},
			OutcomeConnectError,
		},
		{
			"no-common-element beats click failure",
			map[string]*CrawlerStep{Safari1: noMatch, Safari2: clickFail, Chrome3: land("a.com")},
			OutcomeNoCommonElement,
		},
		{
			"click failure beats divergence",
			map[string]*CrawlerStep{Safari1: clickFail, Safari2: land("a.com"), Chrome3: land("b.com")},
			OutcomeClickFailed,
		},
		{
			"click failure with partial records",
			map[string]*CrawlerStep{Safari1: clickFail},
			OutcomeClickFailed,
		},
	}
	for _, tc := range cases {
		s := &Step{Records: tc.records}
		if got := deriveOutcome(s); got != tc.want {
			t.Errorf("%s: deriveOutcome = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// deadNetwork is a network where every non-exempt domain refuses
// connections.
func deadNetwork(seed int64) *netsim.Network {
	n := netsim.New()
	n.SetFaults(netsim.NewFaultInjector(seed, 1.0))
	return n
}

// TestSeedFailureRecordsEveryCrawler is the satellite regression for the
// stale-error and trailer-gap bugs: when the seed navigation fails, every
// step record — all three parallel crawlers AND Safari-1R — must exist
// and carry a connect failure derived from that crawler's own state.
func TestSeedFailureRecordsEveryCrawler(t *testing.T) {
	ds, err := Crawl(Config{
		Seed:             3,
		Network:          deadNetwork(3),
		Seeders:          []string{"dead.example.com"},
		Walks:            1,
		StepsPerWalk:     4,
		DirectController: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := ds.Walks[0]
	for _, name := range AllCrawlers {
		rec := w.SeedLoad[name]
		if rec == nil {
			t.Fatalf("seed load record missing for %s", name)
		}
		if !strings.HasPrefix(rec.Fail, "connect:") {
			t.Fatalf("%s seed Fail = %q, want connect failure", name, rec.Fail)
		}
	}
	if len(w.Steps) == 0 {
		t.Fatal("no step recorded after seed failure")
	}
	s := w.Steps[0]
	for _, name := range ParallelCrawlers {
		rec := s.Records[name]
		if rec == nil {
			t.Fatalf("step 1 record missing for %s (stale-error path)", name)
		}
		if !strings.HasPrefix(rec.Fail, "connect:") {
			t.Fatalf("%s step 1 Fail = %q, want its own connect failure", name, rec.Fail)
		}
	}
	// The trailer gap: Safari-1R must get a step record even though
	// Safari-1 had no live page.
	rec := s.Records[Safari1R]
	if rec == nil {
		t.Fatal("Safari-1R step 1 record missing (trailer gap)")
	}
	if !strings.HasPrefix(rec.Fail, "connect:") {
		t.Fatalf("Safari-1R step 1 Fail = %q, want the connect failure", rec.Fail)
	}
	if s.Outcome != OutcomeConnectError || w.Ended != OutcomeConnectError {
		t.Fatalf("outcome = %s, ended = %s, want connect-error", s.Outcome, w.Ended)
	}
	if w.Degraded == "" {
		t.Error("connect-terminated walk not quarantined with a reason")
	}
}

// TestRetryRecoversTransientSeeder drives a flaky seeder (first attempts
// fail, then recover) through the retry layer and proves the walk keeps
// its measurement instead of losing the site.
func TestRetryRecoversTransientSeeder(t *testing.T) {
	n := netsim.New()
	n.SetFaults(netsim.NewFaultInjectorConfig(5, netsim.FaultConfig{TransientRate: 1, TransientMaxFails: 2}))
	n.HandleFunc("flaky.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html><body>hello</body></html>")
	})
	tel := telemetry.New(nil, 64)
	ds, err := Crawl(Config{
		Seed:             5,
		Network:          n,
		Seeders:          []string{"flaky.example.com"},
		Walks:            1,
		StepsPerWalk:     1,
		DirectController: true,
		Telemetry:        tel,
		Retry:            resilience.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := ds.Walks[0]
	for _, name := range AllCrawlers {
		rec := w.SeedLoad[name]
		if rec == nil || rec.Fail != "" {
			t.Fatalf("%s seed load = %+v, want recovered success", name, rec)
		}
		if rec.LandedURL == "" {
			t.Fatalf("%s has no landing despite recovery", name)
		}
	}
	if w.Ended == OutcomeConnectError {
		t.Fatal("walk lost to a transient failure despite retries")
	}
	reg := tel.Registry()
	if v := reg.Counter("resilience.retries").Value(); v == 0 {
		t.Error("no retries counted for a transient seeder")
	}
	if v := reg.Counter("resilience.recovered").Value(); v == 0 {
		t.Error("no recovered sequences counted")
	}
	if v := reg.Counter("resilience.exhausted").Value(); v != 0 {
		t.Errorf("exhausted = %d, want 0 (domain recovers within the policy)", v)
	}
	// Without retries the same world loses the walk — the control arm.
	n2 := netsim.New()
	n2.SetFaults(netsim.NewFaultInjectorConfig(5, netsim.FaultConfig{TransientRate: 1, TransientMaxFails: 2}))
	n2.HandleFunc("flaky.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html><body>hello</body></html>")
	})
	ds2, err := Crawl(Config{
		Seed:             5,
		Network:          n2,
		Seeders:          []string{"flaky.example.com"},
		Walks:            1,
		StepsPerWalk:     1,
		DirectController: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds2.Walks[0].Ended; got != OutcomeConnectError {
		t.Fatalf("control walk ended %q, want connect-error without retries", got)
	}
}

// marshalDataset renders a dataset to bytes for byte-identity checks.
func marshalDataset(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// faultyCrawl runs a transient-fault world with retries at the given
// parallelism, with an optional wall-clock sleep hook.
func faultyCrawl(t *testing.T, parallelism int, sleep func(time.Duration)) *Dataset {
	t.Helper()
	cfg := web.SmallConfig()
	cfg.TransientFailRate = 0.3
	cfg.HTTPDegradeRate = 0.2
	w := web.BuildWorld(cfg)
	ds, err := Crawl(Config{
		Seed:         cfg.Seed,
		Network:      w.Network(),
		Seeders:      w.Seeders(),
		Walks:        8,
		Parallelism:  parallelism,
		Retry:        resilience.DefaultPolicy(),
		BackoffSleep: sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCrawlWithRetriesDeterministicAtParallelism1 proves two same-seed
// crawls with transient faults and retries enabled are byte-identical.
func TestCrawlWithRetriesDeterministicAtParallelism1(t *testing.T) {
	a := marshalDataset(t, faultyCrawl(t, 1, nil))
	b := marshalDataset(t, faultyCrawl(t, 1, nil))
	if string(a) != string(b) {
		t.Fatal("datasets differ between identical runs at Parallelism 1")
	}
}

// TestCrawlWithRetriesDeterministicAtParallelism8 proves fault and retry
// decisions are independent of goroutine scheduling: step outcomes match
// across reruns and across parallelism levels.
func TestCrawlWithRetriesDeterministicAtParallelism8(t *testing.T) {
	counts := func(ds *Dataset) map[StepOutcome]int { return ds.OutcomeCounts() }
	p1 := counts(faultyCrawl(t, 1, nil))
	a := counts(faultyCrawl(t, 8, nil))
	b := counts(faultyCrawl(t, 8, nil))
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("outcome %s differs between P8 reruns: %d vs %d", k, v, b[k])
		}
		if p1[k] != v {
			t.Fatalf("outcome %s differs between P1 and P8: %d vs %d", k, p1[k], v)
		}
	}
}

// TestWallPerturbedBackoffSameDataset retries with a wall-clock sleep
// injected into every backoff: real time passes differently, virtual
// time does not, and the dataset must be byte-identical.
func TestWallPerturbedBackoffSameDataset(t *testing.T) {
	base := marshalDataset(t, faultyCrawl(t, 1, nil))
	var i atomic.Int64 // the hook fires from concurrent crawler goroutines
	perturbed := marshalDataset(t, faultyCrawl(t, 1, func(time.Duration) {
		time.Sleep(time.Duration(i.Add(1)%3) * time.Millisecond)
	}))
	if i.Load() == 0 {
		t.Fatal("sleep hook never invoked — no retries happened, test proves nothing")
	}
	if string(base) != string(perturbed) {
		t.Fatal("wall-clock perturbation of backoff changed the dataset")
	}
}

// TestCheckpointResumeByteIdentical cancels a crawl after 3 of 6 walks,
// resumes it from the checkpoint, and proves the combined dataset is
// byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cfg := web.SmallConfig()
	cfg.TransientFailRate = 0.3
	crawlCfg := func(w *web.World) Config {
		return Config{
			Seed:        cfg.Seed,
			Network:     w.Network(),
			Seeders:     w.Seeders(),
			Walks:       6,
			Parallelism: 1,
			Retry:       resilience.DefaultPolicy(),
		}
	}

	// The uninterrupted reference run.
	full, err := Crawl(crawlCfg(web.BuildWorld(cfg)))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the third walk completes.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ckpt, err := OpenCheckpoint(path, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	icfg := crawlCfg(web.BuildWorld(cfg))
	icfg.Checkpoint = ckpt
	icfg.OnWalkComplete = func(*Walk) {
		if done++; done == 3 {
			cancel()
		}
	}
	partial, err := CrawlContext(ctx, icfg)
	if err == nil {
		t.Fatal("cancelled crawl returned nil error")
	}
	cancel()
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, w := range partial.Walks {
		if w.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped no walks; the resume arm would be vacuous")
	}

	// Resume from the checkpoint with a fresh world.
	ckpt2, err := OpenCheckpoint(path, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if n := ckpt2.CompletedCount(); n != 3 {
		t.Fatalf("checkpoint holds %d walks, want 3", n)
	}
	rcfg := crawlCfg(web.BuildWorld(cfg))
	rcfg.Checkpoint = ckpt2
	resumed, err := Crawl(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range resumed.Walks {
		if w.Skipped {
			t.Fatalf("walk %d still skipped after resume", w.Index)
		}
	}
	if a, b := marshalDataset(t, full), marshalDataset(t, resumed); string(a) != string(b) {
		t.Fatal("resumed dataset differs from the uninterrupted run")
	}
}

// TestCheckpointRejectsWrongSeed guards the resume precondition: a
// checkpoint only makes sense against the world it was recorded in.
func TestCheckpointRejectsWrongSeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ckpt, err := OpenCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Record(0, netsim.Epoch, &Walk{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, 2); err == nil {
		t.Fatal("checkpoint for seed 1 opened under seed 2")
	}
}

// TestCircuitBreakerFailsFast crawls repeatedly into a permanently-dead
// seeder with retries and a breaker: the first sequences trip the
// breaker, later walks are rejected without consuming retry attempts,
// and the rejections are visible in the netsim.breaker_open counter.
func TestCircuitBreakerFailsFast(t *testing.T) {
	tel := telemetry.New(nil, 256)
	n := deadNetwork(7)
	// Bind the network's counters (breaker_open et al.) to the registry;
	// core.Execute does this wiring, Crawl alone does not.
	n.SetTelemetry(tel)
	ds, err := Crawl(Config{
		Seed:             7,
		Network:          n,
		Seeders:          []string{"dead.example.com"},
		Walks:            6,
		StepsPerWalk:     1,
		Parallelism:      1,
		DirectController: true,
		Telemetry:        tel,
		Retry:            resilience.Policy{MaxAttempts: 3, BaseDelay: time.Second},
		Breaker:          resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := n.Breakers().State("dead.example.com"); st != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	reg := tel.Registry()
	if v := reg.Counter("netsim.breaker_opened").Value(); v != 1 {
		t.Errorf("breaker_opened = %d, want exactly 1", v)
	}
	if v := reg.Counter("netsim.breaker_open").Value(); v == 0 {
		t.Error("no fail-fast rejections counted in netsim.breaker_open")
	}
	// Retries stop once the breaker is open: with threshold 2 and 3
	// attempts per sequence, only the first two sequences may retry.
	if v := reg.Counter("resilience.retries").Value(); v != 4 {
		t.Errorf("retries = %d, want 4 (2 tripping sequences x 2 retries; breaker-open is permanent)", v)
	}
	// Every walk still fails — fast, but recorded.
	for _, w := range ds.Walks {
		if w.Ended != OutcomeConnectError {
			t.Fatalf("walk %d ended %q, want connect-error", w.Index, w.Ended)
		}
	}
}
