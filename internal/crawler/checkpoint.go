package crawler

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"crumbcruncher/internal/runio"
)

// checkpointVersion is bumped when the on-disk format changes.
const checkpointVersion = 1

// checkpointHeader is the runio header a checkpoint file opens with.
// The seed is validated on resume: a checkpoint only makes sense
// against the exact deterministic world it was recorded in.
func checkpointHeader(seed int64) runio.Header {
	return runio.Header{Format: runio.CheckpointFormat, Version: checkpointVersion, Seed: seed}
}

// checkpointEntry is one completed walk: its index, the virtual instant
// the shared clock had reached when the walk finished, and the full walk
// record. On resume the clock is advanced to the latest recorded
// instant, so (at Parallelism 1, where walks are strictly sequential)
// the continuation replays exactly the uninterrupted schedule.
type checkpointEntry struct {
	Index int       `json:"index"`
	Clock time.Time `json:"clock"`
	Walk  *Walk     `json:"walk"`
}

// Checkpoint records completed walks to a JSONL file as the crawl makes
// progress, and on reopen serves them back so an interrupted crawl
// resumes without redoing finished walks. Safe for concurrent use.
type Checkpoint struct {
	mu       sync.Mutex
	lf       *runio.LineFile
	done     map[int]*Walk
	maxClock time.Time
}

// OpenCheckpoint opens (or creates) the checkpoint file at path for a
// crawl with the given seed. An existing file must carry the same seed;
// its recorded walks become available via Completed. A torn final
// record (interrupted mid-write) is dropped and the file truncated back
// to its last complete walk; mid-file corruption quarantines the file
// (runio.ErrCorrupt — see OpenCheckpointOpts to observe recovery).
func OpenCheckpoint(path string, seed int64) (*Checkpoint, error) {
	return OpenCheckpointOpts(path, seed, runio.OpenOptions{})
}

// OpenCheckpointOpts is OpenCheckpoint with the durability wiring
// exposed: opts.Tel counts recovered records and quarantines, opts.Sync
// picks the fsync policy for appended walks.
func OpenCheckpointOpts(path string, seed int64, opts runio.OpenOptions) (*Checkpoint, error) {
	lf, lines, err := runio.OpenLineFileOpts(path, checkpointHeader(seed), opts)
	if err != nil {
		return nil, fmt.Errorf("crawler: checkpoint: %w", err)
	}
	cp := &Checkpoint{lf: lf, done: make(map[int]*Walk)}
	for _, line := range lines {
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // schema mismatch in the tail: stop, like a torn write
		}
		cp.done[e.Index] = e.Walk
		if e.Clock.After(cp.maxClock) {
			cp.maxClock = e.Clock
		}
	}
	return cp, nil
}

// Path returns the checkpoint file's path ("" on a nil checkpoint).
// The streaming engine derives its analysis-state sidecar path from it.
func (cp *Checkpoint) Path() string {
	if cp == nil {
		return ""
	}
	return cp.lf.Path()
}

// Recovery reports what opening the checkpoint file had to repair (the
// zero value when it was intact). Safe on a nil checkpoint.
func (cp *Checkpoint) Recovery() runio.Recovery {
	if cp == nil {
		return runio.Recovery{}
	}
	return cp.lf.Recovery()
}

// Completed returns the recorded walk for index, or nil if the walk has
// not been checkpointed. Safe on a nil checkpoint.
func (cp *Checkpoint) Completed(index int) *Walk {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.done[index]
}

// CompletedCount returns how many walks the checkpoint holds.
func (cp *Checkpoint) CompletedCount() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.done)
}

// CompletedIndices returns the recorded walk indices, sorted. Taken
// before a crawl starts it identifies exactly the walks that will be
// resumed rather than re-crawled.
func (cp *Checkpoint) CompletedIndices() []int {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]int, 0, len(cp.done))
	for i := range cp.done {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// MaxClock returns the latest virtual instant any recorded walk reached
// (zero when empty).
func (cp *Checkpoint) MaxClock() time.Time {
	if cp == nil {
		return time.Time{}
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.maxClock
}

// Record appends a completed walk. Already-recorded indices are ignored,
// so resumed crawls never duplicate entries. Safe on a nil checkpoint.
func (cp *Checkpoint) Record(index int, clock time.Time, w *Walk) error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.done[index]; ok {
		return nil
	}
	if err := cp.lf.Append(checkpointEntry{Index: index, Clock: clock, Walk: w}); err != nil {
		return fmt.Errorf("crawler: checkpoint record walk %d: %w", index, err)
	}
	cp.done[index] = w
	if clock.After(cp.maxClock) {
		cp.maxClock = clock
	}
	return nil
}

// Close syncs and closes the checkpoint file. Safe on a nil checkpoint.
func (cp *Checkpoint) Close() error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.lf.Close()
}
